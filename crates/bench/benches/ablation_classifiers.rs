//! **Ablation** — C4.5 vs Naive Bayes vs linear SVM on the prepared
//! feature space (Section 3.2 of the paper: "Decision Trees
//! outperformed other algorithms like Naive Bayes and Support Vector
//! Machines which we also evaluated with our datasets").

use vqd_bench::{controlled_runs, emit_section};
use vqd_core::ablation::{classifier_comparison, render_ablation};
use vqd_core::scenario::LabelScheme;

fn main() {
    let runs = controlled_runs();
    let mut text = String::new();
    for (scheme, tag) in [
        (LabelScheme::Existence, "existence"),
        (LabelScheme::Exact, "exact"),
    ] {
        let rows = classifier_comparison(&runs, scheme, 1);
        text.push_str(&render_ablation(
            &format!("Ablation: classifier comparison ({tag} labels, FC+FS, 10-fold CV)"),
            &rows,
        ));
        text.push('\n');
    }
    text.push_str(
        "paper: C4.5 wins; DTs cope with noise and non-linear relations and stay interpretable\n",
    );
    emit_section("ablation_classifiers", &text);
}
