//! **Ablation** — the FC/FS grid and pruning: quantifies what feature
//! construction, feature selection and error-based pruning each buy
//! (complements Figure 5 and the paper's interpretability argument).

use vqd_bench::{controlled_runs, emit_section};
use vqd_core::ablation::{pipeline_ablation, pruning_ablation, render_ablation};
use vqd_core::scenario::LabelScheme;

fn main() {
    let runs = controlled_runs();
    let mut text = render_ablation(
        "Ablation: FC/FS pipeline grid (exact labels, 10-fold CV; size = #features)",
        &pipeline_ablation(&runs, LabelScheme::Exact, 1),
    );
    text.push('\n');
    text.push_str(&render_ablation(
        "Ablation: C4.5 pruning (exact labels; size = tree nodes)",
        &pruning_ablation(&runs, LabelScheme::Exact, 1),
    ));
    emit_section("ablation_pipeline", &text);
}
