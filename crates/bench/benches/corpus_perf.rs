//! **Corpus-scale perf harness** — sharded generation, binary format
//! load speed and out-of-core training cost, persisted to
//! `BENCH_corpus.json`.
//!
//! Five phases, each with its own hard equality gate:
//!
//! 1. **Farm scaling** — generates the controlled corpus at farm
//!    widths 1, 2 and 4 and times each. The width-1 farm output must
//!    be byte-identical to the plain single-process generator, and
//!    every width must fingerprint-match width 1 (the determinism
//!    contract `vqd corpus --farm` advertises). Per-worker efficiency
//!    is `rate_w / (min(w, cores) * rate_1)` — normalised by the
//!    cores actually available, so a single-core CI host measures
//!    scheduling overhead rather than pretending to scale.
//! 2. **Multi-process farm** — `vqd corpus --procs 1/2/4` via
//!    `generate_corpus_multiproc`, each output `cmp`-equal to the
//!    plain CLI generator's bytes. Skipped (and recorded as skipped)
//!    when the `vqd` binary is not built.
//! 3. **Load path** — serialises the corpus both ways and times how
//!    long each takes to reach the training-ready columnar form:
//!    text read + parse + `to_dataset` pivot vs `.vqdc` open +
//!    checksummed column reads + label ids. Row-major reconstruction
//!    (`to_runs`, the `corpus convert` path) is timed alongside.
//!    On-disk sizes for v1, v2-raw and v2-compressed are recorded
//!    (compression gate: v2 ≤ v2raw / 1.5), and the mmap read path is
//!    raced against the pread fallback over repeated whole-table
//!    column sweeps with an XOR-of-bits equality gate.
//! 4. **Training** — in-memory `Diagnoser::train` vs
//!    `train_out_of_core` streaming from `.vqdc`; the two models must
//!    serialise identically (bit-exact trees). Records the external
//!    sort's spill counters and the process peak-RSS proxy
//!    (`VmHWM` from `/proc/self/status`, 0 where unavailable).
//!
//! Knobs: `VQD_PERF_SMOKE=1` (small corpus, fewer repeats),
//! `VQD_SESSIONS` (corpus size), `VQD_BENCH_OUT` (output path),
//! `VQD_BIN` (path to the `vqd` binary for the multi-process phase).

use std::path::PathBuf;
use std::time::Instant;

use vqd_bench::emit_section;
use vqd_core::dataset::{corpus_from_text, corpus_to_text, to_dataset, CorpusConfig};
use vqd_core::diagnoser::{Diagnoser, DiagnoserConfig};
use vqd_core::farm::{generate_corpus_farm, generate_corpus_multiproc, ProcFarmConfig};
use vqd_core::octrain::{train_out_of_core, OocConfig};
use vqd_core::scenario::LabelScheme;
use vqd_core::vqdc::{
    write_vqdc, write_vqdc_with, VqdcIoMode, VqdcReader, VqdcVersion, VqdcWriteOptions,
};
use vqd_video::catalog::Catalog;

/// FNV-1a 64-bit fingerprint of a corpus serialisation.
fn fingerprint(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Peak resident set (kB) from `/proc/self/status`; 0 when the file
/// or field is missing (non-Linux).
fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")
                    .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
            })
        })
        .unwrap_or(0)
}

/// Locate the built `vqd` binary for the multi-process farm phase:
/// `VQD_BIN` wins, then the profile directory this bench runs from,
/// then the workspace `target/{release,debug}` directories.
fn find_vqd_bin() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("VQD_BIN") {
        let p = PathBuf::from(p);
        return p.is_file().then_some(p);
    }
    let mut candidates = Vec::new();
    if let Ok(me) = std::env::current_exe() {
        // target/<profile>/deps/corpus_perf-… → target/<profile>/vqd
        if let Some(profile) = me.parent().and_then(|d| d.parent()) {
            candidates.push(profile.join("vqd"));
        }
    }
    let ws = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    candidates.push(ws.join("target/release/vqd"));
    candidates.push(ws.join("target/debug/vqd"));
    candidates.into_iter().find(|p| p.is_file())
}

/// One whole-table column sweep through `reader`, XOR-folding every
/// cell's bit pattern. The mmap fast path is taken per row group when
/// the reader can lend; anything it cannot lend goes through the same
/// `fill_column` the pread backend uses — so both backends fold the
/// identical bits or the equality gate trips.
fn sweep_columns(reader: &VqdcReader, buf: &mut [f64]) -> u64 {
    let n = reader.n_rows();
    let mut xor = 0u64;
    for j in 0..reader.feature_names().len() {
        let mut start = 0usize;
        while start < n {
            match reader.borrow_cells(j, start).expect("borrow column cells") {
                Some(cells) => {
                    for &c in cells {
                        xor ^= c;
                    }
                    start += cells.len();
                }
                None => {
                    reader
                        .fill_column(j, start, &mut buf[start..])
                        .expect("fill column");
                    for v in &buf[start..] {
                        xor ^= v.to_bits();
                    }
                    start = n;
                }
            }
        }
    }
    xor
}

fn main() {
    let smoke = std::env::var("VQD_PERF_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let sessions = if smoke {
        120
    } else {
        vqd_bench::controlled_sessions()
    };
    let detected_cores = vqd_bench::detected_cores();
    let catalog = Catalog::top100(vqd_bench::CATALOG_SEED);
    let cfg = CorpusConfig {
        sessions,
        seed: 20151201,
        p_fault: 0.5,
        p_mobile_wan: 0.3,
        ..Default::default()
    };

    // ---- Phase 1: farm scaling + determinism gate. ---------------
    eprintln!("[corpus_perf] plain single-process generation ({sessions} sessions)...");
    let t0 = Instant::now();
    let plain = vqd_core::dataset::generate_corpus(&cfg, &catalog);
    let plain_wall = t0.elapsed().as_secs_f64();
    let plain_text = corpus_to_text(&plain);
    let want_fp = fingerprint(&plain_text);

    let widths = [1usize, 2, 4];
    let mut rates = Vec::with_capacity(widths.len());
    for &w in &widths {
        eprintln!("[corpus_perf] farm generation at width {w}...");
        let t0 = Instant::now();
        let (runs, stats) = generate_corpus_farm(&cfg, &catalog, w);
        let wall = t0.elapsed().as_secs_f64();
        let text = corpus_to_text(&runs);
        if fingerprint(&text) != want_fp || text != plain_text {
            eprintln!(
                "[corpus_perf] FARM MERGE REGRESSION: width {w} corpus differs from plain generator"
            );
            std::process::exit(1);
        }
        eprintln!(
            "[corpus_perf]   width {w}: {:.1} sessions/s (shards {:?})",
            sessions as f64 / wall,
            stats.shard_sessions
        );
        rates.push(sessions as f64 / wall);
    }
    let rate1 = rates[0];
    let efficiency: Vec<f64> = widths
        .iter()
        .zip(&rates)
        .map(|(&w, &r)| r / (w.min(detected_cores) as f64 * rate1))
        .collect();

    // ---- Phase 1b: multi-process farm (`vqd corpus --procs N`). ---
    // Worker processes only receive `--sessions`/`--seed`, so this
    // phase runs an otherwise-default config and gates every procs
    // count against the plain CLI generator's bytes.
    let scratch = std::env::temp_dir().join(format!("vqd-corpus-perf-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let procs_counts = [1usize, 2, 4];
    let mut procs_rates: Vec<f64> = Vec::new();
    let vqd_bin = find_vqd_bin();
    if let Some(bin) = &vqd_bin {
        let mp_cfg = CorpusConfig {
            sessions,
            seed: 20151201,
            ..Default::default()
        };
        let expected_path = scratch.join("mp-expected.vqdc");
        let st = std::process::Command::new(bin)
            .args([
                "corpus",
                "--sessions",
                &sessions.to_string(),
                "--seed",
                "20151201",
                "--out",
            ])
            .arg(&expected_path)
            .status()
            .expect("run vqd corpus");
        assert!(st.success(), "plain `vqd corpus` run failed");
        let expected = std::fs::read(&expected_path).expect("read expected corpus");
        for &procs in &procs_counts {
            eprintln!("[corpus_perf] multi-process farm at --procs {procs}...");
            let out = scratch.join(format!("mp-procs{procs}.vqdc"));
            let pf = ProcFarmConfig {
                exe: bin.clone(),
                procs,
                width: 4,
                shard_dir: None,
            };
            let stats = generate_corpus_multiproc(&mp_cfg, &pf, &out, &VqdcWriteOptions::default())
                .expect("multi-process farm");
            let got = std::fs::read(&out).expect("read multiproc corpus");
            if got != expected {
                eprintln!(
                    "[corpus_perf] MULTIPROC MERGE REGRESSION: --procs {procs} corpus differs from the plain generator"
                );
                std::process::exit(1);
            }
            eprintln!(
                "[corpus_perf]   --procs {procs}: {:.1} sessions/s (per-proc {:?})",
                stats.sessions_per_sec, stats.proc_sessions
            );
            procs_rates.push(stats.sessions_per_sec);
        }
    } else {
        eprintln!("[corpus_perf] vqd binary not found; skipping the multi-process phase");
    }

    // ---- Phase 2: time-to-training-ready, plus row rebuild. ------
    // The format exists to feed training, which consumes feature-major
    // columns (`VqdcReader::column`, checksum-verified) and label ids
    // — so the headline comparison is text → `Dataset` (parse + the
    // row-major→columnar pivot `to_dataset` does) against binary →
    // columns + `class_ids`. Both sides end in the same shape the
    // trainer reads. Row-major reconstruction (`to_runs`, what
    // `vqd corpus convert` runs) pays one String allocation per cell
    // just like the text parser and is recorded alongside.
    let text_path = scratch.join("corpus.tsv");
    let bin_path = scratch.join("corpus.vqdc");
    std::fs::write(&text_path, &plain_text).expect("write text corpus");
    write_vqdc(&plain, &bin_path).expect("write binary corpus");
    let text_bytes = std::fs::metadata(&text_path).map(|m| m.len()).unwrap_or(0);
    let bin_bytes = std::fs::metadata(&bin_path).map(|m| m.len()).unwrap_or(0);

    // On-disk footprint per container version: v1 (row-padded raw),
    // v2 uncompressed (raw column blocks) and v2 compressed (the
    // default). The compression gate compares like with like — the
    // same v2 container with the codec on and off.
    let v1_path = scratch.join("corpus.v1.vqdc");
    let v2raw_path = scratch.join("corpus.v2raw.vqdc");
    write_vqdc_with(&plain, &v1_path, &VqdcWriteOptions::v1()).expect("write v1 corpus");
    write_vqdc_with(
        &plain,
        &v2raw_path,
        &VqdcWriteOptions {
            version: VqdcVersion::V2,
            compress: false,
            ..Default::default()
        },
    )
    .expect("write v2raw corpus");
    let v1_bytes = std::fs::metadata(&v1_path).map(|m| m.len()).unwrap_or(0);
    let v2raw_bytes = std::fs::metadata(&v2raw_path).map(|m| m.len()).unwrap_or(0);
    let compression_ratio = v2raw_bytes as f64 / bin_bytes.max(1) as f64;
    let compression_ratio_vs_v1 = v1_bytes as f64 / bin_bytes.max(1) as f64;
    eprintln!(
        "[corpus_perf] on-disk: v1 {v1_bytes} B, v2raw {v2raw_bytes} B, v2 {bin_bytes} B ({compression_ratio:.2}x vs raw blocks)"
    );

    // mmap vs pread: repeated whole-table column sweeps over the same
    // uncompressed v2 file, so the mmap side can lend raw blocks
    // zero-copy while the pread side pays a syscall + copy per block.
    // Both fold the identical XOR-of-bits or the gate trips.
    let io_sweeps = if smoke { 400 } else { 100 };
    let pread_reader =
        VqdcReader::open_with(&v2raw_path, VqdcIoMode::Pread).expect("open pread reader");
    let mmap_reader =
        VqdcReader::open_with(&v2raw_path, VqdcIoMode::Mmap).expect("open mmap reader");
    let n_rows = pread_reader.n_rows();
    let n_cols = pread_reader.feature_names().len();
    let mut io_buf = vec![0.0f64; n_rows];
    let sweep_bytes = (n_rows * n_cols * 8) as f64;

    // Equality gate (untimed): both backends must fold the identical
    // bits over the whole table. This also faults every page and
    // warms the per-column checksum cache, so the timed loops below
    // measure the steady-state load path, not first-touch cost.
    let xor_pread = sweep_columns(&pread_reader, &mut io_buf);
    let xor_mmap = sweep_columns(&mmap_reader, &mut io_buf);
    if xor_mmap != xor_pread {
        eprintln!(
            "[corpus_perf] IO BACKEND REGRESSION: mmap sweep folded {xor_mmap:#018x}, pread {xor_pread:#018x}"
        );
        std::process::exit(1);
    }

    // Headline: the load step alone — what it costs to make each
    // column's cells available to the trainer. The pread backend must
    // materialise them (syscall + copy per row group); the mmap
    // backend lends the block in place.
    eprintln!("[corpus_perf] column I/O: {io_sweeps} sweeps per backend...");
    let t0 = Instant::now();
    for _ in 0..io_sweeps {
        for j in 0..n_cols {
            pread_reader
                .fill_column(j, 0, &mut io_buf)
                .expect("fill column");
            std::hint::black_box(io_buf[0]);
        }
    }
    let pread_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for _ in 0..io_sweeps {
        for j in 0..n_cols {
            let mut start = 0usize;
            while start < n_rows {
                match mmap_reader.borrow_cells(j, start).expect("borrow cells") {
                    Some(cells) => {
                        std::hint::black_box(cells[0]);
                        start += cells.len();
                    }
                    None => {
                        mmap_reader
                            .fill_column(j, start, &mut io_buf[start..])
                            .expect("fill column");
                        std::hint::black_box(io_buf[start]);
                        start = n_rows;
                    }
                }
            }
        }
    }
    let mmap_s = t0.elapsed().as_secs_f64();
    let pread_gib_s = sweep_bytes * io_sweeps as f64 / pread_s.max(1e-9) / (1u64 << 30) as f64;
    let mmap_gib_s = sweep_bytes * io_sweeps as f64 / mmap_s.max(1e-9) / (1u64 << 30) as f64;
    let mmap_speedup = mmap_gib_s / pread_gib_s.max(1e-12);

    // Secondary: the same sweep with the consume cost included (XOR
    // fold of every cell), the end-to-end number a training pass sees.
    let fold_sweeps = io_sweeps / 4;
    let t0 = Instant::now();
    for _ in 0..fold_sweeps {
        std::hint::black_box(sweep_columns(&pread_reader, &mut io_buf));
    }
    let pread_fold_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for _ in 0..fold_sweeps {
        std::hint::black_box(sweep_columns(&mmap_reader, &mut io_buf));
    }
    let mmap_fold_s = t0.elapsed().as_secs_f64();
    let fold_speedup = pread_fold_s / mmap_fold_s.max(1e-9);
    eprintln!(
        "[corpus_perf]   load-only: pread {pread_gib_s:.2} GiB/s, mmap {mmap_gib_s:.2} GiB/s ({mmap_speedup:.1}x); load+fold {fold_speedup:.2}x"
    );

    let reps = if smoke { 3 } else { 5 };
    eprintln!("[corpus_perf] timing text parse vs binary load ({reps} passes each)...");
    let mut text_parse = f64::INFINITY;
    let mut text_ready = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let s = std::fs::read_to_string(&text_path).expect("read text corpus");
        let runs = corpus_from_text(&s).expect("parse text corpus");
        std::hint::black_box(runs.len());
        let parse_s = t0.elapsed().as_secs_f64();
        let data = to_dataset(&runs, LabelScheme::Exact);
        std::hint::black_box(data.features.len());
        let ready_s = t0.elapsed().as_secs_f64();
        text_parse = text_parse.min(parse_s);
        text_ready = text_ready.min(ready_s);
    }
    let mut bin_cols = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let reader = VqdcReader::open(&bin_path).expect("open binary corpus");
        let n_cols = reader.feature_names().len();
        let mut cells = 0usize;
        for j in 0..n_cols {
            let col = reader.column(j).expect("load binary column");
            cells += col.len();
        }
        let y = reader.class_ids(LabelScheme::Exact);
        std::hint::black_box((cells, y.len()));
        bin_cols = bin_cols.min(t0.elapsed().as_secs_f64());
    }
    let mut bin_rows = f64::INFINITY;
    let mut bin_runs_len = 0usize;
    for _ in 0..reps {
        let t0 = Instant::now();
        let reader = VqdcReader::open(&bin_path).expect("open binary corpus");
        let runs = reader.to_runs().expect("load binary corpus");
        bin_runs_len = std::hint::black_box(runs.len());
        bin_rows = bin_rows.min(t0.elapsed().as_secs_f64());
    }
    if bin_runs_len != plain.len() {
        eprintln!(
            "[corpus_perf] BINARY LOAD REGRESSION: {bin_runs_len} sessions loaded, {} expected",
            plain.len()
        );
        std::process::exit(1);
    }
    let load_speedup = text_ready / bin_cols.max(1e-9);
    let rows_speedup = text_parse / bin_rows.max(1e-9);

    // ---- Phase 3: out-of-core vs in-memory training. -------------
    // Out-of-core first so the RSS high-water mark reflects the
    // streaming path rather than the in-memory dataset built next.
    let rss_before_kb = vm_hwm_kb();
    eprintln!(
        "[corpus_perf] out-of-core training from {}...",
        bin_path.display()
    );
    let reader = VqdcReader::open(&bin_path).expect("open binary corpus");
    let ooc_cfg = OocConfig {
        scheme: LabelScheme::Exact,
        ..Default::default()
    };
    let t0 = Instant::now();
    let (ooc_model, report) = train_out_of_core(&reader, &ooc_cfg).expect("out-of-core train");
    let ooc_wall = t0.elapsed().as_secs_f64();
    let rss_after_ooc_kb = vm_hwm_kb();

    eprintln!("[corpus_perf] in-memory training...");
    let t0 = Instant::now();
    let data = to_dataset(&plain, LabelScheme::Exact);
    let mem_model = Diagnoser::train(&data, &DiagnoserConfig::default());
    let mem_wall = t0.elapsed().as_secs_f64();

    if ooc_model.serialize() != mem_model.serialize() {
        eprintln!(
            "[corpus_perf] OUT-OF-CORE EQUALITY REGRESSION: streamed model differs from in-memory model"
        );
        std::process::exit(1);
    }
    std::fs::remove_dir_all(&scratch).ok();

    if efficiency[2] < 0.7 {
        eprintln!(
            "[corpus_perf] WARNING: width-4 per-worker efficiency {:.2} below 0.7 target",
            efficiency[2]
        );
    }
    if load_speedup < 5.0 {
        eprintln!(
            "[corpus_perf] WARNING: binary column load only {load_speedup:.1}x faster than text parse (target 5x)"
        );
    }
    if compression_ratio < 1.5 {
        eprintln!(
            "[corpus_perf] WARNING: column compression only {compression_ratio:.2}x vs raw blocks (target 1.5x)"
        );
    }
    if mmap_speedup < 2.0 {
        eprintln!(
            "[corpus_perf] WARNING: mmap column sweep only {mmap_speedup:.1}x the pread rate (target 2x)"
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"sessions\": {sessions},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"detected_cores\": {detected_cores},\n"));
    json.push_str(&format!(
        "  \"farm\": {{\"widths\": [1, 2, 4], \"sessions_per_sec\": [{:.2}, {:.2}, {:.2}], \"plain_sessions_per_sec\": {:.2}, \"per_worker_efficiency\": [{:.3}, {:.3}, {:.3}], \"merge_identical\": true}},\n",
        rates[0], rates[1], rates[2],
        sessions as f64 / plain_wall,
        efficiency[0], efficiency[1], efficiency[2]
    ));
    if procs_rates.len() == procs_counts.len() {
        json.push_str(&format!(
            "  \"multiproc\": {{\"procs\": [1, 2, 4], \"sessions_per_sec\": [{:.2}, {:.2}, {:.2}], \"byte_identical\": true}},\n",
            procs_rates[0], procs_rates[1], procs_rates[2]
        ));
    } else {
        json.push_str("  \"multiproc\": {\"skipped\": \"vqd binary not found\"},\n");
    }
    json.push_str(&format!(
        "  \"load\": {{\"text_bytes\": {text_bytes}, \"binary_bytes\": {bin_bytes}, \"text_parse_s\": {text_parse:.6}, \"text_to_dataset_s\": {text_ready:.6}, \"binary_columns_s\": {bin_cols:.6}, \"binary_to_rows_s\": {bin_rows:.6}, \"binary_speedup\": {load_speedup:.2}, \"rows_speedup\": {rows_speedup:.2}}},\n"
    ));
    json.push_str(&format!(
        "  \"formats\": {{\"v1_bytes\": {v1_bytes}, \"v2raw_bytes\": {v2raw_bytes}, \"v2_bytes\": {bin_bytes}, \"compression_ratio\": {compression_ratio:.3}, \"compression_ratio_vs_v1\": {compression_ratio_vs_v1:.3}}},\n"
    ));
    json.push_str(&format!(
        "  \"column_io\": {{\"sweeps\": {io_sweeps}, \"pread_gib_per_s\": {pread_gib_s:.3}, \"mmap_gib_per_s\": {mmap_gib_s:.3}, \"mmap_speedup\": {mmap_speedup:.2}, \"load_and_fold_speedup\": {fold_speedup:.2}, \"xor_identical\": true}},\n"
    ));
    json.push_str(&format!(
        "  \"train\": {{\"in_memory_s\": {mem_wall:.4}, \"out_of_core_s\": {ooc_wall:.4}, \"models_identical\": true, \"selected_features\": {}, \"spill_runs\": {}, \"spilled_bytes\": {}, \"peak_gather_pairs\": {}}},\n",
        report.selected_features, report.fit.spill_runs, report.fit.spilled_bytes,
        report.fit.peak_gather_pairs
    ));
    json.push_str(&format!(
        "  \"peak_rss_proxy\": {{\"vm_hwm_kb_before_train\": {rss_before_kb}, \"vm_hwm_kb_after_ooc_train\": {rss_after_ooc_kb}}},\n"
    ));
    json.push_str(
        "  \"equality\": \"farm widths 1/2/4 and --procs 1/2/4 byte-identical to plain generator; mmap and pread sweeps fold identical bits; out-of-core model bit-identical to in-memory\"\n",
    );
    json.push_str("}\n");

    let out = std::env::var("VQD_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_corpus.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write BENCH_corpus.json");

    let procs_line = if procs_rates.len() == procs_counts.len() {
        format!(
            "  procs 1/2/4 (multi-process): {:.1} / {:.1} / {:.1} sessions/s (byte-identical)\n",
            procs_rates[0], procs_rates[1], procs_rates[2]
        )
    } else {
        "  procs 1/2/4 (multi-process): skipped (vqd binary not found)\n".to_string()
    };
    let text = format!(
        "corpus perf ({sessions} sessions, {detected_cores} cores):\n  farm width 1/2/4: {:.1} / {:.1} / {:.1} sessions/s (per-worker efficiency {:.2} / {:.2} / {:.2})\n{procs_line}  load (training-ready): text {:.1} ms vs binary columns {:.2} ms ({load_speedup:.1}x)\n  load (row rebuild):    text {:.1} ms vs binary rows {:.1} ms ({rows_speedup:.1}x)\n  formats: v1 {v1_bytes} B, v2raw {v2raw_bytes} B, v2 {bin_bytes} B ({compression_ratio:.2}x vs raw)\n  column load: pread {pread_gib_s:.2} GiB/s vs mmap {mmap_gib_s:.2} GiB/s ({mmap_speedup:.1}x; {fold_speedup:.2}x with the fold, bits identical)\n  train: in-memory {mem_wall:.2} s vs out-of-core {ooc_wall:.2} s ({} spill runs, models bit-identical)\n",
        rates[0], rates[1], rates[2],
        efficiency[0], efficiency[1], efficiency[2],
        text_ready * 1e3, bin_cols * 1e3,
        text_parse * 1e3, bin_rows * 1e3,
        report.fit.spill_runs,
    );
    emit_section("corpus_perf", &text);
    eprintln!("[corpus_perf] wrote {out}");
}
