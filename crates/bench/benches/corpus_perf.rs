//! **Corpus-scale perf harness** — sharded generation, binary format
//! load speed and out-of-core training cost, persisted to
//! `BENCH_corpus.json`.
//!
//! Three phases, each with its own hard equality gate:
//!
//! 1. **Farm scaling** — generates the controlled corpus at farm
//!    widths 1, 2 and 4 and times each. The width-1 farm output must
//!    be byte-identical to the plain single-process generator, and
//!    every width must fingerprint-match width 1 (the determinism
//!    contract `vqd corpus --farm` advertises). Per-worker efficiency
//!    is `rate_w / (min(w, cores) * rate_1)` — normalised by the
//!    cores actually available, so a single-core CI host measures
//!    scheduling overhead rather than pretending to scale.
//! 2. **Load path** — serialises the corpus both ways and times how
//!    long each takes to reach the training-ready columnar form:
//!    text read + parse + `to_dataset` pivot vs `.vqdc` open +
//!    checksummed column reads + label ids. Row-major reconstruction
//!    (`to_runs`, the `corpus convert` path) is timed alongside.
//! 3. **Training** — in-memory `Diagnoser::train` vs
//!    `train_out_of_core` streaming from `.vqdc`; the two models must
//!    serialise identically (bit-exact trees). Records the external
//!    sort's spill counters and the process peak-RSS proxy
//!    (`VmHWM` from `/proc/self/status`, 0 where unavailable).
//!
//! Knobs: `VQD_PERF_SMOKE=1` (small corpus, fewer repeats),
//! `VQD_SESSIONS` (corpus size), `VQD_BENCH_OUT` (output path).

use std::time::Instant;

use vqd_bench::emit_section;
use vqd_core::dataset::{corpus_from_text, corpus_to_text, to_dataset, CorpusConfig};
use vqd_core::diagnoser::{Diagnoser, DiagnoserConfig};
use vqd_core::farm::generate_corpus_farm;
use vqd_core::octrain::{train_out_of_core, OocConfig};
use vqd_core::scenario::LabelScheme;
use vqd_core::vqdc::{write_vqdc, VqdcReader};
use vqd_video::catalog::Catalog;

/// FNV-1a 64-bit fingerprint of a corpus serialisation.
fn fingerprint(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Peak resident set (kB) from `/proc/self/status`; 0 when the file
/// or field is missing (non-Linux).
fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")
                    .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
            })
        })
        .unwrap_or(0)
}

fn main() {
    let smoke = std::env::var("VQD_PERF_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let sessions = if smoke {
        120
    } else {
        vqd_bench::controlled_sessions()
    };
    let detected_cores = vqd_bench::detected_cores();
    let catalog = Catalog::top100(vqd_bench::CATALOG_SEED);
    let cfg = CorpusConfig {
        sessions,
        seed: 20151201,
        p_fault: 0.5,
        p_mobile_wan: 0.3,
        ..Default::default()
    };

    // ---- Phase 1: farm scaling + determinism gate. ---------------
    eprintln!("[corpus_perf] plain single-process generation ({sessions} sessions)...");
    let t0 = Instant::now();
    let plain = vqd_core::dataset::generate_corpus(&cfg, &catalog);
    let plain_wall = t0.elapsed().as_secs_f64();
    let plain_text = corpus_to_text(&plain);
    let want_fp = fingerprint(&plain_text);

    let widths = [1usize, 2, 4];
    let mut rates = Vec::with_capacity(widths.len());
    for &w in &widths {
        eprintln!("[corpus_perf] farm generation at width {w}...");
        let t0 = Instant::now();
        let (runs, stats) = generate_corpus_farm(&cfg, &catalog, w);
        let wall = t0.elapsed().as_secs_f64();
        let text = corpus_to_text(&runs);
        if fingerprint(&text) != want_fp || text != plain_text {
            eprintln!(
                "[corpus_perf] FARM MERGE REGRESSION: width {w} corpus differs from plain generator"
            );
            std::process::exit(1);
        }
        eprintln!(
            "[corpus_perf]   width {w}: {:.1} sessions/s (shards {:?})",
            sessions as f64 / wall,
            stats.shard_sessions
        );
        rates.push(sessions as f64 / wall);
    }
    let rate1 = rates[0];
    let efficiency: Vec<f64> = widths
        .iter()
        .zip(&rates)
        .map(|(&w, &r)| r / (w.min(detected_cores) as f64 * rate1))
        .collect();

    // ---- Phase 2: time-to-training-ready, plus row rebuild. ------
    // The format exists to feed training, which consumes feature-major
    // columns (`VqdcReader::column`, checksum-verified) and label ids
    // — so the headline comparison is text → `Dataset` (parse + the
    // row-major→columnar pivot `to_dataset` does) against binary →
    // columns + `class_ids`. Both sides end in the same shape the
    // trainer reads. Row-major reconstruction (`to_runs`, what
    // `vqd corpus convert` runs) pays one String allocation per cell
    // just like the text parser and is recorded alongside.
    let scratch = std::env::temp_dir().join(format!("vqd-corpus-perf-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let text_path = scratch.join("corpus.tsv");
    let bin_path = scratch.join("corpus.vqdc");
    std::fs::write(&text_path, &plain_text).expect("write text corpus");
    write_vqdc(&plain, &bin_path).expect("write binary corpus");
    let text_bytes = std::fs::metadata(&text_path).map(|m| m.len()).unwrap_or(0);
    let bin_bytes = std::fs::metadata(&bin_path).map(|m| m.len()).unwrap_or(0);

    let reps = if smoke { 3 } else { 5 };
    eprintln!("[corpus_perf] timing text parse vs binary load ({reps} passes each)...");
    let mut text_parse = f64::INFINITY;
    let mut text_ready = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let s = std::fs::read_to_string(&text_path).expect("read text corpus");
        let runs = corpus_from_text(&s).expect("parse text corpus");
        std::hint::black_box(runs.len());
        let parse_s = t0.elapsed().as_secs_f64();
        let data = to_dataset(&runs, LabelScheme::Exact);
        std::hint::black_box(data.features.len());
        let ready_s = t0.elapsed().as_secs_f64();
        text_parse = text_parse.min(parse_s);
        text_ready = text_ready.min(ready_s);
    }
    let mut bin_cols = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let reader = VqdcReader::open(&bin_path).expect("open binary corpus");
        let n_cols = reader.feature_names().len();
        let mut cells = 0usize;
        for j in 0..n_cols {
            let col = reader.column(j).expect("load binary column");
            cells += col.len();
        }
        let y = reader.class_ids(LabelScheme::Exact);
        std::hint::black_box((cells, y.len()));
        bin_cols = bin_cols.min(t0.elapsed().as_secs_f64());
    }
    let mut bin_rows = f64::INFINITY;
    let mut bin_runs_len = 0usize;
    for _ in 0..reps {
        let t0 = Instant::now();
        let reader = VqdcReader::open(&bin_path).expect("open binary corpus");
        let runs = reader.to_runs().expect("load binary corpus");
        bin_runs_len = std::hint::black_box(runs.len());
        bin_rows = bin_rows.min(t0.elapsed().as_secs_f64());
    }
    if bin_runs_len != plain.len() {
        eprintln!(
            "[corpus_perf] BINARY LOAD REGRESSION: {bin_runs_len} sessions loaded, {} expected",
            plain.len()
        );
        std::process::exit(1);
    }
    let load_speedup = text_ready / bin_cols.max(1e-9);
    let rows_speedup = text_parse / bin_rows.max(1e-9);

    // ---- Phase 3: out-of-core vs in-memory training. -------------
    // Out-of-core first so the RSS high-water mark reflects the
    // streaming path rather than the in-memory dataset built next.
    let rss_before_kb = vm_hwm_kb();
    eprintln!(
        "[corpus_perf] out-of-core training from {}...",
        bin_path.display()
    );
    let reader = VqdcReader::open(&bin_path).expect("open binary corpus");
    let ooc_cfg = OocConfig {
        scheme: LabelScheme::Exact,
        ..Default::default()
    };
    let t0 = Instant::now();
    let (ooc_model, report) = train_out_of_core(&reader, &ooc_cfg).expect("out-of-core train");
    let ooc_wall = t0.elapsed().as_secs_f64();
    let rss_after_ooc_kb = vm_hwm_kb();

    eprintln!("[corpus_perf] in-memory training...");
    let t0 = Instant::now();
    let data = to_dataset(&plain, LabelScheme::Exact);
    let mem_model = Diagnoser::train(&data, &DiagnoserConfig::default());
    let mem_wall = t0.elapsed().as_secs_f64();

    if ooc_model.serialize() != mem_model.serialize() {
        eprintln!(
            "[corpus_perf] OUT-OF-CORE EQUALITY REGRESSION: streamed model differs from in-memory model"
        );
        std::process::exit(1);
    }
    std::fs::remove_dir_all(&scratch).ok();

    if efficiency[2] < 0.7 {
        eprintln!(
            "[corpus_perf] WARNING: width-4 per-worker efficiency {:.2} below 0.7 target",
            efficiency[2]
        );
    }
    if load_speedup < 5.0 {
        eprintln!(
            "[corpus_perf] WARNING: binary column load only {load_speedup:.1}x faster than text parse (target 5x)"
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"sessions\": {sessions},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"detected_cores\": {detected_cores},\n"));
    json.push_str(&format!(
        "  \"farm\": {{\"widths\": [1, 2, 4], \"sessions_per_sec\": [{:.2}, {:.2}, {:.2}], \"plain_sessions_per_sec\": {:.2}, \"per_worker_efficiency\": [{:.3}, {:.3}, {:.3}], \"merge_identical\": true}},\n",
        rates[0], rates[1], rates[2],
        sessions as f64 / plain_wall,
        efficiency[0], efficiency[1], efficiency[2]
    ));
    json.push_str(&format!(
        "  \"load\": {{\"text_bytes\": {text_bytes}, \"binary_bytes\": {bin_bytes}, \"text_parse_s\": {text_parse:.6}, \"text_to_dataset_s\": {text_ready:.6}, \"binary_columns_s\": {bin_cols:.6}, \"binary_to_rows_s\": {bin_rows:.6}, \"binary_speedup\": {load_speedup:.2}, \"rows_speedup\": {rows_speedup:.2}}},\n"
    ));
    json.push_str(&format!(
        "  \"train\": {{\"in_memory_s\": {mem_wall:.4}, \"out_of_core_s\": {ooc_wall:.4}, \"models_identical\": true, \"selected_features\": {}, \"spill_runs\": {}, \"spilled_bytes\": {}, \"peak_gather_pairs\": {}}},\n",
        report.selected_features, report.fit.spill_runs, report.fit.spilled_bytes,
        report.fit.peak_gather_pairs
    ));
    json.push_str(&format!(
        "  \"peak_rss_proxy\": {{\"vm_hwm_kb_before_train\": {rss_before_kb}, \"vm_hwm_kb_after_ooc_train\": {rss_after_ooc_kb}}},\n"
    ));
    json.push_str(
        "  \"equality\": \"farm widths 1/2/4 byte-identical to plain generator; out-of-core model bit-identical to in-memory\"\n",
    );
    json.push_str("}\n");

    let out = std::env::var("VQD_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_corpus.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write BENCH_corpus.json");

    let text = format!(
        "corpus perf ({sessions} sessions, {detected_cores} cores):\n  farm width 1/2/4: {:.1} / {:.1} / {:.1} sessions/s (per-worker efficiency {:.2} / {:.2} / {:.2})\n  load (training-ready): text {:.1} ms vs binary columns {:.2} ms ({load_speedup:.1}x)\n  load (row rebuild):    text {:.1} ms vs binary rows {:.1} ms ({rows_speedup:.1}x)\n  train: in-memory {mem_wall:.2} s vs out-of-core {ooc_wall:.2} s ({} spill runs, models bit-identical)\n",
        rates[0], rates[1], rates[2],
        efficiency[0], efficiency[1], efficiency[2],
        text_ready * 1e3, bin_cols * 1e3,
        text_parse * 1e3, bin_rows * 1e3,
        report.fit.spill_runs,
    );
    emit_section("corpus_perf", &text);
    eprintln!("[corpus_perf] wrote {out}");
}
