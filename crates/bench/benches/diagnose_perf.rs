//! **Serving perf harness** — batched diagnosis throughput and the
//! batch/scalar equality gate, persisted to `BENCH_diagnose.json`.
//!
//! Trains an exact-resolution diagnoser on the controlled corpus, then
//! serves every session three ways — pristine, moderately degraded and
//! heavily degraded telemetry (so the quality/fallback logic runs on
//! all three resolution tiers) — through:
//!
//! 1. the **seed-reference scalar loop** (`diagnose_seed_reference`:
//!    linear name scans, pointer-tree descent, fresh allocations per
//!    call — the pre-compilation serving path, kept as the baseline),
//! 2. the **compiled single-session path** (`diagnose`, which is a
//!    batch of one), and
//! 3. the **batched engine** (`diagnose_batch`) at one thread and at
//!    full parallelism.
//!
//! The bench **fails hard** unless every path returns bit-identical
//! diagnoses (labels, distributions, coverage, confidence, resolution,
//! fallback) and the batch is identical at 1 vs 8 vs all threads —
//! the equality gate CI's perf-smoke job runs. Timings follow the
//! warmup-then-measure discipline of `simnet_perf`.
//!
//! Knobs: `VQD_PERF_SMOKE=1` (small corpus, fewer repeats; the
//! equality gate is the point), `VQD_SESSIONS` (corpus size),
//! `VQD_BENCH_OUT` (output path), `VQD_NO_OBS=1` (bypass the metrics
//! registry during timing).

use std::time::Instant;

use vqd_bench::emit_section;
use vqd_core::dataset::{generate_corpus, to_dataset, CorpusConfig};
use vqd_core::diagnoser::{Diagnoser, DiagnoserConfig, Diagnosis};
use vqd_core::scenario::LabelScheme;
use vqd_probes::degrade::{DegradeKind, DegradePlan};
use vqd_video::catalog::Catalog;

/// Exit with a diff report unless two diagnoses are bit-identical.
fn assert_same(a: &Diagnosis, b: &Diagnosis, i: usize, what: &str) {
    let bits = |v: f64| v.to_bits();
    let ok = a.label == b.label
        && a.class == b.class
        && a.dist.len() == b.dist.len()
        && a.dist
            .iter()
            .zip(&b.dist)
            .all(|(x, y)| bits(*x) == bits(*y))
        && bits(a.quality.feature_coverage) == bits(b.quality.feature_coverage)
        && bits(a.quality.missing_descent) == bits(b.quality.missing_descent)
        && bits(a.quality.confidence) == bits(b.quality.confidence)
        && a.quality.silent_vps == b.quality.silent_vps
        && a.resolution == b.resolution
        && a.fallback_label == b.fallback_label;
    if !ok {
        eprintln!(
            "[diagnose_perf] EQUALITY REGRESSION ({what}, session {i}):\n  a: {a:?}\n  b: {b:?}"
        );
        std::process::exit(1);
    }
}

/// `(p50, p99)` of per-call latencies, in microseconds.
fn percentiles_us(lat_ns: &mut [u64]) -> (f64, f64) {
    if lat_ns.is_empty() {
        return (0.0, 0.0);
    }
    lat_ns.sort_unstable();
    let pick = |q: usize| lat_ns[(lat_ns.len() * q / 100).min(lat_ns.len() - 1)] as f64 / 1e3;
    (pick(50), pick(99))
}

fn main() {
    let smoke = std::env::var("VQD_PERF_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let sessions = std::env::var("VQD_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 24 } else { 96 });
    let no_obs = std::env::var("VQD_NO_OBS")
        .map(|v| v == "1")
        .unwrap_or(false);
    if no_obs {
        vqd_obs::disable();
    } else {
        vqd_obs::enable();
    }

    eprintln!("[diagnose_perf] generating {sessions}-session corpus...");
    let cfg = CorpusConfig {
        sessions,
        seed: 2015,
        ..Default::default()
    };
    let corpus = generate_corpus(&cfg, &Catalog::top100(vqd_bench::CATALOG_SEED));
    eprintln!("[diagnose_perf] training exact-resolution model...");
    let model = Diagnoser::train(
        &to_dataset(&corpus, LabelScheme::Exact),
        &DiagnoserConfig::default(),
    );

    // Serving set: every corpus session pristine, plus two degraded
    // replicas per session so coverage spans all three resolution
    // tiers and the fallback projections actually run. Each tier is a
    // contiguous block, the way a production scorer drains per-feed
    // queues (sessions from one telemetry pipeline arrive together).
    let mild = DegradePlan::new(DegradeKind::VpDropout, 0.55, 77);
    let harsh = DegradePlan::new(DegradeKind::VpDropout, 0.95, 78);
    let mut serving: Vec<Vec<(String, f64)>> = Vec::with_capacity(3 * corpus.len());
    serving.extend(corpus.iter().map(|r| r.metrics.clone()));
    for (plan, runs) in [(&mild, &corpus), (&harsh, &corpus)] {
        serving.extend(
            runs.iter()
                .enumerate()
                .map(|(i, r)| plan.apply(i as u64, &r.metrics)),
        );
    }
    let n = serving.len();
    let detected_cores = vqd_bench::detected_cores();
    let threads = vqd_bench::parallel_workers();

    // ---- Equality gate (untimed; doubles as warmup). -------------
    eprintln!("[diagnose_perf] equality gate over {n} sessions...");
    let reference: Vec<Diagnosis> = serving
        .iter()
        .map(|s| model.diagnose_seed_reference(s))
        .collect();
    let b1 = model.diagnose_batch(&serving, 1);
    let b8 = model.diagnose_batch(&serving, 8);
    let ball = model.diagnose_batch(&serving, 0);
    for i in 0..n {
        assert_same(&reference[i], &b1.get(i), i, "scalar reference vs batch(1)");
        assert_same(&b1.get(i), &b8.get(i), i, "batch threads 1 vs 8");
        assert_same(&b1.get(i), &ball.get(i), i, "batch threads 1 vs all");
        assert_same(
            &reference[i],
            &model.diagnose(&serving[i]),
            i,
            "scalar vs compiled single",
        );
    }

    // ---- Timed passes. -------------------------------------------
    let reps = if smoke { 2 } else { 5 };

    eprintln!("[diagnose_perf] timing scalar reference ({reps} passes)...");
    let mut scalar_lat: Vec<u64> = Vec::with_capacity(reps * n);
    let t0 = Instant::now();
    for _ in 0..reps {
        for s in &serving {
            let c0 = Instant::now();
            std::hint::black_box(model.diagnose_seed_reference(s));
            scalar_lat.push(c0.elapsed().as_nanos() as u64);
        }
    }
    let scalar_wall = t0.elapsed().as_secs_f64();
    let scalar_sps = (reps * n) as f64 / scalar_wall;
    let (scalar_p50, scalar_p99) = percentiles_us(&mut scalar_lat);

    eprintln!("[diagnose_perf] timing compiled single-session path...");
    let mut single_lat: Vec<u64> = Vec::with_capacity(reps * n);
    let t0 = Instant::now();
    for _ in 0..reps {
        for s in &serving {
            let c0 = Instant::now();
            std::hint::black_box(model.diagnose(s));
            single_lat.push(c0.elapsed().as_nanos() as u64);
        }
    }
    let single_wall = t0.elapsed().as_secs_f64();
    let single_sps = (reps * n) as f64 / single_wall;
    let (single_p50, single_p99) = percentiles_us(&mut single_lat);

    let time_batch = |threads: usize| {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            std::hint::black_box(model.diagnose_batch(&serving, threads));
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (n as f64 / best, best / n as f64 * 1e6)
    };
    eprintln!("[diagnose_perf] timing batch (1 thread)...");
    let (batch1_sps, batch1_us) = time_batch(1);
    eprintln!(
        "[diagnose_perf] timing batch ({threads} threads, {detected_cores} cores detected)..."
    );
    let (batchp_sps, batchp_us) = time_batch(threads);

    let tree_nodes = model
        .tree()
        .serialize()
        .lines()
        .find_map(|l| {
            l.strip_prefix("nodes\t")
                .and_then(|v| v.parse::<usize>().ok())
        })
        .unwrap_or(0);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"corpus_sessions\": {sessions},\n"));
    json.push_str(&format!("  \"serving_sessions\": {n},\n"));
    json.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"obs_recording\": {},\n", !no_obs));
    json.push_str(&format!(
        "  \"model\": {{\"classes\": {}, \"features\": {}, \"tree_nodes\": {tree_nodes}}},\n",
        model.classes.len(),
        model.feature_names.len()
    ));
    json.push_str(&format!(
        "  \"scalar_reference\": {{\"diagnoses_per_sec\": {scalar_sps:.0}, \"p50_us\": {scalar_p50:.2}, \"p99_us\": {scalar_p99:.2}}},\n"
    ));
    json.push_str(&format!(
        "  \"compiled_single\": {{\"diagnoses_per_sec\": {single_sps:.0}, \"p50_us\": {single_p50:.2}, \"p99_us\": {single_p99:.2}}},\n"
    ));
    json.push_str(&format!(
        "  \"batch_1thread\": {{\"diagnoses_per_sec\": {batch1_sps:.0}, \"amortized_us_per_session\": {batch1_us:.2}}},\n"
    ));
    json.push_str(&format!(
        "  \"batch_parallel\": {{\"threads\": {threads}, \"detected_cores\": {detected_cores}, \"diagnoses_per_sec\": {batchp_sps:.0}, \"amortized_us_per_session\": {batchp_us:.2}}},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_batch1_vs_scalar\": {:.2},\n",
        batch1_sps / scalar_sps
    ));
    json.push_str(&format!(
        "  \"speedup_parallel_vs_scalar\": {:.2},\n",
        batchp_sps / scalar_sps
    ));
    json.push_str(
        "  \"equality\": \"batch == scalar reference == compiled single, threads 1 == 8 == all, bitwise\"\n",
    );
    json.push_str("}\n");

    let out = std::env::var("VQD_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_diagnose.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write BENCH_diagnose.json");

    let text = format!(
        "diagnose perf ({n} serving sessions, {} classes, {} features, {tree_nodes} nodes):\n  scalar reference: {scalar_sps:.0}/s, p50 {scalar_p50:.1} us, p99 {scalar_p99:.1} us\n  compiled single:  {single_sps:.0}/s, p50 {single_p50:.1} us, p99 {single_p99:.1} us\n  batch x1 thread:  {batch1_sps:.0}/s ({:.2}x scalar)\n  batch x{threads} threads: {batchp_sps:.0}/s ({:.2}x scalar)\n  all paths bit-identical (equality gate passed)\n",
        model.classes.len(),
        model.feature_names.len(),
        batch1_sps / scalar_sps,
        batchp_sps / scalar_sps,
    );
    emit_section("diagnose_perf", &text);
}
