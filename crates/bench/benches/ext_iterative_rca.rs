//! **Extension (paper §7, "Collaboration")** — iterative RCA without
//! data sharing: each entity answers only "is the problem in my
//! segment?", verdicts are combined along the path. Compares the
//! one-bit protocol against the full combined model on location
//! labels.

use vqd_bench::{controlled_runs, emit_section};
use vqd_core::dataset::to_dataset;
use vqd_core::diagnoser::{Diagnoser, DiagnoserConfig};
use vqd_core::iterative::IterativeRca;
use vqd_core::scenario::LabelScheme;

fn main() {
    let runs = controlled_runs();
    // Hold out a third for evaluation so both approaches are scored on
    // unseen sessions.
    let cut = runs.len() * 2 / 3;
    let (train, test) = runs.split_at(cut);

    let rca = IterativeRca::train(train, &DiagnoserConfig::default());
    let cm_iter = rca.evaluate(test);

    let data = to_dataset(train, LabelScheme::Location);
    let full = Diagnoser::train(&data, &DiagnoserConfig::default());
    let cm_full = vqd_core::experiments::eval_transfer(&full, test, LabelScheme::Location, None);

    let mut text = String::from("== Extension: iterative RCA (one-bit collaboration, §7) ==\n");
    text.push_str(&format!(
        "   full combined model (raw data pooled):   accuracy {:.1}%  (n={})\n",
        cm_full.accuracy() * 100.0,
        cm_full.total()
    ));
    text.push_str(&format!(
        "   iterative protocol (verdicts only):      accuracy {:.1}%  (n={})\n",
        cm_iter.accuracy() * 100.0,
        cm_iter.total()
    ));
    text.push_str(
        "\npaper: 'no sensitive information is exchanged among users or providers,\ncollaborations can be easier established' — the protocol trades a few\npoints of accuracy for zero raw-data sharing\n",
    );
    emit_section("ext_iterative", &text);
}
