//! **Extension (paper §9 future work)** — co-occurring problems: two
//! concurrent faults per session, single-label model. Reports how
//! often the model blames one of the two true causes and which fault
//! dominates.

use vqd_bench::{controlled_runs, controlled_sessions, emit_section, CATALOG_SEED};
use vqd_core::dataset::to_dataset;
use vqd_core::diagnoser::{Diagnoser, DiagnoserConfig};
use vqd_core::multifault::{evaluate_multifault, generate_multifault};
use vqd_core::scenario::LabelScheme;
use vqd_video::catalog::Catalog;

fn main() {
    let train = controlled_runs();
    let data = to_dataset(&train, LabelScheme::Exact);
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());
    let n = (controlled_sessions() / 6).max(30);
    eprintln!("[ext_multifault] simulating {n} two-fault sessions...");
    let runs = generate_multifault(n, 201509, &Catalog::top100(CATALOG_SEED));
    let ev = evaluate_multifault(&model, &runs);
    let mut text =
        String::from("== Extension: multi-problem sessions (two concurrent faults) ==\n");
    text.push_str(&format!(
        "sessions with degraded QoE: {}\n  blamed one of the two true causes: {} ({:.0}%)\n  missed entirely (predicted good): {}\n",
        ev.total,
        ev.hit_either,
        if ev.total > 0 { 100.0 * ev.hit_either as f64 / ev.total as f64 } else { 0.0 },
        ev.missed
    ));
    text.push_str("which fault wins when two co-occur:\n");
    for (fault, n) in &ev.winners {
        text.push_str(&format!("   {fault:<20} {n}\n"));
    }
    text.push_str("\npaper: multi-problem detection named as the next step (§9); single-label\nmodels degrade gracefully by reporting the dominant cause\n");
    emit_section("ext_multifault", &text);
}
