//! **Figure 3** — Precision and Recall for *problem existence*
//! detection (good / mild / severe) per vantage point and combined,
//! in the controlled environment with 10-fold cross-validation.
//!
//! Paper reference values: mobile 88.1 %, router 86.4 %, server
//! 85.6 %, combined 88.8 %; mild problems noticeably harder than
//! severe ones for the router and server probes.

use vqd_bench::{controlled_runs, emit_section};
use vqd_core::diagnoser::DiagnoserConfig;
use vqd_core::experiments::{eval_by_vp, render_vp_evals};
use vqd_core::scenario::LabelScheme;

fn main() {
    let runs = controlled_runs();
    let evals = eval_by_vp(
        &runs,
        LabelScheme::Existence,
        &DiagnoserConfig::default(),
        1,
    );
    let mut text = render_vp_evals(
        "Figure 3: problem-existence detection (controlled, 10-fold CV)",
        &evals,
    );
    text.push_str("\npaper: mobile 88.1%  router 86.4%  server 85.6%  combined 88.8%\n");
    emit_section("fig3", &text);
}
