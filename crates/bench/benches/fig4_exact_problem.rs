//! **Figure 4** — Precision and Recall for *exact problem* detection
//! (fault × severity) per vantage point, controlled environment.
//!
//! Paper reference: overall accuracy mobile 88.18 %, router 85.74 %,
//! server 84.2 %, combined 88.95 %; router/server nearly blind to
//! mobile load and mild interference.

use vqd_bench::{controlled_runs, emit_section};
use vqd_core::diagnoser::DiagnoserConfig;
use vqd_core::experiments::{eval_by_vp, render_vp_evals};
use vqd_core::scenario::LabelScheme;

fn main() {
    let runs = controlled_runs();
    let evals = eval_by_vp(&runs, LabelScheme::Exact, &DiagnoserConfig::default(), 1);
    let mut text = render_vp_evals(
        "Figure 4: exact-problem detection (controlled, 10-fold CV)",
        &evals,
    );
    text.push_str("\npaper: mobile 88.18%  router 85.74%  server 84.2%  combined 88.95%\n");
    emit_section("fig4", &text);
}
