//! **Figure 5** — detection performance for different feature sets:
//! RSSI, HW, UTILIZATION, DELAY, TCP, ALL, FS & FC (all three VPs
//! combined, exact-problem labels).
//!
//! Paper shape: RSSI/HW < 0.35, UTILIZATION ≈ 0.55, DELAY ≈ 0.70,
//! ALL ≈ 0.75, FS & FC > 0.80 (macro precision/recall).

use vqd_bench::{controlled_runs, emit_section};
use vqd_core::experiments::feature_set_sweep;

fn main() {
    let runs = controlled_runs();
    let sweep = feature_set_sweep(&runs, 1);
    let mut text =
        String::from("== Figure 5: detection by feature set (combined VPs, exact labels) ==\n");
    text.push_str("   set           precision  recall  accuracy  #features\n");
    for e in &sweep {
        text.push_str(&format!(
            "   {:<12} {:>9.2}  {:>6.2}  {:>8.1}%  {:>9}\n",
            e.name,
            e.precision,
            e.recall,
            e.accuracy * 100.0,
            e.n_features
        ));
    }
    text.push_str("\npaper shape: RSSI/HW < UTILIZATION < DELAY < ALL < FS&FC (>0.80)\n");
    emit_section("fig5", &text);
}
