//! **Figure 6** — problem-existence detection in the real world with
//! *induced* faults (corporate WiFi), using the model trained on the
//! controlled dataset.
//!
//! Paper reference: mobile 88 %, router 84 %, server 81 %, combined
//! 88.1 % — the lab-trained model transfers.

use vqd_bench::{controlled_runs, emit_section, induced_runs};
use vqd_core::dataset::{to_dataset, LabeledRun};
use vqd_core::diagnoser::{Diagnoser, DiagnoserConfig};
use vqd_core::experiments::{eval_transfer, VP_SETS};
use vqd_core::scenario::LabelScheme;

fn main() {
    let train = controlled_runs();
    let test: Vec<LabeledRun> = induced_runs().into_iter().map(|r| r.run).collect();
    let data = to_dataset(&train, LabelScheme::Existence);
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());
    let mut text = String::from(
        "== Figure 6: real-world (induced faults) existence detection, lab-trained model ==\n",
    );
    for (name, vps) in VP_SETS {
        let cm = eval_transfer(&model, &test, LabelScheme::Existence, Some(vps));
        text.push_str(&format!(
            "-- VP {:<9} accuracy {:.1}%  (n={})\n",
            name,
            cm.accuracy() * 100.0,
            cm.total()
        ));
        for c in 0..cm.classes.len() {
            text.push_str(&format!(
                "   {:<8} precision {:.2}  recall {:.2}\n",
                cm.classes[c],
                cm.precision(c),
                cm.recall(c)
            ));
        }
    }
    text.push_str("\npaper: mobile 88%  router 84%  server 81%  combined 88.1%\n");
    emit_section("fig6", &text);
}
