//! **Figure 7** — exact root-cause detection in the real world with
//! induced faults, lab-trained model.
//!
//! Paper reference: combined 82.9 %, mobile 81.1 %, router 80.5 %,
//! server 79.3 %.

use vqd_bench::{controlled_runs, emit_section, induced_runs};
use vqd_core::dataset::{to_dataset, LabeledRun};
use vqd_core::diagnoser::{Diagnoser, DiagnoserConfig};
use vqd_core::experiments::{eval_transfer, VP_SETS};
use vqd_core::scenario::LabelScheme;

fn main() {
    let train = controlled_runs();
    let test: Vec<LabeledRun> = induced_runs().into_iter().map(|r| r.run).collect();
    let data = to_dataset(&train, LabelScheme::Exact);
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());
    let mut text = String::from(
        "== Figure 7: real-world (induced faults) exact root cause, lab-trained model ==\n",
    );
    for (name, vps) in VP_SETS {
        let cm = eval_transfer(&model, &test, LabelScheme::Exact, Some(vps));
        text.push_str(&format!(
            "-- VP {:<9} accuracy {:.1}%  (n={})\n",
            name,
            cm.accuracy() * 100.0,
            cm.total()
        ));
        for c in 0..cm.classes.len() {
            let support: u64 = (0..cm.classes.len()).map(|p| cm.count(c, p)).sum();
            if support > 0 {
                text.push_str(&format!(
                    "   {:<28} precision {:.2}  recall {:.2}  n={}\n",
                    cm.classes[c],
                    cm.precision(c),
                    cm.recall(c),
                    support
                ));
            }
        }
    }
    text.push_str("\npaper: combined 82.9%  mobile 81.1%  router 80.5%  server 79.3%\n");
    emit_section("fig7", &text);
}
