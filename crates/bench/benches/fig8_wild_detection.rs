//! **Figure 8** — problem detection per VP set *in the wild* (natural
//! faults, mixed 3G/WiFi, router features removed): mobile, server,
//! and their combination, with the lab-trained model.
//!
//! The server VP only exists for sessions streamed from the private
//! server (1 in 4) — the uninstrumented CDN contributes none, exactly
//! like the paper's deployment.

use vqd_bench::{controlled_runs, emit_section, wild_runs};
use vqd_core::dataset::{to_dataset, LabeledRun};
use vqd_core::diagnoser::{Diagnoser, DiagnoserConfig};
use vqd_core::experiments::eval_transfer;
use vqd_core::scenario::LabelScheme;

fn main() {
    let train = controlled_runs();
    let wild = wild_runs();
    let test: Vec<LabeledRun> = wild.into_iter().map(|r| r.run).collect();
    let data = to_dataset(&train, LabelScheme::Existence);
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());
    let sets: [(&str, &[&str]); 3] = [
        ("mobile", &["mobile"]),
        ("server", &["server"]),
        ("combined", &["mobile", "server"]),
    ];
    let mut text = String::from(
        "== Figure 8: in-the-wild existence detection per VP set, lab-trained model ==\n",
    );
    for (name, vps) in sets {
        let cm = eval_transfer(&model, &test, LabelScheme::Existence, Some(vps));
        text.push_str(&format!(
            "-- VP {:<9} accuracy {:.1}%  (n={})\n",
            name,
            cm.accuracy() * 100.0,
            cm.total()
        ));
        for c in 0..cm.classes.len() {
            text.push_str(&format!(
                "   {:<8} precision {:.2}  recall {:.2}\n",
                cm.classes[c],
                cm.precision(c),
                cm.recall(c)
            ));
        }
    }
    text.push_str(
        "\npaper: good sessions identified with high accuracy; mobile > server; combined best\n",
    );
    emit_section("fig8", &text);
}
