//! **Figure 9** — can the *server* vantage point, with nothing but its
//! transport-layer view, infer client-side conditions in the wild?
//!
//! The paper compares the ground-truth distributions of mobile CPU
//! load (left) and RSSI (right) for sessions the server VP classified
//! as "mobile load" / "low RSSI" versus the rest: the flagged sessions
//! have markedly higher CPU / lower RSSI. We print quantiles of both
//! conditioned distributions.

use vqd_bench::{controlled_runs, emit_section, wild_runs};
use vqd_core::dataset::to_dataset;
use vqd_core::diagnoser::{Diagnoser, DiagnoserConfig};
use vqd_core::scenario::LabelScheme;
use vqd_video::QoeClass;

fn quantiles(mut xs: Vec<f64>) -> String {
    if xs.is_empty() {
        return "n=0".into();
    }
    xs.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| xs[((xs.len() - 1) as f64 * p) as usize];
    format!(
        "n={:<4} p10={:7.2} p25={:7.2} p50={:7.2} p75={:7.2} p90={:7.2}",
        xs.len(),
        q(0.1),
        q(0.25),
        q(0.5),
        q(0.75),
        q(0.9)
    )
}

fn main() {
    let train = controlled_runs();
    let wild = wild_runs();
    // The paper's §6.2.2 asks what the *server vantage point* predicts:
    // train the exact-problem model on the server's own columns.
    let data =
        to_dataset(&train, LabelScheme::Exact).select_features_by(|n| n.starts_with("server"));
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());

    let mut cpu_flagged = Vec::new();
    let mut cpu_rest = Vec::new();
    let mut rssi_flagged = Vec::new();
    let mut rssi_rest = Vec::new();
    for r in &wild {
        // Server view only, problematic sessions only (as in the paper).
        if r.run.truth.qoe == QoeClass::Good {
            continue;
        }
        let server_metrics: Vec<(String, f64)> = r
            .run
            .metrics
            .iter()
            .filter(|(n, _)| n.starts_with("server"))
            .cloned()
            .collect();
        if server_metrics.is_empty() {
            continue; // YouTube session: the server probe never saw it.
        }
        let d = model.diagnose(&server_metrics);
        if let Some(cpu) = r.cpu_truth() {
            if d.label.starts_with("mobile_load") {
                cpu_flagged.push(cpu);
            } else {
                cpu_rest.push(cpu);
            }
        }
        if let Some(rssi) = r.rssi_truth() {
            if d.label.starts_with("low_rssi") {
                rssi_flagged.push(rssi);
            } else {
                rssi_rest.push(rssi);
            }
        }
    }
    let mut text = String::from(
        "== Figure 9: server-VP inference of client-side conditions (wild, problematic) ==\n",
    );
    text.push_str("ground-truth mobile CPU utilisation:\n");
    text.push_str(&format!(
        "   predicted 'mobile load':  {}\n",
        quantiles(cpu_flagged)
    ));
    text.push_str(&format!(
        "   not predicted:            {}\n",
        quantiles(cpu_rest)
    ));
    text.push_str("ground-truth mobile RSSI (dBm, WiFi sessions):\n");
    text.push_str(&format!(
        "   predicted 'low RSSI':     {}\n",
        quantiles(rssi_flagged)
    ));
    text.push_str(&format!(
        "   not predicted:            {}\n",
        quantiles(rssi_rest)
    ));
    text.push_str(
        "\npaper shape: flagged sessions show far higher CPU / lower RSSI than the rest\n",
    );
    emit_section("fig9", &text);
}
