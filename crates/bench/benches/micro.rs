//! Criterion micro-benchmarks of the substrates: packet-level TCP
//! throughput, full video-session simulation, tstat observation, C4.5
//! training, FCBF selection and MOS scoring.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vqd_core::testbed::{run_controlled_session, SessionSpec, WanProfile};
use vqd_faults::FaultPlan;
use vqd_ml::dataset::Dataset;
use vqd_ml::dtree::C45Trainer;
use vqd_simnet::engine::{App, Ctl, Harness, TcpEvent};
use vqd_simnet::ids::HostId;
use vqd_simnet::link::LinkConfig;
use vqd_simnet::rng::SimRng;
use vqd_simnet::tcp::Side;
use vqd_simnet::time::SimTime;
use vqd_simnet::topology::TopologyBuilder;
use vqd_video::catalog::Catalog;

/// 1 MiB bulk transfer over the nominal DSL profile.
fn bench_tcp_transfer(c: &mut Criterion) {
    struct Fetch {
        a: HostId,
        b: HostId,
    }
    impl App for Fetch {
        fn start(&mut self, ctl: &mut Ctl) {
            let f = ctl.tcp_connect(self.a, self.b, 80);
            ctl.tcp_send(f, 200);
        }
        fn on_tcp(&mut self, ev: TcpEvent, ctl: &mut Ctl) {
            match ev {
                TcpEvent::DataAvailable { flow, side, .. } => {
                    ctl.tcp_read_at(flow, side, u64::MAX);
                    if side == Side::Server {
                        ctl.tcp_send_from(flow, Side::Server, 1 << 20);
                        ctl.tcp_close_from(flow, Side::Server);
                    }
                }
                TcpEvent::PeerFin { flow, side } => {
                    ctl.tcp_close_from(flow, side);
                }
                _ => {}
            }
        }
    }
    c.bench_function("tcp_1mib_over_dsl", |bench| {
        bench.iter(|| {
            let mut tb = TopologyBuilder::new();
            let a = tb.add_host("client");
            let b = tb.add_host("server");
            tb.add_duplex_link(a, b, LinkConfig::dsl_nominal());
            let mut sim = Harness::new(tb.build(), 7);
            sim.add_app(Box::new(Fetch { a, b }));
            sim.run_until(SimTime::from_secs(60));
            black_box(sim.net.flow_stats(vqd_simnet::ids::FlowId(0)))
        })
    });
}

/// One full controlled video session (topology + faults + probes).
fn bench_session(c: &mut Criterion) {
    let catalog = Catalog::top100(42);
    let spec = SessionSpec {
        seed: 5,
        fault: FaultPlan::none(),
        background: 0.4,
        wan: WanProfile::Dsl,
    };
    let mut group = c.benchmark_group("session");
    group.sample_size(10);
    group.bench_function("controlled_video_session", |bench| {
        bench.iter(|| black_box(run_controlled_session(&spec, &catalog)))
    });
    group.finish();
}

fn synthetic_dataset(n: usize, nf: usize) -> Dataset {
    let mut rng = SimRng::seed_from_u64(3);
    let names: Vec<String> = (0..nf).map(|i| format!("f{i}")).collect();
    let mut d = Dataset::new(names, vec!["a".into(), "b".into(), "c".into()]);
    for _ in 0..n {
        let cl = rng.index(3);
        let mut row: Vec<f64> = (0..nf - 2).map(|_| rng.normal(0.0, 1.0)).collect();
        row.push(cl as f64 * 2.0 + rng.normal(0.0, 0.7));
        row.push(-(cl as f64) + rng.normal(0.0, 0.9));
        d.push(row, cl);
    }
    d
}

fn bench_ml(c: &mut Criterion) {
    let d = synthetic_dataset(1500, 40);
    let rows: Vec<usize> = (0..d.len()).collect();
    c.bench_function("c45_train_1500x40", |b| {
        b.iter(|| black_box(C45Trainer::default().fit(&d, &rows)))
    });
    c.bench_function("fcbf_1500x40", |b| {
        b.iter(|| black_box(vqd_features::fcbf(&d, 0.01)))
    });
    let tree = C45Trainer::default().fit(&d, &rows);
    c.bench_function("c45_predict", |b| {
        b.iter(|| {
            for row in d.x.iter().take(100) {
                black_box(tree.predict(row));
            }
        })
    });
}

/// Before/after comparison of the C4.5 training engine on the
/// acceptance workload (2000 rows × 50 features): `columnar` is the
/// pre-sorted engine behind [`C45Trainer::fit`], `seed_reference` the
/// original per-node collect-and-sort path. Both produce identical
/// trees; only the time differs.
fn bench_ml_train_engine(c: &mut Criterion) {
    let d = synthetic_dataset(2000, 50);
    let rows: Vec<usize> = (0..d.len()).collect();
    let trainer = C45Trainer::default();
    debug_assert_eq!(
        trainer.fit(&d, &rows).serialize(),
        trainer.fit_seed_reference(&d, &rows).serialize()
    );
    let mut group = c.benchmark_group("c45_train_2000x50");
    group.sample_size(10);
    group.bench_function("columnar", |b| b.iter(|| black_box(trainer.fit(&d, &rows))));
    group.bench_function("seed_reference", |b| {
        b.iter(|| black_box(trainer.fit_seed_reference(&d, &rows)))
    });
    group.finish();
}

fn bench_tstat(c: &mut Criterion) {
    use vqd_probes::FlowAnalyzer;
    use vqd_simnet::ids::FlowId;
    use vqd_simnet::packet::{TcpFlags, TcpHdr};
    let hdrs: Vec<TcpHdr> = (0..10_000u64)
        .map(|i| TcpHdr {
            flow: FlowId(0),
            from_initiator: false,
            dport: 80,
            sport: 40000,
            seq: i * 1460,
            ack: 0,
            len: 1460,
            flags: TcpFlags::DATA,
            wnd: 65535,
            mss: 1460,
            tsval: SimTime(i * 1_000_000),
            tsecr: SimTime::ZERO,
            is_retx: false,
        })
        .collect();
    c.bench_function("tstat_observe_10k_pkts", |b| {
        b.iter(|| {
            let mut a = FlowAnalyzer::default();
            for (i, h) in hdrs.iter().enumerate() {
                a.observe(SimTime(i as u64 * 1_000_000), h);
            }
            black_box(a.duration_s())
        })
    });
}

fn bench_mos(c: &mut Criterion) {
    use vqd_simnet::time::{SimDuration, SimTime};
    use vqd_video::session::SessionQoe;
    let mut q = SessionQoe {
        started_at: SimTime::ZERO,
        playback_at: Some(SimTime::from_secs(2)),
        ended_at: Some(SimTime::from_secs(60)),
        media_duration_s: 55.0,
        bitrate_bps: 2_000_000,
        played_s: 55.0,
        completed: true,
        ..Default::default()
    };
    q.stalls
        .push((SimTime::from_secs(20), SimDuration::from_secs(3)));
    c.bench_function("mos_score", |b| {
        b.iter(|| black_box(vqd_video::mos_score(&q)))
    });
}

criterion_group!(
    benches,
    bench_tcp_transfer,
    bench_session,
    bench_ml,
    bench_ml_train_engine,
    bench_tstat,
    bench_mos
);
criterion_main!(benches);
