//! **Section 5.2** — problem *location* detection (mobile / LAN / WAN
//! × severity) per vantage point, controlled environment.
//!
//! Paper highlights: the server VP localises LAN problems almost as
//! well as the router (shared top features: RTT, first packet arrival
//! delay, retransmissions); VP pairs add little.

use vqd_bench::{controlled_runs, emit_section};
use vqd_core::diagnoser::DiagnoserConfig;
use vqd_core::experiments::{eval_by_vp, render_vp_evals};
use vqd_core::scenario::LabelScheme;

fn main() {
    let runs = controlled_runs();
    let evals = eval_by_vp(&runs, LabelScheme::Location, &DiagnoserConfig::default(), 1);
    let text = render_vp_evals(
        "Section 5.2: problem-location detection (controlled, 10-fold CV)",
        &evals,
    );
    emit_section("sec52", &text);
}
