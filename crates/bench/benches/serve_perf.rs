//! **Streaming-daemon perf harness** — `StreamServer` ingest
//! throughput and flush latency, plus the serve/offline equality gate,
//! persisted to `BENCH_serve.json`.
//!
//! Trains an exact-resolution diagnoser, converts the corpus into the
//! per-sample probe-event stream `vqd serve` ingests, shuffles it, and
//! replays it through the daemon at one shard and at full parallelism.
//! The bench **fails hard** unless every streamed diagnosis is
//! bit-identical to the offline `diagnose_batch` answer for the same
//! session — the invariant CI's serve-smoke job also checks end to end
//! through the binary.
//!
//! Reported: events/sec through the daemon (ingest to last flush),
//! sessions/sec, and flush-batch latency p50/p99 from the daemon's own
//! `LogHistogram` — plus, since the durability layer landed, the same
//! ingest pass with the write-ahead journal enabled (overhead ratio vs
//! plain, budget 15%) and cold-recovery replay throughput (journal
//! suffix back through the shards).
//!
//! Knobs: `VQD_PERF_SMOKE=1` (small corpus, fewer repeats),
//! `VQD_SESSIONS` (corpus size), `VQD_BENCH_OUT` (output path),
//! `VQD_NO_OBS=1` (bypass the metrics registry during timing).

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use vqd_bench::emit_section;
use vqd_core::dataset::{generate_corpus, to_dataset, CorpusConfig};
use vqd_core::diagnoser::{Diagnoser, DiagnoserConfig, Diagnosis};
use vqd_core::scenario::LabelScheme;
use vqd_core::stream::ops::{OpsServer, Readiness};
use vqd_core::stream::{
    corpus_to_events, recover_state, Durability, FlushedSession, JournalSpec, ServeConfig,
    ServeReport, StreamServer,
};
use vqd_probes::event::ProbeEvent;
use vqd_video::catalog::Catalog;

/// Exit with a diff report unless two diagnoses are bit-identical.
fn assert_same(a: &Diagnosis, b: &Diagnosis, key: &str, what: &str) {
    let bits = |v: f64| v.to_bits();
    let ok = a.label == b.label
        && a.class == b.class
        && a.dist.len() == b.dist.len()
        && a.dist
            .iter()
            .zip(&b.dist)
            .all(|(x, y)| bits(*x) == bits(*y))
        && bits(a.quality.feature_coverage) == bits(b.quality.feature_coverage)
        && bits(a.quality.missing_descent) == bits(b.quality.missing_descent)
        && bits(a.quality.confidence) == bits(b.quality.confidence)
        && a.quality.silent_vps == b.quality.silent_vps
        && a.resolution == b.resolution
        && a.fallback_label == b.fallback_label;
    if !ok {
        eprintln!(
            "[serve_perf] EQUALITY REGRESSION ({what}, session {key}):\n  a: {a:?}\n  b: {b:?}"
        );
        std::process::exit(1);
    }
}

/// Deterministic xorshift64* Fisher–Yates, same scheme as `vqd events
/// --shuffle`.
fn shuffle(items: &mut [ProbeEvent], seed: u64) {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Replay `events` through a daemon; return the flushes and report.
fn serve(
    model: &Arc<Diagnoser>,
    cfg: ServeConfig,
    events: &[ProbeEvent],
) -> (Vec<FlushedSession>, ServeReport) {
    let got: Arc<Mutex<Vec<FlushedSession>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    let mut server = StreamServer::new(Arc::clone(model), cfg, move |fs| {
        sink.lock().unwrap_or_else(PoisonError::into_inner).push(fs);
    });
    for ev in events {
        if let Err(e) = server.push_event(ev.clone()) {
            eprintln!("[serve_perf] push failed without durability: {e}");
            std::process::exit(1);
        }
    }
    let report = match server.finish() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[serve_perf] finish failed without durability: {e}");
            std::process::exit(1);
        }
    };
    let got = Arc::try_unwrap(got)
        .unwrap_or_else(|_| panic!("sink still shared after finish"))
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    (got, report)
}

/// Replay `events` through a daemon with the write-ahead journal on,
/// into a fresh journal directory. Returns wall seconds and the dir
/// (left populated so the caller can time recovery replay from it).
fn serve_journaled(
    model: &Arc<Diagnoser>,
    cfg: ServeConfig,
    events: &[ProbeEvent],
    dir: &Path,
) -> f64 {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!(
            "[serve_perf] cannot create journal dir {}: {e}",
            dir.display()
        );
        std::process::exit(1);
    });
    let dur = Durability {
        journal: Some(JournalSpec::new(dir.to_path_buf())),
        snapshots: None,
    };
    let bail = |what: &str, e: vqd_core::error::VqdError| -> ! {
        eprintln!("[serve_perf] journaled {what} failed: {e}");
        std::process::exit(1);
    };
    let t0 = Instant::now();
    let mut server = match StreamServer::start(Arc::clone(model), cfg, dur, None, |_| {}) {
        Ok(s) => s,
        Err(e) => bail("start", e),
    };
    for ev in events {
        if let Err(e) = server.push_event(ev.clone()) {
            bail("push", e);
        }
    }
    if let Err(e) = server.finish() {
        bail("finish", e);
    }
    t0.elapsed().as_secs_f64()
}

/// Cold recovery from a populated journal dir: scan + full suffix
/// replay back through the shards to final flush. Returns wall seconds
/// and the number of events replayed.
fn recover_replay(model: &Arc<Diagnoser>, cfg: ServeConfig, dir: &Path) -> (f64, u64) {
    let dur = Durability {
        journal: Some(JournalSpec::new(dir.to_path_buf())),
        snapshots: None,
    };
    let t0 = Instant::now();
    let recovered = match recover_state(&dur, HashSet::new()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[serve_perf] recover_state failed: {e}");
            std::process::exit(1);
        }
    };
    let server = match StreamServer::start(Arc::clone(model), cfg, dur, Some(recovered), |_| {}) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[serve_perf] recovery start failed: {e}");
            std::process::exit(1);
        }
    };
    let report = match server.finish() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[serve_perf] recovery finish failed: {e}");
            std::process::exit(1);
        }
    };
    (t0.elapsed().as_secs_f64(), report.replayed)
}

fn main() {
    let smoke = std::env::var("VQD_PERF_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let sessions = std::env::var("VQD_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 24 } else { 96 });
    let no_obs = std::env::var("VQD_NO_OBS")
        .map(|v| v == "1")
        .unwrap_or(false);
    if no_obs {
        vqd_obs::disable();
    } else {
        vqd_obs::enable();
    }

    eprintln!("[serve_perf] generating {sessions}-session corpus...");
    let cfg = CorpusConfig {
        sessions,
        seed: 2015,
        ..Default::default()
    };
    let corpus = generate_corpus(&cfg, &Catalog::top100(vqd_bench::CATALOG_SEED));
    eprintln!("[serve_perf] training exact-resolution model...");
    let model = Arc::new(Diagnoser::train(
        &to_dataset(&corpus, LabelScheme::Exact),
        &DiagnoserConfig::default(),
    ));

    let mut events = corpus_to_events(&corpus);
    shuffle(&mut events, 0x5EEDCAFE);
    let n_events = events.len();
    let detected_cores = vqd_bench::detected_cores();
    let threads = vqd_bench::parallel_workers();

    // ---- Equality gate (untimed; doubles as warmup). -------------
    eprintln!(
        "[serve_perf] equality gate: {} sessions / {n_events} shuffled events at shards 1 and {threads}...",
        corpus.len()
    );
    let views: Vec<&Vec<(String, f64)>> = corpus.iter().map(|r| &r.metrics).collect();
    let offline = model.diagnose_batch(&views, 1);
    let want: HashMap<String, Diagnosis> = (0..corpus.len())
        .map(|i| (i.to_string(), offline.get(i)))
        .collect();
    for shards in [1usize, threads] {
        let (got, report) = serve(
            &model,
            ServeConfig {
                shards,
                flush_batch: 8,
                ..ServeConfig::default()
            },
            &events,
        );
        if got.len() != corpus.len() || report.sessions as usize != corpus.len() {
            eprintln!(
                "[serve_perf] SESSION COUNT REGRESSION (shards {shards}): {} flushed, {} expected",
                got.len(),
                corpus.len()
            );
            std::process::exit(1);
        }
        for fs in &got {
            let dx = want.get(&fs.session).unwrap_or_else(|| {
                eprintln!("[serve_perf] unknown session {:?}", fs.session);
                std::process::exit(1);
            });
            assert_same(dx, &fs.diagnosis, &fs.session, &format!("shards {shards}"));
        }
    }

    // ---- Timed passes: best-of-N daemon replays. -----------------
    let reps = if smoke { 4 } else { 5 };
    let time_serve = |shards: usize| {
        let mut best = f64::INFINITY;
        let mut last_report = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let (_, report) = serve(
                &model,
                ServeConfig {
                    shards,
                    flush_batch: 8,
                    ..ServeConfig::default()
                },
                &events,
            );
            best = best.min(t0.elapsed().as_secs_f64());
            last_report = Some(report);
        }
        (best, last_report)
    };
    eprintln!("[serve_perf] timing daemon (1 shard, {reps} passes)...");
    let (wall1, report1) = time_serve(1);
    eprintln!("[serve_perf] timing daemon ({threads} shards, {reps} passes)...");
    let (wallp, reportp) = time_serve(threads);

    // ---- Durability passes: journal overhead + recovery replay. --
    // Plain and journaled passes interleave so CPU-frequency and
    // writeback drift hits both alike; the overhead gate compares
    // paired best-of times, not measurements taken minutes apart.
    let scratch = std::env::temp_dir().join(format!("vqd-serve-perf-{}", std::process::id()));
    eprintln!(
        "[serve_perf] timing journaled ingest ({threads} shards, {reps} interleaved pass pairs)..."
    );
    let mut wallj = f64::INFINITY;
    let mut best_ratio = f64::INFINITY;
    let mut last_jdir = None;
    for rep in 0..reps {
        let t0 = Instant::now();
        let _ = serve(
            &model,
            ServeConfig {
                shards: threads,
                flush_batch: 8,
                ..ServeConfig::default()
            },
            &events,
        );
        let tp = t0.elapsed().as_secs_f64();
        let jdir = scratch.join(format!("journal-{rep}"));
        let tj = serve_journaled(
            &model,
            ServeConfig {
                shards: threads,
                flush_batch: 8,
                ..ServeConfig::default()
            },
            &events,
            &jdir,
        );
        wallj = wallj.min(tj);
        best_ratio = best_ratio.min(tj / tp.max(1e-9));
        last_jdir = Some(jdir);
    }
    let jdir = last_jdir.unwrap_or_else(|| {
        eprintln!("[serve_perf] no journaled pass ran");
        std::process::exit(1);
    });
    eprintln!("[serve_perf] timing cold recovery replay ({reps} passes)...");
    let mut wallr = f64::INFINITY;
    let mut replayed = 0u64;
    for _ in 0..reps {
        let (w, n) = recover_replay(
            &model,
            ServeConfig {
                shards: threads,
                flush_batch: 8,
                ..ServeConfig::default()
            },
            &jdir,
        );
        wallr = wallr.min(w);
        replayed = n;
    }
    if replayed as usize != n_events {
        eprintln!(
            "[serve_perf] RECOVERY REPLAY REGRESSION: replayed {replayed} of {n_events} journaled events"
        );
        std::process::exit(1);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let epsj = n_events as f64 / wallj;
    let epsr = n_events as f64 / wallr;
    let overhead_pct = (best_ratio - 1.0) * 100.0;
    if overhead_pct > 15.0 {
        eprintln!(
            "[serve_perf] WARNING: journal overhead {overhead_pct:.1}% exceeds the 15% budget"
        );
    }

    // ---- Observability passes (same paired-interleave methodology
    // as the journal budget): audit-on ingest, then ingest while a
    // scraper hammers /metrics. Each pair runs plain then instrumented
    // back to back, and the overhead gate compares paired bests.
    eprintln!(
        "[serve_perf] timing audit-on ingest ({threads} shards, {reps} interleaved pass pairs)..."
    );
    let mut walla = f64::INFINITY;
    let mut audit_ratio = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let _ = serve(
            &model,
            ServeConfig {
                shards: threads,
                flush_batch: 8,
                ..ServeConfig::default()
            },
            &events,
        );
        let tp = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let (got, _) = serve(
            &model,
            ServeConfig {
                shards: threads,
                flush_batch: 8,
                audit: true,
                ..ServeConfig::default()
            },
            &events,
        );
        let ta = t0.elapsed().as_secs_f64();
        if got.iter().any(|fs| fs.audit.is_none()) {
            eprintln!("[serve_perf] AUDIT REGRESSION: flushed session without a decision path");
            std::process::exit(1);
        }
        walla = walla.min(ta);
        audit_ratio = audit_ratio.min(ta / tp.max(1e-9));
    }
    let epsa = n_events as f64 / walla;
    let audit_pct = (audit_ratio - 1.0) * 100.0;
    if audit_pct > 10.0 {
        eprintln!("[serve_perf] WARNING: audit overhead {audit_pct:.1}% exceeds the 10% budget");
    }

    eprintln!(
        "[serve_perf] timing ingest under /metrics scrape ({threads} shards, {reps} interleaved pass pairs)..."
    );
    let readiness = Arc::new(Readiness::default());
    let ops = match OpsServer::bind(
        "127.0.0.1:0",
        Arc::clone(&readiness),
        Duration::from_millis(50),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[serve_perf] ops bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = ops.local_addr();
    let scraping = Arc::new(AtomicBool::new(false));
    let stop_scraper = Arc::new(AtomicBool::new(false));
    let (sc, st) = (Arc::clone(&scraping), Arc::clone(&stop_scraper));
    let scraper = std::thread::spawn(move || {
        use std::io::{Read as _, Write as _};
        let mut scrapes = 0u64;
        while !st.load(Ordering::SeqCst) {
            if !sc.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            if let Ok(mut s) = std::net::TcpStream::connect(addr) {
                let _ = write!(s, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
                let mut body = String::new();
                let _ = s.read_to_string(&mut body);
                scrapes += 1;
            }
        }
        scrapes
    });
    let mut walls = f64::INFINITY;
    let mut scrape_ratio = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let _ = serve(
            &model,
            ServeConfig {
                shards: threads,
                flush_batch: 8,
                ..ServeConfig::default()
            },
            &events,
        );
        let tp = t0.elapsed().as_secs_f64();
        scraping.store(true, Ordering::SeqCst);
        let t0 = Instant::now();
        let _ = serve(
            &model,
            ServeConfig {
                shards: threads,
                flush_batch: 8,
                ..ServeConfig::default()
            },
            &events,
        );
        let ts = t0.elapsed().as_secs_f64();
        scraping.store(false, Ordering::SeqCst);
        walls = walls.min(ts);
        scrape_ratio = scrape_ratio.min(ts / tp.max(1e-9));
    }
    stop_scraper.store(true, Ordering::SeqCst);
    let scrapes = scraper.join().unwrap_or(0);
    ops.shutdown();
    let epss = n_events as f64 / walls;
    let scrape_pct = (scrape_ratio - 1.0) * 100.0;
    if scrape_pct > 10.0 {
        eprintln!(
            "[serve_perf] WARNING: scrape-under-load overhead {scrape_pct:.1}% exceeds the 10% budget"
        );
    }
    if scrapes == 0 {
        eprintln!("[serve_perf] SCRAPE REGRESSION: scraper completed zero /metrics reads");
        std::process::exit(1);
    }

    let eps1 = n_events as f64 / wall1;
    let epsp = n_events as f64 / wallp;
    let sps1 = corpus.len() as f64 / wall1;
    let spsp = corpus.len() as f64 / wallp;
    let flush_pcts = |r: &Option<ServeReport>| {
        r.as_ref()
            .map(|r| r.flush_ms.percentiles())
            .unwrap_or((0.0, 0.0, 0.0))
    };
    let (f1_p50, _, f1_p99) = flush_pcts(&report1);
    let (fp_p50, _, fp_p99) = flush_pcts(&reportp);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"corpus_sessions\": {},\n", corpus.len()));
    json.push_str(&format!("  \"events\": {n_events},\n"));
    json.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"obs_recording\": {},\n", !no_obs));
    json.push_str(&format!(
        "  \"serve_1shard\": {{\"events_per_sec\": {eps1:.0}, \"sessions_per_sec\": {sps1:.0}, \"flush_p50_ms\": {f1_p50:.3}, \"flush_p99_ms\": {f1_p99:.3}}},\n"
    ));
    json.push_str(&format!(
        "  \"serve_parallel\": {{\"shards\": {threads}, \"detected_cores\": {detected_cores}, \"events_per_sec\": {epsp:.0}, \"sessions_per_sec\": {spsp:.0}, \"flush_p50_ms\": {fp_p50:.3}, \"flush_p99_ms\": {fp_p99:.3}}},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_parallel_vs_1shard\": {:.2},\n",
        epsp / eps1.max(1e-9)
    ));
    json.push_str(&format!(
        "  \"serve_journaled\": {{\"shards\": {threads}, \"events_per_sec\": {epsj:.0}, \"overhead_vs_plain_pct\": {overhead_pct:.1}}},\n"
    ));
    json.push_str(&format!(
        "  \"recovery_replay\": {{\"shards\": {threads}, \"events_per_sec\": {epsr:.0}, \"events_replayed\": {replayed}}},\n"
    ));
    json.push_str(&format!(
        "  \"serve_audit\": {{\"shards\": {threads}, \"events_per_sec\": {epsa:.0}, \"overhead_vs_plain_pct\": {audit_pct:.1}}},\n"
    ));
    json.push_str(&format!(
        "  \"serve_scraped\": {{\"shards\": {threads}, \"events_per_sec\": {epss:.0}, \"overhead_vs_plain_pct\": {scrape_pct:.1}, \"scrapes\": {scrapes}}},\n"
    ));
    json.push_str(
        "  \"equality\": \"streamed diagnosis == offline diagnose_batch, bitwise, shards 1 and parallel, shuffled arrival\"\n",
    );
    json.push_str("}\n");

    let out = std::env::var("VQD_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")));
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("[serve_perf] cannot write {out}: {e}");
        std::process::exit(1);
    }

    let text = format!(
        "serve perf ({} sessions, {n_events} shuffled events):\n  1 shard:  {eps1:.0} events/s, {sps1:.0} sessions/s, flush p50 {f1_p50:.2} ms, p99 {f1_p99:.2} ms\n  {threads} shards: {epsp:.0} events/s, {spsp:.0} sessions/s, flush p50 {fp_p50:.2} ms, p99 {fp_p99:.2} ms ({:.2}x)\n  journaled: {epsj:.0} events/s ({overhead_pct:+.1}% vs plain, budget 15%)\n  recovery replay: {epsr:.0} events/s ({replayed} events, cold journal scan to final flush)\n  audit on: {epsa:.0} events/s ({audit_pct:+.1}% vs plain, budget 10%)\n  under scrape: {epss:.0} events/s ({scrape_pct:+.1}% vs plain, budget 10%, {scrapes} scrapes)\n  streamed == offline batch, bitwise (equality gate passed)\n",
        corpus.len(),
        epsp / eps1,
    );
    emit_section("serve_perf", &text);
}
