//! **Perf harness** — simulator throughput and scheduler differential
//! check, persisted to `BENCH_simnet.json`.
//!
//! Generates the controlled corpus on both the timer-wheel scheduler
//! (the production fast path) and the binary-heap oracle — and:
//!
//! 1. **fails hard** if the corpora are not byte-identical (the
//!    determinism regression gate used by CI's perf-smoke job), and
//! 2. records sessions/sec, events/sec and p50/p95 per-session wall
//!    time for both engines in `BENCH_simnet.json` at the repo root.
//!
//! Timing is order-neutral: an untimed warmup pass on each engine
//! first (page faults, lazy allocation, CPU frequency ramp), then two
//! timed passes per engine interleaved ABBA (wheel, heap, heap,
//! wheel) so linear drift cancels instead of penalising whichever
//! engine happens to run first. An earlier revision timed a single
//! cold wheel pass against a single warm heap pass and misreported
//! the wheel as ~10% slower; the ABBA numbers show it ahead.
//!
//! Knobs:
//!
//! * `VQD_PERF_SMOKE=1` — short mode for CI (40 sessions; timings are
//!   then indicative only, the determinism check is the point),
//! * `VQD_SESSIONS` — explicit session count (default 120),
//! * `VQD_BASELINE_SPS` / `VQD_BASELINE_COMMIT` — sessions/sec of a
//!   reference build measured on the same host, recorded verbatim so
//!   the JSON carries the speedup it was generated against,
//! * `VQD_BENCH_OUT` — output path override (CI artifact location).

use std::time::Instant;

use vqd_bench::emit_section;
use vqd_core::dataset::{corpus_to_text, generate_corpus_with_stats, CorpusConfig, CorpusGenStats};
use vqd_simnet::sched::{set_default_scheduler, SchedulerKind};
use vqd_video::catalog::Catalog;

/// FNV-1a 64-bit fingerprint of a corpus serialisation.
fn fingerprint(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn run(
    kind: SchedulerKind,
    cfg: &CorpusConfig,
) -> (u64, usize, CorpusGenStats, vqd_obs::Snapshot, f64) {
    set_default_scheduler(kind);
    // Fresh registry per engine so wheel and heap report their own
    // histograms (spans from earlier runs are dropped too).
    vqd_obs::reset();
    let t0 = Instant::now();
    let (runs, stats) = generate_corpus_with_stats(cfg, &Catalog::top100(vqd_bench::CATALOG_SEED));
    let wall = t0.elapsed().as_secs_f64();
    let snap = vqd_obs::snapshot();
    let text = corpus_to_text(&runs);
    (fingerprint(&text), text.len(), stats, snap, wall)
}

/// Merge two timed passes of one engine: totals accumulate, rates are
/// recomputed over the combined wall time, percentiles come from the
/// warmer second pass (the caller pairs this with that pass's
/// histogram snapshot).
fn combine(a: &CorpusGenStats, b: &CorpusGenStats) -> CorpusGenStats {
    let wall = a.wall_s + b.wall_s;
    CorpusGenStats {
        sessions: a.sessions,
        wall_s: wall,
        sessions_per_sec: (a.sessions + b.sessions) as f64 / wall,
        events: a.events,
        events_per_sec: (a.events + b.events) as f64 / wall,
        p50_session_ms: b.p50_session_ms,
        p95_session_ms: b.p95_session_ms,
        p99_session_ms: b.p99_session_ms,
    }
}

/// Session wall-time percentiles for one engine: from the registry's
/// `core.session.wall_ms` histogram when recording is on, otherwise
/// from the generator's own stats (same `LogHistogram` math).
fn session_percentiles(s: &CorpusGenStats, snap: &vqd_obs::Snapshot) -> (f64, f64, f64) {
    snap.hist("core.session.wall_ms")
        .map(|h| h.percentiles())
        .unwrap_or((s.p50_session_ms, s.p95_session_ms, s.p99_session_ms))
}

fn stats_json(s: &CorpusGenStats, snap: &vqd_obs::Snapshot) -> String {
    let (p50, p95, p99) = session_percentiles(s, snap);
    format!(
        "{{\"sessions_per_sec\": {:.2}, \"events_per_sec\": {:.0}, \"events\": {}, \"wall_s\": {:.3}, \"p50_session_ms\": {p50:.2}, \"p95_session_ms\": {p95:.2}, \"p99_session_ms\": {p99:.2}}}",
        s.sessions_per_sec, s.events_per_sec, s.events, s.wall_s
    )
}

fn main() {
    let smoke = std::env::var("VQD_PERF_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let sessions = std::env::var("VQD_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 40 } else { 120 });
    let cfg = CorpusConfig {
        sessions,
        seed: 2015,
        ..Default::default()
    };

    // Record through the metrics registry unless VQD_NO_OBS=1 (the
    // no-op-recorder configuration used for overhead measurements).
    let no_obs = std::env::var("VQD_NO_OBS")
        .map(|v| v == "1")
        .unwrap_or(false);
    if no_obs {
        vqd_obs::disable();
    } else {
        vqd_obs::enable();
    }

    // Untimed warmup on each engine so neither timed pass pays
    // first-run costs.
    let warm_cfg = CorpusConfig {
        sessions: sessions.min(12),
        seed: cfg.seed,
        ..Default::default()
    };
    eprintln!(
        "[simnet_perf] warmup ({} sessions per engine)...",
        warm_cfg.sessions
    );
    run(SchedulerKind::TimerWheel, &warm_cfg);
    run(SchedulerKind::BinaryHeap, &warm_cfg);

    // Timed ABBA passes: wheel, heap, heap, wheel.
    eprintln!("[simnet_perf] {sessions} sessions on the timer wheel (pass 1)...");
    let (fp_w1, len_w1, w1, _snap_w1, _) = run(SchedulerKind::TimerWheel, &cfg);
    eprintln!("[simnet_perf] {sessions} sessions on the heap oracle (pass 1)...");
    let (fp_h1, len_h1, h1, _snap_h1, _) = run(SchedulerKind::BinaryHeap, &cfg);
    eprintln!("[simnet_perf] {sessions} sessions on the heap oracle (pass 2)...");
    let (fp_h2, len_h2, h2, snap_heap, _) = run(SchedulerKind::BinaryHeap, &cfg);
    eprintln!("[simnet_perf] {sessions} sessions on the timer wheel (pass 2)...");
    let (fp_w2, len_w2, w2, snap_wheel, _) = run(SchedulerKind::TimerWheel, &cfg);
    set_default_scheduler(SchedulerKind::TimerWheel);

    // The determinism gate: every pass of either engine must serialise
    // the exact same corpus. A mismatch is a scheduler-ordering bug,
    // never noise.
    let (fp_wheel, len_wheel) = (fp_w1, len_w1);
    if [fp_h1, fp_h2, fp_w2] != [fp_wheel; 3] || [len_h1, len_h2, len_w2] != [len_wheel; 3] {
        eprintln!(
            "[simnet_perf] DETERMINISM REGRESSION: wheel {fp_w1:#018x}/{fp_w2:#018x} ({len_w1}/{len_w2} B) != heap {fp_h1:#018x}/{fp_h2:#018x} ({len_h1}/{len_h2} B)"
        );
        std::process::exit(1);
    }
    let wheel = combine(&w1, &w2);
    let heap = combine(&h1, &h2);

    let baseline_sps: Option<f64> = std::env::var("VQD_BASELINE_SPS")
        .ok()
        .and_then(|v| v.parse().ok());
    let baseline_commit = std::env::var("VQD_BASELINE_COMMIT").unwrap_or_else(|_| "unknown".into());

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"sessions\": {sessions},\n"));
    json.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!(
        "  \"corpus_fingerprint\": \"{fp_wheel:#018x}\",\n"
    ));
    json.push_str(&format!("  \"obs_recording\": {},\n", !no_obs));
    json.push_str("  \"timing\": \"warmup + 2 ABBA-interleaved passes per engine\",\n");
    json.push_str(&format!(
        "  \"wheel\": {},\n",
        stats_json(&wheel, &snap_wheel)
    ));
    json.push_str(&format!("  \"heap\": {},\n", stats_json(&heap, &snap_heap)));
    json.push_str(&format!(
        "  \"wheel_vs_heap\": {:.3}",
        wheel.sessions_per_sec / heap.sessions_per_sec
    ));
    if let Some(b) = baseline_sps {
        json.push_str(&format!(
            ",\n  \"baseline\": {{\"commit\": \"{baseline_commit}\", \"sessions_per_sec\": {b:.2}, \"note\": \"pre-PR build, same host, interleaved timing\"}},\n  \"speedup_vs_baseline\": {:.3}",
            wheel.sessions_per_sec / b
        ));
    }
    json.push_str("\n}\n");

    let out = std::env::var("VQD_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_simnet.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write BENCH_simnet.json");

    let (w50, w95, w99) = session_percentiles(&wheel, &snap_wheel);
    let (h50, h95, h99) = session_percentiles(&heap, &snap_heap);
    let text = format!(
        "simnet perf ({sessions} sessions, seed {}):\n  wheel: {:.1} sessions/sec, {:.2} M events/sec, p50 {w50:.0} ms, p95 {w95:.0} ms, p99 {w99:.0} ms\n  heap:  {:.1} sessions/sec, {:.2} M events/sec, p50 {h50:.0} ms, p95 {h95:.0} ms, p99 {h99:.0} ms\n  wheel/heap corpora byte-identical (fingerprint {:#018x})\n",
        cfg.seed,
        wheel.sessions_per_sec,
        wheel.events_per_sec / 1e6,
        heap.sessions_per_sec,
        heap.events_per_sec / 1e6,
        fp_wheel,
    );
    emit_section("simnet_perf", &text);
}
