//! **Table 1** — the features surviving Feature Selection (FCBF) on
//! the combined, constructed feature space. The paper reduces 354 raw
//! metrics to 22; the exact surviving set depends on the metric
//! inventory, but it should be dominated by interface utilisations,
//! the mobile hardware metrics (CPU, free memory) and the RSSI.

use vqd_bench::{controlled_runs, emit_section};
use vqd_core::dataset::to_dataset;
use vqd_core::experiments::table1;
use vqd_core::scenario::LabelScheme;

fn main() {
    let runs = controlled_runs();
    let raw = to_dataset(&runs, LabelScheme::Exact);
    let sel = table1(&runs);
    let mut text = String::from("== Table 1: features after Feature Selection (FCBF) ==\n");
    text.push_str(&format!(
        "raw features: {}   selected: {}   (paper: 354 -> 22)\n\n",
        raw.n_features(),
        sel.names.len()
    ));
    for (name, su) in sel.names.iter().zip(&sel.su) {
        text.push_str(&format!("   {name:<48} SU={su:.3}\n"));
    }
    emit_section("table1", &text);
}
