//! **Table 4** — the 3 features with the highest predictive power for
//! each fault, per vantage point (M/R/S/C).
//!
//! Paper highlights to compare against: CPU+memory top for mobile load
//! at the mobile VP (router/server fall back to RTT); RSSI top for
//! wireless problems at the mobile VP; RTT / first-packet-arrival /
//! utilisation for congestion and shaping.

use vqd_bench::{controlled_runs, emit_section};
use vqd_core::experiments::table4;

fn main() {
    let runs = controlled_runs();
    let cells = table4(&runs, 3);
    let mut text = String::from("== Table 4: top features per fault per vantage point ==\n");
    let mut last_fault = String::new();
    for c in &cells {
        if c.fault != last_fault {
            text.push_str(&format!("\n-- {} --\n", c.fault));
            last_fault = c.fault.clone();
        }
        let tops: Vec<String> = c
            .top
            .iter()
            .map(|(n, su)| format!("{n} ({su:.2})"))
            .collect();
        text.push_str(&format!("   {:<9} {}\n", c.vp, tops.join("  |  ")));
    }
    emit_section("table4", &text);
}
