//! **Table 5** — predicted root causes for the in-the-wild dataset
//! (mobile + server vantage points, lab-trained exact-problem model).
//!
//! Paper reference counts (3495 sessions): good 2499, WAN congestion
//! 163 mild / 166 severe, LAN congestion 18 / 446, mobile load
//! 2 / 132, low RSSI 26 / 0, WiFi interference 43 / 0 — local-network
//! problems dominate.

use std::collections::BTreeMap;

use vqd_bench::{controlled_runs, emit_section, wild_runs};
use vqd_core::dataset::to_dataset;
use vqd_core::diagnoser::{Diagnoser, DiagnoserConfig};
use vqd_core::scenario::LabelScheme;

fn main() {
    let train = controlled_runs();
    let wild = wild_runs();
    let data = to_dataset(&train, LabelScheme::Exact);
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for r in &wild {
        let d = model.diagnose(&r.run.metrics);
        *counts.entry(d.label).or_insert(0) += 1;
    }
    let mut text =
        String::from("== Table 5: predicted root causes in the wild (mobile+server VPs) ==\n");
    text.push_str(&format!("sessions: {}\n", wild.len()));
    for (label, n) in &counts {
        text.push_str(&format!("   {label:<28} {n}\n"));
    }
    text.push_str("\npaper: 'good' dominates; LAN problems are the most common fault class\n");
    emit_section("table5", &text);
}
