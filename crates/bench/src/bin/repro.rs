//! `repro` — regenerate every table and figure in one run and write
//! `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p vqd-bench --bin repro            # all experiments
//! cargo run --release -p vqd-bench --bin repro -- fig3    # one experiment
//! VQD_FULL=1 cargo run --release -p vqd-bench --bin repro # paper-scale corpora
//! ```

use std::fmt::Write as _;

use vqd_bench::{controlled_runs, emit_section, induced_runs, wild_runs};
use vqd_core::ablation::{
    classifier_comparison, pipeline_ablation, pruning_ablation, render_ablation,
};
use vqd_core::dataset::{to_dataset, LabeledRun};
use vqd_core::diagnoser::{Diagnoser, DiagnoserConfig};
use vqd_core::experiments::{
    eval_by_vp, eval_transfer, feature_set_sweep_prepared, render_vp_evals, table1_prepared,
    table4_prepared, ExactPrep, VP_SETS,
};
use vqd_core::iterative::IterativeRca;
use vqd_core::multifault::{evaluate_multifault, generate_multifault};
use vqd_core::scenario::LabelScheme;
use vqd_video::QoeClass;

fn fig3(out: &mut String) {
    let runs = controlled_runs();
    let evals = eval_by_vp(
        &runs,
        LabelScheme::Existence,
        &DiagnoserConfig::default(),
        1,
    );
    let mut text = render_vp_evals(
        "Figure 3: problem-existence detection (controlled, 10-fold CV)",
        &evals,
    );
    text.push_str("paper: mobile 88.1%  router 86.4%  server 85.6%  combined 88.8%\n");
    emit_section("fig3", &text);
    out.push_str(&text);
}

fn fig4(out: &mut String) {
    let runs = controlled_runs();
    let evals = eval_by_vp(&runs, LabelScheme::Exact, &DiagnoserConfig::default(), 1);
    let mut text = render_vp_evals(
        "Figure 4: exact-problem detection (controlled, 10-fold CV)",
        &evals,
    );
    text.push_str("paper: mobile 88.18%  router 85.74%  server 84.2%  combined 88.95%\n");
    emit_section("fig4", &text);
    out.push_str(&text);
}

fn sec52(out: &mut String) {
    let runs = controlled_runs();
    let evals = eval_by_vp(&runs, LabelScheme::Location, &DiagnoserConfig::default(), 1);
    let text = render_vp_evals(
        "Section 5.2: problem-location detection (controlled, 10-fold CV)",
        &evals,
    );
    emit_section("sec52", &text);
    out.push_str(&text);
}

/// The shared exact-label dataset + constructed view of the controlled
/// corpus: fig5, table1 and table4 all consume it, so `to_dataset` and
/// feature construction run once per repro invocation instead of once
/// per section.
fn exact_prep() -> &'static ExactPrep {
    static PREP: std::sync::OnceLock<ExactPrep> = std::sync::OnceLock::new();
    PREP.get_or_init(|| ExactPrep::from_runs(&controlled_runs()))
}

fn fig5(out: &mut String) {
    let sweep = feature_set_sweep_prepared(exact_prep(), 1);
    let mut text =
        String::from("== Figure 5: detection by feature set (combined VPs, exact labels) ==\n");
    text.push_str("   set           precision  recall  accuracy  #features\n");
    for e in &sweep {
        let _ = writeln!(
            text,
            "   {:<12} {:>9.2}  {:>6.2}  {:>8.1}%  {:>9}",
            e.name,
            e.precision,
            e.recall,
            e.accuracy * 100.0,
            e.n_features
        );
    }
    text.push_str("paper shape: RSSI/HW < UTILIZATION < DELAY < ALL < FS&FC (>0.80)\n");
    emit_section("fig5", &text);
    out.push_str(&text);
}

fn table1_section(out: &mut String) {
    let prep = exact_prep();
    let sel = table1_prepared(prep);
    let mut text = String::from("== Table 1: features after Feature Selection (FCBF) ==\n");
    let _ = writeln!(
        text,
        "raw features: {}   selected: {}   (paper: 354 -> 22)",
        prep.raw.n_features(),
        sel.names.len()
    );
    for (name, su) in sel.names.iter().zip(&sel.su) {
        let _ = writeln!(text, "   {name:<48} SU={su:.3}");
    }
    emit_section("table1", &text);
    out.push_str(&text);
}

fn table4_section(out: &mut String) {
    let cells = table4_prepared(exact_prep(), 3);
    let mut text = String::from("== Table 4: top features per fault per vantage point ==\n");
    let mut last = String::new();
    for c in &cells {
        if c.fault != last {
            let _ = writeln!(text, "\n-- {} --", c.fault);
            last = c.fault.clone();
        }
        let tops: Vec<String> = c
            .top
            .iter()
            .map(|(n, su)| format!("{n} ({su:.2})"))
            .collect();
        let _ = writeln!(text, "   {:<9} {}", c.vp, tops.join("  |  "));
    }
    emit_section("table4", &text);
    out.push_str(&text);
}

fn transfer_eval(
    title: &str,
    section: &str,
    scheme: LabelScheme,
    test: &[LabeledRun],
    sets: &[(&str, &[&str])],
    paper: &str,
    out: &mut String,
) {
    let train = controlled_runs();
    let data = to_dataset(&train, scheme);
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());
    let mut text = format!("== {title} ==\n");
    for (name, vps) in sets {
        let cm = eval_transfer(&model, test, scheme, Some(vps));
        let _ = writeln!(
            text,
            "-- VP {:<9} accuracy {:.1}%  (n={})",
            name,
            cm.accuracy() * 100.0,
            cm.total()
        );
        for c in 0..cm.classes.len() {
            let support: u64 = (0..cm.classes.len()).map(|p| cm.count(c, p)).sum();
            if support > 0 {
                let _ = writeln!(
                    text,
                    "   {:<28} precision {:.2}  recall {:.2}  n={}",
                    cm.classes[c],
                    cm.precision(c),
                    cm.recall(c),
                    support
                );
            }
        }
    }
    text.push_str(paper);
    text.push('\n');
    emit_section(section, &text);
    out.push_str(&text);
}

fn fig6(out: &mut String) {
    let test: Vec<LabeledRun> = induced_runs().into_iter().map(|r| r.run).collect();
    transfer_eval(
        "Figure 6: real-world (induced) existence detection, lab-trained model",
        "fig6",
        LabelScheme::Existence,
        &test,
        &VP_SETS,
        "paper: mobile 88%  router 84%  server 81%  combined 88.1%",
        out,
    );
}

fn fig7(out: &mut String) {
    let test: Vec<LabeledRun> = induced_runs().into_iter().map(|r| r.run).collect();
    transfer_eval(
        "Figure 7: real-world (induced) exact root cause, lab-trained model",
        "fig7",
        LabelScheme::Exact,
        &test,
        &VP_SETS,
        "paper: combined 82.9%  mobile 81.1%  router 80.5%  server 79.3%",
        out,
    );
}

fn fig8(out: &mut String) {
    let test: Vec<LabeledRun> = wild_runs().into_iter().map(|r| r.run).collect();
    let sets: [(&str, &[&str]); 3] = [
        ("mobile", &["mobile"]),
        ("server", &["server"]),
        ("combined", &["mobile", "server"]),
    ];
    transfer_eval(
        "Figure 8: in-the-wild existence detection per VP set, lab-trained model",
        "fig8",
        LabelScheme::Existence,
        &test,
        &sets,
        "paper: healthy sessions detected with high accuracy; mobile > server; combined best",
        out,
    );
}

fn quantiles(mut xs: Vec<f64>) -> String {
    if xs.is_empty() {
        return "n=0".into();
    }
    xs.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| xs[((xs.len() - 1) as f64 * p) as usize];
    format!(
        "n={:<4} p10={:7.2} p25={:7.2} p50={:7.2} p75={:7.2} p90={:7.2}",
        xs.len(),
        q(0.1),
        q(0.25),
        q(0.5),
        q(0.75),
        q(0.9)
    )
}

fn fig9(out: &mut String) {
    let train = controlled_runs();
    let wild = wild_runs();
    // The paper's §6.2.2 asks what the *server vantage point* predicts:
    // train the exact-problem model on the server's own columns.
    let data =
        to_dataset(&train, LabelScheme::Exact).select_features_by(|n| n.starts_with("server"));
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());
    let (mut cf, mut cr, mut rf, mut rr) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for r in &wild {
        if r.run.truth.qoe == QoeClass::Good {
            continue;
        }
        let server: Vec<(String, f64)> = r
            .run
            .metrics
            .iter()
            .filter(|(n, _)| n.starts_with("server"))
            .cloned()
            .collect();
        if server.is_empty() {
            continue;
        }
        let d = model.diagnose(&server);
        if let Some(cpu) = r.cpu_truth() {
            if d.label.starts_with("mobile_load") {
                cf.push(cpu)
            } else {
                cr.push(cpu)
            }
        }
        if let Some(rssi) = r.rssi_truth() {
            if d.label.starts_with("low_rssi") {
                rf.push(rssi)
            } else {
                rr.push(rssi)
            }
        }
    }
    let mut text = String::from(
        "== Figure 9: server-VP inference of client conditions (wild, problematic) ==\n",
    );
    let _ = writeln!(text, "ground-truth mobile CPU utilisation:");
    let _ = writeln!(text, "   predicted 'mobile load':  {}", quantiles(cf));
    let _ = writeln!(text, "   not predicted:            {}", quantiles(cr));
    let _ = writeln!(text, "ground-truth mobile RSSI (dBm, WiFi sessions):");
    let _ = writeln!(text, "   predicted 'low RSSI':     {}", quantiles(rf));
    let _ = writeln!(text, "   not predicted:            {}", quantiles(rr));
    text.push_str("paper shape: flagged sessions show far higher CPU / lower RSSI\n");
    emit_section("fig9", &text);
    out.push_str(&text);
}

fn table5(out: &mut String) {
    let train = controlled_runs();
    let wild = wild_runs();
    let data = to_dataset(&train, LabelScheme::Exact);
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());
    let mut counts: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for r in &wild {
        let d = model.diagnose(&r.run.metrics);
        *counts.entry(d.label).or_insert(0) += 1;
    }
    let mut text =
        String::from("== Table 5: predicted root causes in the wild (mobile+server VPs) ==\n");
    let _ = writeln!(text, "sessions: {}", wild.len());
    for (label, n) in &counts {
        let _ = writeln!(text, "   {label:<28} {n}");
    }
    text.push_str("paper: 'good' dominates; local-network problems are the most common faults\n");
    emit_section("table5", &text);
    out.push_str(&text);
}

fn ablations(out: &mut String) {
    let runs = controlled_runs();
    let mut text = String::new();
    for (scheme, tag) in [
        (LabelScheme::Existence, "existence"),
        (LabelScheme::Exact, "exact"),
    ] {
        text.push_str(&render_ablation(
            &format!("Ablation: classifier comparison ({tag} labels, FC+FS, 10-fold CV)"),
            &classifier_comparison(&runs, scheme, 1),
        ));
    }
    text.push_str(&render_ablation(
        "Ablation: FC/FS pipeline grid (exact labels; size = #features)",
        &pipeline_ablation(&runs, LabelScheme::Exact, 1),
    ));
    text.push_str(&render_ablation(
        "Ablation: C4.5 pruning (exact labels; size = tree nodes)",
        &pruning_ablation(&runs, LabelScheme::Exact, 1),
    ));
    emit_section("ablations", &text);
    out.push_str(&text);
}

fn extensions(out: &mut String) {
    let runs = controlled_runs();
    // Multi-fault.
    let data = to_dataset(&runs, LabelScheme::Exact);
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());
    let n = (runs.len() / 6).max(30);
    let mf = generate_multifault(
        n,
        201509,
        &vqd_video::catalog::Catalog::top100(vqd_bench::CATALOG_SEED),
    );
    let ev = evaluate_multifault(&model, &mf);
    let mut text = String::from(
        "== Extension: multi-problem sessions (two concurrent faults, §9) ==
",
    );
    let _ = writeln!(
        text,
        "degraded sessions: {}  blamed-one-of-two: {} ({:.0}%)  missed: {}",
        ev.total,
        ev.hit_either,
        if ev.total > 0 {
            100.0 * ev.hit_either as f64 / ev.total as f64
        } else {
            0.0
        },
        ev.missed
    );
    for (fault, k) in &ev.winners {
        let _ = writeln!(text, "   wins: {fault:<20} {k}");
    }
    // Iterative RCA.
    let cut = runs.len() * 2 / 3;
    let (train, test) = runs.split_at(cut);
    let rca = IterativeRca::train(train, &DiagnoserConfig::default());
    let cm_iter = rca.evaluate(test);
    let loc = to_dataset(train, LabelScheme::Location);
    let full = Diagnoser::train(&loc, &DiagnoserConfig::default());
    let cm_full = eval_transfer(&full, test, LabelScheme::Location, None);
    let _ = writeln!(
        text,
        "
== Extension: iterative RCA (one-bit collaboration, §7) =="
    );
    let _ = writeln!(
        text,
        "   pooled combined model: {:.1}%   iterative verdicts-only: {:.1}%  (n={})",
        cm_full.accuracy() * 100.0,
        cm_iter.accuracy() * 100.0,
        cm_iter.total()
    );
    emit_section("extensions", &text);
    out.push_str(&text);
}

type Section = (&'static str, fn(&mut String));

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");
    let mut md = String::from(
        "# EXPERIMENTS — measured reproduction output\n\n\
         Generated by `cargo run --release -p vqd-bench --bin repro`.\n\
         Corpus sizes are controlled by `VQD_SESSIONS` / `VQD_FULL=1`.\n\n```text\n",
    );
    let sections: [Section; 13] = [
        ("table1", table1_section),
        ("fig3", fig3),
        ("sec52", sec52),
        ("fig4", fig4),
        ("table4", table4_section),
        ("fig5", fig5),
        ("fig6", fig6),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("table5", table5),
        ("ablations", ablations),
        ("extensions", extensions),
    ];
    for (name, f) in sections {
        if want(name) {
            eprintln!("[repro] {name}...");
            f(&mut md);
            md.push('\n');
        }
    }
    md.push_str("```\n");
    if args.is_empty() {
        std::fs::write("EXPERIMENTS.md", &md).ok();
        eprintln!("[repro] wrote EXPERIMENTS.md");
    }
}
