//! # vqd-bench — experiment harnesses
//!
//! One bench target per table/figure of the paper (see `benches/`),
//! plus Criterion micro-benchmarks of the substrates. This library
//! holds the shared plumbing: corpus generation with an on-disk cache
//! (the three corpora are reused by many targets), a tiny text
//! serialisation for labelled runs, and result-section output used to
//! assemble `EXPERIMENTS.md`.
//!
//! Scale knobs (environment variables):
//!
//! * `VQD_SESSIONS` — controlled-corpus size (default 900),
//! * `VQD_FULL=1` — paper-scale corpora (3919 / 2619 / 3495 sessions),
//! * `VQD_CACHE_DIR` — cache directory (default `target/vqd-cache`).

use std::fs;
use std::path::PathBuf;

use vqd_core::dataset::{generate_corpus, CorpusConfig, LabeledRun};
use vqd_core::realworld::{
    generate_induced, generate_wild, Access, RealWorldConfig, RwRun, Service,
};
use vqd_video::catalog::Catalog;

/// The catalogue seed shared by every experiment.
pub const CATALOG_SEED: u64 = 42;

/// Paper-scale controlled dataset size (§5).
pub const PAPER_CONTROLLED: usize = 3919;
/// §6.1 dataset size.
pub const PAPER_INDUCED: usize = 2619;
/// §6.2 dataset size.
pub const PAPER_WILD: usize = 3495;

fn full_scale() -> bool {
    std::env::var("VQD_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Controlled-corpus size honouring the env knobs.
pub fn controlled_sessions() -> usize {
    if full_scale() {
        return PAPER_CONTROLLED;
    }
    std::env::var("VQD_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(900)
}

/// §6.1 corpus size.
pub fn induced_sessions() -> usize {
    if full_scale() {
        PAPER_INDUCED
    } else {
        (controlled_sessions() * 2) / 3
    }
}

/// §6.2 corpus size.
pub fn wild_sessions() -> usize {
    if full_scale() {
        PAPER_WILD
    } else {
        (controlled_sessions() * 3) / 4
    }
}

/// Cores visible to this process (1 when detection fails).
pub fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
}

/// Worker count for the parallel arms of the benches: the detected
/// core count, floored at 2 so the sharded/threaded code paths are
/// genuinely exercised even on a single-core host (where a width-1
/// "parallel" pass would be indistinguishable from the serial one).
/// Benches record [`detected_cores`] alongside this value so readers
/// can tell oversubscription from real parallelism.
pub fn parallel_workers() -> usize {
    detected_cores().max(2)
}

fn cache_dir() -> PathBuf {
    let p = std::env::var("VQD_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/vqd-cache"));
    fs::create_dir_all(&p).ok();
    p
}

// ---------------------------------------------------------------------
// Text serialisation of labelled runs (cache format)
// ---------------------------------------------------------------------

/// Serialise runs to the cache format (one line per run). The cache
/// format is the corpus format of `vqd_core::dataset`.
pub fn runs_to_text(runs: &[LabeledRun]) -> String {
    vqd_core::dataset::corpus_to_text(runs)
}

/// Parse the cache format back into runs; `None` on a corrupt cache
/// (the caller regenerates it).
pub fn runs_from_text(text: &str) -> Option<Vec<LabeledRun>> {
    vqd_core::dataset::corpus_from_text(text).ok()
}

fn cached<T>(
    key: &str,
    to_text: impl Fn(&T) -> String,
    from_text: impl Fn(&str) -> Option<T>,
    generate: impl FnOnce() -> T,
) -> T {
    let path = cache_dir().join(format!("{key}.tsv"));
    if let Ok(text) = fs::read_to_string(&path) {
        if !text.is_empty() {
            match from_text(&text) {
                Some(v) => return v,
                None => eprintln!("[vqd-bench] cache {key} is corrupt; regenerating"),
            }
        }
    }
    let value = generate();
    fs::write(&path, to_text(&value)).ok();
    value
}

/// The controlled training corpus (Section 4/5), cached on disk.
pub fn controlled_runs() -> Vec<LabeledRun> {
    let sessions = controlled_sessions();
    cached(
        &format!("controlled-{sessions}"),
        |r| runs_to_text(r),
        runs_from_text,
        || {
            eprintln!("[vqd-bench] simulating {sessions} controlled sessions...");
            let cfg = CorpusConfig {
                sessions,
                seed: 20151201,
                p_fault: 0.5,
                p_mobile_wan: 0.3,
                ..Default::default()
            };
            generate_corpus(&cfg, &Catalog::top100(CATALOG_SEED))
        },
    )
}

fn rwruns_to_text(runs: &[RwRun]) -> String {
    let mut s = String::new();
    for r in runs {
        let access = match r.access {
            Access::Wifi => "wifi",
            Access::Cellular => "cell",
        };
        let service = match r.service {
            Service::Private => "private",
            Service::Youtube => "youtube",
        };
        s.push_str(access);
        s.push('\t');
        s.push_str(service);
        s.push('\t');
        s.push_str(&runs_to_text(std::slice::from_ref(&r.run)));
    }
    s
}

fn rwruns_from_text(text: &str) -> Option<Vec<RwRun>> {
    text.lines()
        .filter(|l| !l.is_empty())
        .map(|line| {
            let (access, rest) = line.split_once('\t')?;
            let (service, rest) = rest.split_once('\t')?;
            let run = runs_from_text(rest)?.pop()?;
            Some(RwRun {
                run,
                access: if access == "cell" {
                    Access::Cellular
                } else {
                    Access::Wifi
                },
                service: if service == "youtube" {
                    Service::Youtube
                } else {
                    Service::Private
                },
            })
        })
        .collect()
}

/// The §6.1 corporate-WiFi induced-fault corpus, cached.
pub fn induced_runs() -> Vec<RwRun> {
    let sessions = induced_sessions();
    cached(
        &format!("induced-{sessions}"),
        |r| rwruns_to_text(r),
        rwruns_from_text,
        || {
            eprintln!("[vqd-bench] simulating {sessions} induced real-world sessions...");
            let cfg = RealWorldConfig {
                sessions,
                seed: 20150601,
                threads: 0,
            };
            generate_induced(&cfg, &Catalog::top100(CATALOG_SEED))
        },
    )
}

/// The §6.2 in-the-wild corpus, cached.
pub fn wild_runs() -> Vec<RwRun> {
    let sessions = wild_sessions();
    cached(
        &format!("wild-{sessions}"),
        |r| rwruns_to_text(r),
        rwruns_from_text,
        || {
            eprintln!("[vqd-bench] simulating {sessions} in-the-wild sessions...");
            let cfg = RealWorldConfig {
                sessions,
                seed: 20150701,
                threads: 0,
            };
            generate_wild(&cfg, &Catalog::top100(CATALOG_SEED))
        },
    )
}

/// Write one experiment's text output both to stdout and to
/// `target/vqd-results/<name>.txt` (collected into `EXPERIMENTS.md` by
/// the `repro` binary).
pub fn emit_section(name: &str, text: &str) {
    println!("{text}");
    let dir = PathBuf::from(
        std::env::var("VQD_RESULTS_DIR").unwrap_or_else(|_| "target/vqd-results".into()),
    );
    fs::create_dir_all(&dir).ok();
    fs::write(dir.join(format!("{name}.txt")), text).ok();
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqd_core::scenario::GroundTruth;
    use vqd_faults::FaultKind;
    use vqd_video::QoeClass;

    #[test]
    fn run_serialisation_round_trips() {
        let runs = vec![LabeledRun {
            metrics: vec![
                ("mobile.hw.cpu_avg".into(), 0.12345678901234567),
                ("a.b".into(), f64::NAN),
            ],
            truth: GroundTruth {
                fault: FaultKind::LowRssi,
                qoe: QoeClass::Mild,
            },
        }];
        let text = runs_to_text(&runs);
        let back = runs_from_text(&text).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].truth.fault, FaultKind::LowRssi);
        assert_eq!(back[0].truth.qoe, QoeClass::Mild);
        assert_eq!(back[0].metrics[0].0, "mobile.hw.cpu_avg");
        assert_eq!(back[0].metrics[0].1, 0.12345678901234567);
        assert!(back[0].metrics[1].1.is_nan());
    }

    #[test]
    fn rwrun_serialisation_round_trips() {
        let runs = vec![RwRun {
            run: LabeledRun {
                metrics: vec![("m.x".into(), -1.5)],
                truth: GroundTruth {
                    fault: FaultKind::None,
                    qoe: QoeClass::Severe,
                },
            },
            access: Access::Cellular,
            service: Service::Youtube,
        }];
        let text = rwruns_to_text(&runs);
        let back = rwruns_from_text(&text).unwrap();
        assert_eq!(back[0].access, Access::Cellular);
        assert_eq!(back[0].service, Service::Youtube);
        assert_eq!(back[0].run.truth.qoe, QoeClass::Severe);
        assert_eq!(back[0].run.metrics[0].1, -1.5);
    }

    #[test]
    fn scale_knobs_default() {
        if std::env::var("VQD_FULL").is_err() && std::env::var("VQD_SESSIONS").is_err() {
            assert_eq!(controlled_sessions(), 900);
            assert_eq!(induced_sessions(), 600);
            assert_eq!(wild_sessions(), 675);
        }
    }
}
