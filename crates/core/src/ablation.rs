//! Ablation studies of the design choices the paper argues for.
//!
//! * [`classifier_comparison`] — C4.5 vs Naive Bayes vs linear SVM
//!   (Section 3.2: "Decision Trees outperformed other algorithms like
//!   Naive Bayes and Support Vector Machines which we also evaluated").
//! * [`pipeline_ablation`] — FC / FS on and off in all four
//!   combinations (complements Figure 5).
//! * [`pruning_ablation`] — pruned vs unpruned C4.5: accuracy and
//!   model size (interpretability is one of the paper's reasons to
//!   pick C4.5).

use vqd_ml::cv::{cross_validate, NbLearner, SvmLearner};
use vqd_ml::dtree::{C45Config, C45Trainer};

use crate::dataset::{to_dataset, LabeledRun};
use crate::diagnoser::{Diagnoser, DiagnoserConfig};
use crate::scenario::LabelScheme;

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant name.
    pub name: String,
    /// 10-fold CV accuracy.
    pub accuracy: f64,
    /// Macro precision.
    pub precision: f64,
    /// Macro recall.
    pub recall: f64,
    /// Auxiliary size metric (tree nodes, features, …), if meaningful.
    pub size: Option<usize>,
}

/// Compare the three classifiers on the FC+FS-prepared feature space.
/// Shares the one [`Diagnoser::prepare`] pass across all three CV
/// runs.
pub fn classifier_comparison(
    runs: &[LabeledRun],
    scheme: LabelScheme,
    seed: u64,
) -> Vec<AblationRow> {
    let raw = to_dataset(runs, scheme);
    let data = Diagnoser::prepare(&raw, &DiagnoserConfig::default()).data;

    let mut out = Vec::new();
    let c45 = cross_validate(&C45Trainer::default(), &data, 10, seed);
    out.push(AblationRow {
        name: "C4.5 (J48)".into(),
        accuracy: c45.accuracy(),
        precision: c45.macro_precision(),
        recall: c45.macro_recall(),
        size: None,
    });
    let nb = cross_validate(&NbLearner, &data, 10, seed);
    out.push(AblationRow {
        name: "Naive Bayes".into(),
        accuracy: nb.accuracy(),
        precision: nb.macro_precision(),
        recall: nb.macro_recall(),
        size: None,
    });
    let svm = cross_validate(&SvmLearner::default(), &data, 10, seed);
    out.push(AblationRow {
        name: "Linear SVM".into(),
        accuracy: svm.accuracy(),
        precision: svm.macro_precision(),
        recall: svm.macro_recall(),
        size: None,
    });
    out
}

/// FC/FS pipeline ablation (2×2).
pub fn pipeline_ablation(runs: &[LabeledRun], scheme: LabelScheme, seed: u64) -> Vec<AblationRow> {
    let raw = to_dataset(runs, scheme);
    let mut out = Vec::new();
    for (use_fc, use_fs) in [(false, false), (true, false), (false, true), (true, true)] {
        let cfg = DiagnoserConfig {
            use_fc,
            use_fs,
            ..Default::default()
        };
        // One FC+FS pass backs both the CV and the fitted model.
        let prep = Diagnoser::prepare(&raw, &cfg);
        let cm = Diagnoser::cross_validate_prepared(&prep, &cfg, 10, seed);
        let model = Diagnoser::train_prepared(&prep, &cfg);
        out.push(AblationRow {
            name: format!(
                "FC={} FS={}",
                if use_fc { "on " } else { "off" },
                if use_fs { "on " } else { "off" }
            ),
            accuracy: cm.accuracy(),
            precision: cm.macro_precision(),
            recall: cm.macro_recall(),
            size: Some(model.feature_names.len()),
        });
    }
    out
}

/// Pruned vs unpruned C4.5 on the full pipeline.
pub fn pruning_ablation(runs: &[LabeledRun], scheme: LabelScheme, seed: u64) -> Vec<AblationRow> {
    let raw = to_dataset(runs, scheme);
    // Pruning only affects the tree, so both variants share one
    // FC+FS pass.
    let prep = Diagnoser::prepare(&raw, &DiagnoserConfig::default());
    let mut out = Vec::new();
    for (name, unpruned) in [("pruned (CF 0.25)", false), ("unpruned", true)] {
        let cfg = DiagnoserConfig {
            tree: C45Config {
                unpruned,
                ..Default::default()
            },
            ..Default::default()
        };
        let cm = Diagnoser::cross_validate_prepared(&prep, &cfg, 10, seed);
        let model = Diagnoser::train_prepared(&prep, &cfg);
        out.push(AblationRow {
            name: name.into(),
            accuracy: cm.accuracy(),
            precision: cm.macro_precision(),
            recall: cm.macro_recall(),
            size: Some(model.tree().size()),
        });
    }
    out
}

/// Render ablation rows.
pub fn render_ablation(title: &str, rows: &[AblationRow]) -> String {
    let mut s = format!("== {title} ==\n");
    s.push_str("   variant            accuracy  precision  recall   size\n");
    for r in rows {
        s.push_str(&format!(
            "   {:<18} {:>7.1}%  {:>9.2}  {:>6.2}  {}\n",
            r.name,
            r.accuracy * 100.0,
            r.precision,
            r.recall,
            r.size.map(|n| n.to_string()).unwrap_or_else(|| "-".into())
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_corpus, CorpusConfig};
    use vqd_video::catalog::Catalog;

    fn corpus() -> Vec<LabeledRun> {
        let cfg = CorpusConfig {
            sessions: 80,
            seed: 424,
            p_fault: 0.7,
            ..Default::default()
        };
        generate_corpus(&cfg, &Catalog::top100(42))
    }

    #[test]
    fn classifier_comparison_runs_all_three() {
        let runs = corpus();
        let rows = classifier_comparison(&runs, LabelScheme::Existence, 1);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.accuracy > 0.3, "{}: {}", r.name, r.accuracy);
        }
        let text = render_ablation("x", &rows);
        assert!(text.contains("C4.5"));
    }

    #[test]
    fn pipeline_ablation_covers_grid() {
        let runs = corpus();
        let rows = pipeline_ablation(&runs, LabelScheme::Existence, 1);
        assert_eq!(rows.len(), 4);
        // FS reduces the feature count.
        let full = rows[1].size.unwrap(); // FC on, FS off
        let fs = rows[3].size.unwrap(); // FC on, FS on
        assert!(fs < full, "fs {fs} full {full}");
    }

    #[test]
    fn pruning_shrinks_model() {
        let runs = corpus();
        let rows = pruning_ablation(&runs, LabelScheme::Existence, 1);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].size.unwrap() <= rows[1].size.unwrap());
    }
}
