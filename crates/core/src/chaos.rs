//! Deterministic crash injection for the durability layer.
//!
//! The chaos harness (`tests/chaos.rs`, and the CI `chaos-smoke` job
//! at the binary level) kills the serving daemon at *seeded* event
//! boundaries and asserts the recovery invariant: the merged output
//! after any number of crash/recover cycles is byte-identical to
//! offline batch diagnosis, every session answered exactly once. The
//! crash points come from a SplitMix64 stream, so a failing seed is a
//! complete reproduction recipe — no timing, no flakes.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is the standard
//! seed-expansion generator: one 64-bit add + two xor-shift-multiply
//! mixes per draw, passes BigCrush, and — unlike the xorshift64*
//! shuffler elsewhere in the repo — accepts *any* seed including 0.

/// SplitMix64: tiny, seedable, full-period 2^64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (any value, 0 included).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; 0 when `bound` is 0. Modulo
    /// reduction: the bias over a 64-bit range is irrelevant for
    /// crash-point picking and determinism is what matters.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// `count` distinct crash points for a stream of `total_events`
/// events, sorted ascending, each in `1..total_events` — "crash after
/// accepting exactly this many events". Returns fewer than `count`
/// when the stream is too short to hold that many distinct interior
/// boundaries.
pub fn crash_points(seed: u64, total_events: u64, count: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    let mut points = Vec::with_capacity(count);
    if total_events < 2 {
        return points;
    }
    let interior = total_events - 1; // boundaries 1..=total_events-1
    let want = count.min(interior as usize);
    while points.len() < want {
        let p = 1 + rng.below(interior);
        if !points.contains(&p) {
            points.push(p);
        }
    }
    points.sort_unstable();
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
        // Seed 0 must not be a fixed point.
        let mut z = SplitMix64::new(0);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn crash_points_are_sorted_distinct_interior() {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let pts = crash_points(seed, 1000, 5);
            assert_eq!(pts.len(), 5, "seed {seed}");
            assert_eq!(pts, crash_points(seed, 1000, 5), "deterministic");
            for w in pts.windows(2) {
                assert!(w[0] < w[1], "sorted distinct: {pts:?}");
            }
            assert!(pts[0] >= 1 && pts[4] < 1000, "interior: {pts:?}");
        }
    }

    #[test]
    fn short_streams_yield_fewer_points() {
        assert!(crash_points(1, 0, 3).is_empty());
        assert!(crash_points(1, 1, 3).is_empty());
        assert_eq!(crash_points(1, 2, 3), vec![1]);
        assert_eq!(crash_points(9, 4, 10).len(), 3);
    }
}
