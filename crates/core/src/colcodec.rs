//! Block codecs for `.vqdc` v2 column blocks (DESIGN.md §7j).
//!
//! Each v2 column block — up to `block_rows` consecutive cells of one
//! column, as raw little-endian f64 bit patterns — is encoded
//! independently with whichever of three codecs measures smallest on
//! that block:
//!
//! * **Raw** — the cells verbatim, 8 bytes each. The floor every
//!   candidate must beat, and the only encoding the mmap path can lend
//!   out as a zero-copy `&[u64]` view.
//! * **Gorilla** — the Facebook Gorilla XOR scheme over f64 *bits*:
//!   each cell is XORed with its predecessor and the surviving
//!   meaningful bits are written under a 1/2-bit control prefix that
//!   reuses the previous leading/length window when it still fits.
//!   Ideal for slowly-varying metrics and for the canonical-NaN filler
//!   runs of sparse columns (1 bit per repeated cell).
//! * **XorPack** — a fixed-width fallback: the maximum significant
//!   width of all XOR deltas is measured once, then every delta is
//!   bit-packed at that width. Beats Gorilla when deltas are uniformly
//!   wide (Gorilla's per-value control bits become pure overhead).
//!
//! All three operate on `u64` bit patterns, never on `f64` arithmetic,
//! so round-trips are bit-exact by construction — NaN payloads, `-0.0`
//! and ±inf included (proptest-pinned). Decoding is bounds-checked
//! everywhere and returns `Err(String)` on malformed input — never a
//! panic — though in practice the per-block checksum over the encoded
//! bytes rejects corruption before a decoder ever sees it.

/// Codec tag stored in the v2 block directory: cells verbatim.
pub const CODEC_RAW: u8 = 0;
/// Codec tag: Gorilla-style XOR-of-previous bit stream.
pub const CODEC_GORILLA: u8 = 1;
/// Codec tag: fixed-width bit-packed XOR-of-previous.
pub const CODEC_XORPACK: u8 = 2;

/// MSB-first bit writer over a byte vector.
struct BitWriter {
    out: Vec<u8>,
    cur: u8,
    used: u32,
}

impl BitWriter {
    fn new() -> BitWriter {
        BitWriter {
            out: Vec::new(),
            cur: 0,
            used: 0,
        }
    }

    /// Append the low `n` bits of `bits`, most significant first.
    fn put(&mut self, bits: u64, n: u32) {
        debug_assert!(n <= 64);
        let mut left = n;
        while left > 0 {
            let room = 8 - self.used;
            let take = room.min(left);
            let chunk = (bits >> (left - take)) as u8 & ((1u16 << take) - 1) as u8;
            self.cur |= chunk << (room - take);
            self.used += take;
            left -= take;
            if self.used == 8 {
                self.out.push(self.cur);
                self.cur = 0;
                self.used = 0;
            }
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.used > 0 {
            self.out.push(self.cur);
        }
        self.out
    }

    /// Bits written so far.
    fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + self.used as u64
    }
}

/// MSB-first bounds-checked bit reader.
struct BitReader<'a> {
    b: &'a [u8],
    /// Next bit index.
    pos: u64,
}

impl BitReader<'_> {
    fn get(&mut self, n: u32, what: &str) -> Result<u64, String> {
        debug_assert!(n <= 64);
        let end = self.pos + n as u64;
        if end > self.b.len() as u64 * 8 {
            return Err(format!("{what}: bit stream truncated"));
        }
        let mut v = 0u64;
        let mut left = n;
        while left > 0 {
            let byte = self.b[(self.pos / 8) as usize];
            let off = (self.pos % 8) as u32;
            let avail = 8 - off;
            let take = avail.min(left);
            let chunk = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            v = (v << take) | chunk as u64;
            self.pos += take as u64;
            left -= take;
        }
        Ok(v)
    }
}

/// Gorilla cap on the 5-bit leading-zero field.
const GOR_MAX_LEAD: u32 = 31;

fn encode_gorilla(cells: &[u64], w: &mut BitWriter) {
    let Some((&first, rest)) = cells.split_first() else {
        return;
    };
    w.put(first, 64);
    let mut prev = first;
    // (leading, meaningful) window; invalid until the first '11' record.
    let mut lead = u32::MAX;
    let mut mlen = 0u32;
    for &c in rest {
        let xor = c ^ prev;
        prev = c;
        if xor == 0 {
            w.put(0, 1);
            continue;
        }
        let lz = xor.leading_zeros().min(GOR_MAX_LEAD);
        let tz = xor.trailing_zeros();
        if lead != u32::MAX && lz >= lead && tz >= 64 - lead - mlen {
            // Fits the previous window: control '10' + window bits.
            w.put(0b10, 2);
            w.put(xor >> (64 - lead - mlen), mlen);
        } else {
            let m = 64 - lz - tz;
            w.put(0b11, 2);
            w.put(lz as u64, 5);
            w.put((m - 1) as u64, 6);
            w.put(xor >> tz, m);
            lead = lz;
            mlen = m;
        }
    }
}

fn decode_gorilla(enc: &[u8], n_cells: usize, out: &mut Vec<u64>) -> Result<(), String> {
    out.clear();
    if n_cells == 0 {
        return Ok(());
    }
    let mut r = BitReader { b: enc, pos: 0 };
    let mut prev = r.get(64, "gorilla first cell")?;
    out.push(prev);
    let mut lead = u32::MAX;
    let mut mlen = 0u32;
    for _ in 1..n_cells {
        let xor = match r.get(1, "gorilla control")? {
            0 => 0u64,
            _ => {
                if r.get(1, "gorilla control")? == 1 {
                    lead = r.get(5, "gorilla leading count")? as u32;
                    mlen = r.get(6, "gorilla length")? as u32 + 1;
                    if lead + mlen > 64 {
                        return Err(format!("gorilla window {lead}+{mlen} exceeds 64 bits"));
                    }
                } else if lead == u32::MAX {
                    return Err("gorilla reuse before any window".into());
                }
                let bits = r.get(mlen, "gorilla value bits")?;
                bits << (64 - lead - mlen)
            }
        };
        prev ^= xor;
        out.push(prev);
    }
    Ok(())
}

/// Significant width (in bits) of the widest XOR delta; 0 for a
/// constant block.
fn xorpack_width(cells: &[u64]) -> u32 {
    let mut width = 0u32;
    for pair in cells.windows(2) {
        width = width.max(64 - (pair[0] ^ pair[1]).leading_zeros());
    }
    width
}

/// Exact encoded byte length of the XorPack codec for `cells`.
fn xorpack_len(n_cells: usize, width: u32) -> u64 {
    if n_cells == 0 {
        return 0;
    }
    9 + ((n_cells as u64 - 1) * width as u64).div_ceil(8)
}

fn encode_xorpack(cells: &[u64], width: u32, out: &mut Vec<u8>) {
    let Some((&first, rest)) = cells.split_first() else {
        return;
    };
    out.push(width as u8);
    out.extend_from_slice(&first.to_le_bytes());
    let mut w = BitWriter::new();
    let mut prev = first;
    for &c in rest {
        w.put(c ^ prev, width);
        prev = c;
    }
    out.extend_from_slice(&w.finish());
}

fn decode_xorpack(enc: &[u8], n_cells: usize, out: &mut Vec<u64>) -> Result<(), String> {
    out.clear();
    if n_cells == 0 {
        return Ok(());
    }
    if enc.len() < 9 {
        return Err("xorpack block shorter than its header".into());
    }
    let width = enc[0] as u32;
    if width > 64 {
        return Err(format!("xorpack width {width} exceeds 64 bits"));
    }
    let mut prev = u64::from_le_bytes([
        enc[1], enc[2], enc[3], enc[4], enc[5], enc[6], enc[7], enc[8],
    ]);
    out.push(prev);
    let mut r = BitReader {
        b: &enc[9..],
        pos: 0,
    };
    for _ in 1..n_cells {
        prev ^= r.get(width, "xorpack delta")?;
        out.push(prev);
    }
    Ok(())
}

fn encode_raw(cells: &[u64], out: &mut Vec<u8>) {
    out.reserve(cells.len() * 8);
    for &c in cells {
        out.extend_from_slice(&c.to_le_bytes());
    }
}

fn decode_raw(enc: &[u8], n_cells: usize, out: &mut Vec<u64>) -> Result<(), String> {
    out.clear();
    if enc.len() != n_cells * 8 {
        return Err(format!(
            "raw block is {} bytes, expected {} for {n_cells} cells",
            enc.len(),
            n_cells * 8
        ));
    }
    out.extend(
        enc.chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])),
    );
    Ok(())
}

/// Encode one block, appending the winning encoding to `out` and
/// returning its codec tag. The choice is by measured encoded size —
/// Gorilla vs XorPack, ties to Gorilla — falling back to Raw whenever
/// neither beats the cells verbatim, so an encoded block is never
/// larger than raw. Deterministic: same cells, same choice, same
/// bytes. When `compress` is false the block is always Raw (the shape
/// the mmap path lends out zero-copy).
pub fn encode_block(cells: &[u64], compress: bool, out: &mut Vec<u8>) -> u8 {
    let raw_len = cells.len() as u64 * 8;
    if compress && !cells.is_empty() {
        let mut gor = BitWriter::new();
        encode_gorilla(cells, &mut gor);
        let gor_len = gor.bit_len().div_ceil(8);
        let width = xorpack_width(cells);
        let xp_len = xorpack_len(cells.len(), width);
        if gor_len <= xp_len && gor_len < raw_len {
            out.extend_from_slice(&gor.finish());
            return CODEC_GORILLA;
        }
        if xp_len < raw_len {
            encode_xorpack(cells, width, out);
            return CODEC_XORPACK;
        }
    }
    encode_raw(cells, out);
    CODEC_RAW
}

/// Decode one block of exactly `n_cells` cells. Any malformed input —
/// unknown tag, truncated stream, impossible geometry — is an
/// `Err(String)` naming the damage; never a panic.
pub fn decode_block(
    codec: u8,
    enc: &[u8],
    n_cells: usize,
    out: &mut Vec<u64>,
) -> Result<(), String> {
    match codec {
        CODEC_RAW => decode_raw(enc, n_cells, out),
        CODEC_GORILLA => decode_gorilla(enc, n_cells, out),
        CODEC_XORPACK => decode_xorpack(enc, n_cells, out),
        other => Err(format!("unknown block codec {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(cells: &[u64]) -> u8 {
        let mut enc = Vec::new();
        let codec = encode_block(cells, true, &mut enc);
        assert!(enc.len() as u64 <= cells.len() as u64 * 8 || cells.is_empty());
        let mut back = Vec::new();
        decode_block(codec, &enc, cells.len(), &mut back).unwrap();
        assert_eq!(back, cells);
        // Every codec individually round-trips too.
        for c in [CODEC_RAW, CODEC_GORILLA, CODEC_XORPACK] {
            let mut e = Vec::new();
            match c {
                CODEC_RAW => encode_raw(cells, &mut e),
                CODEC_GORILLA => {
                    let mut w = BitWriter::new();
                    encode_gorilla(cells, &mut w);
                    e = w.finish();
                }
                _ => encode_xorpack(cells, xorpack_width(cells), &mut e),
            }
            let mut b = Vec::new();
            decode_block(c, &e, cells.len(), &mut b).unwrap();
            assert_eq!(b, cells, "codec {c}");
        }
        codec
    }

    #[test]
    fn round_trips_special_values_bit_exactly() {
        let specials = [
            0.0f64.to_bits(),
            (-0.0f64).to_bits(),
            f64::NAN.to_bits(),
            f64::NAN.to_bits() | 0xdead, // NaN payload
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            f64::MIN_POSITIVE.to_bits() >> 1, // subnormal
            1.0f64.to_bits(),
            (-1.5e300f64).to_bits(),
            u64::MAX,
            1,
        ];
        round_trip(&specials);
        round_trip(&[]);
        round_trip(&[f64::NAN.to_bits() | 1]);
    }

    #[test]
    fn constant_blocks_collapse() {
        let cells = vec![f64::NAN.to_bits(); 4096];
        let mut enc = Vec::new();
        let codec = encode_block(&cells, true, &mut enc);
        assert_ne!(codec, CODEC_RAW);
        // A constant run costs ~1 bit per repeated cell.
        assert!(enc.len() < 8 + 4096 / 8 + 16, "{} bytes", enc.len());
        let mut back = Vec::new();
        decode_block(codec, &enc, cells.len(), &mut back).unwrap();
        assert_eq!(back, cells);
    }

    #[test]
    fn slowly_varying_metrics_compress() {
        let cells: Vec<u64> = (0..1000)
            .map(|i| (100.0 + (i % 7) as f64 * 0.25).to_bits())
            .collect();
        let mut enc = Vec::new();
        let codec = encode_block(&cells, true, &mut enc);
        assert_ne!(codec, CODEC_RAW);
        assert!(enc.len() * 2 < cells.len() * 8);
    }

    #[test]
    fn incompressible_blocks_fall_back_to_raw() {
        // SplitMix64 noise: XOR deltas use all 64 bits.
        let mut x = 0x12345678u64;
        let cells: Vec<u64> = (0..256)
            .map(|_| {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            })
            .collect();
        let mut enc = Vec::new();
        let codec = encode_block(&cells, true, &mut enc);
        assert_eq!(codec, CODEC_RAW);
        assert_eq!(enc.len(), cells.len() * 8);
    }

    #[test]
    fn compress_false_is_always_raw() {
        let cells = vec![1u64; 64];
        let mut enc = Vec::new();
        assert_eq!(encode_block(&cells, false, &mut enc), CODEC_RAW);
        assert_eq!(enc.len(), 64 * 8);
    }

    #[test]
    fn corrupt_streams_are_typed_errors_never_panics() {
        let cells: Vec<u64> = (0..100).map(|i| (i as f64 * 0.5).to_bits()).collect();
        for compress in [true, false] {
            let mut enc = Vec::new();
            let codec = encode_block(&cells, compress, &mut enc);
            let mut out = Vec::new();
            // Truncation at every length.
            for cut in 0..enc.len() {
                let _ = decode_block(codec, &enc[..cut], cells.len(), &mut out);
            }
            // Every single-bit flip either round-trips to *something*
            // or errors — never panics. (Checksums catch the flips in
            // the real file.)
            for i in 0..enc.len() {
                let mut b = enc.clone();
                b[i] ^= 0x80;
                let _ = decode_block(codec, &b, cells.len(), &mut out);
            }
        }
        // Unknown codec tag.
        let mut out = Vec::new();
        assert!(decode_block(99, &[0u8; 8], 1, &mut out).is_err());
        // Absurd claimed geometry.
        assert!(decode_block(CODEC_GORILLA, &[0xff; 4], 1000, &mut out).is_err());
        assert!(decode_block(CODEC_XORPACK, &[65; 16], 2, &mut out).is_err());
    }
}
