//! Format-sniffing, chunked corpus reader.
//!
//! `vqd events`, `vqd diagnose --batch` and `vqd train` all accept "a
//! corpus file". This reader hides which format that is — it sniffs
//! the `.vqdc` magic and otherwise parses the text format — and hands
//! the sessions back in bounded chunks, so every CLI consumer works on
//! corpora larger than memory. Text chunks parse line by line with
//! [`parse_corpus_line`] (identical semantics and error lines to
//! `corpus_from_text`); binary chunks are blocked transposes of the
//! column file.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::dataset::{corpus_to_text, parse_corpus_line, LabeledRun};
use crate::error::VqdError;
use crate::vqdc::{sniff_vqdc, VqdcReader, VqdcSchema, VqdcWriteOptions, VqdcWriter};

/// Default sessions per [`CorpusReader::next_chunk`] chunk for CLI
/// consumers: bounded memory, still large enough to amortise
/// per-chunk costs.
pub const DEFAULT_CHUNK_SESSIONS: usize = 1024;

enum Inner {
    Text {
        lines: std::io::Lines<BufReader<File>>,
        lineno: usize,
    },
    Binary {
        reader: VqdcReader,
        at: usize,
    },
}

/// A corpus file opened for streaming, text or binary.
pub struct CorpusReader {
    path: PathBuf,
    inner: Inner,
}

impl CorpusReader {
    /// Open `path`, sniffing the format by magic.
    pub fn open(path: impl AsRef<Path>) -> Result<CorpusReader, VqdError> {
        let path = path.as_ref().to_path_buf();
        let inner = if sniff_vqdc(&path) {
            Inner::Binary {
                reader: VqdcReader::open(&path)?,
                at: 0,
            }
        } else {
            let f = File::open(&path).map_err(|e| VqdError::io(&path, e))?;
            Inner::Text {
                lines: BufReader::with_capacity(1 << 20, f).lines(),
                lineno: 0,
            }
        };
        Ok(CorpusReader { path, inner })
    }

    /// Is the underlying file binary columnar (`.vqdc`)?
    pub fn is_binary(&self) -> bool {
        matches!(self.inner, Inner::Binary { .. })
    }

    /// Total session count, when the format records it up front.
    pub fn known_rows(&self) -> Option<usize> {
        match &self.inner {
            Inner::Binary { reader, .. } => Some(reader.n_rows()),
            Inner::Text { .. } => None,
        }
    }

    /// The underlying binary reader, for column-oriented consumers.
    pub fn binary(&self) -> Option<&VqdcReader> {
        match &self.inner {
            Inner::Binary { reader, .. } => Some(reader),
            Inner::Text { .. } => None,
        }
    }

    /// Next chunk of up to `max` sessions; empty at end of corpus.
    pub fn next_chunk(&mut self, max: usize) -> Result<Vec<LabeledRun>, VqdError> {
        let max = max.max(1);
        match &mut self.inner {
            Inner::Text { lines, lineno } => {
                let mut out = Vec::new();
                for line in lines.by_ref() {
                    *lineno += 1;
                    let line = line.map_err(|e| VqdError::io(&self.path, e))?;
                    if line.is_empty() {
                        continue;
                    }
                    out.push(parse_corpus_line(*lineno, &line)?);
                    if out.len() >= max {
                        break;
                    }
                }
                Ok(out)
            }
            Inner::Binary { reader, at } => {
                let chunk = reader.read_rows(*at, max)?;
                *at += chunk.len();
                Ok(chunk)
            }
        }
    }

    /// Drain the whole corpus into memory (for consumers that need
    /// random access, e.g. shuffled event replay).
    pub fn read_all(mut self) -> Result<Vec<LabeledRun>, VqdError> {
        let mut out = Vec::new();
        loop {
            let chunk = self.next_chunk(DEFAULT_CHUNK_SESSIONS)?;
            if chunk.is_empty() {
                return Ok(out);
            }
            out.extend(chunk);
        }
    }
}

/// What [`convert_corpus`] did.
#[derive(Debug, Clone, Copy)]
pub struct ConvertStats {
    /// Sessions converted.
    pub sessions: usize,
    /// Was the input binary columnar?
    pub from_binary: bool,
}

/// Convert a corpus between the text and binary columnar formats with
/// default binary options (`.vqdc` v2, compressed). See
/// [`convert_corpus_with`].
pub fn convert_corpus(
    input: impl AsRef<Path>,
    output: impl AsRef<Path>,
    to_binary: bool,
) -> Result<ConvertStats, VqdError> {
    convert_corpus_with(input, output, to_binary, &VqdcWriteOptions::default())
}

/// Convert a corpus between the text and binary columnar formats,
/// streaming both sides so corpora larger than RAM convert in
/// bounded memory. Text output is written chunk by chunk; binary
/// output goes through the two-pass [`VqdcWriter`] (schema scan,
/// then chunked value writes) at any container version/options, so
/// peak memory is one chunk of sessions plus the `O(n_rows)` schema
/// plus (v2) one row group of cells — never the corpus. Every
/// direction round-trips bit-exactly, including binary→binary
/// version moves (`v1 → v2 → v1` is byte-identical at the text
/// level and v1→…→v1 at the file level).
pub fn convert_corpus_with(
    input: impl AsRef<Path>,
    output: impl AsRef<Path>,
    to_binary: bool,
    opts: &VqdcWriteOptions,
) -> Result<ConvertStats, VqdError> {
    let input = input.as_ref().to_path_buf();
    let from_binary = sniff_vqdc(&input);
    let sessions = merge_corpora(&[input], output, to_binary, opts)?;
    Ok(ConvertStats {
        sessions,
        from_binary,
    })
}

/// Stream-concatenate `inputs` (in order) into one corpus at
/// `output` — the shard-order merge behind the multi-process sim
/// farm, and the general machinery behind [`convert_corpus_with`].
/// Binary output runs the two-pass [`VqdcWriter`] over the shard
/// sequence (schema scan across all inputs, then value replay), so
/// the merged file is byte-identical to converting the concatenated
/// sessions directly, at any shard split. Returns the total session
/// count.
pub fn merge_corpora(
    inputs: &[PathBuf],
    output: impl AsRef<Path>,
    to_binary: bool,
    opts: &VqdcWriteOptions,
) -> Result<usize, VqdError> {
    let output = output.as_ref();
    for input in inputs {
        if input == output {
            return Err(VqdError::Config(format!(
                "convert --in and --out are the same file ({})",
                input.display()
            )));
        }
    }
    let each_chunk = |f: &mut dyn FnMut(&[LabeledRun]) -> Result<(), VqdError>| {
        for input in inputs {
            let mut reader = CorpusReader::open(input)?;
            loop {
                let chunk = reader.next_chunk(DEFAULT_CHUNK_SESSIONS)?;
                if chunk.is_empty() {
                    break;
                }
                f(&chunk)?;
            }
        }
        Ok::<(), VqdError>(())
    };
    if to_binary {
        // Pass 1: schema scan across every input. Pass 2: replay the
        // same sessions through the streaming writer.
        let mut schema = VqdcSchema::new();
        each_chunk(&mut |chunk| schema.scan(chunk))?;
        let mut writer = VqdcWriter::create_with(output, schema, opts)?;
        each_chunk(&mut |chunk| writer.write_rows(chunk))?;
        writer.finish()
    } else {
        let f = File::create(output).map_err(|e| VqdError::io(output, e))?;
        let mut w = BufWriter::with_capacity(1 << 20, f);
        let mut sessions = 0usize;
        each_chunk(&mut |chunk| {
            sessions += chunk.len();
            w.write_all(corpus_to_text(chunk).as_bytes())
                .map_err(|e| VqdError::io(output, e))
        })?;
        w.flush().map_err(|e| VqdError::io(output, e))?;
        Ok(sessions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{corpus_from_text, corpus_to_text};
    use crate::scenario::GroundTruth;
    use crate::vqdc::{corpus_to_vqdc_bytes, corpus_to_vqdc_bytes_with};
    use vqd_faults::FaultKind;
    use vqd_video::QoeClass;

    fn sample() -> Vec<LabeledRun> {
        (0..7)
            .map(|i| LabeledRun {
                metrics: vec![
                    ("mobile.tcp.rtt".into(), i as f64 / 4.0),
                    ("mobile.phy.rssi".into(), -50.0 - i as f64),
                ],
                truth: GroundTruth {
                    fault: if i % 2 == 0 {
                        FaultKind::None
                    } else {
                        FaultKind::LowRssi
                    },
                    qoe: if i % 3 == 0 {
                        QoeClass::Good
                    } else {
                        QoeClass::Mild
                    },
                },
            })
            .collect()
    }

    fn tmp(name: &str, bytes: &[u8]) -> PathBuf {
        let p = std::env::temp_dir().join(format!("vqd-cs-{}-{name}", std::process::id()));
        std::fs::write(&p, bytes).unwrap();
        p
    }

    #[test]
    fn text_and_binary_stream_identically() {
        let runs = sample();
        let text = corpus_to_text(&runs);
        let tp = tmp("c.txt", text.as_bytes());
        let bp = tmp("c.vqdc", &corpus_to_vqdc_bytes(&runs).unwrap());
        for (path, is_bin) in [(&tp, false), (&bp, true)] {
            let mut r = CorpusReader::open(path).unwrap();
            assert_eq!(r.is_binary(), is_bin);
            let mut got = Vec::new();
            loop {
                let chunk = r.next_chunk(3).unwrap();
                if chunk.is_empty() {
                    break;
                }
                assert!(chunk.len() <= 3);
                got.extend(chunk);
            }
            assert_eq!(corpus_to_text(&got), text, "binary={is_bin}");
        }
        std::fs::remove_file(tp).ok();
        std::fs::remove_file(bp).ok();
    }

    #[test]
    fn streamed_convert_round_trips_bit_exactly() {
        let runs = sample();
        let text = corpus_to_text(&runs);
        let tp = tmp("conv.txt", text.as_bytes());
        let bp = std::env::temp_dir().join(format!("vqd-cs-{}-conv.vqdc", std::process::id()));
        let back = std::env::temp_dir().join(format!("vqd-cs-{}-back.txt", std::process::id()));
        let s = convert_corpus(&tp, &bp, true).unwrap();
        assert_eq!(s.sessions, runs.len());
        assert!(!s.from_binary);
        // Streamed text -> binary equals the batch encoder's bytes
        // (v2 is the default container).
        assert_eq!(
            std::fs::read(&bp).unwrap(),
            corpus_to_vqdc_bytes_with(&runs, &VqdcWriteOptions::default()).unwrap()
        );
        // Binary -> text recovers the original file byte for byte.
        let s = convert_corpus(&bp, &back, false).unwrap();
        assert_eq!(s.sessions, runs.len());
        assert!(s.from_binary);
        assert_eq!(std::fs::read_to_string(&back).unwrap(), text);
        // Same-file conversion is refused, input untouched.
        assert!(convert_corpus(&tp, &tp, true).is_err());
        assert_eq!(std::fs::read_to_string(&tp).unwrap(), text);
        for p in [&tp, &bp, &back] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn version_moves_are_byte_identical_both_directions() {
        let runs = sample();
        let id = std::process::id();
        let d = std::env::temp_dir();
        let v1a = d.join(format!("vqd-cs-{id}-m1.vqdc"));
        let v2 = d.join(format!("vqd-cs-{id}-m2.vqdc"));
        let v1b = d.join(format!("vqd-cs-{id}-m3.vqdc"));
        let txt = d.join(format!("vqd-cs-{id}-m4.txt"));
        std::fs::write(&v1a, corpus_to_vqdc_bytes(&runs).unwrap()).unwrap();
        // v1 -> v2 -> v1: the final v1 file equals the original one
        // byte for byte, and the v2 middle equals the batch encoder.
        convert_corpus_with(&v1a, &v2, true, &VqdcWriteOptions::default()).unwrap();
        assert_eq!(
            std::fs::read(&v2).unwrap(),
            corpus_to_vqdc_bytes_with(&runs, &VqdcWriteOptions::default()).unwrap()
        );
        convert_corpus_with(&v2, &v1b, true, &VqdcWriteOptions::v1()).unwrap();
        assert_eq!(std::fs::read(&v1a).unwrap(), std::fs::read(&v1b).unwrap());
        // …and at the text level.
        convert_corpus(&v2, &txt, false).unwrap();
        assert_eq!(
            std::fs::read_to_string(&txt).unwrap(),
            corpus_to_text(&runs)
        );
        for p in [&v1a, &v2, &v1b, &txt] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn merge_concatenates_shards_byte_identically() {
        let runs = sample();
        let id = std::process::id();
        let d = std::env::temp_dir();
        // Split the corpus into uneven text shards.
        let shards: Vec<PathBuf> = [&runs[..3], &runs[3..5], &runs[5..]]
            .iter()
            .enumerate()
            .map(|(k, part)| {
                let p = d.join(format!("vqd-cs-{id}-shard{k}.tsv"));
                std::fs::write(&p, corpus_to_text(part)).unwrap();
                p
            })
            .collect();
        let merged = d.join(format!("vqd-cs-{id}-merged.vqdc"));
        let n = merge_corpora(&shards, &merged, true, &VqdcWriteOptions::default()).unwrap();
        assert_eq!(n, runs.len());
        assert_eq!(
            std::fs::read(&merged).unwrap(),
            corpus_to_vqdc_bytes_with(&runs, &VqdcWriteOptions::default()).unwrap()
        );
        // Text-side merge concatenates exactly.
        let mtxt = d.join(format!("vqd-cs-{id}-merged.tsv"));
        merge_corpora(&shards, &mtxt, false, &VqdcWriteOptions::default()).unwrap();
        assert_eq!(
            std::fs::read_to_string(&mtxt).unwrap(),
            corpus_to_text(&runs)
        );
        for p in shards.iter().chain([&merged, &mtxt]) {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn text_errors_name_the_true_line_number() {
        let text = "none\tgood\ta=1.0\n\nwat\tgood\ta=1.0\n";
        let p = tmp("bad.txt", text.as_bytes());
        let mut r = CorpusReader::open(&p).unwrap();
        let e = loop {
            match r.next_chunk(10) {
                Ok(c) if c.is_empty() => panic!("expected parse error"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        // Line 3 (the blank line counts), same as corpus_from_text.
        assert!(e.to_string().contains("line 3"), "{e}");
        assert!(corpus_from_text(text).is_err());
        std::fs::remove_file(p).ok();
    }
}
