//! Ground-truth dataset generation (Section 4 of the paper).
//!
//! Iterates fault scenarios over the controlled testbed to produce the
//! labelled corpus: most sessions fault-free or lightly faulted
//! (yielding the paper's ~80 % *good* share), the rest spread across
//! the seven fault classes at random intensities. Sessions run in
//! parallel across OS threads — each simulation is single-threaded and
//! deterministic, so the corpus is reproducible regardless of thread
//! count.

use std::sync::Mutex;

use vqd_faults::{FaultKind, FaultPlan};
use vqd_ml::{Dataset, DatasetBuilder};
use vqd_simnet::rng::SimRng;
use vqd_video::catalog::Catalog;

use crate::realworld::{run_realworld_session, Access, RwSpec, Service};
use crate::scenario::{class_id, class_names, GroundTruth, LabelScheme};
use crate::testbed::{run_controlled_session, SessionOutcome, SessionSpec, WanProfile};

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of sessions to simulate.
    pub sessions: usize,
    /// Root seed.
    pub seed: u64,
    /// Probability a session gets an induced fault.
    pub p_fault: f64,
    /// Probability the WAN uses the cellular profile (else DSL).
    pub p_mobile_wan: f64,
    /// Probability the phone is docked on a *direct* cellular link
    /// (no WLAN, no router VP) — the testbed's equivalent of the
    /// paper's tc-simulated mobile access, needed so the lab corpus
    /// covers the access technology the wild deployment sees.
    pub p_cellular: f64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            sessions: 400,
            seed: 20150101,
            p_fault: 0.5,
            p_mobile_wan: 0.3,
            p_cellular: 0.2,
            threads: 0,
        }
    }
}

/// One labelled training instance.
#[derive(Debug, Clone)]
pub struct LabeledRun {
    /// Raw probe metrics.
    pub metrics: Vec<(String, f64)>,
    /// Ground truth.
    pub truth: GroundTruth,
}

impl From<SessionOutcome> for LabeledRun {
    fn from(o: SessionOutcome) -> Self {
        LabeledRun {
            metrics: o.metrics,
            truth: o.truth,
        }
    }
}

/// One corpus session: either the WiFi testbed or the cellular dock.
#[derive(Debug, Clone, Copy)]
pub enum CorpusSpec {
    /// Full testbed (Figure 2): phone on the WLAN behind the router.
    Lab(SessionSpec),
    /// Phone docked directly on a shaped cellular link (no WLAN).
    Cellular(RwSpec),
}

/// Draw the session specs for a corpus (deterministic in the seed).
pub fn draw_specs(cfg: &CorpusConfig) -> Vec<CorpusSpec> {
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    (0..cfg.sessions)
        .map(|i| {
            let fault = if rng.chance(cfg.p_fault) {
                let kind = FaultKind::ALL[rng.index(FaultKind::ALL.len())];
                FaultPlan::sample(kind, &mut rng)
            } else {
                FaultPlan::none()
            };
            let seed = cfg.seed ^ (0x9E37_79B9 * (i as u64 + 1));
            let background = rng.range_f64(0.1, 0.8);
            let wan = if rng.chance(cfg.p_mobile_wan) {
                WanProfile::Mobile
            } else {
                WanProfile::Dsl
            };
            if rng.chance(cfg.p_cellular) {
                CorpusSpec::Cellular(RwSpec {
                    seed,
                    access: Access::Cellular,
                    service: Service::Private,
                    fault,
                    background,
                    corporate: false,
                })
            } else {
                CorpusSpec::Lab(SessionSpec {
                    seed,
                    fault,
                    background,
                    wan,
                })
            }
        })
        .collect()
}

fn run_spec(spec: &CorpusSpec, catalog: &Catalog) -> SessionOutcome {
    match spec {
        CorpusSpec::Lab(s) => run_controlled_session(s, catalog),
        CorpusSpec::Cellular(s) => run_realworld_session(s, catalog),
    }
}

/// Simulate the corpus, in parallel.
pub fn generate_corpus(cfg: &CorpusConfig, catalog: &Catalog) -> Vec<LabeledRun> {
    let specs = draw_specs(cfg);
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        cfg.threads
    };
    let results: Mutex<Vec<Option<LabeledRun>>> = Mutex::new(vec![None; specs.len()]);
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(specs.len().max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let out = run_spec(&specs[i], catalog);
                results.lock().unwrap()[i] = Some(out.into());
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("session ran"))
        .collect()
}

/// Assemble runs into an ML dataset under a label scheme.
pub fn to_dataset(runs: &[LabeledRun], scheme: LabelScheme) -> Dataset {
    let mut b = DatasetBuilder::new(class_names(scheme));
    for r in runs {
        b.push(&r.metrics, class_id(&r.truth, scheme));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqd_video::QoeClass;

    #[test]
    fn specs_deterministic_and_mixed() {
        let cfg = CorpusConfig {
            sessions: 200,
            ..Default::default()
        };
        let a = draw_specs(&cfg);
        let b = draw_specs(&cfg);
        assert_eq!(a.len(), 200);
        let fault_of = |s: &CorpusSpec| match s {
            CorpusSpec::Lab(x) => x.fault.kind,
            CorpusSpec::Cellular(x) => x.fault.kind,
        };
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(fault_of(x), fault_of(y));
        }
        let faulted = a.iter().filter(|s| fault_of(s) != FaultKind::None).count();
        assert!((60..=140).contains(&faulted), "faulted {faulted}");
        let docked = a
            .iter()
            .filter(|s| matches!(s, CorpusSpec::Cellular(_)))
            .count();
        assert!(docked > 15 && docked < 90, "docked {docked}");
    }

    #[test]
    fn small_corpus_end_to_end() {
        let cfg = CorpusConfig {
            sessions: 12,
            seed: 5,
            p_fault: 0.6,
            ..Default::default()
        };
        let catalog = Catalog::top100(7);
        let runs = generate_corpus(&cfg, &catalog);
        assert_eq!(runs.len(), 12);
        // Every run produced metrics (cellular-dock sessions carry
        // two probes, WiFi testbed sessions three).
        for r in &runs {
            assert!(r.metrics.len() > 150, "metrics {}", r.metrics.len());
        }
        // At least one good session exists in a small sample.
        assert!(runs.iter().any(|r| r.truth.qoe == QoeClass::Good));
        let d = to_dataset(&runs, LabelScheme::Exact);
        assert_eq!(d.len(), 12);
        assert!(d.n_features() > 200);
        assert_eq!(d.classes.len(), 17);
    }
}
