//! Ground-truth dataset generation (Section 4 of the paper).
//!
//! Iterates fault scenarios over the controlled testbed to produce the
//! labelled corpus: most sessions fault-free or lightly faulted
//! (yielding the paper's ~80 % *good* share), the rest spread across
//! the seven fault classes at random intensities. Sessions run in
//! parallel across OS threads — each simulation is single-threaded and
//! deterministic, so the corpus is reproducible regardless of thread
//! count.

use std::sync::Mutex;

use vqd_faults::{FaultKind, FaultPlan};
use vqd_ml::{Dataset, DatasetBuilder};
use vqd_simnet::rng::SimRng;
use vqd_video::catalog::Catalog;

use vqd_video::QoeClass;

use vqd_simnet::engine::SimArena;

use crate::error::VqdError;
use crate::realworld::{run_realworld_session_in, Access, RwSpec, Service};
use crate::scenario::{class_id, class_names, GroundTruth, LabelScheme};
use crate::testbed::{run_controlled_session_in, SessionOutcome, SessionSpec, WanProfile};

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of sessions to simulate.
    pub sessions: usize,
    /// Root seed.
    pub seed: u64,
    /// Probability a session gets an induced fault.
    pub p_fault: f64,
    /// Probability the WAN uses the cellular profile (else DSL).
    pub p_mobile_wan: f64,
    /// Probability the phone is docked on a *direct* cellular link
    /// (no WLAN, no router VP) — the testbed's equivalent of the
    /// paper's tc-simulated mobile access, needed so the lab corpus
    /// covers the access technology the wild deployment sees.
    pub p_cellular: f64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            sessions: 400,
            seed: 20150101,
            p_fault: 0.5,
            p_mobile_wan: 0.3,
            p_cellular: 0.2,
            threads: 0,
        }
    }
}

/// One labelled training instance.
#[derive(Debug, Clone)]
pub struct LabeledRun {
    /// Raw probe metrics.
    pub metrics: Vec<(String, f64)>,
    /// Ground truth.
    pub truth: GroundTruth,
}

impl From<SessionOutcome> for LabeledRun {
    fn from(o: SessionOutcome) -> Self {
        LabeledRun {
            metrics: o.metrics,
            truth: o.truth,
        }
    }
}

/// One corpus session: either the WiFi testbed or the cellular dock.
#[derive(Debug, Clone, Copy)]
pub enum CorpusSpec {
    /// Full testbed (Figure 2): phone on the WLAN behind the router.
    Lab(SessionSpec),
    /// Phone docked directly on a shaped cellular link (no WLAN).
    Cellular(RwSpec),
}

/// Draw the session specs for a corpus (deterministic in the seed).
pub fn draw_specs(cfg: &CorpusConfig) -> Vec<CorpusSpec> {
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    (0..cfg.sessions)
        .map(|i| {
            let fault = if rng.chance(cfg.p_fault) {
                let kind = FaultKind::ALL[rng.index(FaultKind::ALL.len())];
                FaultPlan::sample(kind, &mut rng)
            } else {
                FaultPlan::none()
            };
            let seed = cfg.seed ^ (0x9E37_79B9 * (i as u64 + 1));
            let background = rng.range_f64(0.1, 0.8);
            let wan = if rng.chance(cfg.p_mobile_wan) {
                WanProfile::Mobile
            } else {
                WanProfile::Dsl
            };
            if rng.chance(cfg.p_cellular) {
                CorpusSpec::Cellular(RwSpec {
                    seed,
                    access: Access::Cellular,
                    service: Service::Private,
                    fault,
                    background,
                    corporate: false,
                })
            } else {
                CorpusSpec::Lab(SessionSpec {
                    seed,
                    fault,
                    background,
                    wan,
                })
            }
        })
        .collect()
}

pub(crate) fn run_spec(
    spec: &CorpusSpec,
    catalog: &Catalog,
    arena: &mut SimArena,
) -> SessionOutcome {
    match spec {
        CorpusSpec::Lab(s) => run_controlled_session_in(s, catalog, arena),
        CorpusSpec::Cellular(s) => run_realworld_session_in(s, catalog, arena),
    }
}

/// Throughput summary for one corpus generation run.
#[derive(Debug, Clone, Copy)]
pub struct CorpusGenStats {
    /// Sessions simulated.
    pub sessions: usize,
    /// Wall-clock seconds for the whole corpus.
    pub wall_s: f64,
    /// Sessions per wall-clock second.
    pub sessions_per_sec: f64,
    /// Simulator events dispatched across all sessions.
    pub events: u64,
    /// Events dispatched per wall-clock second.
    pub events_per_sec: f64,
    /// Median per-session wall time, milliseconds.
    pub p50_session_ms: f64,
    /// 95th-percentile per-session wall time, milliseconds.
    pub p95_session_ms: f64,
    /// 99th-percentile per-session wall time, milliseconds.
    pub p99_session_ms: f64,
}

/// Simulate the corpus, in parallel.
pub fn generate_corpus(cfg: &CorpusConfig, catalog: &Catalog) -> Vec<LabeledRun> {
    generate_corpus_with_stats(cfg, catalog).0
}

/// Like [`generate_corpus`], but also reports throughput. Each worker
/// thread keeps one [`SimArena`] so host/link/flow/event storage is
/// recycled across the sessions it runs.
pub fn generate_corpus_with_stats(
    cfg: &CorpusConfig,
    catalog: &Catalog,
) -> (Vec<LabeledRun>, CorpusGenStats) {
    let _span = vqd_obs::WallSpan::begin("generate", "pipeline");
    let specs = draw_specs(cfg);
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        cfg.threads
    };
    let start = std::time::Instant::now();
    let results: Mutex<Vec<Option<(LabeledRun, u64, f64)>>> = Mutex::new(vec![None; specs.len()]);
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(specs.len().max(1)) {
            s.spawn(|| {
                let mut arena = SimArena::default();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= specs.len() {
                        break;
                    }
                    let t0 = std::time::Instant::now();
                    let out = run_spec(&specs[i], catalog, &mut arena);
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    let events = out.events;
                    results
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)[i] =
                        Some((out.into(), events, ms));
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let mut runs = Vec::with_capacity(specs.len());
    let mut events: u64 = 0;
    let mut times = vqd_obs::LogHistogram::new();
    let obs_on = vqd_obs::enabled();
    for r in results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        let (run, ev, ms) = r.expect("session ran");
        runs.push(run);
        events += ev;
        times.record(ms);
        if obs_on {
            vqd_obs::recorder().hist_record("core.session.wall_ms", ms);
        }
    }
    let (p50, p95, p99) = times.percentiles();
    let stats = CorpusGenStats {
        sessions: runs.len(),
        wall_s,
        sessions_per_sec: runs.len() as f64 / wall_s.max(1e-9),
        events,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        p50_session_ms: p50,
        p95_session_ms: p95,
        p99_session_ms: p99,
    };
    if vqd_obs::enabled() {
        let r = vqd_obs::recorder();
        r.gauge_set("core.corpus.sessions_per_sec", stats.sessions_per_sec);
        r.gauge_set("core.corpus.events_per_sec", stats.events_per_sec);
        r.gauge_set("core.corpus.wall_s", stats.wall_s);
        r.counter_add("core.corpus.sessions", stats.sessions as u64);
    }
    (runs, stats)
}

/// Serialise a corpus to the tab-separated on-disk format: one run
/// per line, `fault\tqoe\tname=value\t…`. Floats use Rust's `{:?}`
/// round-trip formatting, so [`corpus_from_text`] recovers them
/// bit-exactly (including NaN for missing readings).
pub fn corpus_to_text(runs: &[LabeledRun]) -> String {
    let mut s = String::new();
    for r in runs {
        s.push_str(r.truth.fault.name());
        s.push('\t');
        s.push_str(r.truth.qoe.name());
        for (n, v) in &r.metrics {
            s.push_str(&format!("\t{n}={v:?}"));
        }
        s.push('\n');
    }
    s
}

/// Parse a corpus written by [`corpus_to_text`]. Strict: unknown
/// fault or QoE names, malformed `name=value` tokens and non-numeric
/// values are errors naming the 1-based line, not silently defaulted
/// — a typo'd corpus must not train a mislabelled model.
pub fn corpus_from_text(text: &str) -> Result<Vec<LabeledRun>, VqdError> {
    let mut runs = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        runs.push(parse_corpus_line(idx + 1, line)?);
    }
    Ok(runs)
}

/// Parse one non-empty line of the text corpus format (`lineno` is the
/// 1-based line number, used in error messages). This is the unit the
/// streaming corpus reader consumes, so corpora larger than memory
/// parse line by line with the exact [`corpus_from_text`] semantics.
pub fn parse_corpus_line(lineno: usize, line: &str) -> Result<LabeledRun, VqdError> {
    let mut parts = line.split('\t');
    let fault_name = parts.next().unwrap_or("");
    // `FaultKind::ALL` is the injectable set; "none" is separate.
    let fault = if fault_name == FaultKind::None.name() {
        FaultKind::None
    } else {
        FaultKind::ALL
            .iter()
            .copied()
            .find(|f| f.name() == fault_name)
            .ok_or_else(|| VqdError::corpus(lineno, format!("unknown fault {fault_name:?}")))?
    };
    let qoe = match parts.next() {
        Some("good") => QoeClass::Good,
        Some("mild") => QoeClass::Mild,
        Some("severe") => QoeClass::Severe,
        other => {
            return Err(VqdError::corpus(
                lineno,
                format!(
                    "unknown QoE class {:?} (expected good|mild|severe)",
                    other.unwrap_or("")
                ),
            ))
        }
    };
    let mut metrics = Vec::new();
    for kv in parts {
        let (k, v) = kv.split_once('=').ok_or_else(|| {
            VqdError::corpus(lineno, format!("metric token {kv:?} is not name=value"))
        })?;
        let value: f64 = v.parse().map_err(|_| {
            VqdError::corpus(lineno, format!("metric {k:?} has non-numeric value {v:?}"))
        })?;
        metrics.push((k.to_string(), value));
    }
    Ok(LabeledRun {
        metrics,
        truth: GroundTruth { fault, qoe },
    })
}

/// Assemble runs into an ML dataset under a label scheme.
pub fn to_dataset(runs: &[LabeledRun], scheme: LabelScheme) -> Dataset {
    let mut b = DatasetBuilder::new(class_names(scheme));
    for r in runs {
        b.push(&r.metrics, class_id(&r.truth, scheme));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqd_video::QoeClass;

    #[test]
    fn specs_deterministic_and_mixed() {
        let cfg = CorpusConfig {
            sessions: 200,
            ..Default::default()
        };
        let a = draw_specs(&cfg);
        let b = draw_specs(&cfg);
        assert_eq!(a.len(), 200);
        let fault_of = |s: &CorpusSpec| match s {
            CorpusSpec::Lab(x) => x.fault.kind,
            CorpusSpec::Cellular(x) => x.fault.kind,
        };
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(fault_of(x), fault_of(y));
        }
        let faulted = a.iter().filter(|s| fault_of(s) != FaultKind::None).count();
        assert!((60..=140).contains(&faulted), "faulted {faulted}");
        let docked = a
            .iter()
            .filter(|s| matches!(s, CorpusSpec::Cellular(_)))
            .count();
        assert!(docked > 15 && docked < 90, "docked {docked}");
    }

    #[test]
    fn corpus_text_round_trips_bit_exactly() {
        let runs = vec![
            LabeledRun {
                metrics: vec![
                    ("mobile.phy.rssi_avg".into(), -62.25),
                    ("mobile.hw.cpu_avg".into(), f64::NAN),
                ],
                truth: GroundTruth {
                    fault: FaultKind::LowRssi,
                    qoe: QoeClass::Severe,
                },
            },
            LabeledRun {
                metrics: vec![("server.tcp.c2s.iat_avg".into(), 0.1)],
                truth: GroundTruth {
                    fault: FaultKind::None,
                    qoe: QoeClass::Good,
                },
            },
        ];
        let text = corpus_to_text(&runs);
        let back = corpus_from_text(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].truth.fault, FaultKind::LowRssi);
        assert_eq!(back[0].truth.qoe, QoeClass::Severe);
        for (a, b) in runs[0].metrics.iter().zip(&back[0].metrics) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn corpus_parse_errors_name_the_line() {
        let err = |text: &str| corpus_from_text(text).unwrap_err().to_string();
        let good = "none\tgood\ta.b.c=1.0\n";
        assert!(corpus_from_text(good).is_ok());

        let e = err("none\tgood\ta=1.0\nwat\tgood\ta=1.0\n");
        assert!(e.contains("line 2") && e.contains("wat"), "{e}");

        let e = err("none\tterrible\ta=1.0\n");
        assert!(e.contains("line 1") && e.contains("terrible"), "{e}");

        let e = err("none\tgood\tnovalue\n");
        assert!(e.contains("name=value"), "{e}");

        let e = err("none\tgood\ta=abc\n");
        assert!(e.contains("non-numeric"), "{e}");
    }

    #[test]
    fn small_corpus_end_to_end() {
        let cfg = CorpusConfig {
            sessions: 12,
            seed: 5,
            p_fault: 0.6,
            ..Default::default()
        };
        let catalog = Catalog::top100(7);
        let runs = generate_corpus(&cfg, &catalog);
        assert_eq!(runs.len(), 12);
        // Every run produced metrics (cellular-dock sessions carry
        // two probes, WiFi testbed sessions three).
        for r in &runs {
            assert!(r.metrics.len() > 150, "metrics {}", r.metrics.len());
        }
        // At least one good session exists in a small sample.
        assert!(runs.iter().any(|r| r.truth.qoe == QoeClass::Good));
        let d = to_dataset(&runs, LabelScheme::Exact);
        assert_eq!(d.len(), 12);
        assert!(d.n_features() > 200);
        assert_eq!(d.classes.len(), 17);
    }
}
