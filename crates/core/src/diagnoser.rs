//! The public diagnosis API: train a root-cause model, diagnose
//! sessions.
//!
//! [`Diagnoser::train`] runs the paper's full pipeline — feature
//! construction, FCBF feature selection, C4.5 — on a raw labelled
//! dataset; [`Diagnoser::diagnose`] maps one session's raw probe
//! metrics (from any subset of vantage points) to a class label.
//! Missing vantage points simply produce missing features, which the
//! tree handles natively.

use vqd_features::{fcbf, FeatureConstructor};
use vqd_ml::cv::cross_validate_threads;
use vqd_ml::dataset::Dataset;
use vqd_ml::dtree::{C45Config, C45Trainer, DecisionTree};
use vqd_ml::metrics::ConfusionMatrix;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct DiagnoserConfig {
    /// Apply feature construction (normalisation).
    pub use_fc: bool,
    /// Apply FCBF feature selection.
    pub use_fs: bool,
    /// Minimum SU with the class for FCBF relevance.
    pub fcbf_delta: f64,
    /// C4.5 settings.
    pub tree: C45Config,
}

impl Default for DiagnoserConfig {
    fn default() -> Self {
        DiagnoserConfig {
            use_fc: true,
            use_fs: true,
            fcbf_delta: 0.01,
            tree: C45Config::default(),
        }
    }
}

/// A trained root-cause diagnosis model.
pub struct Diagnoser {
    constructor: Option<FeatureConstructor>,
    /// Post-FC, post-FS feature schema the tree expects.
    pub feature_names: Vec<String>,
    /// Class names.
    pub classes: Vec<String>,
    tree: DecisionTree,
}

/// One diagnosis.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// Predicted class name (e.g. `"wifi_interference_severe"`).
    pub label: String,
    /// Predicted class index.
    pub class: usize,
    /// Class probability distribution.
    pub dist: Vec<f64>,
}

/// A raw dataset already run through feature construction and
/// selection, ready for (repeated) model training.
///
/// [`Diagnoser::prepare`] is the single FC + FCBF pass; `train`,
/// `cross_validate` and the experiment/ablation drivers in this crate
/// all consume a `PreparedPipeline` so the pass runs once per corpus
/// instead of once per evaluation.
pub struct PreparedPipeline {
    /// The transformed, feature-selected dataset.
    pub data: Dataset,
    /// The fitted feature constructor (when `use_fc`).
    pub constructor: Option<FeatureConstructor>,
}

impl Diagnoser {
    /// Run the discretisation-free part of the pipeline once: feature
    /// construction (when `use_fc`) and FCBF selection (when
    /// `use_fs`). The result can back any number of `*_prepared`
    /// calls.
    pub fn prepare(raw: &Dataset, cfg: &DiagnoserConfig) -> PreparedPipeline {
        let (data, constructor) = Self::prepare_impl(raw, cfg);
        PreparedPipeline { data, constructor }
    }

    /// Prepare a raw dataset through FC + FS, returning the prepared
    /// dataset and the fitted constructor.
    fn prepare_impl(raw: &Dataset, cfg: &DiagnoserConfig) -> (Dataset, Option<FeatureConstructor>) {
        let (data, constructor) = if cfg.use_fc {
            let c = FeatureConstructor::fit(raw);
            (c.transform(raw), Some(c))
        } else {
            (raw.clone(), None)
        };
        let data = if cfg.use_fs {
            // Global FCBF plus a per-vantage-point pass, unioned: the
            // global pass alone tends to keep one VP's copy of a
            // correlated metric and discard the others', which would
            // leave the remaining entities unable to diagnose alone —
            // contradicting the paper's per-entity independence (its
            // Table 1 likewise retains per-VP variants such as mobile,
            // router *and* server RTT).
            let mut names = fcbf(&data, cfg.fcbf_delta).names;
            let vps: std::collections::BTreeSet<String> = data
                .features
                .iter()
                .filter_map(|n| n.split('.').next().map(str::to_string))
                .collect();
            for vp in vps {
                let sub = data.select_features_by(|n| n.starts_with(&vp));
                for n in fcbf(&sub, cfg.fcbf_delta).names {
                    if !names.contains(&n) {
                        names.push(n);
                    }
                }
            }
            if names.is_empty() {
                data
            } else {
                data.select_features(&names)
            }
        } else {
            data
        };
        (data, constructor)
    }

    /// Train on a raw labelled dataset.
    pub fn train(raw: &Dataset, cfg: &DiagnoserConfig) -> Diagnoser {
        Self::train_prepared(&Self::prepare(raw, cfg), cfg)
    }

    /// Train on an already-prepared pipeline (see
    /// [`Diagnoser::prepare`]); skips the FC + FCBF pass.
    pub fn train_prepared(prep: &PreparedPipeline, cfg: &DiagnoserConfig) -> Diagnoser {
        let data = &prep.data;
        let rows: Vec<usize> = (0..data.len()).collect();
        let tree = C45Trainer { cfg: cfg.tree }.fit(data, &rows);
        Diagnoser {
            constructor: prep.constructor.clone(),
            feature_names: data.features.clone(),
            classes: data.classes.clone(),
            tree,
        }
    }

    /// The selected features (post-FS schema) — the paper's Table 1.
    pub fn selected_features(&self) -> &[String] {
        &self.feature_names
    }

    /// The underlying decision tree (interpretable — Section 3.2).
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// Build the tree-space row for raw instance metrics.
    fn row_for(&self, metrics: &[(String, f64)]) -> Vec<f64> {
        let transformed;
        let view: &[(String, f64)] = match &self.constructor {
            Some(c) => {
                transformed = c.transform_instance(metrics);
                &transformed
            }
            None => metrics,
        };
        self.feature_names
            .iter()
            .map(|name| {
                view.iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or(f64::NAN)
            })
            .collect()
    }

    /// Diagnose one session from raw probe metrics (any VP subset).
    pub fn diagnose(&self, metrics: &[(String, f64)]) -> Diagnosis {
        let row = self.row_for(metrics);
        let mut dist = self.tree.predict_dist(&row);
        let total: f64 = dist.iter().sum();
        if total > 0.0 {
            for d in &mut dist {
                *d /= total;
            }
        }
        let class = dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        Diagnosis {
            label: self.classes[class].clone(),
            class,
            dist,
        }
    }

    /// Serialise the whole diagnoser (pipeline flags + tree) to a
    /// dependency-free text format.
    pub fn serialize(&self) -> String {
        let mut s = String::from("vqd-diagnoser v1\n");
        s.push_str(&format!("fc\t{}\n", self.constructor.is_some()));
        s.push_str(&self.tree.serialize());
        s
    }

    /// Load a diagnoser serialised with [`Diagnoser::serialize`].
    pub fn deserialize(text: &str) -> Result<Diagnoser, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("vqd-diagnoser v1") => {}
            other => return Err(format!("bad header: {other:?}")),
        }
        let fc = match lines.next() {
            Some("fc\ttrue") => true,
            Some("fc\tfalse") => false,
            other => return Err(format!("bad fc line: {other:?}")),
        };
        let rest: String = lines.collect::<Vec<_>>().join("\n");
        let tree = DecisionTree::deserialize(&rest)?;
        Ok(Diagnoser {
            constructor: fc.then(FeatureConstructor::default),
            feature_names: tree.feature_names.clone(),
            classes: tree.class_names.clone(),
            tree,
        })
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.serialize())
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Diagnoser, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        Self::deserialize(&text)
    }

    /// Evaluate this trained model on an independent raw dataset
    /// (classes must match by name; extra/missing feature columns are
    /// handled by name alignment).
    pub fn evaluate(&self, raw: &Dataset) -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new(self.classes.clone());
        for i in 0..raw.len() {
            let metrics: Vec<(String, f64)> = raw
                .features
                .iter()
                .cloned()
                .zip(raw.x[i].iter().copied())
                .filter(|(_, v)| !v.is_nan())
                .collect();
            let d = self.diagnose(&metrics);
            // Align class by name.
            let actual_name = &raw.classes[raw.y[i]];
            let actual = self
                .classes
                .iter()
                .position(|c| c == actual_name)
                .unwrap_or(0);
            cm.add(actual, d.class);
        }
        cm
    }

    /// 10-fold (or k-fold) cross-validation of the full pipeline on a
    /// raw dataset: FC/FS are fitted once on the full data (as the
    /// paper does with Weka), the tree is cross-validated. Folds run
    /// in parallel (governed by `cfg.tree.threads`); the result is
    /// identical for every thread count.
    pub fn cross_validate(
        raw: &Dataset,
        cfg: &DiagnoserConfig,
        k: usize,
        seed: u64,
    ) -> ConfusionMatrix {
        Self::cross_validate_prepared(&Self::prepare(raw, cfg), cfg, k, seed)
    }

    /// [`Diagnoser::cross_validate`] on an already-prepared pipeline;
    /// skips the FC + FCBF pass.
    pub fn cross_validate_prepared(
        prep: &PreparedPipeline,
        cfg: &DiagnoserConfig,
        k: usize,
        seed: u64,
    ) -> ConfusionMatrix {
        cross_validate_threads(
            &C45Trainer { cfg: cfg.tree },
            &prep.data,
            k,
            seed,
            cfg.tree.threads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqd_simnet::rng::SimRng;

    /// Synthetic "raw probe metrics" with the naming shape of real
    /// ones: rssi drives the class, retx is its redundant echo, plus
    /// count columns that need normalisation.
    fn synthetic(n: usize, seed: u64) -> Dataset {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut d = Dataset::new(
            vec![
                "mobile.phy.rssi_avg".into(),
                "mobile.tcp.s2c.retx_pkts".into(),
                "mobile.tcp.total_pkts".into(),
                "mobile.tcp.total_data_bytes".into(),
                "mobile.hw.cpu_avg".into(),
            ],
            vec!["good".into(), "low_rssi_severe".into()],
        );
        for _ in 0..n {
            let c = rng.index(2);
            let rssi = if c == 0 {
                rng.normal(-50.0, 4.0)
            } else {
                rng.normal(-85.0, 4.0)
            };
            let pkts = rng.range_f64(500.0, 5000.0);
            let retx_rate = if c == 0 { 0.005 } else { 0.08 };
            d.push(
                vec![
                    rssi,
                    pkts * retx_rate,
                    pkts,
                    pkts * 1400.0,
                    rng.range_f64(0.1, 0.5),
                ],
                c,
            );
        }
        d
    }

    #[test]
    fn train_and_diagnose() {
        let d = synthetic(400, 1);
        let model = Diagnoser::train(&d, &DiagnoserConfig::default());
        let good = model.diagnose(&[
            ("mobile.phy.rssi_avg".into(), -48.0),
            ("mobile.tcp.s2c.retx_pkts".into(), 4.0),
            ("mobile.tcp.total_pkts".into(), 1000.0),
            ("mobile.tcp.total_data_bytes".into(), 1.4e6),
            ("mobile.hw.cpu_avg".into(), 0.3),
        ]);
        assert_eq!(good.label, "good");
        let bad = model.diagnose(&[
            ("mobile.phy.rssi_avg".into(), -88.0),
            ("mobile.tcp.s2c.retx_pkts".into(), 90.0),
            ("mobile.tcp.total_pkts".into(), 1000.0),
            ("mobile.tcp.total_data_bytes".into(), 1.4e6),
            ("mobile.hw.cpu_avg".into(), 0.3),
        ]);
        assert_eq!(bad.label, "low_rssi_severe");
        assert!(bad.dist[bad.class] > 0.5);
    }

    #[test]
    fn missing_vantage_point_still_diagnoses() {
        let d = synthetic(400, 2);
        let model = Diagnoser::train(&d, &DiagnoserConfig::default());
        // No RSSI available at all (server-only view).
        let dx = model.diagnose(&[
            ("mobile.tcp.s2c.retx_pkts".into(), 90.0),
            ("mobile.tcp.total_pkts".into(), 1000.0),
            ("mobile.tcp.total_data_bytes".into(), 1.4e6),
        ]);
        assert!(dx.class < 2);
    }

    #[test]
    fn cross_validation_accuracy() {
        let d = synthetic(400, 3);
        let cm = Diagnoser::cross_validate(&d, &DiagnoserConfig::default(), 10, 1);
        assert!(cm.accuracy() > 0.9, "acc {}", cm.accuracy());
        assert_eq!(cm.total(), 400);
    }

    #[test]
    fn fs_reduces_schema() {
        let d = synthetic(500, 4);
        let with_fs = Diagnoser::train(&d, &DiagnoserConfig::default());
        let without = Diagnoser::train(
            &d,
            &DiagnoserConfig {
                use_fs: false,
                ..Default::default()
            },
        );
        assert!(with_fs.feature_names.len() <= without.feature_names.len());
        assert!(
            with_fs.feature_names.len() <= 3,
            "{:?}",
            with_fs.feature_names
        );
    }

    #[test]
    fn save_load_round_trip() {
        let d = synthetic(300, 8);
        let model = Diagnoser::train(&d, &DiagnoserConfig::default());
        let text = model.serialize();
        let back = Diagnoser::deserialize(&text).unwrap();
        assert_eq!(back.classes, model.classes);
        assert_eq!(back.feature_names, model.feature_names);
        let probe = vec![
            ("mobile.phy.rssi_avg".to_string(), -85.0),
            ("mobile.tcp.s2c.retx_pkts".to_string(), 80.0),
            ("mobile.tcp.total_pkts".to_string(), 1000.0),
            ("mobile.tcp.total_data_bytes".to_string(), 1.4e6),
            ("mobile.hw.cpu_avg".to_string(), 0.3),
        ];
        assert_eq!(back.diagnose(&probe).label, model.diagnose(&probe).label);
        assert!(Diagnoser::deserialize("junk").is_err());
    }

    #[test]
    fn evaluate_on_fresh_data() {
        let train = synthetic(400, 5);
        let test = synthetic(150, 99);
        let model = Diagnoser::train(&train, &DiagnoserConfig::default());
        let cm = model.evaluate(&test);
        assert_eq!(cm.total(), 150);
        assert!(cm.accuracy() > 0.9, "acc {}", cm.accuracy());
    }
}
