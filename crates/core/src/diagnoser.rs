//! The public diagnosis API: train a root-cause model, diagnose
//! sessions.
//!
//! [`Diagnoser::train`] runs the paper's full pipeline — feature
//! construction, FCBF feature selection, C4.5 — on a raw labelled
//! dataset; [`Diagnoser::diagnose`] maps one session's raw probe
//! metrics (from any subset of vantage points) to a class label.
//! Missing vantage points simply produce missing features, which the
//! tree handles natively.

use vqd_features::{fcbf, FeatureConstructor};
use vqd_ml::cv::cross_validate_threads;
use vqd_ml::dataset::Dataset;
use vqd_ml::dtree::{C45Config, C45Trainer, DecisionTree};
use vqd_ml::metrics::ConfusionMatrix;
use vqd_ml::ModelParseError;

use crate::error::VqdError;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct DiagnoserConfig {
    /// Apply feature construction (normalisation).
    pub use_fc: bool,
    /// Apply FCBF feature selection.
    pub use_fs: bool,
    /// Minimum SU with the class for FCBF relevance.
    pub fcbf_delta: f64,
    /// C4.5 settings.
    pub tree: C45Config,
    /// Feature-coverage floor for *exact* root-cause answers: when the
    /// importance-weighted fraction of tree-relevant features present
    /// in a session drops below this, the diagnosis is downgraded to a
    /// localisation (Q2) answer.
    pub min_coverage_exact: f64,
    /// Coverage floor for localisation answers: below this only
    /// problem existence (Q1) is reported.
    pub min_coverage_location: f64,
}

impl Default for DiagnoserConfig {
    fn default() -> Self {
        DiagnoserConfig {
            use_fc: true,
            use_fs: true,
            fcbf_delta: 0.01,
            tree: C45Config::default(),
            min_coverage_exact: 0.45,
            min_coverage_location: 0.15,
        }
    }
}

/// A trained root-cause diagnosis model.
pub struct Diagnoser {
    constructor: Option<FeatureConstructor>,
    /// Post-FC, post-FS feature schema the tree expects.
    pub feature_names: Vec<String>,
    /// Class names.
    pub classes: Vec<String>,
    tree: DecisionTree,
    /// Fallback thresholds, copied from the training config
    /// (defaults when the model was loaded from disk).
    pub(crate) min_coverage_exact: f64,
    pub(crate) min_coverage_location: f64,
    /// The serving-path compilation of this model (flattened tree,
    /// interned schema, pre-resolved projections) — see
    /// [`crate::serving`].
    pub(crate) compiled: crate::serving::CompiledModel,
    /// Training-time feature/label distribution stamp
    /// ([`crate::drift`]); `None` for models loaded from a v1 file.
    pub(crate) drift: Option<crate::drift::DriftStamp>,
}

/// How specific an answer the available telemetry supports — the
/// paper's three questions, coarsest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Resolution {
    /// Q1: a problem exists (good / mild / severe).
    Existence,
    /// Q2: the problem's location (mobile / lan / wan).
    Location,
    /// Q3: the exact root cause.
    Exact,
}

/// How trustworthy one diagnosis is, given the telemetry that was
/// actually present (§6.2's partial-deployment reality).
#[derive(Debug, Clone)]
pub struct DiagnosisQuality {
    /// Importance-weighted fraction of tree-relevant features present
    /// in the session (`[0, 1]`; 1 = the model saw everything it uses).
    pub feature_coverage: f64,
    /// Vantage points the model schema expects but that contributed no
    /// reading at all (crashed or undeployed probes).
    pub silent_vps: Vec<String>,
    /// Fraction of the prediction weight that reached leaves through
    /// missing-value fallback branches.
    pub missing_descent: f64,
    /// Top-class probability after downgrading for evidence that
    /// arrived via missing-branch fallbacks (shrunk toward chance).
    pub confidence: f64,
}

/// One diagnosis.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// Predicted class name (e.g. `"wifi_interference_severe"`) at the
    /// model's native granularity, regardless of telemetry quality.
    pub label: String,
    /// Predicted class index.
    pub class: usize,
    /// Class probability distribution.
    pub dist: Vec<f64>,
    /// Telemetry-quality report for this session.
    pub quality: DiagnosisQuality,
    /// The most specific question the available telemetry supports.
    pub resolution: Resolution,
    /// The downgraded (Q1/Q2) answer when `resolution` is coarser than
    /// exact: the class distribution projected onto location or
    /// existence classes, argmaxed.
    pub fallback_label: Option<String>,
}

impl Diagnosis {
    /// The answer to report: the exact label when coverage supports
    /// it, else the coarser fallback.
    pub fn answer(&self) -> &str {
        self.fallback_label.as_deref().unwrap_or(&self.label)
    }
}

/// A raw dataset already run through feature construction and
/// selection, ready for (repeated) model training.
///
/// [`Diagnoser::prepare`] is the single FC + FCBF pass; `train`,
/// `cross_validate` and the experiment/ablation drivers in this crate
/// all consume a `PreparedPipeline` so the pass runs once per corpus
/// instead of once per evaluation.
pub struct PreparedPipeline {
    /// The transformed, feature-selected dataset.
    pub data: Dataset,
    /// The fitted feature constructor (when `use_fc`).
    pub constructor: Option<FeatureConstructor>,
}

impl Diagnoser {
    /// Run the discretisation-free part of the pipeline once: feature
    /// construction (when `use_fc`) and FCBF selection (when
    /// `use_fs`). The result can back any number of `*_prepared`
    /// calls.
    pub fn prepare(raw: &Dataset, cfg: &DiagnoserConfig) -> PreparedPipeline {
        let (data, constructor) = Self::prepare_impl(raw, cfg);
        PreparedPipeline { data, constructor }
    }

    /// Prepare a raw dataset through FC + FS, returning the prepared
    /// dataset and the fitted constructor.
    fn prepare_impl(raw: &Dataset, cfg: &DiagnoserConfig) -> (Dataset, Option<FeatureConstructor>) {
        let (data, constructor) = {
            let _span = vqd_obs::WallSpan::begin("construct", "pipeline");
            if cfg.use_fc {
                let c = FeatureConstructor::fit(raw);
                (c.transform(raw), Some(c))
            } else {
                (raw.clone(), None)
            }
        };
        let _span = vqd_obs::WallSpan::begin("select", "pipeline");
        let data = if cfg.use_fs {
            // Global FCBF plus a per-vantage-point pass, unioned: the
            // global pass alone tends to keep one VP's copy of a
            // correlated metric and discard the others', which would
            // leave the remaining entities unable to diagnose alone —
            // contradicting the paper's per-entity independence (its
            // Table 1 likewise retains per-VP variants such as mobile,
            // router *and* server RTT).
            let mut names = fcbf(&data, cfg.fcbf_delta).names;
            let vps: std::collections::BTreeSet<String> = data
                .features
                .iter()
                .filter_map(|n| n.split('.').next().map(str::to_string))
                .collect();
            for vp in vps {
                let sub = data.select_features_by(|n| n.starts_with(&vp));
                for n in fcbf(&sub, cfg.fcbf_delta).names {
                    if !names.contains(&n) {
                        names.push(n);
                    }
                }
            }
            if names.is_empty() {
                data
            } else {
                data.select_features(&names)
            }
        } else {
            data
        };
        (data, constructor)
    }

    /// Train on a raw labelled dataset.
    pub fn train(raw: &Dataset, cfg: &DiagnoserConfig) -> Diagnoser {
        Self::train_prepared(&Self::prepare(raw, cfg), cfg)
    }

    /// Train on an already-prepared pipeline (see
    /// [`Diagnoser::prepare`]); skips the FC + FCBF pass.
    pub fn train_prepared(prep: &PreparedPipeline, cfg: &DiagnoserConfig) -> Diagnoser {
        let _span = vqd_obs::WallSpan::begin("train", "pipeline");
        let data = &prep.data;
        let rows: Vec<usize> = (0..data.len()).collect();
        let tree = C45Trainer { cfg: cfg.tree }.fit(data, &rows);
        let compiled = crate::serving::CompiledModel::build(&tree, prep.constructor.is_some());
        let drift = crate::drift::DriftStamp::from_dataset(data);
        Diagnoser {
            constructor: prep.constructor.clone(),
            feature_names: data.features.clone(),
            classes: data.classes.clone(),
            tree,
            min_coverage_exact: cfg.min_coverage_exact,
            min_coverage_location: cfg.min_coverage_location,
            compiled,
            drift: Some(drift),
        }
    }

    /// Assemble a diagnoser around an externally-fitted tree — the
    /// out-of-core training path ([`crate::octrain`]). Mirrors
    /// [`Diagnoser::train_prepared`] field-for-field so the two paths
    /// serialise identically when fed identical trees.
    pub(crate) fn from_trained_tree(
        constructor: Option<FeatureConstructor>,
        feature_names: Vec<String>,
        classes: Vec<String>,
        tree: DecisionTree,
        cfg: &DiagnoserConfig,
        drift: Option<crate::drift::DriftStamp>,
    ) -> Diagnoser {
        let compiled = crate::serving::CompiledModel::build(&tree, constructor.is_some());
        Diagnoser {
            constructor,
            feature_names,
            classes,
            tree,
            min_coverage_exact: cfg.min_coverage_exact,
            min_coverage_location: cfg.min_coverage_location,
            compiled,
            drift,
        }
    }

    /// The training-time distribution stamp, when the model carries
    /// one (trained in-process, or loaded from a v2 file).
    pub fn drift_stamp(&self) -> Option<&crate::drift::DriftStamp> {
        self.drift.as_ref()
    }

    /// The selected features (post-FS schema) — the paper's Table 1.
    pub fn selected_features(&self) -> &[String] {
        &self.feature_names
    }

    /// The underlying decision tree (interpretable — Section 3.2).
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// Build the tree-space row for raw instance metrics.
    fn row_for(&self, metrics: &[(String, f64)]) -> Vec<f64> {
        let transformed;
        let view: &[(String, f64)] = match &self.constructor {
            Some(c) => {
                transformed = c.transform_instance(metrics);
                &transformed
            }
            None => metrics,
        };
        self.feature_names
            .iter()
            .map(|name| {
                view.iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or(f64::NAN)
            })
            .collect()
    }

    /// Importance-weighted coverage of the tree-relevant schema by a
    /// tree-space row, plus the schema VPs with no reading at all.
    fn coverage_of(&self, row: &[f64]) -> (f64, Vec<String>) {
        let imp = self.tree.feature_importance();
        let used = self.tree.features_used();
        let total: f64 = used.iter().map(|&i| imp[i]).sum();
        let coverage = if total > 0.0 {
            used.iter()
                .filter(|&&i| row[i].is_finite())
                .map(|&i| imp[i])
                .sum::<f64>()
                / total
        } else if used.is_empty() {
            // A leaf-only tree (majority-class model) needs nothing.
            1.0
        } else {
            let present = used.iter().filter(|&&i| row[i].is_finite()).count();
            present as f64 / used.len() as f64
        };
        // A schema VP is silent when every one of its columns is NaN.
        let mut vps: Vec<&str> = Vec::new();
        for n in &self.feature_names {
            let vp = n.split('.').next().unwrap_or("");
            if !vps.contains(&vp) {
                vps.push(vp);
            }
        }
        let silent = vps
            .into_iter()
            .filter(|vp| {
                self.feature_names
                    .iter()
                    .zip(row)
                    .filter(|(n, _)| n.split('.').next() == Some(vp))
                    .all(|(_, v)| !v.is_finite())
            })
            .map(str::to_string)
            .collect();
        // Zero-gain importances can sum to -0.0; normalise so reports
        // never show "-0%".
        (coverage + 0.0, silent)
    }

    /// Project the class distribution onto a coarser label set and
    /// argmax it: the Q2 (location) or Q1 (existence) answer.
    fn project_dist(&self, dist: &[f64], project: impl Fn(&str) -> String) -> String {
        let mut groups: Vec<(String, f64)> = Vec::new();
        for (name, p) in self.classes.iter().zip(dist) {
            let g = project(name);
            match groups.iter_mut().find(|(n, _)| *n == g) {
                Some((_, acc)) => *acc += p,
                None => groups.push((g, *p)),
            }
        }
        groups
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| n)
            .unwrap_or_else(|| "good".to_string())
    }

    /// Diagnose one session from raw probe metrics (any VP subset).
    ///
    /// Degrades gracefully: missing features descend the tree's
    /// missing-value branches as always, but the returned
    /// [`DiagnosisQuality`] reports how much of the model's evidence
    /// was actually present, and when coverage falls below the
    /// configured floors the answer falls back from the exact root
    /// cause (Q3) to localisation (Q2) or bare existence (Q1) — a
    /// sparse deployment still gets the coarser answers the paper
    /// shows remain reliable (§6.2).
    ///
    /// This is the batched engine ([`Diagnoser::diagnose_batch`])
    /// applied to a single session; batching N sessions returns
    /// bit-identical results at a fraction of the per-session cost.
    pub fn diagnose(&self, metrics: &[(String, f64)]) -> Diagnosis {
        self.diagnose_batch(std::slice::from_ref(&metrics), 1)
            .get(0)
    }

    /// The pre-batch scalar serving loop, retained verbatim as the
    /// baseline the `diagnose_perf` bench and the equality tests
    /// measure the compiled engine against: linear name scans over the
    /// metric list per schema feature, pointer-tree descent, fresh
    /// allocations per call.
    #[doc(hidden)]
    pub fn diagnose_seed_reference(&self, metrics: &[(String, f64)]) -> Diagnosis {
        let row = self.row_for(metrics);
        let (mut dist, missing_descent) = self.tree.predict_dist_traced(&row);
        let total: f64 = dist.iter().sum();
        if total > 0.0 {
            for d in &mut dist {
                *d /= total;
            }
        }
        let class = dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let (feature_coverage, silent_vps) = self.coverage_of(&row);
        // Evidence that arrived through missing-branch fallbacks only
        // carries chance-level certainty: shrink the top probability
        // toward 1/n by the missing-descent fraction.
        let p_top = dist.get(class).copied().unwrap_or(0.0);
        let chance = 1.0 / self.classes.len().max(1) as f64;
        let confidence = p_top * (1.0 - missing_descent) + chance * missing_descent;
        let (resolution, fallback_label) = if feature_coverage >= self.min_coverage_exact {
            (Resolution::Exact, None)
        } else if feature_coverage >= self.min_coverage_location {
            (
                Resolution::Location,
                Some(self.project_dist(&dist, crate::scenario::exact_to_location)),
            )
        } else {
            (
                Resolution::Existence,
                Some(self.project_dist(&dist, crate::scenario::exact_to_existence)),
            )
        };
        if vqd_obs::enabled() {
            let r = vqd_obs::recorder();
            r.counter_add("core.diagnose.calls", 1);
            r.counter_add(
                match resolution {
                    Resolution::Exact => "core.diagnose.resolution.exact",
                    Resolution::Location => "core.diagnose.resolution.location",
                    Resolution::Existence => "core.diagnose.resolution.existence",
                },
                1,
            );
            // The reported answer: the fallback projection when
            // coverage forced one, else the exact class.
            let reported = fallback_label.as_deref().unwrap_or(&self.classes[class]);
            r.counter_add_dyn(&format!("core.diagnose.label.{reported}"), 1);
            r.hist_record("core.diagnose.coverage", feature_coverage);
            r.hist_record("core.diagnose.confidence", confidence);
        }
        Diagnosis {
            label: self.classes[class].clone(),
            class,
            dist,
            quality: DiagnosisQuality {
                feature_coverage,
                silent_vps,
                missing_descent,
                confidence,
            },
            resolution,
            fallback_label,
        }
    }

    /// Serialise the whole diagnoser (pipeline flags + tree, plus the
    /// drift stamp when present) to a dependency-free text format.
    /// Models carrying a stamp write the `v2` header with a trailing
    /// `drift v1` section; stamp-less models keep the `v1` layout
    /// byte-for-byte.
    pub fn serialize(&self) -> String {
        let version = if self.drift.is_some() { 2 } else { 1 };
        let mut s = format!("vqd-diagnoser v{version}\n");
        s.push_str(&format!("fc\t{}\n", self.constructor.is_some()));
        s.push_str(&self.tree.serialize());
        if let Some(stamp) = &self.drift {
            s.push_str(&stamp.serialize());
        }
        s
    }

    /// Load a diagnoser serialised with [`Diagnoser::serialize`].
    /// Accepts both `v1` (no drift stamp) and `v2` (stamp required)
    /// files. Malformed input — wrong header, bad pipeline flags, any
    /// of the tree-payload corruptions [`DecisionTree::deserialize`]
    /// rejects, or a corrupt drift section — yields a [`VqdError`]
    /// naming the offending file line.
    pub fn deserialize(text: &str) -> Result<Diagnoser, VqdError> {
        let mut lines = text.lines();
        let version = match lines.next() {
            Some("vqd-diagnoser v1") => 1,
            Some("vqd-diagnoser v2") => 2,
            other => {
                return Err(ModelParseError::at(
                    1,
                    "header",
                    format!("expected \"vqd-diagnoser v1\" or \"vqd-diagnoser v2\", got {other:?}"),
                )
                .into())
            }
        };
        let fc = match lines.next() {
            Some("fc\ttrue") => true,
            Some("fc\tfalse") => false,
            other => {
                return Err(ModelParseError::at(
                    2,
                    "fc",
                    format!("expected \"fc\\ttrue\" or \"fc\\tfalse\", got {other:?}"),
                )
                .into())
            }
        };
        // Split the remaining lines into the tree payload and the
        // optional trailing drift section. The marker is a bare
        // `drift v1` line, which cannot occur inside a tree payload
        // (every tree line is tagged or `id<TAB>body`-shaped).
        let rest: Vec<&str> = lines.collect();
        let drift_at = rest.iter().position(|&l| l == "drift v1");
        let (tree_lines, drift_lines) = match drift_at {
            Some(i) => (&rest[..i], Some(&rest[i..])),
            None => (&rest[..], None),
        };
        if version >= 2 && drift_lines.is_none() {
            return Err(ModelParseError::at(
                3,
                "drift",
                "v2 model file is missing its drift section",
            )
            .into());
        }
        // The tree payload starts at file line 3: re-address its parse
        // errors to the whole file so the message is actionable.
        let tree = DecisionTree::deserialize(&tree_lines.join("\n")).map_err(|mut e| {
            if e.line > 0 {
                e.line += 2;
            }
            VqdError::Model(e)
        })?;
        let drift = match drift_lines {
            Some(section) => {
                let offset = 2 + tree_lines.len();
                let stamp = crate::drift::DriftStamp::deserialize(&section.join("\n")).map_err(
                    |mut e| {
                        if e.line > 0 {
                            e.line += offset;
                        }
                        VqdError::Model(e)
                    },
                )?;
                if stamp.features != tree.feature_names {
                    return Err(ModelParseError::at(
                        offset + 1,
                        "drift",
                        "drift stamp schema does not match the tree's feature list",
                    )
                    .into());
                }
                if stamp.label_counts.len() != tree.class_names.len() {
                    return Err(ModelParseError::at(
                        offset + 1,
                        "drift",
                        "drift stamp label counts do not match the class list",
                    )
                    .into());
                }
                Some(stamp)
            }
            None => None,
        };
        let defaults = DiagnoserConfig::default();
        let compiled = crate::serving::CompiledModel::build(&tree, fc);
        Ok(Diagnoser {
            constructor: fc.then(FeatureConstructor::default),
            feature_names: tree.feature_names.clone(),
            classes: tree.class_names.clone(),
            tree,
            min_coverage_exact: defaults.min_coverage_exact,
            min_coverage_location: defaults.min_coverage_location,
            compiled,
            drift,
        })
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), VqdError> {
        let path = path.as_ref();
        std::fs::write(path, self.serialize()).map_err(|e| VqdError::io(path, e))
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Diagnoser, VqdError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| VqdError::io(path, e))?;
        Self::deserialize(&text)
    }

    /// Evaluate this trained model on an independent raw dataset
    /// (classes must match by name; extra/missing feature columns are
    /// handled by name alignment).
    pub fn evaluate(&self, raw: &Dataset) -> ConfusionMatrix {
        let sessions: Vec<Vec<(String, f64)>> = (0..raw.len())
            .map(|i| {
                raw.features
                    .iter()
                    .cloned()
                    .zip(raw.x[i].iter().copied())
                    .filter(|(_, v)| !v.is_nan())
                    .collect()
            })
            .collect();
        let batch = self.diagnose_batch(&sessions, 0);
        let mut cm = ConfusionMatrix::new(self.classes.clone());
        for i in 0..raw.len() {
            // Align class by name.
            let actual_name = &raw.classes[raw.y[i]];
            let actual = self
                .classes
                .iter()
                .position(|c| c == actual_name)
                .unwrap_or(0);
            cm.add(actual, batch.class(i));
        }
        cm
    }

    /// 10-fold (or k-fold) cross-validation of the full pipeline on a
    /// raw dataset: FC/FS are fitted once on the full data (as the
    /// paper does with Weka), the tree is cross-validated. Folds run
    /// in parallel (governed by `cfg.tree.threads`); the result is
    /// identical for every thread count.
    pub fn cross_validate(
        raw: &Dataset,
        cfg: &DiagnoserConfig,
        k: usize,
        seed: u64,
    ) -> ConfusionMatrix {
        Self::cross_validate_prepared(&Self::prepare(raw, cfg), cfg, k, seed)
    }

    /// [`Diagnoser::cross_validate`] on an already-prepared pipeline;
    /// skips the FC + FCBF pass.
    pub fn cross_validate_prepared(
        prep: &PreparedPipeline,
        cfg: &DiagnoserConfig,
        k: usize,
        seed: u64,
    ) -> ConfusionMatrix {
        cross_validate_threads(
            &C45Trainer { cfg: cfg.tree },
            &prep.data,
            k,
            seed,
            cfg.tree.threads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqd_simnet::rng::SimRng;

    /// Synthetic "raw probe metrics" with the naming shape of real
    /// ones: rssi drives the class, retx is its redundant echo, plus
    /// count columns that need normalisation.
    fn synthetic(n: usize, seed: u64) -> Dataset {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut d = Dataset::new(
            vec![
                "mobile.phy.rssi_avg".into(),
                "mobile.tcp.s2c.retx_pkts".into(),
                "mobile.tcp.total_pkts".into(),
                "mobile.tcp.total_data_bytes".into(),
                "mobile.hw.cpu_avg".into(),
            ],
            vec!["good".into(), "low_rssi_severe".into()],
        );
        for _ in 0..n {
            let c = rng.index(2);
            let rssi = if c == 0 {
                rng.normal(-50.0, 4.0)
            } else {
                rng.normal(-85.0, 4.0)
            };
            let pkts = rng.range_f64(500.0, 5000.0);
            let retx_rate = if c == 0 { 0.005 } else { 0.08 };
            d.push(
                vec![
                    rssi,
                    pkts * retx_rate,
                    pkts,
                    pkts * 1400.0,
                    rng.range_f64(0.1, 0.5),
                ],
                c,
            );
        }
        d
    }

    #[test]
    fn train_and_diagnose() {
        let d = synthetic(400, 1);
        let model = Diagnoser::train(&d, &DiagnoserConfig::default());
        let good = model.diagnose(&[
            ("mobile.phy.rssi_avg".into(), -48.0),
            ("mobile.tcp.s2c.retx_pkts".into(), 4.0),
            ("mobile.tcp.total_pkts".into(), 1000.0),
            ("mobile.tcp.total_data_bytes".into(), 1.4e6),
            ("mobile.hw.cpu_avg".into(), 0.3),
        ]);
        assert_eq!(good.label, "good");
        let bad = model.diagnose(&[
            ("mobile.phy.rssi_avg".into(), -88.0),
            ("mobile.tcp.s2c.retx_pkts".into(), 90.0),
            ("mobile.tcp.total_pkts".into(), 1000.0),
            ("mobile.tcp.total_data_bytes".into(), 1.4e6),
            ("mobile.hw.cpu_avg".into(), 0.3),
        ]);
        assert_eq!(bad.label, "low_rssi_severe");
        assert!(bad.dist[bad.class] > 0.5);
    }

    #[test]
    fn missing_vantage_point_still_diagnoses() {
        let d = synthetic(400, 2);
        let model = Diagnoser::train(&d, &DiagnoserConfig::default());
        // No RSSI available at all (server-only view).
        let dx = model.diagnose(&[
            ("mobile.tcp.s2c.retx_pkts".into(), 90.0),
            ("mobile.tcp.total_pkts".into(), 1000.0),
            ("mobile.tcp.total_data_bytes".into(), 1.4e6),
        ]);
        assert!(dx.class < 2);
    }

    #[test]
    fn quality_full_telemetry_is_clean() {
        let d = synthetic(400, 6);
        let model = Diagnoser::train(&d, &DiagnoserConfig::default());
        let dx = model.diagnose(&[
            ("mobile.phy.rssi_avg".into(), -48.0),
            ("mobile.tcp.s2c.retx_pkts".into(), 4.0),
            ("mobile.tcp.total_pkts".into(), 1000.0),
            ("mobile.tcp.total_data_bytes".into(), 1.4e6),
            ("mobile.hw.cpu_avg".into(), 0.3),
        ]);
        assert!(
            (dx.quality.feature_coverage - 1.0).abs() < 1e-12,
            "coverage {}",
            dx.quality.feature_coverage
        );
        assert!(dx.quality.silent_vps.is_empty());
        assert_eq!(dx.quality.missing_descent, 0.0);
        assert_eq!(dx.resolution, Resolution::Exact);
        assert!(dx.fallback_label.is_none());
        assert_eq!(dx.answer(), dx.label);
        assert!(dx.quality.confidence > 0.5);
    }

    #[test]
    fn empty_telemetry_falls_back_to_existence() {
        let d = synthetic(400, 7);
        let model = Diagnoser::train(&d, &DiagnoserConfig::default());
        let dx = model.diagnose(&[]);
        assert!(dx.quality.feature_coverage < 1e-12);
        // Every schema VP is silent.
        assert!(!dx.quality.silent_vps.is_empty());
        assert_eq!(dx.resolution, Resolution::Existence);
        let fb = dx.fallback_label.as_deref().unwrap();
        assert!(
            ["good", "mild", "severe"].contains(&fb),
            "fallback {fb:?} is not an existence class"
        );
        // Confidence shrinks toward chance when all evidence is
        // missing-branch fallback.
        assert!(
            dx.quality.confidence <= dx.dist[dx.class] + 1e-12,
            "confidence {} > top prob {}",
            dx.quality.confidence,
            dx.dist[dx.class]
        );
    }

    #[test]
    fn degraded_telemetry_reports_missing_descent() {
        let d = synthetic(400, 9);
        let model = Diagnoser::train(&d, &DiagnoserConfig::default());
        let full = model.diagnose(&[
            ("mobile.phy.rssi_avg".into(), -88.0),
            ("mobile.tcp.s2c.retx_pkts".into(), 90.0),
            ("mobile.tcp.total_pkts".into(), 1000.0),
            ("mobile.tcp.total_data_bytes".into(), 1.4e6),
            ("mobile.hw.cpu_avg".into(), 0.3),
        ]);
        let partial = model.diagnose(&[("mobile.hw.cpu_avg".into(), 0.3)]);
        assert!(partial.quality.feature_coverage < full.quality.feature_coverage);
        assert!(partial.quality.missing_descent > 0.0);
        assert!(partial.resolution < full.resolution);
    }

    #[test]
    fn cross_validation_accuracy() {
        let d = synthetic(400, 3);
        let cm = Diagnoser::cross_validate(&d, &DiagnoserConfig::default(), 10, 1);
        assert!(cm.accuracy() > 0.9, "acc {}", cm.accuracy());
        assert_eq!(cm.total(), 400);
    }

    #[test]
    fn fs_reduces_schema() {
        let d = synthetic(500, 4);
        let with_fs = Diagnoser::train(&d, &DiagnoserConfig::default());
        let without = Diagnoser::train(
            &d,
            &DiagnoserConfig {
                use_fs: false,
                ..Default::default()
            },
        );
        assert!(with_fs.feature_names.len() <= without.feature_names.len());
        assert!(
            with_fs.feature_names.len() <= 3,
            "{:?}",
            with_fs.feature_names
        );
    }

    #[test]
    fn save_load_round_trip() {
        let d = synthetic(300, 8);
        let model = Diagnoser::train(&d, &DiagnoserConfig::default());
        let text = model.serialize();
        let back = Diagnoser::deserialize(&text).unwrap();
        assert_eq!(back.classes, model.classes);
        assert_eq!(back.feature_names, model.feature_names);
        let probe = vec![
            ("mobile.phy.rssi_avg".to_string(), -85.0),
            ("mobile.tcp.s2c.retx_pkts".to_string(), 80.0),
            ("mobile.tcp.total_pkts".to_string(), 1000.0),
            ("mobile.tcp.total_data_bytes".to_string(), 1.4e6),
            ("mobile.hw.cpu_avg".to_string(), 0.3),
        ];
        assert_eq!(back.diagnose(&probe).label, model.diagnose(&probe).label);
        assert!(Diagnoser::deserialize("junk").is_err());
    }

    #[test]
    fn evaluate_on_fresh_data() {
        let train = synthetic(400, 5);
        let test = synthetic(150, 99);
        let model = Diagnoser::train(&train, &DiagnoserConfig::default());
        let cm = model.evaluate(&test);
        assert_eq!(cm.total(), 150);
        assert!(cm.accuracy() > 0.9, "acc {}", cm.accuracy());
    }
}
