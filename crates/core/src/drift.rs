//! Model drift monitoring: training-time feature/label distribution
//! stamps and runtime divergence tracking.
//!
//! At training time the pipeline records a [`DriftStamp`] — one
//! [`FeatureSketch`] per post-FS feature (a pair of log-linear
//! histograms for positive and negative magnitudes plus zero/missing
//! tallies) and the label distribution. The stamp travels inside the
//! model file (`vqd-diagnoser v2`) so any serving process can compare
//! live traffic against what the model actually saw.
//!
//! At serving time each shard accumulates a [`DriftWindow`] over the
//! rows it diagnoses; on the flush cadence the windows are absorbed
//! into a shared [`DriftMonitor`], which publishes PSI-style
//! per-feature divergence, label-mix distance, and confidence /
//! coverage trend gauges, and raises (counted, logged) alerts when a
//! divergence crosses its threshold.
//!
//! Both training paths (in-memory [`crate::Diagnoser::train`] and
//! out-of-core [`crate::octrain`]) must produce *byte-identical*
//! stamps for the same corpus — the sketches are therefore recorded
//! column-by-column in row order in both, so even the floating-point
//! sums match bitwise.

use std::collections::BTreeSet;

use vqd_ml::{Dataset, ModelParseError};
use vqd_obs::LogHistogram;

/// Probability floor for PSI bins: an empty bin on one side counts as
/// this probability rather than zero, keeping the statistic finite.
const PSI_EPS: f64 = 1e-6;

/// Default PSI / label-mix alert threshold. PSI folklore calls 0.1
/// "moderate" and 0.25 "major" population shift; we alert on major.
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 0.25;

/// Default minimum window rows before the monitor evaluates at all —
/// tiny windows make PSI meaninglessly noisy.
pub const DEFAULT_DRIFT_MIN_ROWS: u64 = 64;

/// Distribution sketch of one feature column: positive values in
/// `pos`, negative values (by magnitude) in `neg`, exact tallies for
/// zeros and missing (`NaN`) readings. The split handles features
/// that live below zero (RSSI in dBm) as faithfully as throughputs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureSketch {
    /// Positive sample magnitudes.
    pub pos: LogHistogram,
    /// Negative sample magnitudes (`record(-v)`).
    pub neg: LogHistogram,
    /// Exactly-zero samples.
    pub zeros: u64,
    /// Missing (`NaN`) samples.
    pub missing: u64,
}

impl FeatureSketch {
    /// Record one reading.
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            self.missing += 1;
        } else if v == 0.0 {
            self.zeros += 1;
        } else if v > 0.0 {
            self.pos.record(v);
        } else {
            self.neg.record(-v);
        }
    }

    /// Total readings sketched (including zeros and missing).
    pub fn total(&self) -> u64 {
        self.pos.count() + self.neg.count() + self.zeros + self.missing
    }

    /// Fold another sketch in.
    pub fn merge(&mut self, other: &FeatureSketch) {
        self.pos.merge(&other.pos);
        self.neg.merge(&other.neg);
        self.zeros += other.zeros;
        self.missing += other.missing;
    }
}

/// One side (`pos` / `neg`) of a sketch as a text line body:
/// `sum<TAB>min<TAB>max<TAB>i:c i:c …` (`-` when empty). `{:?}`
/// formatting keeps the floats shortest-round-trip, so a stamp
/// serialised from either training path re-parses bitwise.
fn hist_line(h: &LogHistogram) -> String {
    let sparse: Vec<String> = h
        .nonzero_buckets()
        .map(|(i, c)| format!("{i}:{c}"))
        .collect();
    let sparse = if sparse.is_empty() {
        "-".to_string()
    } else {
        sparse.join(" ")
    };
    format!("{:?}\t{:?}\t{:?}\t{}", h.sum(), h.min(), h.max(), sparse)
}

fn parse_hist_line(body: &str, line: usize, field: &str) -> Result<LogHistogram, ModelParseError> {
    let mut it = body.split('\t');
    let mut f = |name: &str| -> Result<f64, ModelParseError> {
        it.next()
            .and_then(|t| t.parse::<f64>().ok())
            .ok_or_else(|| ModelParseError::at(line, field, format!("bad {name} field")))
    };
    let sum = f("sum")?;
    let min = f("min")?;
    let max = f("max")?;
    let sparse_txt = it
        .next()
        .ok_or_else(|| ModelParseError::at(line, field, "missing bucket list"))?;
    if it.next().is_some() {
        return Err(ModelParseError::at(line, field, "trailing fields"));
    }
    let mut sparse = Vec::new();
    if sparse_txt != "-" {
        for pair in sparse_txt.split(' ') {
            let (i, c) = pair
                .split_once(':')
                .ok_or_else(|| ModelParseError::at(line, field, format!("bad bucket {pair:?}")))?;
            let i: usize = i
                .parse()
                .map_err(|_| ModelParseError::at(line, field, format!("bad bucket index {i:?}")))?;
            let c: u64 = c
                .parse()
                .map_err(|_| ModelParseError::at(line, field, format!("bad bucket count {c:?}")))?;
            sparse.push((i, c));
        }
    }
    LogHistogram::from_parts(&sparse, 0, 0, sum, min, max)
        .map_err(|e| ModelParseError::at(line, field, e))
}

/// Population-stability-index-style divergence between a baseline and
/// a current sketch of the same feature. Bins are the union of
/// occupied categories on either side — missing, zero, each occupied
/// negative bucket, each occupied positive bucket — with empty bins
/// floored at a small epsilon. Returns 0 when either side is empty.
pub fn psi(baseline: &FeatureSketch, current: &FeatureSketch) -> f64 {
    let (bt, ct) = (baseline.total(), current.total());
    if bt == 0 || ct == 0 {
        return 0.0;
    }
    // Category key: 0 = missing, 1 = zero, 2+i = neg bucket i,
    // 2 + BUCKETS + i = pos bucket i (offset only needs to be unique).
    const NEG_BASE: usize = 2;
    let pos_base = NEG_BASE + vqd_obs::hist::BUCKETS;
    let mut cats: BTreeSet<usize> = BTreeSet::new();
    let collect_cats = |s: &FeatureSketch, cats: &mut BTreeSet<usize>| {
        if s.missing > 0 {
            cats.insert(0);
        }
        if s.zeros > 0 {
            cats.insert(1);
        }
        for (i, _) in s.neg.nonzero_buckets() {
            cats.insert(NEG_BASE + i);
        }
        for (i, _) in s.pos.nonzero_buckets() {
            cats.insert(pos_base + i);
        }
    };
    collect_cats(baseline, &mut cats);
    collect_cats(current, &mut cats);
    let lookup = |s: &FeatureSketch, cat: usize| -> u64 {
        match cat {
            0 => s.missing,
            1 => s.zeros,
            c if c >= pos_base => s
                .pos
                .nonzero_buckets()
                .find(|&(i, _)| i == c - pos_base)
                .map_or(0, |(_, n)| n),
            c => s
                .neg
                .nonzero_buckets()
                .find(|&(i, _)| i == c - NEG_BASE)
                .map_or(0, |(_, n)| n),
        }
    };
    let mut total = 0.0;
    for &cat in &cats {
        let p = (lookup(baseline, cat) as f64 / bt as f64).max(PSI_EPS);
        let q = (lookup(current, cat) as f64 / ct as f64).max(PSI_EPS);
        total += (p - q) * (p / q).ln();
    }
    total
}

/// Total-variation distance between two label-count vectors
/// (normalised); 0 when either side is empty.
pub fn label_mix_distance(baseline: &[u64], current: &[u64]) -> f64 {
    let bt: u64 = baseline.iter().sum();
    let ct: u64 = current.iter().sum();
    if bt == 0 || ct == 0 {
        return 0.0;
    }
    let n = baseline.len().max(current.len());
    let mut tv = 0.0;
    for i in 0..n {
        let p = baseline.get(i).copied().unwrap_or(0) as f64 / bt as f64;
        let q = current.get(i).copied().unwrap_or(0) as f64 / ct as f64;
        tv += (p - q).abs();
    }
    tv / 2.0
}

/// The training-time distribution stamp embedded in a model file:
/// per-feature sketches over the training rows (post-construction,
/// post-FS — the same tree-space columns serving constructs) plus the
/// label distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftStamp {
    /// Training rows sketched.
    pub rows: u64,
    /// Feature names, aligned with `sketches` and the model schema.
    pub features: Vec<String>,
    /// One sketch per feature.
    pub sketches: Vec<FeatureSketch>,
    /// Training label counts, aligned with the model's class list.
    pub label_counts: Vec<u64>,
}

impl DriftStamp {
    /// An empty stamp over the given schema, ready for
    /// [`record_column`](DriftStamp::record_column) /
    /// [`record_labels`](DriftStamp::record_labels).
    pub fn empty(features: Vec<String>, n_classes: usize) -> DriftStamp {
        let sketches = vec![FeatureSketch::default(); features.len()];
        DriftStamp {
            rows: 0,
            features,
            sketches,
            label_counts: vec![0; n_classes],
        }
    }

    /// Sketch one whole column, in row order. Both training paths call
    /// this with identical value sequences, which is what makes the
    /// two stamps byte-identical (the histogram sum accumulates in
    /// record order).
    pub fn record_column(&mut self, j: usize, values: impl Iterator<Item = f64>) {
        let s = &mut self.sketches[j];
        for v in values {
            s.record(v);
        }
    }

    /// Tally the label column; also fixes `rows`.
    pub fn record_labels(&mut self, y: impl Iterator<Item = usize>) {
        for c in y {
            if c < self.label_counts.len() {
                self.label_counts[c] += 1;
            }
            self.rows += 1;
        }
    }

    /// Stamp a prepared (tree-space) dataset: columns in schema order,
    /// each column in row order.
    pub fn from_dataset(data: &Dataset) -> DriftStamp {
        let mut stamp = DriftStamp::empty(data.features.clone(), data.classes.len());
        for j in 0..data.features.len() {
            stamp.record_column(j, data.x.iter().map(|row| row[j]));
        }
        stamp.record_labels(data.y.iter().copied());
        stamp
    }

    /// Serialise as the model file's trailing `drift v1` section.
    pub fn serialize(&self) -> String {
        let mut s = String::from("drift v1\n");
        s.push_str(&format!("rows\t{}\n", self.rows));
        let labels: Vec<String> = self.label_counts.iter().map(|c| c.to_string()).collect();
        s.push_str(&format!("labels\t{}\n", labels.join(" ")));
        for (name, sk) in self.features.iter().zip(&self.sketches) {
            s.push_str(&format!("feat\t{name}\t{}\t{}\n", sk.zeros, sk.missing));
            s.push_str(&format!("pos\t{}\n", hist_line(&sk.pos)));
            s.push_str(&format!("neg\t{}\n", hist_line(&sk.neg)));
        }
        s
    }

    /// Parse a `drift v1` section (as produced by
    /// [`serialize`](DriftStamp::serialize)). Error line numbers are
    /// relative to the section's first line (`drift v1` = line 1); the
    /// caller re-addresses them to the whole file.
    pub fn deserialize(text: &str) -> Result<DriftStamp, ModelParseError> {
        let lines: Vec<&str> = text.lines().collect();
        let mut cursor = 0usize;
        let next = |cursor: &mut usize, field: &str| -> Result<(usize, &str), ModelParseError> {
            let out = lines
                .get(*cursor)
                .map(|&l| (*cursor + 1, l))
                .ok_or_else(|| ModelParseError::at(0, field, "section truncated"));
            *cursor += 1;
            out
        };
        match next(&mut cursor, "drift-header")? {
            (_, "drift v1") => {}
            (ln, other) => {
                return Err(ModelParseError::at(
                    ln,
                    "drift-header",
                    format!("expected \"drift v1\", got {other:?}"),
                ))
            }
        }
        let (rln, rl) = next(&mut cursor, "rows")?;
        let rows = rl
            .strip_prefix("rows\t")
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| ModelParseError::at(rln, "rows", format!("bad rows line {rl:?}")))?;
        let (lln, ll) = next(&mut cursor, "labels")?;
        let labels_body = ll
            .strip_prefix("labels\t")
            .ok_or_else(|| ModelParseError::at(lln, "labels", format!("bad labels line {ll:?}")))?;
        let label_counts: Vec<u64> = labels_body
            .split(' ')
            .filter(|t| !t.is_empty())
            .map(|t| {
                t.parse::<u64>()
                    .map_err(|_| ModelParseError::at(lln, "labels", format!("bad count {t:?}")))
            })
            .collect::<Result<_, _>>()?;
        let mut features = Vec::new();
        let mut sketches = Vec::new();
        while let Ok((ln, l)) = next(&mut cursor, "feat") {
            let body = l.strip_prefix("feat\t").ok_or_else(|| {
                ModelParseError::at(ln, "feat", format!("expected feat line, got {l:?}"))
            })?;
            let mut it = body.split('\t');
            let name = it
                .next()
                .filter(|n| !n.is_empty())
                .ok_or_else(|| ModelParseError::at(ln, "feat", "empty feature name"))?;
            let zeros: u64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ModelParseError::at(ln, "feat", "bad zeros field"))?;
            let missing: u64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ModelParseError::at(ln, "feat", "bad missing field"))?;
            if it.next().is_some() {
                return Err(ModelParseError::at(ln, "feat", "trailing fields"));
            }
            let (pln, pl) = next(&mut cursor, "pos")?;
            let pos_body = pl.strip_prefix("pos\t").ok_or_else(|| {
                ModelParseError::at(pln, "pos", format!("expected pos line, got {pl:?}"))
            })?;
            let pos = parse_hist_line(pos_body, pln, "pos")?;
            let (nln, nl) = next(&mut cursor, "neg")?;
            let neg_body = nl.strip_prefix("neg\t").ok_or_else(|| {
                ModelParseError::at(nln, "neg", format!("expected neg line, got {nl:?}"))
            })?;
            let neg = parse_hist_line(neg_body, nln, "neg")?;
            features.push(name.to_string());
            sketches.push(FeatureSketch {
                pos,
                neg,
                zeros,
                missing,
            });
        }
        Ok(DriftStamp {
            rows,
            features,
            sketches,
            label_counts,
        })
    }
}

/// A runtime accumulation window: the same per-feature sketches plus
/// predicted-label counts and confidence / coverage running sums.
/// Each serving shard keeps its own (no locks on the hot path); the
/// shared [`DriftMonitor`] absorbs them on the flush cadence.
#[derive(Debug, Clone)]
pub struct DriftWindow {
    /// One sketch per schema feature.
    pub sketches: Vec<FeatureSketch>,
    /// Predicted-label tallies.
    pub label_counts: Vec<u64>,
    /// Rows sketched.
    pub rows: u64,
    /// Sum of diagnosis confidences (for the trend gauge).
    pub confidence_sum: f64,
    /// Sum of feature coverages.
    pub coverage_sum: f64,
    /// Outcomes recorded (denominator for the trend gauges).
    pub outcomes: u64,
}

impl DriftWindow {
    /// An empty window over a schema of `n_features` / `n_classes`.
    pub fn new(n_features: usize, n_classes: usize) -> DriftWindow {
        DriftWindow {
            sketches: vec![FeatureSketch::default(); n_features],
            label_counts: vec![0; n_classes],
            rows: 0,
            confidence_sum: 0.0,
            coverage_sum: 0.0,
            outcomes: 0,
        }
    }

    /// Sketch one tree-space row.
    pub fn record_row(&mut self, row: &[f64]) {
        for (s, &v) in self.sketches.iter_mut().zip(row) {
            s.record(v);
        }
        self.rows += 1;
    }

    /// Record one diagnosis outcome.
    pub fn record_outcome(&mut self, class: usize, confidence: f64, coverage: f64) {
        if class < self.label_counts.len() {
            self.label_counts[class] += 1;
        }
        if confidence.is_finite() {
            self.confidence_sum += confidence;
        }
        if coverage.is_finite() {
            self.coverage_sum += coverage;
        }
        self.outcomes += 1;
    }

    /// Fold another window in (shard → monitor merge).
    pub fn absorb(&mut self, other: &DriftWindow) {
        for (a, b) in self.sketches.iter_mut().zip(&other.sketches) {
            a.merge(b);
        }
        for (a, b) in self.label_counts.iter_mut().zip(&other.label_counts) {
            *a += b;
        }
        self.rows += other.rows;
        self.confidence_sum += other.confidence_sum;
        self.coverage_sum += other.coverage_sum;
        self.outcomes += other.outcomes;
    }

    /// Reset to empty, keeping the schema.
    pub fn clear(&mut self) {
        for s in &mut self.sketches {
            *s = FeatureSketch::default();
        }
        self.label_counts.iter_mut().for_each(|c| *c = 0);
        self.rows = 0;
        self.confidence_sum = 0.0;
        self.coverage_sum = 0.0;
        self.outcomes = 0;
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 && self.outcomes == 0
    }
}

/// One evaluation's worth of drift readings.
#[derive(Debug, Clone, Default)]
pub struct DriftReading {
    /// Per-feature PSI, aligned with the stamp's feature list.
    pub psi: Vec<(String, f64)>,
    /// Label-mix total-variation distance.
    pub label_mix: f64,
    /// Mean diagnosis confidence over the window.
    pub confidence_avg: f64,
    /// Mean feature coverage over the window.
    pub coverage_avg: f64,
    /// Window rows behind these numbers.
    pub rows: u64,
    /// Alerts newly raised by this evaluation (threshold crossings).
    pub alerts: Vec<String>,
}

/// The shared drift monitor: a training-time baseline, a cumulative
/// runtime window, and threshold-crossing alert state. Evaluation
/// publishes `serve.drift.*` gauges and counts crossings on
/// `serve.drift.alerts`.
#[derive(Debug)]
pub struct DriftMonitor {
    baseline: DriftStamp,
    window: DriftWindow,
    /// PSI / label-mix alert threshold.
    pub threshold: f64,
    /// Minimum window rows before evaluation produces readings.
    pub min_rows: u64,
    /// Keys (feature name or `"labels"`) currently above threshold —
    /// a key alerts once per excursion, re-arming when it drops back.
    alerting: BTreeSet<String>,
    alerts: Vec<String>,
}

impl DriftMonitor {
    /// Monitor against a training-time stamp, with the default
    /// threshold and minimum window.
    pub fn new(baseline: DriftStamp) -> DriftMonitor {
        let window = DriftWindow::new(baseline.features.len(), baseline.label_counts.len());
        DriftMonitor {
            baseline,
            window,
            threshold: DEFAULT_DRIFT_THRESHOLD,
            min_rows: DEFAULT_DRIFT_MIN_ROWS,
            alerting: BTreeSet::new(),
            alerts: Vec::new(),
        }
    }

    /// The training-time baseline.
    pub fn baseline(&self) -> &DriftStamp {
        &self.baseline
    }

    /// Rows accumulated so far.
    pub fn window_rows(&self) -> u64 {
        self.window.rows
    }

    /// Every alert raised over the monitor's lifetime, in order.
    pub fn alerts(&self) -> &[String] {
        &self.alerts
    }

    /// Fold a shard's window in (the shard clears its own copy).
    pub fn absorb(&mut self, w: &DriftWindow) {
        self.window.absorb(w);
    }

    /// Compare the window against the baseline: compute readings,
    /// publish gauges, and raise alerts for fresh threshold
    /// crossings. Below `min_rows` only the window-size gauge is
    /// published.
    pub fn evaluate(&mut self) -> DriftReading {
        let obs_on = vqd_obs::enabled();
        let r = vqd_obs::recorder();
        if obs_on {
            r.gauge_set("serve.drift.window.rows", self.window.rows as f64);
        }
        if self.window.rows < self.min_rows {
            return DriftReading {
                rows: self.window.rows,
                ..DriftReading::default()
            };
        }
        let mut reading = DriftReading {
            rows: self.window.rows,
            ..DriftReading::default()
        };
        let mut cross = |key: String,
                         value: f64,
                         alerting: &mut BTreeSet<String>,
                         alerts: &mut Vec<String>,
                         threshold: f64,
                         rows: u64| {
            if value > threshold {
                if alerting.insert(key.clone()) {
                    let msg = format!(
                        "drift alert: {key} divergence {value:.3} exceeds {threshold} over {rows} rows"
                    );
                    alerts.push(msg.clone());
                    reading.alerts.push(msg);
                }
            } else {
                alerting.remove(&key);
            }
        };
        for ((name, base), cur) in self
            .baseline
            .features
            .iter()
            .zip(&self.baseline.sketches)
            .zip(&self.window.sketches)
        {
            let v = psi(base, cur);
            if obs_on {
                r.gauge_set_dyn(&format!("serve.drift.psi.{name}"), v);
            }
            cross(
                name.clone(),
                v,
                &mut self.alerting,
                &mut self.alerts,
                self.threshold,
                self.window.rows,
            );
            reading.psi.push((name.clone(), v));
        }
        let mix = label_mix_distance(&self.baseline.label_counts, &self.window.label_counts);
        cross(
            "labels".to_string(),
            mix,
            &mut self.alerting,
            &mut self.alerts,
            self.threshold,
            self.window.rows,
        );
        reading.label_mix = mix;
        if self.window.outcomes > 0 {
            reading.confidence_avg = self.window.confidence_sum / self.window.outcomes as f64;
            reading.coverage_avg = self.window.coverage_sum / self.window.outcomes as f64;
        }
        if obs_on {
            r.gauge_set("serve.drift.label_mix", mix);
            r.gauge_set("serve.drift.confidence.avg", reading.confidence_avg);
            r.gauge_set("serve.drift.coverage.avg", reading.coverage_avg);
            if !reading.alerts.is_empty() {
                r.counter_add("serve.drift.alerts", reading.alerts.len() as u64);
            }
        }
        reading
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(values: &[f64]) -> FeatureSketch {
        let mut s = FeatureSketch::default();
        for &v in values {
            s.record(v);
        }
        s
    }

    #[test]
    fn sketch_partitions_by_sign() {
        let s = sketch_of(&[3.0, -85.0, 0.0, f64::NAN, 7.5, -60.0]);
        assert_eq!(s.pos.count(), 2);
        assert_eq!(s.neg.count(), 2);
        assert_eq!(s.zeros, 1);
        assert_eq!(s.missing, 1);
        assert_eq!(s.total(), 6);
        assert_eq!(s.neg.max(), 85.0);
    }

    #[test]
    fn stamp_round_trips_bitwise() {
        let mut data = Dataset::new(
            vec!["mobile.phy.rssi_avg".into(), "server.tput".into()],
            vec!["none".into(), "wifi".into()],
        );
        data.x = vec![
            vec![-85.0, 1200.0],
            vec![-60.0, 0.0],
            vec![f64::NAN, 950.5],
            vec![-71.25, 0.1 + 0.2], // non-representable sum exercises {:?}
        ];
        data.y = vec![0, 1, 1, 0];
        let stamp = DriftStamp::from_dataset(&data);
        let text = stamp.serialize();
        let back = DriftStamp::deserialize(&text).expect("round trip");
        assert_eq!(back, stamp);
        assert_eq!(back.serialize(), text);
        assert_eq!(back.rows, 4);
        assert_eq!(back.label_counts, vec![2, 2]);
    }

    #[test]
    fn column_fill_matches_from_dataset() {
        let mut data = Dataset::new(vec!["a".into(), "b".into()], vec!["x".into(), "y".into()]);
        data.x = vec![vec![1.0, -2.0], vec![0.0, f64::NAN], vec![5.5, 3.25]];
        data.y = vec![0, 1, 0];
        let whole = DriftStamp::from_dataset(&data);
        let mut bycol = DriftStamp::empty(data.features.clone(), data.classes.len());
        for j in 0..2 {
            let col: Vec<f64> = data.x.iter().map(|r| r[j]).collect();
            bycol.record_column(j, col.into_iter());
        }
        bycol.record_labels(data.y.iter().copied());
        assert_eq!(bycol.serialize(), whole.serialize());
    }

    #[test]
    fn deserialize_rejects_corruption() {
        let good = {
            let mut d = Dataset::new(vec!["a".into()], vec!["c".into()]);
            d.x = vec![vec![1.0]];
            d.y = vec![0];
            DriftStamp::from_dataset(&d).serialize()
        };
        assert!(DriftStamp::deserialize("nope").is_err());
        assert!(DriftStamp::deserialize(&good.replace("rows\t1", "rows\tx")).is_err());
        assert!(DriftStamp::deserialize(&good.replace("pos\t", "pox\t")).is_err());
        // Truncation mid-feature.
        let cut = good.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(DriftStamp::deserialize(&cut).is_err());
    }

    #[test]
    fn psi_zero_for_identical_large_for_shifted() {
        let base = sketch_of(&(0..500).map(|i| 10.0 + (i % 50) as f64).collect::<Vec<_>>());
        let same = base.clone();
        assert!(psi(&base, &same).abs() < 1e-9);
        // Shift the whole population two decades up.
        let shifted = sketch_of(
            &(0..500)
                .map(|i| 1000.0 + (i % 50) as f64)
                .collect::<Vec<_>>(),
        );
        assert!(psi(&base, &shifted) > 1.0);
        // Empty side compares as zero, not NaN.
        assert_eq!(psi(&base, &FeatureSketch::default()), 0.0);
    }

    #[test]
    fn label_mix_is_total_variation() {
        assert_eq!(label_mix_distance(&[50, 50], &[5, 5]), 0.0);
        assert!((label_mix_distance(&[100, 0], &[0, 100]) - 1.0).abs() < 1e-12);
        assert!((label_mix_distance(&[75, 25], &[25, 75]) - 0.5).abs() < 1e-12);
        assert_eq!(label_mix_distance(&[], &[1]), 0.0);
    }

    #[test]
    fn monitor_alerts_once_per_excursion() {
        let mut stamp = DriftStamp::empty(vec!["f".into()], 2);
        stamp.record_column(0, (0..200).map(|i| 10.0 + (i % 10) as f64));
        stamp.record_labels((0..200).map(|i| i % 2));
        let mut mon = DriftMonitor::new(stamp);
        mon.min_rows = 10;

        // Below min_rows: no readings.
        let mut w = DriftWindow::new(1, 2);
        for i in 0..5 {
            w.record_row(&[5000.0 + i as f64]);
            w.record_outcome(0, 0.9, 1.0);
        }
        mon.absorb(&w);
        let r = mon.evaluate();
        assert!(r.psi.is_empty() && r.alerts.is_empty());

        // Past min_rows with a shifted population: alert fires once.
        w.clear();
        for i in 0..100 {
            w.record_row(&[5000.0 + i as f64]);
            w.record_outcome(0, 0.9, 1.0);
        }
        mon.absorb(&w);
        let r = mon.evaluate();
        assert_eq!(r.psi.len(), 1);
        assert!(r.psi[0].1 > 0.25, "psi {} should cross", r.psi[0].1);
        assert!(r.alerts.iter().any(|a| a.contains("f divergence")));
        // Labels are all class 0 vs a 50/50 baseline: TV = 0.5 > 0.25.
        assert!(r.label_mix > 0.25);
        assert!(r.alerts.iter().any(|a| a.contains("labels")));
        assert!((r.confidence_avg - 0.9).abs() < 1e-12);
        assert!((r.coverage_avg - 1.0).abs() < 1e-12);

        // Second evaluation, still above threshold: no fresh alerts.
        let r2 = mon.evaluate();
        assert!(r2.alerts.is_empty(), "re-alerted: {:?}", r2.alerts);
        assert_eq!(mon.alerts().len(), 2);
    }

    #[test]
    fn window_absorb_equals_direct() {
        let rows = [[1.0, -3.0], [0.5, f64::NAN], [2.0, -1.0], [0.0, 8.0]];
        let mut direct = DriftWindow::new(2, 2);
        for r in &rows {
            direct.record_row(r);
        }
        direct.record_outcome(0, 0.8, 0.9);
        direct.record_outcome(1, 0.6, 0.7);

        let mut a = DriftWindow::new(2, 2);
        let mut b = DriftWindow::new(2, 2);
        a.record_row(&rows[0]);
        a.record_row(&rows[1]);
        a.record_outcome(0, 0.8, 0.9);
        b.record_row(&rows[2]);
        b.record_row(&rows[3]);
        b.record_outcome(1, 0.6, 0.7);
        let mut merged = DriftWindow::new(2, 2);
        merged.absorb(&a);
        merged.absorb(&b);
        assert_eq!(merged.rows, direct.rows);
        assert_eq!(merged.label_counts, direct.label_counts);
        assert_eq!(merged.sketches, direct.sketches);
        assert!(!merged.is_empty());
        merged.clear();
        assert!(merged.is_empty());
    }
}
