//! The framework's typed error layer.
//!
//! Everything fallible in the persistence and ingestion paths — model
//! files, corpus files, session-metric files, CLI configuration —
//! surfaces as a [`VqdError`] instead of a `String` or a panic, so the
//! `vqd` binary can print an actionable message (naming the file, line
//! and field) and exit nonzero. Std-only: no `anyhow`/`thiserror`.

use std::fmt;
use std::path::PathBuf;

use vqd_ml::ModelParseError;

/// Any error the diagnosis framework reports to callers.
#[derive(Debug)]
pub enum VqdError {
    /// A filesystem operation failed; `path` names the file.
    Io {
        /// The file being read or written.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A model file failed to parse (line/field inside the payload).
    Model(ModelParseError),
    /// A corpus or metrics file failed to parse.
    Corpus {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong (names the bad token).
        msg: String,
    },
    /// A probe-event line failed to parse (streaming ingest).
    Event {
        /// 1-based line number of the offending event line.
        line: usize,
        /// The typed parse failure, naming the bad field.
        source: vqd_probes::event::EventParseError,
    },
    /// The write-ahead event journal failed (I/O or corruption).
    Journal(vqd_probes::journal::JournalError),
    /// A snapshot file failed to load or validate.
    Snapshot {
        /// The snapshot file being read or written.
        path: PathBuf,
        /// 1-based line number of the damage (0 = whole file).
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A binary columnar corpus (`.vqdc`) failed to open or validate
    /// (bad magic, truncation, checksum mismatch, malformed section).
    BinCorpus {
        /// The `.vqdc` file being read or written.
        path: PathBuf,
        /// What went wrong (names the damaged section).
        msg: String,
    },
    /// A sim-farm worker process failed; names the contiguous session
    /// sub-range (spec indices) the worker owned so the run can be
    /// retried or narrowed.
    Farm {
        /// First session index of the worker's range.
        start: usize,
        /// Sessions in the worker's range.
        len: usize,
        /// What went wrong (exit status, signal, spawn failure).
        msg: String,
    },
    /// Invalid configuration or usage (bad flag value, unknown name).
    Config(String),
}

impl VqdError {
    /// An I/O failure on `path`.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        VqdError::Io {
            path: path.into(),
            source,
        }
    }

    /// A corpus-parse failure pinned to a 1-based line.
    pub fn corpus(line: usize, msg: impl Into<String>) -> Self {
        VqdError::Corpus {
            line,
            msg: msg.into(),
        }
    }

    /// A binary-corpus failure on `path`.
    pub fn bin_corpus(path: impl Into<PathBuf>, msg: impl Into<String>) -> Self {
        VqdError::BinCorpus {
            path: path.into(),
            msg: msg.into(),
        }
    }

    /// A snapshot-file failure pinned to a 1-based line (0 = whole
    /// file).
    pub fn snapshot(path: impl Into<PathBuf>, line: usize, msg: impl Into<String>) -> Self {
        VqdError::Snapshot {
            path: path.into(),
            line,
            msg: msg.into(),
        }
    }

    /// A farm-worker failure pinned to its session sub-range.
    pub fn farm(start: usize, len: usize, msg: impl Into<String>) -> Self {
        VqdError::Farm {
            start,
            len,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for VqdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VqdError::Io { path, source } => {
                write!(f, "{}: {}", path.display(), source)
            }
            VqdError::Model(e) => write!(f, "{e}"),
            VqdError::Corpus { line, msg } => {
                write!(f, "corpus parse error at line {line}: {msg}")
            }
            VqdError::Event { line, source } => {
                write!(f, "event parse error at line {line}: {source}")
            }
            VqdError::Journal(e) => write!(f, "{e}"),
            VqdError::Snapshot { path, line, msg } => {
                if *line == 0 {
                    write!(f, "snapshot {}: {msg}", path.display())
                } else {
                    write!(f, "snapshot {} line {line}: {msg}", path.display())
                }
            }
            VqdError::BinCorpus { path, msg } => {
                write!(f, "binary corpus {}: {msg}", path.display())
            }
            VqdError::Farm { start, len, msg } => {
                write!(
                    f,
                    "farm worker for sessions {start}..{} failed: {msg}",
                    start + len
                )
            }
            VqdError::Config(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for VqdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VqdError::Io { source, .. } => Some(source),
            VqdError::Model(e) => Some(e),
            VqdError::Event { source, .. } => Some(source),
            VqdError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelParseError> for VqdError {
    fn from(e: ModelParseError) -> Self {
        VqdError::Model(e)
    }
}

impl From<vqd_probes::journal::JournalError> for VqdError {
    fn from(e: vqd_probes::journal::JournalError) -> Self {
        VqdError::Journal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_path_line_and_field() {
        let io = VqdError::io(
            "model.vqd",
            std::io::Error::new(std::io::ErrorKind::NotFound, "no such file"),
        );
        assert!(io.to_string().contains("model.vqd"), "{io}");

        let model: VqdError = ModelParseError::at(4, "lo_id", "out of range").into();
        let s = model.to_string();
        assert!(s.contains("line 4") && s.contains("lo_id"), "{s}");

        let corpus = VqdError::corpus(12, "unknown fault \"wat\"");
        let s = corpus.to_string();
        assert!(s.contains("line 12") && s.contains("wat"), "{s}");
    }

    #[test]
    fn error_sources_chain() {
        use std::error::Error;
        let io = VqdError::io("x", std::io::Error::other("boom"));
        assert!(io.source().is_some());
        let cfg = VqdError::Config("bad --labels".into());
        assert!(cfg.source().is_none());
    }
}
