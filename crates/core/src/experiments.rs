//! Controlled-environment experiment drivers (Section 5 of the paper).
//!
//! Each function regenerates the rows of one table/figure from a
//! corpus of labelled runs:
//!
//! * [`eval_by_vp`] — Figure 3 (existence), Figure 4 (exact problem)
//!   and the Section 5.2 location results: per-VP and combined
//!   accuracy/precision/recall under 10-fold cross-validation.
//! * [`feature_set_sweep`] — Figure 5: RSSI / HW / UTILIZATION /
//!   DELAY / TCP / ALL / FS&FC.
//! * [`table1`] — the FCBF-selected feature list.
//! * [`table4`] — top-3 features per fault per vantage point.

use vqd_features::{fcbf, rank_by_su, FeatureConstructor, Selection};
use vqd_ml::dataset::Dataset;
use vqd_ml::metrics::ConfusionMatrix;

use crate::dataset::{to_dataset, LabeledRun};
use crate::diagnoser::{Diagnoser, DiagnoserConfig};
use crate::scenario::LabelScheme;

/// The vantage-point sets evaluated throughout Section 5.
pub const VP_SETS: [(&str, &[&str]); 4] = [
    ("mobile", &["mobile"]),
    ("router", &["router"]),
    ("server", &["server"]),
    ("combined", &["mobile", "router", "server"]),
];

/// Per-class precision/recall row.
#[derive(Debug, Clone)]
pub struct PrRow {
    /// Class name.
    pub class: String,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// Instances of this class.
    pub support: u64,
}

/// One vantage point's evaluation.
#[derive(Debug, Clone)]
pub struct VpEval {
    /// VP set name ("mobile", …, "combined").
    pub vp: String,
    /// Overall accuracy.
    pub accuracy: f64,
    /// Per-class rows.
    pub rows: Vec<PrRow>,
}

fn rows_of(cm: &ConfusionMatrix) -> Vec<PrRow> {
    (0..cm.classes.len())
        .map(|c| PrRow {
            class: cm.classes[c].clone(),
            precision: cm.precision(c),
            recall: cm.recall(c),
            support: (0..cm.classes.len()).map(|p| cm.count(c, p)).sum(),
        })
        .collect()
}

/// Restrict a raw dataset to the columns of a VP set.
pub fn vp_subset(data: &Dataset, vps: &[&str]) -> Dataset {
    data.select_features_by(|n| vps.iter().any(|vp| n.starts_with(vp)))
}

/// Figures 3 & 4 (and §5.2 with [`LabelScheme::Location`]): evaluate
/// each VP set with 10-fold CV under the given label scheme.
pub fn eval_by_vp(
    runs: &[LabeledRun],
    scheme: LabelScheme,
    cfg: &DiagnoserConfig,
    seed: u64,
) -> Vec<VpEval> {
    let data = to_dataset(runs, scheme);
    VP_SETS
        .iter()
        .map(|(name, vps)| {
            let sub = vp_subset(&data, vps);
            let cm = Diagnoser::cross_validate(&sub, cfg, 10, seed);
            VpEval {
                vp: name.to_string(),
                accuracy: cm.accuracy(),
                rows: rows_of(&cm),
            }
        })
        .collect()
}

/// One bar pair of Figure 5.
#[derive(Debug, Clone)]
pub struct FeatureSetEval {
    /// Feature-set name as in the figure.
    pub name: String,
    /// Macro-averaged precision.
    pub precision: f64,
    /// Macro-averaged recall.
    pub recall: f64,
    /// Overall accuracy.
    pub accuracy: f64,
    /// Number of feature columns used.
    pub n_features: usize,
}

/// The exact-label dataset and its constructed (normalised) view,
/// computed once per corpus and shared by [`feature_set_sweep`],
/// [`table1`] and [`table4`] (and the `repro` binary, which renders
/// all three from one corpus).
pub struct ExactPrep {
    /// Raw exact-label dataset.
    pub raw: Dataset,
    /// Feature-constructed (normalised) view of `raw`.
    pub constructed: Dataset,
}

impl ExactPrep {
    /// Run `to_dataset` + feature construction once.
    pub fn from_runs(runs: &[LabeledRun]) -> ExactPrep {
        let raw = to_dataset(runs, LabelScheme::Exact);
        let constructed = FeatureConstructor::fit(&raw).transform(&raw);
        ExactPrep { raw, constructed }
    }
}

/// Figure 5: compare feature subsets on exact-problem detection with
/// all three VPs combined.
pub fn feature_set_sweep(runs: &[LabeledRun], seed: u64) -> Vec<FeatureSetEval> {
    feature_set_sweep_prepared(&ExactPrep::from_runs(runs), seed)
}

/// [`feature_set_sweep`] on an already-prepared corpus.
pub fn feature_set_sweep_prepared(prep: &ExactPrep, seed: u64) -> Vec<FeatureSetEval> {
    let ExactPrep { raw, constructed } = prep;
    let no_fs = DiagnoserConfig {
        use_fc: false,
        use_fs: false,
        ..Default::default()
    };

    let mut out = Vec::new();
    let mut eval = |name: &str, data: &Dataset| {
        let cm = Diagnoser::cross_validate(data, &no_fs, 10, seed);
        out.push(FeatureSetEval {
            name: name.to_string(),
            precision: cm.macro_precision(),
            recall: cm.macro_recall(),
            accuracy: cm.accuracy(),
            n_features: data.n_features(),
        });
    };

    eval(
        "RSSI",
        &constructed.select_features_by(|n| n.contains("phy.rssi")),
    );
    eval(
        "HW",
        &constructed.select_features_by(|n| n.contains(".hw.")),
    );
    eval(
        "UTILIZATION",
        &constructed.select_features_by(|n| n.contains("util")),
    );
    eval(
        "DELAY",
        &constructed.select_features_by(|n| n.contains("rtt")),
    );
    eval(
        "TCP",
        &constructed.select_features_by(|n| n.contains(".tcp.")),
    );
    eval("ALL", raw);
    // Full pipeline (FS & FC).
    let cm = Diagnoser::cross_validate(raw, &DiagnoserConfig::default(), 10, seed);
    let sel = fcbf(constructed, 0.01);
    out.push(FeatureSetEval {
        name: "FS & FC".to_string(),
        precision: cm.macro_precision(),
        recall: cm.macro_recall(),
        accuracy: cm.accuracy(),
        n_features: sel.names.len(),
    });
    out
}

/// Table 1: the FCBF selection over the combined, constructed feature
/// space (exact labels).
pub fn table1(runs: &[LabeledRun]) -> Selection {
    table1_prepared(&ExactPrep::from_runs(runs))
}

/// [`table1`] on an already-prepared corpus.
pub fn table1_prepared(prep: &ExactPrep) -> Selection {
    fcbf(&prep.constructed, 0.01)
}

/// One Table 4 cell: the strongest features for detecting `fault` from
/// vantage point `vp`.
#[derive(Debug, Clone)]
pub struct FaultFeatureRank {
    /// Fault name.
    pub fault: String,
    /// VP set name.
    pub vp: String,
    /// Top features, strongest first, with SU scores.
    pub top: Vec<(String, f64)>,
}

/// Table 4: per-fault, per-VP feature ranking. For each fault the
/// dataset is restricted to *good vs that fault* (both severities) and
/// features are ranked by symmetrical uncertainty.
pub fn table4(runs: &[LabeledRun], top_k: usize) -> Vec<FaultFeatureRank> {
    table4_prepared(&ExactPrep::from_runs(runs), top_k)
}

/// [`table4`] on an already-prepared corpus.
pub fn table4_prepared(prep: &ExactPrep, top_k: usize) -> Vec<FaultFeatureRank> {
    let constructed = &prep.constructed;
    let faults: Vec<&str> = vqd_faults::FaultKind::ALL
        .iter()
        .map(|f| f.name())
        .collect();
    let mut out = Vec::new();
    for fault in &faults {
        // Binary dataset: good (0) vs this fault (1).
        let mut rows: Vec<usize> = Vec::new();
        let mut y: Vec<usize> = Vec::new();
        for (i, &cls) in constructed.y.iter().enumerate() {
            let name = &constructed.classes[cls];
            if name == "good" {
                rows.push(i);
                y.push(0);
            } else if name.starts_with(fault) {
                rows.push(i);
                y.push(1);
            }
        }
        if y.iter().sum::<usize>() < 4 {
            continue; // too few instances of this fault in the corpus
        }
        for (vp_name, vps) in VP_SETS {
            let mut sub = Dataset::new(
                constructed
                    .features
                    .iter()
                    .filter(|n| vps.iter().any(|vp| n.starts_with(vp)))
                    .cloned()
                    .collect(),
                vec!["good".into(), fault.to_string()],
            );
            let idx: Vec<usize> = constructed
                .features
                .iter()
                .enumerate()
                .filter(|(_, n)| vps.iter().any(|vp| n.starts_with(vp)))
                .map(|(j, _)| j)
                .collect();
            for (&r, &cls) in rows.iter().zip(&y) {
                sub.push(idx.iter().map(|&j| constructed.x[r][j]).collect(), cls);
            }
            let ranked = rank_by_su(&sub);
            out.push(FaultFeatureRank {
                fault: fault.to_string(),
                vp: vp_name.to_string(),
                top: ranked.into_iter().take(top_k).collect(),
            });
        }
    }
    out
}

/// Evaluate a *lab-trained* model on an independent set of runs
/// (Section 6 transfer evaluation). `vps` optionally restricts the
/// metrics offered to the model (a vantage-point subset); runs that
/// have no metrics from any requested VP are skipped (that probe did
/// not exist for the session — e.g. the server probe on YouTube
/// sessions).
pub fn eval_transfer(
    model: &Diagnoser,
    runs: &[LabeledRun],
    scheme: LabelScheme,
    vps: Option<&[&str]>,
) -> ConfusionMatrix {
    let mut cm = ConfusionMatrix::new(model.classes.clone());
    for run in runs {
        let metrics: Vec<(String, f64)> = match vps {
            Some(vps) => run
                .metrics
                .iter()
                .filter(|(n, _)| vps.iter().any(|vp| n.starts_with(vp)))
                .cloned()
                .collect(),
            None => run.metrics.clone(),
        };
        if metrics.is_empty() {
            continue;
        }
        let d = model.diagnose(&metrics);
        let actual_name = run.truth.label(scheme);
        let Some(actual) = model.classes.iter().position(|c| *c == actual_name) else {
            continue;
        };
        cm.add(actual, d.class);
    }
    cm
}

/// Render a set of [`VpEval`]s as an aligned text table (used by the
/// experiment benches to print paper-style output).
pub fn render_vp_evals(title: &str, evals: &[VpEval]) -> String {
    let mut s = format!("== {title} ==\n");
    for e in evals {
        s.push_str(&format!(
            "-- VP {:<9} accuracy {:.1}%\n",
            e.vp,
            e.accuracy * 100.0
        ));
        s.push_str("   class                        precision  recall  support\n");
        for r in &e.rows {
            if r.support == 0 {
                continue;
            }
            s.push_str(&format!(
                "   {:<28} {:>8.2}  {:>6.2}  {:>7}\n",
                r.class, r.precision, r.recall, r.support
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_corpus, CorpusConfig};
    use vqd_video::catalog::Catalog;

    fn small_corpus() -> Vec<LabeledRun> {
        let cfg = CorpusConfig {
            sessions: 60,
            seed: 99,
            p_fault: 0.7,
            p_mobile_wan: 0.25,
            ..Default::default()
        };
        generate_corpus(&cfg, &Catalog::top100(42))
    }

    #[test]
    fn vp_eval_produces_all_sets() {
        let runs = small_corpus();
        let evals = eval_by_vp(
            &runs,
            LabelScheme::Existence,
            &DiagnoserConfig::default(),
            1,
        );
        assert_eq!(evals.len(), 4);
        for e in &evals {
            assert!(e.accuracy > 0.4, "{} acc {}", e.vp, e.accuracy);
            assert_eq!(e.rows.len(), 3);
        }
        let text = render_vp_evals("fig3", &evals);
        assert!(text.contains("combined"));
    }

    #[test]
    fn feature_sets_cover_figure5() {
        let runs = small_corpus();
        let sweep = feature_set_sweep(&runs, 1);
        let names: Vec<&str> = sweep.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "RSSI",
                "HW",
                "UTILIZATION",
                "DELAY",
                "TCP",
                "ALL",
                "FS & FC"
            ]
        );
        for e in &sweep {
            assert!(e.n_features > 0, "{} empty", e.name);
            assert!((0.0..=1.0).contains(&e.precision));
        }
    }

    #[test]
    fn table1_selects_nontrivial_subset() {
        let runs = small_corpus();
        let sel = table1(&runs);
        assert!(!sel.names.is_empty());
        assert!(sel.names.len() < 100);
    }

    #[test]
    fn table4_ranks_per_fault() {
        let runs = small_corpus();
        let t4 = table4(&runs, 3);
        assert!(!t4.is_empty());
        for cell in &t4 {
            assert!(cell.top.len() <= 3);
            for (name, su) in &cell.top {
                assert!(
                    name.starts_with("mobile")
                        || name.starts_with("router")
                        || name.starts_with("server")
                        || cell.vp == "combined"
                );
                assert!(*su >= 0.0);
            }
        }
    }
}
