//! Seeded bounded-memory external shuffle (DESIGN.md §7j).
//!
//! `vqd events --shuffle` used to hold every event in memory to
//! Fisher–Yates them — the one corpus command that could not run
//! beyond RAM. This module replaces the permutation with a **key
//! sort**: record `i` gets the pseudorandom 64-bit key
//! `mix(seed, i)` (a SplitMix64 finalizer, uniform and fixed forever),
//! and the shuffled order is the records sorted by `(key, i)`. Sorting
//! is an external-memory problem the repo already knows how to solve
//! (`ml::stream_fit`'s spill runs): buffer up to `budget` records,
//! spill each full buffer as a sorted run, k-way merge the runs on
//! drain. The composite key is unique (`i` breaks ties), so the output
//! permutation depends only on `(seed, n)` — **never** on the memory
//! budget, the spill pattern, or the run count (test-enforced).
//!
//! Records are opaque byte strings (a JSONL event line, a corpus text
//! line), so one shuffler serves both `vqd events --shuffle` and
//! `vqd diagnose --batch --shuffle`.

use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::VqdError;

/// Maximum run files merged at once; beyond this, runs are cascaded
/// into bigger runs so the final merge never holds more than this many
/// descriptors open.
const MAX_FANIN: usize = 64;

/// Default in-memory budget: records buffered before a run spills.
pub const DEFAULT_SHUFFLE_BUDGET: usize = 1 << 20;

/// Process-wide run-file counter, so concurrent shuffles sharing one
/// temp dir never collide (same lesson as the stream-fit spill files).
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// SplitMix64 finalizer: uniform, stateless key for record `seq` under
/// `seed`. Fixed forever — the shuffled order is part of the CLI's
/// deterministic surface.
fn shuffle_key(seed: u64, seq: u64) -> u64 {
    let mut z = seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A buffered record: sort key, arrival index (tie-break), payload.
type Rec = (u64, u64, Vec<u8>);

/// Accumulates records, spilling sorted runs past the budget; `finish`
/// returns a reader that drains them in shuffled order.
pub struct ExternalShuffle {
    seed: u64,
    budget: usize,
    tmp_dir: PathBuf,
    buf: Vec<Rec>,
    runs: Vec<RunFile>,
    seq: u64,
}

/// One spilled run: `count` records of `key u64 | seq u64 | len u32 |
/// payload`, already in `(key, seq)` order.
struct RunFile {
    path: PathBuf,
    count: u64,
}

impl ExternalShuffle {
    /// A shuffler for `seed`, holding at most `budget` records in
    /// memory (0 is clamped to 1); runs spill to `tmp_dir` (the OS
    /// temp dir when `None`).
    pub fn new(seed: u64, budget: usize, tmp_dir: Option<PathBuf>) -> ExternalShuffle {
        ExternalShuffle {
            seed,
            budget: budget.max(1),
            tmp_dir: tmp_dir.unwrap_or_else(std::env::temp_dir),
            buf: Vec::new(),
            runs: Vec::new(),
            seq: 0,
        }
    }

    /// Records accepted so far.
    pub fn len(&self) -> u64 {
        self.seq
    }

    /// No records yet?
    pub fn is_empty(&self) -> bool {
        self.seq == 0
    }

    /// Runs spilled so far (0 = still all in memory).
    pub fn spilled_runs(&self) -> usize {
        self.runs.len()
    }

    /// Add one record (its bytes are copied).
    pub fn push(&mut self, record: &[u8]) -> Result<(), VqdError> {
        let key = shuffle_key(self.seed, self.seq);
        self.buf.push((key, self.seq, record.to_vec()));
        self.seq += 1;
        if self.buf.len() >= self.budget {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> Result<(), VqdError> {
        self.buf.sort_unstable_by_key(|&(k, s, _)| (k, s));
        let run = write_run(&self.tmp_dir, self.buf.drain(..))?;
        self.runs.push(run);
        Ok(())
    }

    /// Seal the shuffler and return the drain-side reader. Cascades
    /// the merge when more than [`MAX_FANIN`] runs spilled, so the
    /// final pass is always bounded in open files.
    pub fn finish(mut self) -> Result<ShuffledReader, VqdError> {
        if self.runs.is_empty() {
            // Everything fit: sort in place, no I/O at all.
            self.buf.sort_unstable_by_key(|&(k, s, _)| (k, s));
            let mut records: Vec<Vec<u8>> = self.buf.drain(..).map(|(_, _, b)| b).collect();
            records.reverse(); // drain via pop() = front first
            return Ok(ShuffledReader::Mem(records));
        }
        if !self.buf.is_empty() {
            self.spill()?;
        }
        let mut runs = std::mem::take(&mut self.runs);
        while runs.len() > MAX_FANIN {
            let rest = runs.split_off(MAX_FANIN);
            let merged = merge_runs_to_file(&self.tmp_dir, runs)?;
            runs = rest;
            runs.insert(0, merged);
        }
        let merge = RunMerge::open(runs)?;
        Ok(ShuffledReader::Merge(merge))
    }
}

impl Drop for ExternalShuffle {
    fn drop(&mut self) {
        for run in &self.runs {
            std::fs::remove_file(&run.path).ok();
        }
    }
}

/// Write one sorted run. The iterator must already be `(key, seq)`
/// ordered.
fn write_run(
    tmp_dir: &Path,
    records: impl ExactSizeIterator<Item = Rec>,
) -> Result<RunFile, VqdError> {
    let path = tmp_dir.join(format!(
        "vqd-shuffle-{}-{}.run",
        std::process::id(),
        RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let f = File::create(&path).map_err(|e| VqdError::io(&path, e))?;
    let mut w = BufWriter::with_capacity(1 << 20, f);
    let mut count = 0u64;
    for (key, seq, bytes) in records {
        w.write_all(&key.to_le_bytes())
            .and_then(|()| w.write_all(&seq.to_le_bytes()))
            .and_then(|()| w.write_all(&(bytes.len() as u32).to_le_bytes()))
            .and_then(|()| w.write_all(&bytes))
            .map_err(|e| VqdError::io(&path, e))?;
        count += 1;
    }
    w.flush().map_err(|e| VqdError::io(&path, e))?;
    Ok(RunFile { path, count })
}

/// Merge `runs` into one bigger run file (the cascade step).
fn merge_runs_to_file(tmp_dir: &Path, runs: Vec<RunFile>) -> Result<RunFile, VqdError> {
    let mut merge = RunMerge::open(runs)?;
    // Stream straight to the new run: the merged order is the run
    // order, so write records as they pop.
    let path = tmp_dir.join(format!(
        "vqd-shuffle-{}-{}.run",
        std::process::id(),
        RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let f = File::create(&path).map_err(|e| VqdError::io(&path, e))?;
    let mut w = BufWriter::with_capacity(1 << 20, f);
    let mut count = 0u64;
    while let Some((key, seq, bytes)) = merge.next_rec()? {
        w.write_all(&key.to_le_bytes())
            .and_then(|()| w.write_all(&seq.to_le_bytes()))
            .and_then(|()| w.write_all(&(bytes.len() as u32).to_le_bytes()))
            .and_then(|()| w.write_all(&bytes))
            .map_err(|e| VqdError::io(&path, e))?;
        count += 1;
    }
    w.flush().map_err(|e| VqdError::io(&path, e))?;
    Ok(RunFile { path, count })
}

/// Drain side of the shuffle: records in `(key, seq)` order.
pub enum ShuffledReader {
    /// Everything fit in memory (stored back-to-front, popped).
    Mem(Vec<Vec<u8>>),
    /// K-way merge over spilled runs.
    Merge(RunMerge),
}

impl ShuffledReader {
    /// The next record in shuffled order, `None` when drained.
    pub fn next_record(&mut self) -> Result<Option<Vec<u8>>, VqdError> {
        match self {
            ShuffledReader::Mem(v) => Ok(v.pop()),
            ShuffledReader::Merge(m) => Ok(m.next_rec()?.map(|(_, _, b)| b)),
        }
    }
}

/// Cursor over one spilled run.
struct RunCursor {
    reader: BufReader<File>,
    path: PathBuf,
    remaining: u64,
}

impl RunCursor {
    fn read_rec(&mut self) -> Result<Option<Rec>, VqdError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut head = [0u8; 20];
        self.reader
            .read_exact(&mut head)
            .map_err(|e| VqdError::io(&self.path, e))?;
        let key = u64::from_le_bytes([
            head[0], head[1], head[2], head[3], head[4], head[5], head[6], head[7],
        ]);
        let seq = u64::from_le_bytes([
            head[8], head[9], head[10], head[11], head[12], head[13], head[14], head[15],
        ]);
        let len = u32::from_le_bytes([head[16], head[17], head[18], head[19]]) as usize;
        let mut bytes = vec![0u8; len];
        self.reader
            .read_exact(&mut bytes)
            .map_err(|e| VqdError::io(&self.path, e))?;
        self.remaining -= 1;
        Ok(Some((key, seq, bytes)))
    }
}

/// Heap entry: min-heap by `(key, seq)` via reversed `Ord`.
struct HeapRec {
    key: u64,
    seq: u64,
    bytes: Vec<u8>,
    run: usize,
}

impl PartialEq for HeapRec {
    fn eq(&self, other: &Self) -> bool {
        (self.key, self.seq) == (other.key, other.seq)
    }
}
impl Eq for HeapRec {}
impl PartialOrd for HeapRec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapRec {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest.
        (other.key, other.seq).cmp(&(self.key, self.seq))
    }
}

/// K-way merge over spilled runs; deletes the run files on drop.
pub struct RunMerge {
    cursors: Vec<RunCursor>,
    heap: BinaryHeap<HeapRec>,
}

impl RunMerge {
    fn open(runs: Vec<RunFile>) -> Result<RunMerge, VqdError> {
        let mut cursors = Vec::with_capacity(runs.len());
        for run in runs {
            let f = File::open(&run.path).map_err(|e| VqdError::io(&run.path, e))?;
            cursors.push(RunCursor {
                reader: BufReader::with_capacity(1 << 18, f),
                path: run.path,
                remaining: run.count,
            });
        }
        let mut heap = BinaryHeap::with_capacity(cursors.len());
        for (i, cur) in cursors.iter_mut().enumerate() {
            if let Some((key, seq, bytes)) = cur.read_rec()? {
                heap.push(HeapRec {
                    key,
                    seq,
                    bytes,
                    run: i,
                });
            }
        }
        Ok(RunMerge { cursors, heap })
    }

    fn next_rec(&mut self) -> Result<Option<Rec>, VqdError> {
        let Some(top) = self.heap.pop() else {
            return Ok(None);
        };
        if let Some((key, seq, bytes)) = self.cursors[top.run].read_rec()? {
            self.heap.push(HeapRec {
                key,
                seq,
                bytes,
                run: top.run,
            });
        }
        Ok(Some((top.key, top.seq, top.bytes)))
    }
}

impl Drop for RunMerge {
    fn drop(&mut self) {
        for cur in &self.cursors {
            std::fs::remove_file(&cur.path).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut r: ShuffledReader) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(rec) = r.next_record().unwrap() {
            out.push(rec);
        }
        out
    }

    fn shuffle_all(seed: u64, budget: usize, records: &[Vec<u8>]) -> (Vec<Vec<u8>>, usize) {
        let mut sh = ExternalShuffle::new(seed, budget, None);
        for r in records {
            sh.push(r).unwrap();
        }
        let spilled = sh.spilled_runs();
        (drain(sh.finish().unwrap()), spilled)
    }

    fn records(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("record-{i:05} {}", "x".repeat(i % 37)).into_bytes())
            .collect()
    }

    #[test]
    fn order_is_independent_of_the_memory_budget() {
        let recs = records(500);
        let (want, spilled0) = shuffle_all(42, usize::MAX, &recs);
        assert_eq!(spilled0, 0, "want the all-in-memory path as oracle");
        for budget in [1usize, 3, 7, 64, 499] {
            let (got, spilled) = shuffle_all(42, budget, &recs);
            assert!(spilled > 0, "budget {budget} must exercise the spill path");
            assert_eq!(got, want, "order changed at budget {budget}");
        }
    }

    #[test]
    fn order_is_a_permutation_and_seed_sensitive() {
        let recs = records(300);
        let (a, _) = shuffle_all(1, 50, &recs);
        let (b, _) = shuffle_all(2, 50, &recs);
        assert_ne!(a, b, "different seeds must permute differently");
        assert_ne!(a, recs, "seed 1 must actually move records");
        let mut sorted_a = a.clone();
        sorted_a.sort();
        let mut sorted_in = recs.clone();
        sorted_in.sort();
        assert_eq!(sorted_a, sorted_in, "output must be a permutation");
    }

    #[test]
    fn cascaded_merge_beyond_max_fanin_keeps_the_order() {
        let recs = records(2 * MAX_FANIN + 7);
        let (want, _) = shuffle_all(9, usize::MAX, &recs);
        // budget 1 ⇒ one run per record ⇒ > MAX_FANIN runs ⇒ cascade.
        let (got, spilled) = shuffle_all(9, 1, &recs);
        assert!(spilled > MAX_FANIN);
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_single_record_shuffles_work() {
        let (out, _) = shuffle_all(7, 4, &[]);
        assert!(out.is_empty());
        let one = vec![b"only".to_vec()];
        let (out, _) = shuffle_all(7, 4, &one);
        assert_eq!(out, one);
    }

    #[test]
    fn keys_are_fixed_forever() {
        // The shuffled order is part of the CLI's deterministic
        // surface; pin the key function against accidental change.
        assert_eq!(shuffle_key(0, 0), 0);
        assert_eq!(shuffle_key(2015, 1), 0x81e7_b04b_8a12_4a25);
        assert_ne!(shuffle_key(2015, 1), shuffle_key(2015, 2));
        assert_ne!(shuffle_key(2015, 1), shuffle_key(2016, 1));
    }
}
