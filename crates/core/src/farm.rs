//! Sharded corpus generation ("sim farm").
//!
//! `generate_corpus_with_stats` already runs sessions across worker
//! threads, but as *one* work-stealing pool over one spec list. The
//! farm instead splits the seed range into `width` **contiguous
//! shards**, each driven by an independent worker with its own
//! [`SimArena`] — the process-per-shard shape a multi-host farm would
//! use, here as threads. The merge concatenates shard outputs in shard
//! order, which *is* the spec order: every session is deterministic in
//! its own spec (seeded RNG, arena reset per session), so the merged
//! corpus is byte-identical to a single-process run over the same seed
//! set at any width (test-enforced at widths 1/2/8, and gated in CI).
//!
//! [`generate_corpus_multiproc`] takes the same shape across *process*
//! boundaries: the parent splits the session range into `procs`
//! contiguous sub-ranges, spawns one `vqd` child per sub-range (each
//! child is the in-process farm over its slice, selected by the hidden
//! `--worker-range` flag), and streams a shard-order
//! [`merge_corpora`](crate::corpus_stream::merge_corpora) of the child
//! `.vqdc` files into the final output — byte-identical to `--procs 1`
//! and to the plain generator at any width. A crashed child surfaces
//! as [`VqdError::Farm`] naming the session sub-range it owned.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use vqd_simnet::engine::SimArena;
use vqd_video::catalog::Catalog;

use crate::corpus_stream::merge_corpora;
use crate::dataset::{draw_specs, run_spec, CorpusConfig, CorpusSpec, LabeledRun};
use crate::error::VqdError;
use crate::vqdc::VqdcWriteOptions;

/// Throughput summary of one farm run.
#[derive(Debug, Clone)]
pub struct FarmStats {
    /// Shard count the farm ran with.
    pub width: usize,
    /// Sessions simulated across all shards.
    pub sessions: usize,
    /// Wall-clock seconds for the whole farm (slowest shard).
    pub wall_s: f64,
    /// Sessions per wall-clock second, farm-wide.
    pub sessions_per_sec: f64,
    /// Simulator events dispatched across all shards.
    pub events: u64,
    /// Sessions each shard ran.
    pub shard_sessions: Vec<usize>,
    /// Per-shard wall seconds (busy time of that worker).
    pub shard_wall_s: Vec<f64>,
}

/// Contiguous shard ranges over `n` items: the first `n % width`
/// shards take one extra item, so concatenating the ranges in shard
/// order reproduces `0..n` exactly.
pub fn shard_ranges(n: usize, width: usize) -> Vec<std::ops::Range<usize>> {
    let width = width.max(1);
    let base = n / width;
    let rem = n % width;
    let mut ranges = Vec::with_capacity(width);
    let mut at = 0usize;
    for k in 0..width {
        let len = base + usize::from(k < rem);
        ranges.push(at..at + len);
        at += len;
    }
    ranges
}

/// The farm engine over an already-drawn spec slice: `width` scoped
/// workers over contiguous shards, merged in shard order. Returns
/// `(runs, events, shard_sessions, shard_wall_s)`.
fn farm_specs(
    specs: &[CorpusSpec],
    catalog: &Catalog,
    width: usize,
) -> (Vec<LabeledRun>, u64, Vec<usize>, Vec<f64>) {
    let ranges = shard_ranges(specs.len(), width);
    let mut shard_out: Vec<(Vec<LabeledRun>, u64, f64)> = Vec::with_capacity(ranges.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|range| {
                let shard_specs = &specs[range.clone()];
                s.spawn(move || {
                    let t0 = std::time::Instant::now();
                    let mut arena = SimArena::default();
                    let mut runs = Vec::with_capacity(shard_specs.len());
                    let mut events = 0u64;
                    for spec in shard_specs {
                        let out = run_spec(spec, catalog, &mut arena);
                        events += out.events;
                        runs.push(LabeledRun::from(out));
                    }
                    (runs, events, t0.elapsed().as_secs_f64())
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(out) => shard_out.push(out),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    let mut runs = Vec::with_capacity(specs.len());
    let mut events = 0u64;
    let mut shard_sessions = Vec::with_capacity(shard_out.len());
    let mut shard_wall_s = Vec::with_capacity(shard_out.len());
    for (shard_runs, ev, w) in shard_out {
        shard_sessions.push(shard_runs.len());
        shard_wall_s.push(w);
        events += ev;
        runs.extend(shard_runs);
    }
    (runs, events, shard_sessions, shard_wall_s)
}

/// Generate the corpus sharded `width` ways by contiguous seed range.
/// The merged output is byte-identical to `generate_corpus(cfg,
/// catalog)` over the same config, for every `width ≥ 1`.
pub fn generate_corpus_farm(
    cfg: &CorpusConfig,
    catalog: &Catalog,
    width: usize,
) -> (Vec<LabeledRun>, FarmStats) {
    let _span = vqd_obs::WallSpan::begin("farm", "pipeline");
    let width = width.max(1);
    let specs = draw_specs(cfg);
    let start = std::time::Instant::now();
    let (runs, events, shard_sessions, shard_wall_s) = farm_specs(&specs, catalog, width);
    let wall_s = start.elapsed().as_secs_f64();
    let stats = FarmStats {
        width,
        sessions: runs.len(),
        wall_s,
        sessions_per_sec: runs.len() as f64 / wall_s.max(1e-9),
        events,
        shard_sessions,
        shard_wall_s,
    };
    if vqd_obs::enabled() {
        let r = vqd_obs::recorder();
        r.gauge_set("core.farm.width", stats.width as f64);
        r.gauge_set("core.farm.sessions_per_sec", stats.sessions_per_sec);
        r.counter_add("core.farm.sessions", stats.sessions as u64);
    }
    (runs, stats)
}

/// The multi-process farm's per-child engine: draw the full spec list
/// (deterministic in `cfg.seed`), take the contiguous slice
/// `start..start + len`, and run it through the in-process farm at
/// `width`. Because every session depends only on its own spec, the
/// concatenation of the sub-range outputs in range order is exactly
/// `generate_corpus(cfg, catalog)`.
pub fn generate_corpus_range(
    cfg: &CorpusConfig,
    catalog: &Catalog,
    start: usize,
    len: usize,
    width: usize,
) -> Result<(Vec<LabeledRun>, u64), VqdError> {
    let specs = draw_specs(cfg);
    let end = start.checked_add(len).filter(|&e| e <= specs.len());
    let Some(end) = end else {
        return Err(VqdError::Config(format!(
            "worker range {start}:{len} exceeds the {}-session corpus",
            specs.len()
        )));
    };
    let (runs, events, _, _) = farm_specs(&specs[start..end], catalog, width);
    Ok((runs, events))
}

/// Multi-process farm configuration: how to reach the worker binary
/// and how wide to fan out.
#[derive(Debug, Clone)]
pub struct ProcFarmConfig {
    /// The `vqd` binary to spawn workers from (normally
    /// `std::env::current_exe()`).
    pub exe: PathBuf,
    /// Worker processes (each owns one contiguous session sub-range).
    pub procs: usize,
    /// Total farm width, divided contiguously among the workers (each
    /// child runs its share as in-process shards; floored at 1).
    pub width: usize,
    /// Directory for the intermediate shard `.vqdc` files (default:
    /// a per-run directory under the OS temp dir, removed afterwards).
    pub shard_dir: Option<PathBuf>,
}

/// Throughput summary of one multi-process farm run.
#[derive(Debug, Clone)]
pub struct ProcFarmStats {
    /// Worker processes spawned.
    pub procs: usize,
    /// Sessions generated across all workers.
    pub sessions: usize,
    /// Wall-clock seconds, spawn through merge.
    pub wall_s: f64,
    /// Sessions per wall-clock second, farm-wide.
    pub sessions_per_sec: f64,
    /// Sessions each worker owned (contiguous, in worker order).
    pub proc_sessions: Vec<usize>,
}

/// Generate a corpus with `procs` worker **processes**, streaming the
/// final output to `out` (binary when the path ends in `.vqdc`, text
/// otherwise; `opts` picks the binary version). Each child simulates
/// one contiguous session sub-range and writes a shard `.vqdc`; the
/// parent merges the shards in range order through the streaming
/// writer, so the output is byte-identical to `--procs 1` and to the
/// plain generator — without the parent ever holding the corpus.
///
/// Only `cfg.sessions` and `cfg.seed` are forwarded to the workers
/// (they rebuild the spec list from those plus defaults — exactly what
/// `vqd corpus` exposes); other `CorpusConfig` knobs must be left at
/// their defaults. A child that fails to spawn, exits nonzero, or dies
/// to a signal yields [`VqdError::Farm`] naming its session sub-range.
pub fn generate_corpus_multiproc(
    cfg: &CorpusConfig,
    pf: &ProcFarmConfig,
    out: &Path,
    opts: &VqdcWriteOptions,
) -> Result<ProcFarmStats, VqdError> {
    let _span = vqd_obs::WallSpan::begin("farm", "multiproc");
    let procs = pf.procs.max(1);
    let start = std::time::Instant::now();
    let ranges = shard_ranges(cfg.sessions, procs);
    let widths = shard_ranges(pf.width.max(1), procs);
    let shard_dir = pf
        .shard_dir
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("vqd-farm-{}", std::process::id())));
    std::fs::create_dir_all(&shard_dir).map_err(|e| VqdError::io(&shard_dir, e))?;
    let result = run_workers(cfg, pf, &ranges, &widths, &shard_dir, out, opts);
    // Best-effort cleanup of the shard files and (if now empty) the
    // shard directory, on success and failure alike.
    for (k, _) in ranges.iter().enumerate() {
        std::fs::remove_file(shard_path(&shard_dir, k)).ok();
    }
    std::fs::remove_dir(&shard_dir).ok();
    result?;
    let wall_s = start.elapsed().as_secs_f64();
    let stats = ProcFarmStats {
        procs,
        sessions: cfg.sessions,
        wall_s,
        sessions_per_sec: cfg.sessions as f64 / wall_s.max(1e-9),
        proc_sessions: ranges.iter().map(|r| r.len()).collect(),
    };
    if vqd_obs::enabled() {
        let r = vqd_obs::recorder();
        r.gauge_set("core.farm.procs", stats.procs as f64);
        r.gauge_set("core.farm.sessions_per_sec", stats.sessions_per_sec);
        r.counter_add("core.farm.sessions", stats.sessions as u64);
    }
    Ok(stats)
}

fn shard_path(dir: &Path, k: usize) -> PathBuf {
    dir.join(format!("shard-{k:04}.vqdc"))
}

/// Spawn all workers, reap them in range order, then stream-merge
/// their shards. Split out so the caller can clean the shard dir on
/// every exit path.
fn run_workers(
    cfg: &CorpusConfig,
    pf: &ProcFarmConfig,
    ranges: &[std::ops::Range<usize>],
    widths: &[std::ops::Range<usize>],
    shard_dir: &Path,
    out: &Path,
    opts: &VqdcWriteOptions,
) -> Result<(), VqdError> {
    let mut children: Vec<(usize, std::process::Child)> = Vec::with_capacity(ranges.len());
    for (k, range) in ranges.iter().enumerate() {
        let spawned = Command::new(&pf.exe)
            .arg("corpus")
            .args(["--sessions", &cfg.sessions.to_string()])
            .args(["--seed", &cfg.seed.to_string()])
            .args([
                "--worker-range",
                &format!("{}:{}", range.start, range.len()),
            ])
            .args(["--farm", &widths[k].len().max(1).to_string()])
            .arg("--out")
            .arg(shard_path(shard_dir, k))
            .arg("--no-obs")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn();
        match spawned {
            Ok(child) => children.push((k, child)),
            Err(e) => {
                for (_, mut c) in children {
                    c.kill().ok();
                    c.wait().ok();
                }
                return Err(VqdError::farm(
                    range.start,
                    range.len(),
                    format!("failed to spawn {}: {e}", pf.exe.display()),
                ));
            }
        }
    }
    let mut failure: Option<VqdError> = None;
    for (k, child) in children {
        let range = &ranges[k];
        match child.wait_with_output() {
            Ok(output) if output.status.success() => {}
            Ok(output) => {
                let stderr = String::from_utf8_lossy(&output.stderr);
                let tail = stderr.lines().last().unwrap_or("").trim().to_string();
                failure.get_or_insert_with(|| {
                    let msg = if tail.is_empty() {
                        format!("worker exited with {}", output.status)
                    } else {
                        format!("worker exited with {} ({tail})", output.status)
                    };
                    VqdError::farm(range.start, range.len(), msg)
                });
            }
            Err(e) => {
                failure.get_or_insert_with(|| {
                    VqdError::farm(range.start, range.len(), format!("wait failed: {e}"))
                });
            }
        }
    }
    if let Some(e) = failure {
        return Err(e);
    }
    let shards: Vec<PathBuf> = (0..ranges.len())
        .map(|k| shard_path(shard_dir, k))
        .collect();
    let to_binary = out.extension().is_some_and(|x| x == "vqdc");
    merge_corpora(&shards, out, to_binary, opts)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{corpus_to_text, generate_corpus};

    #[test]
    fn farm_merge_matches_single_process_at_small_widths() {
        let cfg = CorpusConfig {
            sessions: 10,
            seed: 99,
            ..Default::default()
        };
        let catalog = Catalog::top100(7);
        let want = corpus_to_text(&generate_corpus(&cfg, &catalog));
        for width in [1usize, 3] {
            let (runs, stats) = generate_corpus_farm(&cfg, &catalog, width);
            assert_eq!(stats.width, width);
            assert_eq!(stats.sessions, 10);
            assert_eq!(stats.shard_sessions.iter().sum::<usize>(), 10);
            assert_eq!(corpus_to_text(&runs), want, "width {width}");
        }
    }

    #[test]
    fn width_larger_than_corpus_is_fine() {
        let cfg = CorpusConfig {
            sessions: 3,
            seed: 4,
            ..Default::default()
        };
        let catalog = Catalog::top100(7);
        let want = corpus_to_text(&generate_corpus(&cfg, &catalog));
        let (runs, stats) = generate_corpus_farm(&cfg, &catalog, 8);
        assert_eq!(corpus_to_text(&runs), want);
        assert_eq!(stats.shard_sessions.iter().filter(|&&c| c > 0).count(), 3);
    }
}
