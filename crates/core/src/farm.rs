//! Sharded corpus generation ("sim farm").
//!
//! `generate_corpus_with_stats` already runs sessions across worker
//! threads, but as *one* work-stealing pool over one spec list. The
//! farm instead splits the seed range into `width` **contiguous
//! shards**, each driven by an independent worker with its own
//! [`SimArena`] — the process-per-shard shape a multi-host farm would
//! use, here as threads. The merge concatenates shard outputs in shard
//! order, which *is* the spec order: every session is deterministic in
//! its own spec (seeded RNG, arena reset per session), so the merged
//! corpus is byte-identical to a single-process run over the same seed
//! set at any width (test-enforced at widths 1/2/8, and gated in CI).

use vqd_simnet::engine::SimArena;
use vqd_video::catalog::Catalog;

use crate::dataset::{draw_specs, run_spec, CorpusConfig, LabeledRun};

/// Throughput summary of one farm run.
#[derive(Debug, Clone)]
pub struct FarmStats {
    /// Shard count the farm ran with.
    pub width: usize,
    /// Sessions simulated across all shards.
    pub sessions: usize,
    /// Wall-clock seconds for the whole farm (slowest shard).
    pub wall_s: f64,
    /// Sessions per wall-clock second, farm-wide.
    pub sessions_per_sec: f64,
    /// Simulator events dispatched across all shards.
    pub events: u64,
    /// Sessions each shard ran.
    pub shard_sessions: Vec<usize>,
    /// Per-shard wall seconds (busy time of that worker).
    pub shard_wall_s: Vec<f64>,
}

/// Generate the corpus sharded `width` ways by contiguous seed range.
/// The merged output is byte-identical to `generate_corpus(cfg,
/// catalog)` over the same config, for every `width ≥ 1`.
pub fn generate_corpus_farm(
    cfg: &CorpusConfig,
    catalog: &Catalog,
    width: usize,
) -> (Vec<LabeledRun>, FarmStats) {
    let _span = vqd_obs::WallSpan::begin("farm", "pipeline");
    let width = width.max(1);
    let specs = draw_specs(cfg);
    let n = specs.len();
    // Contiguous ranges: the first `n % width` shards take one extra.
    let base = n / width;
    let rem = n % width;
    let mut ranges = Vec::with_capacity(width);
    let mut at = 0usize;
    for k in 0..width {
        let len = base + usize::from(k < rem);
        ranges.push(at..at + len);
        at += len;
    }
    let start = std::time::Instant::now();
    let mut shard_out: Vec<(Vec<LabeledRun>, u64, f64)> = Vec::with_capacity(width);
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|range| {
                let shard_specs = &specs[range.clone()];
                s.spawn(move || {
                    let t0 = std::time::Instant::now();
                    let mut arena = SimArena::default();
                    let mut runs = Vec::with_capacity(shard_specs.len());
                    let mut events = 0u64;
                    for spec in shard_specs {
                        let out = run_spec(spec, catalog, &mut arena);
                        events += out.events;
                        runs.push(LabeledRun::from(out));
                    }
                    (runs, events, t0.elapsed().as_secs_f64())
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(out) => shard_out.push(out),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let mut runs = Vec::with_capacity(n);
    let mut events = 0u64;
    let mut shard_sessions = Vec::with_capacity(width);
    let mut shard_wall_s = Vec::with_capacity(width);
    for (shard_runs, ev, w) in shard_out {
        shard_sessions.push(shard_runs.len());
        shard_wall_s.push(w);
        events += ev;
        runs.extend(shard_runs);
    }
    let stats = FarmStats {
        width,
        sessions: runs.len(),
        wall_s,
        sessions_per_sec: runs.len() as f64 / wall_s.max(1e-9),
        events,
        shard_sessions,
        shard_wall_s,
    };
    if vqd_obs::enabled() {
        let r = vqd_obs::recorder();
        r.gauge_set("core.farm.width", stats.width as f64);
        r.gauge_set("core.farm.sessions_per_sec", stats.sessions_per_sec);
        r.counter_add("core.farm.sessions", stats.sessions as u64);
    }
    (runs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{corpus_to_text, generate_corpus};

    #[test]
    fn farm_merge_matches_single_process_at_small_widths() {
        let cfg = CorpusConfig {
            sessions: 10,
            seed: 99,
            ..Default::default()
        };
        let catalog = Catalog::top100(7);
        let want = corpus_to_text(&generate_corpus(&cfg, &catalog));
        for width in [1usize, 3] {
            let (runs, stats) = generate_corpus_farm(&cfg, &catalog, width);
            assert_eq!(stats.width, width);
            assert_eq!(stats.sessions, 10);
            assert_eq!(stats.shard_sessions.iter().sum::<usize>(), 10);
            assert_eq!(corpus_to_text(&runs), want, "width {width}");
        }
    }

    #[test]
    fn width_larger_than_corpus_is_fine() {
        let cfg = CorpusConfig {
            sessions: 3,
            seed: 4,
            ..Default::default()
        };
        let catalog = Catalog::top100(7);
        let want = corpus_to_text(&generate_corpus(&cfg, &catalog));
        let (runs, stats) = generate_corpus_farm(&cfg, &catalog, 8);
        assert_eq!(corpus_to_text(&runs), want);
        assert_eq!(stats.shard_sessions.iter().filter(|&&c| c > 0).count(), 3);
    }
}
