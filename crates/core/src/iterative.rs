//! Iterative root cause analysis without data sharing (Section 7,
//! "Collaboration").
//!
//! The paper proposes that when entities cannot pool raw measurements,
//! "each of the entities independently perform analysis within their
//! own infrastructure. Then they report to the other entities along
//! the path whether or not the problem has occurred in their segment.
//! In this way, no sensitive information is exchanged."
//!
//! [`IterativeRca`] implements exactly that protocol: each vantage
//! point trains its own location model on *its own features only*; at
//! diagnosis time every entity answers the one-bit question "is the
//! problem in my segment (and how severe)?", and the verdicts are
//! combined by walking the path from the user outward (mobile → LAN →
//! WAN). The only bits on the wire are the per-entity verdicts.

use vqd_ml::metrics::ConfusionMatrix;

use crate::dataset::{to_dataset, LabeledRun};
use crate::diagnoser::{Diagnoser, DiagnoserConfig};
use crate::scenario::LabelScheme;

/// The segment each entity is responsible for, in blame order
/// (closest to the user first).
const SEGMENTS: [(&str, &str); 3] = [("mobile", "mobile"), ("router", "lan"), ("server", "wan")];

/// One entity's self-contained location model.
struct EntityModel {
    vp: &'static str,
    segment: &'static str,
    model: Diagnoser,
}

/// The privacy-preserving collaborative diagnoser.
pub struct IterativeRca {
    entities: Vec<EntityModel>,
}

/// A per-entity verdict: does the entity claim the problem?
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Entity ("mobile" / "router" / "server").
    pub entity: String,
    /// Segment it answers for ("mobile" / "lan" / "wan").
    pub segment: String,
    /// Its claim: `None` = "not my segment / looks fine",
    /// `Some(label)` = "mine, this severe" (e.g. `"lan_severe"`).
    pub claim: Option<String>,
}

impl IterativeRca {
    /// Train the three entity models from the shared lab corpus — each
    /// sees **only its own columns** (in deployment each entity would
    /// train on its own data; the protocol needs no common dataset,
    /// only a common label vocabulary).
    pub fn train(runs: &[LabeledRun], cfg: &DiagnoserConfig) -> IterativeRca {
        let data = to_dataset(runs, LabelScheme::Location);
        let entities = SEGMENTS
            .iter()
            .map(|&(vp, segment)| {
                let own = data.select_features_by(|n| n.starts_with(vp));
                EntityModel {
                    vp,
                    segment,
                    model: Diagnoser::train(&own, cfg),
                }
            })
            .collect();
        IterativeRca { entities }
    }

    /// Collect each entity's verdict for one session. Every entity
    /// receives only its own metrics.
    pub fn verdicts(&self, metrics: &[(String, f64)]) -> Vec<Verdict> {
        self.entities
            .iter()
            .map(|e| {
                let own: Vec<(String, f64)> = metrics
                    .iter()
                    .filter(|(n, _)| n.starts_with(e.vp))
                    .cloned()
                    .collect();
                let claim = if own.is_empty() {
                    None // the entity has no probe for this session
                } else {
                    let d = e.model.diagnose(&own);
                    // The entity only reports a problem it localises to
                    // *its own* segment.
                    d.label.starts_with(e.segment).then_some(d.label)
                };
                Verdict {
                    entity: e.vp.to_string(),
                    segment: e.segment.to_string(),
                    claim,
                }
            })
            .collect()
    }

    /// Combine verdicts into a final location label: walk the path
    /// user-outward and take the first claim; no claim → "good".
    pub fn diagnose(&self, metrics: &[(String, f64)]) -> String {
        for v in self.verdicts(metrics) {
            if let Some(c) = v.claim {
                return c;
            }
        }
        "good".to_string()
    }

    /// Evaluate the protocol on labelled runs (location labels).
    pub fn evaluate(&self, runs: &[LabeledRun]) -> ConfusionMatrix {
        let classes = crate::scenario::class_names(LabelScheme::Location);
        let mut cm = ConfusionMatrix::new(classes.clone());
        for run in runs {
            let predicted = self.diagnose(&run.metrics);
            let actual = run.truth.label(LabelScheme::Location);
            let a = classes.iter().position(|c| *c == actual).unwrap_or(0);
            let p = classes.iter().position(|c| *c == predicted).unwrap_or(0);
            cm.add(a, p);
        }
        cm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_corpus, CorpusConfig};
    use vqd_video::catalog::Catalog;

    fn corpus(sessions: usize, seed: u64) -> Vec<LabeledRun> {
        let cfg = CorpusConfig {
            sessions,
            seed,
            p_fault: 0.65,
            ..Default::default()
        };
        generate_corpus(&cfg, &Catalog::top100(42))
    }

    #[test]
    fn protocol_trains_and_diagnoses() {
        let train = corpus(120, 9100);
        let rca = IterativeRca::train(&train, &DiagnoserConfig::default());
        let test = corpus(40, 9200);
        let cm = rca.evaluate(&test);
        assert_eq!(cm.total(), 40);
        // Must beat chance comfortably even with one-bit collaboration.
        assert!(cm.accuracy() > 0.45, "accuracy {:.2}", cm.accuracy());
    }

    #[test]
    fn verdicts_are_segment_scoped() {
        let train = corpus(100, 9300);
        let rca = IterativeRca::train(&train, &DiagnoserConfig::default());
        let test = corpus(10, 9400);
        for run in &test {
            for v in rca.verdicts(&run.metrics) {
                if let Some(c) = &v.claim {
                    assert!(
                        c.starts_with(&v.segment),
                        "{} claimed {} outside its segment",
                        v.entity,
                        c
                    );
                }
            }
        }
    }

    #[test]
    fn entities_only_see_their_columns() {
        // A session carrying only mobile metrics: router and server
        // entities must abstain rather than guess.
        let train = corpus(100, 9500);
        let rca = IterativeRca::train(&train, &DiagnoserConfig::default());
        let metrics = vec![("mobile.hw.cpu_avg".to_string(), 0.99)];
        let vs = rca.verdicts(&metrics);
        assert_eq!(vs.len(), 3);
        assert!(vs[1].claim.is_none(), "router must abstain");
        assert!(vs[2].claim.is_none(), "server must abstain");
    }
}
