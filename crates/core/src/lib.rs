//! # vqd-core — the video QoE root-cause analysis framework
//!
//! The paper's primary contribution, assembled from the substrate
//! crates: a multi-vantage-point diagnosis system that detects video
//! QoE problems and identifies their location and exact root cause.
//!
//! * [`error`] — the typed error layer ([`VqdError`]) for persistence
//!   and ingestion failures.
//! * [`scenario`] — the label taxonomy (existence / location / exact).
//! * [`testbed`] — the controlled testbed (Figure 2) and session runner.
//! * [`dataset`] — labelled corpus generation (Section 4).
//! * [`farm`] — sharded corpus generation: contiguous seed-range
//!   shards, each an independent simnet worker, with a deterministic
//!   byte-identical merge.
//! * [`vqdc`] — the binary columnar corpus format (`.vqdc`):
//!   feature-major column blocks, checksummed sections, interned
//!   string table; lossless round-trip with the text format.
//! * [`corpus_stream`] — format-sniffing chunked corpus reader, so
//!   CLI consumers stream corpora larger than memory.
//! * [`octrain`] — out-of-core training: the FC → FCBF → C4.5
//!   pipeline fed column-by-column from a `.vqdc` file, bit-identical
//!   to in-memory training.
//! * [`diagnoser`] — the train/diagnose API (FC → FCBF → C4.5).
//! * [`serving`] — the batched serving engine: compiled trees,
//!   interned schemas, zero-alloc columnar diagnosis
//!   ([`DiagnosisBatch`]).
//! * [`stream`] — the streaming daemon behind `vqd serve`: sharded
//!   session reassembly from probe events, watermarks, eviction,
//!   bounded-queue backpressure ([`StreamServer`]), plus the
//!   durability layer (journal + snapshots + recovery) and overload
//!   shedding.
//! * [`chaos`] — seeded crash-point generation (SplitMix64) for the
//!   deterministic crash-injection harness.
//! * [`experiments`] — the Section 5 evaluation drivers (Figs 3–5,
//!   Tables 1 & 4).
//! * [`realworld`] — the Section 6 deployments (induced-fault corporate
//!   WiFi, in-the-wild 3G/WiFi).
//! * [`robustness`] — degraded-telemetry evaluation: a lab-trained
//!   model swept over probe-fault kind × intensity grids (§6.2).
//! * [`ablation`] — classifier/pipeline/pruning ablations.
//! * [`iterative`] — the Section 7 privacy-preserving iterative RCA
//!   protocol (one-bit collaboration).
//! * [`multifault`] — the Section 9 future-work extension: sessions
//!   with co-occurring problems.
pub mod ablation;
pub mod chaos;
pub mod colcodec;
pub mod corpus_stream;
pub mod dataset;
pub mod diagnoser;
pub mod drift;
pub mod error;
pub mod experiments;
pub mod extshuffle;
pub mod farm;
pub mod iterative;
pub mod mmapio;
pub mod multifault;
pub mod octrain;
pub mod realworld;
pub mod robustness;
pub mod scenario;
pub mod serving;
pub mod stream;
pub mod testbed;
pub mod vqdc;

pub use ablation::{classifier_comparison, pipeline_ablation, pruning_ablation};
pub use chaos::{crash_points, SplitMix64};
pub use corpus_stream::{
    convert_corpus, convert_corpus_with, merge_corpora, ConvertStats, CorpusReader,
    DEFAULT_CHUNK_SESSIONS,
};
pub use dataset::{
    corpus_from_text, corpus_to_text, generate_corpus, parse_corpus_line, to_dataset, CorpusConfig,
    LabeledRun,
};
pub use diagnoser::{Diagnoser, DiagnoserConfig, Diagnosis, DiagnosisQuality, Resolution};
pub use drift::{DriftMonitor, DriftReading, DriftStamp, DriftWindow, FeatureSketch};
pub use error::VqdError;
pub use experiments::{eval_by_vp, feature_set_sweep, table1, table4, VpEval, VP_SETS};
pub use extshuffle::{ExternalShuffle, ShuffledReader, DEFAULT_SHUFFLE_BUDGET};
pub use farm::{
    generate_corpus_farm, generate_corpus_multiproc, generate_corpus_range, shard_ranges,
    FarmStats, ProcFarmConfig, ProcFarmStats,
};
pub use iterative::IterativeRca;
pub use multifault::{evaluate_multifault, generate_multifault};
pub use octrain::{train_out_of_core, OocConfig, OocReport};
pub use realworld::{generate_induced, generate_wild, Access, RealWorldConfig, RwRun, Service};
pub use robustness::{degrade_corpus, majority_baseline, sweep, RobustnessCell};
pub use scenario::{class_names, GroundTruth, LabelScheme};
pub use serving::{AuditTrail, BatchOptions, DiagnosisBatch};
pub use stream::ops::{OpsServer, Readiness};
pub use stream::{
    corpus_to_events, corpus_to_events_from, inspect_recovery, prepare_output, recover_state,
    result_line, Durability, FlushCause, FlushedSession, JournalSpec, RecoveredState, RecoveryInfo,
    ServeConfig, ServeReport, SnapshotSpec, StreamServer,
};
pub use testbed::{run_controlled_session, SessionOutcome, SessionSpec, WanProfile};
pub use vqd_ml::{AuditDir, AuditStep};
pub use vqdc::{
    corpus_to_vqdc_bytes, corpus_to_vqdc_bytes_with, sniff_vqdc, write_vqdc, write_vqdc_with,
    VqdcIoMode, VqdcReader, VqdcVersion, VqdcWriteOptions, VQDC2_MAGIC, VQDC_MAGIC,
};
