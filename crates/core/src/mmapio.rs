//! Minimal read-only memory-map shim (DESIGN.md §7j).
//!
//! The workspace vendors its dependencies, so there is no `libc` or
//! `memmap2` to lean on; this module declares the three syscalls the
//! `.vqdc` mmap read path needs — `mmap`, `munmap`, `madvise` — the
//! same way `vqd serve` already declares `signal(2)` for its shutdown
//! handler. The map is strictly `PROT_READ`/`MAP_PRIVATE` and only
//! compiled on 64-bit unix (where `off_t` is `i64`); every other
//! target gets [`Mmap::map`] returning `Unsupported`, and callers fall
//! back to the positioned-read path.
//!
//! ## Safety contract
//!
//! A mapping's pages alias the file: if another process *shrinks* the
//! file, touching a no-longer-backed page raises SIGBUS, which no
//! userspace bounds check can catch. [`Mmap`] therefore only promises
//! memory safety for offsets below the length *at map time* — and the
//! `.vqdc` reader layered on top re-checks the on-disk length against
//! the mapped length before every access window, turning a shrunk file
//! into a typed error in every race the check can see (the residual
//! TOCTOU window is documented in DESIGN.md §7j).

use std::fs::File;
use std::io;

/// A read-only, private memory map of an entire file.
#[derive(Debug)]
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// The mapping is immutable (PROT_READ) for its whole lifetime, so
// shared references to it are as thread-safe as any `&[u8]`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    /// `MADV_SEQUENTIAL`: 2 on every unix this shim compiles for.
    pub const MADV_SEQUENTIAL: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }
}

impl Mmap {
    /// Map `file` read-only in its entirety. `Unsupported` on targets
    /// without the shim (non-unix or 32-bit) and on zero-length files
    /// (`mmap(0)` is `EINVAL`); any real syscall failure comes back as
    /// the OS error. Callers treat every error as "use `pread`".
    #[cfg(all(unix, target_pointer_width = "64"))]
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        if len == 0 || len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "file length not mappable",
            ));
        }
        let len = len as usize;
        // SAFETY: addr=null lets the kernel pick placement; the fd is
        // open for read; PROT_READ|MAP_PRIVATE never writes back.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr as *const u8,
            len,
        })
    }

    /// Fallback for targets without the syscall shim.
    #[cfg(not(all(unix, target_pointer_width = "64")))]
    pub fn map(_file: &File) -> io::Result<Mmap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap shim not available on this target",
        ))
    }

    /// Mapped length (the file length at map time).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the mapping empty? (Never true for a successful map.)
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes. Reading past the *current* file length
    /// faults, so callers must gate accesses on a fresh length check
    /// (see the module docs); the `.vqdc` reader does.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr..ptr+len was returned by a successful mmap and
        // stays mapped until Drop; PROT_READ makes it readable.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Hint the kernel that `offset..offset+len` will be read front to
    /// back (`MADV_SEQUENTIAL`): aggressive readahead, early reclaim.
    /// Best-effort — advice failures are ignored, they only cost
    /// readahead. Out-of-range windows are clamped.
    pub fn advise_sequential(&self, offset: usize, len: usize) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            // madvise wants a page-aligned address; rounding the start
            // down to 4 KiB covers x86-64, and on larger-page targets
            // a misaligned hint fails harmlessly (it is only advice).
            let start = offset.min(self.len) & !4095;
            let end = offset.saturating_add(len).min(self.len);
            if end > start {
                // SAFETY: the window is inside the live mapping.
                unsafe {
                    sys::madvise(
                        self.ptr.add(start) as *mut std::os::raw::c_void,
                        end - start,
                        sys::MADV_SEQUENTIAL,
                    );
                }
            }
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        let _ = (offset, len);
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        // SAFETY: exactly the region mmap returned; after this the
        // struct is gone, so no dangling as_slice can exist (borrows
        // pin the lifetime).
        unsafe {
            sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_a_real_file_and_reads_it_back() {
        let path = std::env::temp_dir().join(format!("vqd-mmap-{}.bin", std::process::id()));
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut f = File::create(&path).unwrap();
        f.write_all(&payload).unwrap();
        drop(f);
        let f = File::open(&path).unwrap();
        match Mmap::map(&f) {
            Ok(m) => {
                assert_eq!(m.len(), payload.len());
                assert_eq!(m.as_slice(), &payload[..]);
                m.advise_sequential(0, m.len());
                m.advise_sequential(m.len() + 100, 7); // clamped, no-op
            }
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::Unsupported),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_files_are_unsupported_not_ub() {
        let path = std::env::temp_dir().join(format!("vqd-mmap0-{}.bin", std::process::id()));
        File::create(&path).unwrap();
        let f = File::open(&path).unwrap();
        assert!(Mmap::map(&f).is_err());
        std::fs::remove_file(&path).ok();
    }
}
