//! Multi-problem sessions (the paper's stated next step, Section 9:
//! "extend the list of problems and train the system for multi-problem
//! detection ... the co-occurrence of problems that jointly affect
//! video QoE").
//!
//! This module generates sessions with **two concurrent faults** and
//! evaluates how a single-label model behaves on them: does it at
//! least attribute the session to one of the two true causes, and
//! which fault "wins" when two compete?

use std::sync::Mutex;

use vqd_faults::{FaultKind, FaultPlan};
use vqd_simnet::rng::SimRng;
use vqd_video::catalog::Catalog;
use vqd_video::QoeClass;

use crate::dataset::LabeledRun;
use crate::diagnoser::Diagnoser;
use crate::scenario::LabelScheme;
use crate::testbed::{run_controlled_session_with, SessionSpec, WanProfile};

/// A two-fault instance with its full truth.
#[derive(Debug, Clone)]
pub struct MultiFaultRun {
    /// Probe metrics + (primary-fault) ground truth.
    pub run: LabeledRun,
    /// The two induced faults.
    pub faults: [FaultKind; 2],
}

/// Generate `sessions` sessions, each with two distinct concurrent
/// faults at moderate-to-high intensity.
pub fn generate_multifault(sessions: usize, seed: u64, catalog: &Catalog) -> Vec<MultiFaultRun> {
    let mut rng = SimRng::seed_from_u64(seed);
    let specs: Vec<(SessionSpec, FaultPlan, [FaultKind; 2])> = (0..sessions)
        .map(|i| {
            let a = FaultKind::ALL[rng.index(FaultKind::ALL.len())];
            let b = loop {
                let k = FaultKind::ALL[rng.index(FaultKind::ALL.len())];
                if k != a {
                    break k;
                }
            };
            let fa = FaultPlan {
                kind: a,
                intensity: rng.range_f64(0.5, 0.95),
            };
            let fb = FaultPlan {
                kind: b,
                intensity: rng.range_f64(0.5, 0.95),
            };
            let spec = SessionSpec {
                seed: seed ^ (0xC0FF_EE11u64.wrapping_mul(i as u64 + 1)),
                fault: fa,
                background: rng.range_f64(0.1, 0.6),
                wan: WanProfile::Dsl,
            };
            (spec, fb, [a, b])
        })
        .collect();
    let results: Mutex<Vec<Option<MultiFaultRun>>> = Mutex::new(vec![None; specs.len()]);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    std::thread::scope(|s| {
        for _ in 0..threads.min(specs.len().max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let (spec, fb, faults) = &specs[i];
                let out = run_controlled_session_with(spec, std::slice::from_ref(fb), catalog);
                results
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = Some(MultiFaultRun {
                    run: LabeledRun {
                        metrics: out.metrics,
                        truth: out.truth,
                    },
                    faults: *faults,
                });
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .map(|r| r.expect("ran"))
        .collect()
}

/// Evaluation summary for multi-fault sessions.
#[derive(Debug, Clone, Default)]
pub struct MultiFaultEval {
    /// Sessions evaluated (problematic only).
    pub total: usize,
    /// Predicted fault family matches one of the two induced faults.
    pub hit_either: usize,
    /// Predicted "good" despite two induced faults degrading QoE.
    pub missed: usize,
    /// Per winning-fault counts: which fault the model blames when the
    /// pair co-occurs.
    pub winners: Vec<(String, usize)>,
}

/// Evaluate a single-label exact-problem model on multi-fault runs.
pub fn evaluate_multifault(model: &Diagnoser, runs: &[MultiFaultRun]) -> MultiFaultEval {
    let mut ev = MultiFaultEval::default();
    let mut winners: std::collections::BTreeMap<String, usize> = Default::default();
    for r in runs {
        if r.run.truth.qoe == QoeClass::Good {
            continue; // both faults too mild to matter
        }
        ev.total += 1;
        let d = model.diagnose(&r.run.metrics);
        if d.label == "good" {
            ev.missed += 1;
            continue;
        }
        let family = d.label.rsplit_once('_').map(|x| x.0).unwrap_or(&d.label);
        if r.faults.iter().any(|f| f.name() == family) {
            ev.hit_either += 1;
            *winners.entry(family.to_string()).or_insert(0) += 1;
        }
    }
    ev.winners = winners.into_iter().collect();
    ev
}

/// Convenience: label of the multi-fault run under the exact scheme.
pub fn truth_label(r: &MultiFaultRun) -> String {
    r.run.truth.label(LabelScheme::Exact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_corpus, to_dataset, CorpusConfig};
    use crate::diagnoser::DiagnoserConfig;

    #[test]
    fn multifault_sessions_generate_and_evaluate() {
        let catalog = Catalog::top100(42);
        let runs = generate_multifault(12, 777, &catalog);
        assert_eq!(runs.len(), 12);
        for r in &runs {
            assert_ne!(r.faults[0], r.faults[1]);
            assert!(!r.run.metrics.is_empty());
        }
        // Two concurrent moderate-high faults should usually hurt.
        let bad = runs
            .iter()
            .filter(|r| r.run.truth.qoe != QoeClass::Good)
            .count();
        assert!(bad >= 6, "only {bad}/12 sessions degraded");

        let cfg = CorpusConfig {
            sessions: 100,
            seed: 31,
            p_fault: 0.7,
            ..Default::default()
        };
        let corpus = generate_corpus(&cfg, &catalog);
        let data = to_dataset(&corpus, LabelScheme::Exact);
        let model = Diagnoser::train(&data, &DiagnoserConfig::default());
        let ev = evaluate_multifault(&model, &runs);
        assert_eq!(ev.total, bad);
        // The single-label model should blame one of the two true
        // causes reasonably often.
        assert!(
            ev.hit_either * 2 >= ev.total,
            "hit {} of {}",
            ev.hit_either,
            ev.total
        );
    }
}
