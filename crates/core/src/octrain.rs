//! Out-of-core training: the full diagnosis pipeline fed column by
//! column from a [`VqdcReader`], never materialising the dataset.
//!
//! The pipeline is the same FC → FCBF → C4.5 as [`Diagnoser::train`],
//! re-expressed over columns:
//!
//! * **FC** — [`ConstructionPlan::for_schema`] resolves the
//!   construction rules against the raw schema once; each transformed
//!   column is then computed on demand from one or two raw columns
//!   (the constructor carries no learned state).
//! * **FS** — [`fcbf_union_streaming`] runs the exact global + per-VP
//!   FCBF union of `Diagnoser::prepare`, fetching one transformed
//!   column at a time.
//! * **C4.5** — [`C45Trainer::fit_streaming`] gathers `(value, id)`
//!   pairs per node/feature through an external sort, bit-identical to
//!   the in-memory fit.
//!
//! Every stage holds O(rows) memory for one column (plus labels and
//! the spill budget), so the corpus the model is trained on can exceed
//! RAM. The resulting model serialises **byte-identically** to
//! `Diagnoser::train` over the same corpus — pinned by the test here
//! and diffed again in the `corpus-smoke` CI job.

use std::io;

use vqd_features::{fcbf_union_streaming, ColumnOp, ConstructionPlan, FeatureConstructor};
use vqd_ml::dtree::C45Trainer;
use vqd_ml::stream_fit::{ColumnSource, StreamFitConfig, StreamFitStats};

use crate::diagnoser::{Diagnoser, DiagnoserConfig};
use crate::error::VqdError;
use crate::scenario::{class_names, LabelScheme};
use crate::vqdc::VqdcReader;

/// Out-of-core training configuration.
#[derive(Debug, Clone)]
pub struct OocConfig {
    /// Pipeline configuration (FC/FS flags, FCBF delta, tree config).
    pub diagnoser: DiagnoserConfig,
    /// Label granularity to train at.
    pub scheme: LabelScheme,
    /// Streaming-fit knobs (chunk size, spill budget, spill dir) —
    /// wall time and memory only, never the model.
    pub fit: StreamFitConfig,
}

impl Default for OocConfig {
    fn default() -> OocConfig {
        OocConfig {
            diagnoser: DiagnoserConfig::default(),
            scheme: LabelScheme::Exact,
            fit: StreamFitConfig::default(),
        }
    }
}

/// What the out-of-core pipeline did, for reporting and benches.
#[derive(Debug, Clone)]
pub struct OocReport {
    /// Sessions trained on.
    pub sessions: usize,
    /// Raw corpus columns.
    pub raw_features: usize,
    /// Columns after feature construction.
    pub constructed_features: usize,
    /// Columns after FCBF selection (the model schema).
    pub selected_features: usize,
    /// External-sort statistics of the tree fit.
    pub fit: StreamFitStats,
}

/// [`ColumnSource`] over a `.vqdc` file with feature construction
/// applied on the fly: each schema column is one raw column or a
/// ratio of two, computed per read window.
struct VqdcColumns<'a> {
    reader: &'a VqdcReader,
    names: Vec<String>,
    ops: Vec<ColumnOp>,
    classes: Vec<String>,
    y: Vec<u32>,
}

impl ColumnSource for VqdcColumns<'_> {
    fn n_rows(&self) -> usize {
        self.reader.n_rows()
    }
    fn feature_names(&self) -> &[String] {
        &self.names
    }
    fn class_names(&self) -> &[String] {
        &self.classes
    }
    fn labels(&self) -> &[u32] {
        &self.y
    }
    fn fill_column(&self, feat: usize, start: usize, out: &mut [f64]) -> io::Result<()> {
        match self.ops[feat] {
            ColumnOp::Copy(j) => self.reader.fill_column(j, start, out),
            ColumnOp::Ratio(j, t) => {
                self.reader.fill_column(j, start, out)?;
                let mut denom = vec![0.0; out.len()];
                self.reader.fill_column(t, start, &mut denom)?;
                for (v, d) in out.iter_mut().zip(&denom) {
                    *v = ConstructionPlan::ratio(*v, *d);
                }
                Ok(())
            }
        }
    }
    fn borrow_cells(&self, feat: usize, start: usize) -> io::Result<Option<&[u64]>> {
        match self.ops[feat] {
            // Copied columns are the stored bits verbatim, so an
            // mmap-backed raw block can be lent straight through.
            // Ratio columns are computed per window — no stored bits
            // to lend — and fall back to `fill_column`.
            ColumnOp::Copy(j) => self.reader.borrow_cells(j, start).map_err(io::Error::other),
            ColumnOp::Ratio(..) => Ok(None),
        }
    }
}

/// Train a diagnoser from a binary corpus without materialising it.
/// The model is byte-identical to `Diagnoser::train` over the same
/// corpus and config, at any `fit` knob values.
pub fn train_out_of_core(
    reader: &VqdcReader,
    cfg: &OocConfig,
) -> Result<(Diagnoser, OocReport), VqdError> {
    let _span = vqd_obs::WallSpan::begin("octrain", "pipeline");
    let dcfg = &cfg.diagnoser;
    let raw = reader.feature_names();
    let plan = if dcfg.use_fc {
        ConstructionPlan::for_schema(raw)
    } else {
        ConstructionPlan {
            names: raw.to_vec(),
            ops: (0..raw.len()).map(ColumnOp::Copy).collect(),
        }
    };
    let y = reader.class_ids(cfg.scheme);
    let classes = class_names(cfg.scheme);
    // One transformed column, materialised on demand — the only
    // row-length allocation of the selection pass.
    let fetch = |k: usize| -> Result<Vec<f64>, VqdError> {
        match plan.ops[k] {
            ColumnOp::Copy(j) => reader.column(j),
            ColumnOp::Ratio(j, t) => {
                let num = reader.column(j)?;
                let den = reader.column(t)?;
                Ok(num
                    .iter()
                    .zip(&den)
                    .map(|(&a, &b)| ConstructionPlan::ratio(a, b))
                    .collect())
            }
        }
    };
    let (schema, ops) = if dcfg.use_fs {
        let names = fcbf_union_streaming(&plan.names, &y, classes.len(), dcfg.fcbf_delta, fetch)?;
        if names.is_empty() {
            // Nothing cleared the relevance bar: keep the full schema,
            // exactly as `Diagnoser::prepare` does.
            (plan.names.clone(), plan.ops.clone())
        } else {
            let mut schema = Vec::with_capacity(names.len());
            let mut ops = Vec::with_capacity(names.len());
            for n in &names {
                if let Some(k) = plan.names.iter().position(|m| m == n) {
                    schema.push(plan.names[k].clone());
                    ops.push(plan.ops[k]);
                }
            }
            (schema, ops)
        }
    } else {
        (plan.names.clone(), plan.ops.clone())
    };
    let selected = schema.len();
    let src = VqdcColumns {
        reader,
        names: schema,
        ops,
        classes: classes.clone(),
        y: y.iter().map(|&c| c as u32).collect(),
    };
    let (tree, stats) = C45Trainer { cfg: dcfg.tree }
        .fit_streaming_with_stats(&src, &cfg.fit)
        .map_err(|e| {
            VqdError::bin_corpus(reader.path(), format!("out-of-core training I/O: {e}"))
        })?;
    if vqd_obs::enabled() {
        let r = vqd_obs::recorder();
        r.counter_add("core.octrain.runs", 1);
        r.gauge_set("core.octrain.selected_features", selected as f64);
        r.gauge_set("core.octrain.spill_runs", stats.spill_runs as f64);
    }
    let report = OocReport {
        sessions: reader.n_rows(),
        raw_features: raw.len(),
        constructed_features: plan.names.len(),
        selected_features: selected,
        fit: stats,
    };
    // Drift stamp over the selected columns, one chunk at a time —
    // column-by-column in row order, exactly the order
    // `DriftStamp::from_dataset` records in-memory, so the two
    // training paths stamp byte-identically (including the
    // floating-point sums, which accumulate in record order).
    let n = reader.n_rows();
    let mut stamp = crate::drift::DriftStamp::empty(src.names.clone(), classes.len());
    let chunk = cfg.fit.chunk_rows.clamp(1, n.max(1));
    let mut buf = vec![0.0; chunk];
    for j in 0..stamp.features.len() {
        let mut start = 0;
        while start < n {
            let len = chunk.min(n - start);
            src.fill_column(j, start, &mut buf[..len]).map_err(|e| {
                VqdError::bin_corpus(reader.path(), format!("drift stamp column read: {e}"))
            })?;
            stamp.record_column(j, buf[..len].iter().copied());
            start += len;
        }
    }
    stamp.record_labels(y.iter().copied());
    let model = Diagnoser::from_trained_tree(
        dcfg.use_fc.then(FeatureConstructor::default),
        src.names,
        classes,
        tree,
        dcfg,
        Some(stamp),
    );
    Ok((model, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_corpus, to_dataset, CorpusConfig};
    use crate::vqdc::write_vqdc;
    use vqd_video::catalog::Catalog;

    #[test]
    fn out_of_core_model_matches_in_memory_train() {
        let ccfg = CorpusConfig {
            sessions: 60,
            seed: 11,
            ..Default::default()
        };
        let runs = generate_corpus(&ccfg, &Catalog::top100(5));
        let path = std::env::temp_dir().join(format!("vqd-oc-{}.vqdc", std::process::id()));
        write_vqdc(&runs, &path).unwrap();
        let reader = VqdcReader::open(&path).unwrap();
        for scheme in [LabelScheme::Exact, LabelScheme::Location] {
            let want = Diagnoser::train(&to_dataset(&runs, scheme), &DiagnoserConfig::default())
                .serialize();
            // Tiny spill budget forces the external sort; big chunk
            // keeps reads whole-column. Both must yield `want`.
            for (chunk, spill) in [(7usize, 64usize), (64 * 1024, 1 << 20)] {
                let oc = OocConfig {
                    scheme,
                    fit: StreamFitConfig {
                        chunk_rows: chunk,
                        spill_pairs: spill,
                        tmp_dir: None,
                    },
                    ..Default::default()
                };
                let (model, report) = train_out_of_core(&reader, &oc).unwrap();
                assert_eq!(
                    model.serialize(),
                    want,
                    "scheme {scheme:?} chunk {chunk} spill {spill}"
                );
                assert_eq!(report.sessions, 60);
                assert!(report.selected_features <= report.constructed_features);
                assert!(report.constructed_features <= report.raw_features);
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn pipeline_toggles_match_in_memory() {
        let ccfg = CorpusConfig {
            sessions: 40,
            seed: 5,
            ..Default::default()
        };
        let runs = generate_corpus(&ccfg, &Catalog::top100(3));
        let path = std::env::temp_dir().join(format!("vqd-oc2-{}.vqdc", std::process::id()));
        write_vqdc(&runs, &path).unwrap();
        let reader = VqdcReader::open(&path).unwrap();
        for (use_fc, use_fs) in [(false, false), (false, true), (true, false)] {
            let dcfg = DiagnoserConfig {
                use_fc,
                use_fs,
                ..Default::default()
            };
            let want =
                Diagnoser::train(&to_dataset(&runs, LabelScheme::Existence), &dcfg).serialize();
            let oc = OocConfig {
                diagnoser: dcfg,
                scheme: LabelScheme::Existence,
                ..Default::default()
            };
            let (model, _) = train_out_of_core(&reader, &oc).unwrap();
            assert_eq!(model.serialize(), want, "fc={use_fc} fs={use_fs}");
        }
        std::fs::remove_file(path).ok();
    }
}
