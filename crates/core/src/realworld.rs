//! Real-world deployments (Section 6 of the paper).
//!
//! Two environments, both *evaluated with the lab-trained model*:
//!
//! * [`generate_induced`] — §6.1: a corporate WiFi network with
//!   unpredictable topology (extra stations with their own traffic,
//!   varying distances), videos streamed from the private server and
//!   from "YouTube" (an uninstrumented CDN server behind extra backbone
//!   hops) with 1:3 ratio, and five induced fault types.
//! * [`generate_wild`] — §6.2: one month in the wild, mixed 3G/WiFi
//!   access, faults occurring *naturally* (ambient processes, not
//!   induced), router features removed for 3G/WiFi comparability —
//!   only the mobile and (for private-server sessions) server probes
//!   remain.

use std::sync::Mutex;

use vqd_faults::{background_apps, FaultKind, FaultPlan, TestbedHandles};
use vqd_probes::{ProbeSet, SamplerApp, VpData};
use vqd_simnet::engine::{Harness, SimArena};
use vqd_simnet::link::LinkConfig;
use vqd_simnet::rng::SimRng;
use vqd_simnet::time::SimTime;
use vqd_simnet::topology::TopologyBuilder;
use vqd_simnet::traffic::{AppMix, MixKind};
use vqd_video::catalog::Catalog;
use vqd_video::mos;
use vqd_video::player::{Player, PlayerConfig};
use vqd_video::server::{SessionDirectory, VideoServer, VideoServerConfig};
use vqd_wireless::{Wlan80211, WlanConfig};

use crate::dataset::LabeledRun;
use crate::scenario::GroundTruth;
use crate::testbed::{SessionOutcome, WanProfile};

/// Access technology of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// 802.11 WLAN behind a home/corporate AP.
    Wifi,
    /// Cellular (3G-class) — no router vantage point exists.
    Cellular,
}

/// Which service the video is streamed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Service {
    /// Our instrumented server (server VP available).
    Private,
    /// A commercial CDN ("YouTube") — uninstrumented.
    Youtube,
}

/// Spec of one real-world session.
#[derive(Debug, Clone, Copy)]
pub struct RwSpec {
    /// Root seed.
    pub seed: u64,
    /// Access technology.
    pub access: Access,
    /// Content service.
    pub service: Service,
    /// Fault (induced in §6.1, ambient in §6.2).
    pub fault: FaultPlan,
    /// Background level.
    pub background: f64,
    /// Corporate flavour: more stations and heavier neighbour traffic.
    pub corporate: bool,
}

/// A wild-deployment instance with its VP availability.
#[derive(Debug, Clone)]
pub struct RwRun {
    /// Metrics + ground truth (metrics contain only available VPs).
    pub run: LabeledRun,
    /// Access technology used.
    pub access: Access,
    /// Service streamed from.
    pub service: Service,
}

impl RwRun {
    /// Ground-truth mobile CPU utilisation (for Figure 9).
    pub fn cpu_truth(&self) -> Option<f64> {
        self.run
            .metrics
            .iter()
            .find(|(n, _)| n == "mobile.hw.cpu_avg")
            .map(|(_, v)| *v)
    }
    /// Ground-truth mobile RSSI (for Figure 9; `None` on cellular).
    pub fn rssi_truth(&self) -> Option<f64> {
        self.run
            .metrics
            .iter()
            .find(|(n, _)| n == "mobile.phy.rssi_avg")
            .map(|(_, v)| *v)
    }
}

/// Run one real-world session.
pub fn run_realworld_session(spec: &RwSpec, catalog: &Catalog) -> SessionOutcome {
    run_realworld_session_in(spec, catalog, &mut SimArena::default())
}

/// Run one real-world session reusing `arena`'s storage. Output is
/// bit-identical to [`run_realworld_session`].
pub fn run_realworld_session_in(
    spec: &RwSpec,
    catalog: &Catalog,
    arena: &mut SimArena,
) -> SessionOutcome {
    let mut rng = SimRng::seed_from_u64(spec.seed);
    let mut video = catalog.pick(&mut rng.split(1)).clone();
    if spec.access == Access::Cellular {
        video = video.sd_variant();
    }

    let mut tb = TopologyBuilder::with_seed_in(rng.split(2).range_u64(0, u64::MAX - 1), arena);
    let mobile = tb.add_host_with(crate::testbed::mobile_host_profile());
    let isp = tb.add_host("isp");
    let private = tb.add_host_with(crate::testbed::server_host_profile());
    let youtube = tb.add_host_with(crate::testbed::server_host_profile());

    // Content side: ISP ↔ servers over backbone links; the commercial
    // CDN sits one jittery hop further away.
    let (_, private_wan) = tb.add_duplex_link(isp, private, LinkConfig::backbone());
    let mut yt_link = LinkConfig::backbone();
    yt_link.delay += vqd_simnet::time::SimDuration::from_millis(12);
    yt_link.jitter_sd = vqd_simnet::time::SimDuration::from_millis(3);
    tb.add_duplex_link(isp, youtube, yt_link);

    let mut router = None;
    let mut medium = None;
    let mut wired_client = None;
    let mut wifi_client = None;
    let mut neighbours = Vec::new();
    #[allow(unused_assignments)]
    let mut mobile_up = None;
    let mut router_lan = None;
    let (wan_up, wan_down);
    match spec.access {
        Access::Wifi => {
            let r = tb.add_host("router");
            router = Some(r);
            // Access link: home DSL or a faster office line.
            let mut link_rng = rng.split(3);
            let mut wl = LinkConfig::dsl(&mut link_rng);
            if spec.corporate {
                // An office line: faster than home DSL but the same
                // order — the lab-trained utilisation scale must stay
                // meaningful, as it did for the paper's deployment.
                wl.rate_bps = 12_000_000;
                wl.delay = vqd_simnet::time::SimDuration::from_millis(35);
            }
            let (u, d) = tb.add_duplex_link(r, isp, wl);
            wan_up = u;
            wan_down = d;
            let mut wlan = Wlan80211::new(r, WlanConfig::default());
            wlan.add_station(
                mobile,
                rng.range_f64(2.0, if spec.corporate { 18.0 } else { 9.0 }),
            );
            let wc = tb.add_host("wifi-client");
            wlan.add_station(wc, rng.range_f64(2.0, 10.0));
            wifi_client = Some(wc);
            let n_extra = if spec.corporate { 3 } else { 1 };
            for i in 0..n_extra {
                let s = tb.add_host(&format!("sta{i}"));
                wlan.add_station(s, rng.range_f64(2.0, 15.0));
                neighbours.push(s);
            }
            let m = tb.add_medium(Box::new(wlan));
            medium = Some(m);
            let (up, _) = tb.add_wireless(mobile, r, m, 1460);
            mobile_up = Some(up);
            tb.add_wireless(wc, r, m, 1460);
            for &s in &neighbours {
                tb.add_wireless(s, r, m, 1460);
            }
            let w = tb.add_host("wired-client");
            wired_client = Some(w);
            let (_, rl) = tb.add_duplex_link(w, r, LinkConfig::ethernet(100_000_000));
            router_lan = Some(rl);
        }
        Access::Cellular => {
            let mut link_rng = rng.split(3);
            let cell = LinkConfig::mobile(&mut link_rng);
            let (u, d) = tb.add_duplex_link(mobile, isp, cell);
            mobile_up = Some(u);
            wan_up = u;
            wan_down = d;
        }
    }

    let mut net = tb.build();

    // Fault injection (only faults the topology supports).
    let handles = TestbedHandles {
        mobile,
        router: router.unwrap_or(isp),
        server: if spec.service == Service::Private {
            private
        } else {
            youtube
        },
        wired_client,
        wifi_client,
        wan_up,
        wan_down,
        medium,
    };
    let mut fault_rng = rng.split(4);
    let plan = if handles.supports(spec.fault.kind) {
        spec.fault
    } else {
        FaultPlan::none()
    };
    let floods = plan.apply(&mut net, &handles, &mut fault_rng);

    // Probes: mobile always; router only on WiFi; the private server is
    // always instrumented (it simply never sees YouTube flows).
    let mut vps = vec![VpData::new("mobile", mobile, &[80])];
    if let Some(up) = mobile_up {
        VpData::label_nic(&vps[0], up, "net");
    }
    if let Some(r) = router {
        let rvp = VpData::new("router", r, &[80]);
        VpData::label_nic(&rvp, wan_up, "wan");
        if let Some(rl) = router_lan {
            VpData::label_nic(&rvp, rl, "lan");
        }
        vps.push(rvp);
    }
    let svp = VpData::new("server", private, &[80]);
    VpData::label_nic(&svp, private_wan, "wan");
    vps.push(svp);
    let obs = ProbeSet::new(vps.clone());

    let mut sim = Harness::with_observer_in(net, obs, arena);
    let dir = SessionDirectory::new();
    let origin = if spec.service == Service::Private {
        private
    } else {
        youtube
    };
    let (player, handle) = Player::new(
        mobile,
        origin,
        80,
        video.clone(),
        PlayerConfig::default(),
        dir.clone(),
    );
    sim.add_app(Box::new(player));
    sim.add_app(Box::new(VideoServer::new(
        private,
        VideoServerConfig::default(),
        dir.clone(),
    )));
    sim.add_app(Box::new(VideoServer::new(
        youtube,
        VideoServerConfig::default(),
        dir,
    )));
    sim.add_app(Box::new(SamplerApp::new(vps.clone())));
    for f in floods {
        sim.add_app(Box::new(f));
    }
    // Ambient traffic: between the LAN side and the ISP/backbone, plus
    // neighbour stations chattering on the WLAN.
    if let Some(w) = wired_client {
        for app in background_apps(
            w,
            isp,
            spec.background,
            rng.split(5).range_u64(0, u64::MAX - 1),
        ) {
            sim.add_app(app);
        }
    }
    for (i, &s) in neighbours.iter().enumerate() {
        sim.add_app(Box::new(AppMix::new(
            s,
            isp,
            &[MixKind::Web, MixKind::Voip],
            spec.background * if spec.corporate { 1.0 } else { 0.4 },
            rng.split(10 + i as u64).range_u64(0, u64::MAX - 1),
        )));
    }

    let cap = video.duration_s * 5.0 + 120.0;
    let mut t = SimTime::ZERO;
    while !handle.done() && t < SimTime((cap * 1e9) as u64) {
        t = SimTime(t.0 + 1_000_000_000);
        sim.run_until(t);
    }

    let qoe = handle.qoe();
    let events = sim.sched_stats().dispatched;
    sim.recycle_into(arena);
    let truth = GroundTruth {
        fault: plan.kind,
        qoe: mos::label(&qoe),
    };
    let mut metrics = Vec::new();
    if let Some(flow) = handle.flow() {
        for vp in &vps {
            if let Some(m) = vp.borrow().metrics_for(flow) {
                metrics.extend(m);
            }
        }
    }
    crate::testbed::flush_session_obs(&qoe, &vps);
    SessionOutcome {
        qoe,
        truth,
        metrics,
        video,
        events,
    }
}

/// Config for the real-world corpora.
#[derive(Debug, Clone, Copy)]
pub struct RealWorldConfig {
    /// Number of sessions.
    pub sessions: usize,
    /// Root seed.
    pub seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

impl Default for RealWorldConfig {
    fn default() -> Self {
        RealWorldConfig {
            sessions: 300,
            seed: 201506,
            threads: 0,
        }
    }
}

fn run_parallel(specs: Vec<RwSpec>, catalog: &Catalog, threads: usize) -> Vec<RwRun> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    };
    let results: Mutex<Vec<Option<RwRun>>> = Mutex::new(vec![None; specs.len()]);
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(specs.len().max(1)) {
            s.spawn(|| {
                let mut arena = SimArena::default();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= specs.len() {
                        break;
                    }
                    let out = run_realworld_session_in(&specs[i], catalog, &mut arena);
                    let rr = RwRun {
                        run: LabeledRun {
                            metrics: out.metrics,
                            truth: out.truth,
                        },
                        access: specs[i].access,
                        service: specs[i].service,
                    };
                    results
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = Some(rr);
                }
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .map(|r| r.expect("session ran"))
        .collect()
}

/// §6.1 — corporate WiFi with induced faults (five types, no shaping),
/// YouTube:private 3:1.
pub fn generate_induced(cfg: &RealWorldConfig, catalog: &Catalog) -> Vec<RwRun> {
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    const INDUCIBLE: [FaultKind; 5] = [
        FaultKind::LanCongestion,
        FaultKind::WanCongestion,
        FaultKind::MobileLoad,
        FaultKind::LowRssi,
        FaultKind::WifiInterference,
    ];
    let specs: Vec<RwSpec> = (0..cfg.sessions)
        .map(|i| {
            let fault = if rng.chance(0.5) {
                FaultPlan::sample(INDUCIBLE[rng.index(INDUCIBLE.len())], &mut rng)
            } else {
                FaultPlan::none()
            };
            RwSpec {
                seed: cfg.seed ^ (0xA5A5_1234u64.wrapping_mul(i as u64 + 1)),
                access: Access::Wifi,
                service: if rng.chance(0.25) {
                    Service::Private
                } else {
                    Service::Youtube
                },
                fault,
                background: rng.range_f64(0.2, 0.9),
                corporate: true,
            }
        })
        .collect();
    run_parallel(specs, catalog, cfg.threads)
}

/// §6.2 — in the wild: mixed 3G/WiFi, natural (ambient) faults,
/// YouTube:private 3:1.
pub fn generate_wild(cfg: &RealWorldConfig, catalog: &Catalog) -> Vec<RwRun> {
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let specs: Vec<RwSpec> = (0..cfg.sessions)
        .map(|i| {
            // "The majority of the videos were delivered over 3G."
            let access = if rng.chance(0.65) {
                Access::Cellular
            } else {
                Access::Wifi
            };
            // Natural impairments: mostly nothing, otherwise a random
            // process at (low-skewed) intensity.
            let fault = if rng.chance(0.30) {
                let kind = FaultKind::ALL[rng.index(FaultKind::ALL.len())];
                let mut p = FaultPlan::sample(kind, &mut rng);
                p.intensity = p.intensity.powf(1.3); // skew toward mild
                p
            } else {
                FaultPlan::none()
            };
            RwSpec {
                seed: cfg.seed ^ (0xB7C3_9F21u64.wrapping_mul(i as u64 + 1)),
                access,
                service: if rng.chance(0.25) {
                    Service::Private
                } else {
                    Service::Youtube
                },
                fault,
                background: rng.range_f64(0.1, 0.9),
                corporate: false,
            }
        })
        .collect();
    let mut runs = run_parallel(specs, catalog, cfg.threads);
    // §6.2: "we removed any features from the router" so WiFi and 3G
    // sessions are comparable.
    for r in &mut runs {
        r.run.metrics.retain(|(n, _)| !n.starts_with("router"));
    }
    runs
}

/// The WAN profile naming kept for API symmetry with the testbed.
pub fn access_profile(a: Access) -> WanProfile {
    match a {
        Access::Wifi => WanProfile::Dsl,
        Access::Cellular => WanProfile::Mobile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqd_video::QoeClass;

    fn catalog() -> Catalog {
        Catalog::top100(42)
    }

    #[test]
    fn wifi_private_session_has_three_vps() {
        let spec = RwSpec {
            seed: 11,
            access: Access::Wifi,
            service: Service::Private,
            fault: FaultPlan::none(),
            background: 0.3,
            corporate: true,
        };
        let o = run_realworld_session(&spec, &catalog());
        let vps: std::collections::HashSet<&str> = o
            .metrics
            .iter()
            .map(|(n, _)| n.split('.').next().unwrap_or(""))
            .collect();
        assert!(
            vps.contains("mobile") && vps.contains("router") && vps.contains("server"),
            "{vps:?}"
        );
    }

    #[test]
    fn youtube_session_lacks_server_vp() {
        let spec = RwSpec {
            seed: 12,
            access: Access::Wifi,
            service: Service::Youtube,
            fault: FaultPlan::none(),
            background: 0.3,
            corporate: true,
        };
        let o = run_realworld_session(&spec, &catalog());
        let vps: std::collections::HashSet<&str> = o
            .metrics
            .iter()
            .map(|(n, _)| n.split('.').next().unwrap_or(""))
            .collect();
        assert!(vps.contains("mobile") && vps.contains("router"));
        assert!(
            !vps.contains("server"),
            "uninstrumented CDN must be invisible"
        );
        assert!(!o.qoe.failed, "{:?}", o.qoe);
    }

    #[test]
    fn cellular_session_has_no_router_vp() {
        let spec = RwSpec {
            seed: 13,
            access: Access::Cellular,
            service: Service::Private,
            fault: FaultPlan::none(),
            background: 0.2,
            corporate: false,
        };
        let o = run_realworld_session(&spec, &catalog());
        let vps: std::collections::HashSet<&str> = o
            .metrics
            .iter()
            .map(|(n, _)| n.split('.').next().unwrap_or(""))
            .collect();
        assert!(vps.contains("mobile") && vps.contains("server"));
        assert!(!vps.contains("router"));
        // No WLAN → no RSSI even at the mobile.
        assert!(!o.metrics.iter().any(|(n, _)| n == "mobile.phy.rssi_avg"));
    }

    #[test]
    fn unsupported_fault_degrades_to_none() {
        // WiFi interference cannot be induced on cellular access.
        let spec = RwSpec {
            seed: 14,
            access: Access::Cellular,
            service: Service::Youtube,
            fault: FaultPlan {
                kind: FaultKind::WifiInterference,
                intensity: 0.9,
            },
            background: 0.2,
            corporate: false,
        };
        let o = run_realworld_session(&spec, &catalog());
        assert_eq!(o.truth.fault, FaultKind::None);
    }

    #[test]
    fn wild_corpus_mixed_and_router_free() {
        let cfg = RealWorldConfig {
            sessions: 10,
            seed: 3,
            threads: 0,
        };
        let runs = generate_wild(&cfg, &catalog());
        assert_eq!(runs.len(), 10);
        assert!(runs.iter().any(|r| r.access == Access::Cellular));
        for r in &runs {
            assert!(r.run.metrics.iter().all(|(n, _)| !n.starts_with("router")));
            assert!(r.cpu_truth().is_some());
        }
        assert!(runs.iter().any(|r| r.run.truth.qoe == QoeClass::Good));
    }
}
