//! Robustness evaluation: diagnosis accuracy under degraded telemetry.
//!
//! The paper's lab-to-wild transfer (§6) silently assumes the deployed
//! probes behave like the testbed's. This harness drops that
//! assumption: a lab-trained [`Diagnoser`] is evaluated against a test
//! corpus whose probe telemetry is degraded by a
//! [`DegradePlan`] — whole-VP dropout, per-group metric loss, sample
//! truncation, value corruption, clock skew — swept over a kind ×
//! intensity grid. Each cell reports the confusion matrix, the mean
//! telemetry coverage the diagnoser observed, and how often it could
//! still answer at exact (Q3) resolution, reproducing the spirit of
//! the paper's partial-deployment results (§6.2: coarse answers stay
//! reliable long after exact ones stop being available).
//!
//! Degradation is deterministic per run index, so every cell is
//! byte-identical across repeats and worker-thread counts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use vqd_ml::metrics::ConfusionMatrix;
use vqd_probes::degrade::{DegradeKind, DegradePlan};

use crate::dataset::LabeledRun;
use crate::diagnoser::{Diagnoser, Resolution};
use crate::scenario::{class_id, LabelScheme};

/// Worker-thread count: `threads` or available parallelism when 0.
pub(crate) fn thread_count(threads: usize, jobs: usize) -> usize {
    let n = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    };
    n.min(jobs.max(1))
}

/// Run `f` over `0..n` on a work-stealing thread pool, collecting
/// results in index order (thread-count invariant as long as `f` is a
/// pure function of the index).
fn par_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, threads: usize, f: F) -> Vec<T> {
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..thread_count(threads, n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                if let Ok(mut guard) = results.lock() {
                    guard[i] = Some(out);
                }
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(|p| p.into_inner())
        .into_iter()
        .flatten()
        .collect()
}

/// Degrade every run of a corpus under one plan. Parallel over runs;
/// the output is byte-identical for any `threads` because each run's
/// degradation is a pure function of `(plan, run index)`.
pub fn degrade_corpus(runs: &[LabeledRun], plan: &DegradePlan, threads: usize) -> Vec<LabeledRun> {
    par_map(runs.len(), threads, |i| LabeledRun {
        metrics: plan.apply(i as u64, &runs[i].metrics),
        truth: runs[i].truth,
    })
}

/// One (kind, intensity) cell of a robustness sweep.
#[derive(Debug, Clone)]
pub struct RobustnessCell {
    /// Injected failure mode.
    pub kind: DegradeKind,
    /// Injected intensity (0 = pristine, 1 = worst case).
    pub intensity: f64,
    /// Confusion of exact-resolution predictions against ground truth.
    pub cm: ConfusionMatrix,
    /// Mean importance-weighted feature coverage the diagnoser saw.
    pub mean_coverage: f64,
    /// Mean downgraded confidence of the predictions.
    pub mean_confidence: f64,
    /// Fraction of sessions still answerable at exact (Q3) resolution.
    pub exact_fraction: f64,
}

impl RobustnessCell {
    /// Accuracy of the exact-resolution predictions in this cell.
    pub fn accuracy(&self) -> f64 {
        self.cm.accuracy()
    }
}

/// Accuracy of always predicting the most common class of `test` —
/// the floor any useful diagnosis must beat.
pub fn majority_baseline(test: &[LabeledRun], scheme: LabelScheme) -> f64 {
    if test.is_empty() {
        return 0.0;
    }
    let mut counts: Vec<(usize, usize)> = Vec::new();
    for r in test {
        let c = class_id(&r.truth, scheme);
        match counts.iter_mut().find(|(id, _)| *id == c) {
            Some((_, n)) => *n += 1,
            None => counts.push((c, 1)),
        }
    }
    let top = counts.iter().map(|(_, n)| *n).max().unwrap_or(0);
    top as f64 / test.len() as f64
}

/// Evaluate one degradation cell: degrade the test corpus, diagnose
/// every run, score against ground truth under `scheme`.
pub fn eval_cell(
    model: &Diagnoser,
    test: &[LabeledRun],
    scheme: LabelScheme,
    plan: &DegradePlan,
    threads: usize,
) -> RobustnessCell {
    // One batch-level span per cell (not per call: a sweep diagnoses
    // hundreds of thousands of sessions).
    let _span = vqd_obs::WallSpan::begin("diagnose", "pipeline");
    // Degrade in parallel (pure per index), then score the whole cell
    // through the batched serving engine — same outputs as per-session
    // `diagnose` calls, bit for bit, at batch throughput.
    let degraded = par_map(test.len(), threads, |i| {
        plan.apply(i as u64, &test[i].metrics)
    });
    let batch = model.diagnose_batch(&degraded, threads);
    let mut cm = ConfusionMatrix::new(model.classes.clone());
    let (mut cov, mut conf, mut exact) = (0.0, 0.0, 0usize);
    for (i, run) in test.iter().enumerate() {
        cm.add(class_id(&run.truth, scheme), batch.class(i));
        cov += batch.coverage(i);
        conf += batch.confidence(i);
        exact += (batch.resolution(i) == Resolution::Exact) as usize;
    }
    let n = test.len().max(1) as f64;
    RobustnessCell {
        kind: plan.kind,
        intensity: plan.intensity,
        cm,
        mean_coverage: cov / n,
        mean_confidence: conf / n,
        exact_fraction: exact as f64 / n,
    }
}

/// Sweep a lab-trained model over a degradation grid: every `kind` ×
/// every `intensity`, each cell seeded independently from `seed`.
pub fn sweep(
    model: &Diagnoser,
    test: &[LabeledRun],
    scheme: LabelScheme,
    kinds: &[DegradeKind],
    intensities: &[f64],
    seed: u64,
    threads: usize,
) -> Vec<RobustnessCell> {
    let mut cells = Vec::with_capacity(kinds.len() * intensities.len());
    for &kind in kinds {
        for &intensity in intensities {
            let plan = DegradePlan::new(kind, intensity, seed);
            cells.push(eval_cell(model, test, scheme, &plan, threads));
        }
    }
    cells
}

/// Render sweep cells as an aligned text table (one row per cell).
pub fn report(cells: &[RobustnessCell], baseline: f64) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>8}\n",
        "kind", "intensity", "accuracy", "coverage", "conf", "exact%"
    ));
    for c in cells {
        s.push_str(&format!(
            "{:<12} {:>9.2} {:>9.3} {:>9.3} {:>9.3} {:>8.1}\n",
            c.kind.name(),
            c.intensity,
            c.accuracy(),
            c.mean_coverage,
            c.mean_confidence,
            100.0 * c.exact_fraction,
        ));
    }
    s.push_str(&format!("majority-class baseline: {baseline:.3}\n"));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_corpus, to_dataset, CorpusConfig};
    use crate::diagnoser::DiagnoserConfig;
    use vqd_video::catalog::Catalog;

    fn tiny_corpus(sessions: usize, seed: u64) -> Vec<LabeledRun> {
        let cfg = CorpusConfig {
            sessions,
            seed,
            ..Default::default()
        };
        generate_corpus(&cfg, &Catalog::top100(42))
    }

    #[test]
    fn degrade_corpus_thread_invariant() {
        let runs = tiny_corpus(8, 11);
        let plan = DegradePlan::new(DegradeKind::Corruption, 0.5, 99);
        let a = degrade_corpus(&runs, &plan, 1);
        let b = degrade_corpus(&runs, &plan, 4);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.metrics.len(), y.metrics.len());
            for ((nx, vx), (ny, vy)) in x.metrics.iter().zip(&y.metrics) {
                assert_eq!(nx, ny);
                assert_eq!(vx.to_bits(), vy.to_bits());
            }
        }
    }

    #[test]
    fn sweep_degrades_without_cliff() {
        let train = tiny_corpus(40, 21);
        let test = tiny_corpus(24, 22);
        let scheme = LabelScheme::Existence;
        let model = Diagnoser::train(&to_dataset(&train, scheme), &DiagnoserConfig::default());
        let cells = sweep(
            &model,
            &test,
            scheme,
            &[DegradeKind::VpDropout],
            &[0.0, 0.5, 1.0],
            7,
            0,
        );
        assert_eq!(cells.len(), 3);
        for c in &cells {
            assert_eq!(c.cm.total() as usize, test.len());
            assert!((0.0..=1.0).contains(&c.mean_coverage));
        }
        // Coverage shrinks monotonically with dropout intensity; at
        // full dropout the diagnoser sees nothing.
        assert!(cells[0].mean_coverage >= cells[1].mean_coverage);
        assert!(cells[1].mean_coverage >= cells[2].mean_coverage);
        assert!(cells[2].mean_coverage < 1e-9);
        assert!(cells[2].exact_fraction < 1e-9);
        let txt = report(&cells, majority_baseline(&test, scheme));
        assert!(txt.contains("vp_dropout"), "{txt}");
    }

    #[test]
    fn baseline_counts_majority() {
        let runs = tiny_corpus(20, 31);
        let b = majority_baseline(&runs, LabelScheme::Existence);
        assert!(b > 0.0 && b <= 1.0);
    }
}
