//! Label taxonomy (Section 4.4 of the paper).
//!
//! Every session's ground truth is the pair *(induced fault, MOS
//! severity)*. Three label granularities are derived from it:
//!
//! * **Existence** — good / mild / severe (Figure 3),
//! * **Location** — good + {mobile, lan, wan} × {mild, severe}
//!   (Section 5.2),
//! * **Exact problem** — good + 7 faults × {mild, severe}
//!   (Figure 4, 15 classes).
//!
//! A faulted session whose MOS stayed above 3 is labelled *good*: the
//! user did not suffer, so there is nothing to diagnose — this matches
//! the paper's class counts (3919 sessions, 3125 good).

use vqd_faults::FaultKind;
use vqd_video::QoeClass;

/// Full ground truth of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroundTruth {
    /// The fault that was induced (or [`FaultKind::None`]).
    pub fault: FaultKind,
    /// MOS-derived severity.
    pub qoe: QoeClass,
}

/// Label granularity for training/evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelScheme {
    /// good / mild / severe.
    Existence,
    /// good + location × severity.
    Location,
    /// good + fault × severity.
    Exact,
}

impl GroundTruth {
    /// The effective fault after MOS gating: a session that stayed good
    /// has no problem to report.
    pub fn effective_fault(&self) -> FaultKind {
        if self.qoe == QoeClass::Good {
            FaultKind::None
        } else {
            self.fault
        }
    }

    /// Class name under a scheme.
    pub fn label(&self, scheme: LabelScheme) -> String {
        let sev = self.qoe.name();
        match scheme {
            LabelScheme::Existence => sev.to_string(),
            LabelScheme::Location => {
                if self.qoe == QoeClass::Good || self.fault == FaultKind::None {
                    // Un-attributable degradation (ambient, no induced
                    // fault) is treated as its severity only for
                    // existence; for location we fold it into "good"'s
                    // complement — the paper's dataset has an induced
                    // fault behind every problem instance, so this
                    // branch fires only for ambient noise.
                    if self.qoe == QoeClass::Good {
                        "good".to_string()
                    } else {
                        format!("wan_{sev}") // ambient faults live beyond the LAN
                    }
                } else {
                    format!("{}_{}", self.fault.location(), sev)
                }
            }
            LabelScheme::Exact => {
                if self.qoe == QoeClass::Good {
                    "good".to_string()
                } else if self.fault == FaultKind::None {
                    format!("ambient_{sev}")
                } else {
                    format!("{}_{}", self.fault.name(), sev)
                }
            }
        }
    }
}

/// All class names of a scheme, in canonical order (index = class id).
pub fn class_names(scheme: LabelScheme) -> Vec<String> {
    match scheme {
        LabelScheme::Existence => vec!["good".into(), "mild".into(), "severe".into()],
        LabelScheme::Location => {
            let mut v = vec!["good".to_string()];
            for loc in ["wan", "lan", "mobile"] {
                for sev in ["mild", "severe"] {
                    v.push(format!("{loc}_{sev}"));
                }
            }
            v
        }
        LabelScheme::Exact => {
            let mut v = vec!["good".to_string()];
            for f in FaultKind::ALL {
                for sev in ["mild", "severe"] {
                    v.push(format!("{}_{}", f.name(), sev));
                }
            }
            v.push("ambient_mild".into());
            v.push("ambient_severe".into());
            v
        }
    }
}

/// Class id of a ground truth under a scheme.
pub fn class_id(gt: &GroundTruth, scheme: LabelScheme) -> usize {
    let name = gt.label(scheme);
    class_names(scheme)
        .iter()
        .position(|c| *c == name)
        .unwrap_or(0)
}

/// Map an *exact* class name to its *location* class name.
pub fn exact_to_location(exact: &str) -> String {
    if exact == "good" {
        return "good".into();
    }
    let Some((fault_part, sev)) = exact.rsplit_once('_') else {
        return "good".into();
    };
    let loc = FaultKind::ALL
        .iter()
        .find(|f| f.name() == fault_part)
        .map(|f| f.location())
        .unwrap_or("wan");
    format!("{loc}_{sev}")
}

/// Map an *exact* class name to its *existence* class name.
pub fn exact_to_existence(exact: &str) -> String {
    if exact == "good" {
        "good".into()
    } else if exact.ends_with("severe") {
        "severe".into()
    } else {
        "mild".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mos_gating_folds_good() {
        let gt = GroundTruth {
            fault: FaultKind::WanShaping,
            qoe: QoeClass::Good,
        };
        assert_eq!(gt.label(LabelScheme::Exact), "good");
        assert_eq!(gt.label(LabelScheme::Existence), "good");
        assert_eq!(gt.effective_fault(), FaultKind::None);
    }

    #[test]
    fn exact_labels() {
        let gt = GroundTruth {
            fault: FaultKind::LowRssi,
            qoe: QoeClass::Severe,
        };
        assert_eq!(gt.label(LabelScheme::Exact), "low_rssi_severe");
        assert_eq!(gt.label(LabelScheme::Location), "mobile_severe");
        assert_eq!(gt.label(LabelScheme::Existence), "severe");
    }

    #[test]
    fn class_name_sets() {
        assert_eq!(class_names(LabelScheme::Existence).len(), 3);
        assert_eq!(class_names(LabelScheme::Location).len(), 7);
        // good + 7×2 + 2 ambient = 17.
        assert_eq!(class_names(LabelScheme::Exact).len(), 17);
    }

    #[test]
    fn class_ids_round_trip() {
        for f in FaultKind::ALL {
            for qoe in [QoeClass::Mild, QoeClass::Severe] {
                let gt = GroundTruth { fault: f, qoe };
                for scheme in [
                    LabelScheme::Existence,
                    LabelScheme::Location,
                    LabelScheme::Exact,
                ] {
                    let id = class_id(&gt, scheme);
                    assert_eq!(class_names(scheme)[id], gt.label(scheme));
                }
            }
        }
    }

    #[test]
    fn exact_name_projections() {
        assert_eq!(exact_to_location("wan_congestion_mild"), "wan_mild");
        assert_eq!(exact_to_location("lan_shaping_severe"), "lan_severe");
        assert_eq!(exact_to_location("mobile_load_mild"), "mobile_mild");
        assert_eq!(exact_to_location("low_rssi_severe"), "mobile_severe");
        assert_eq!(exact_to_location("good"), "good");
        assert_eq!(exact_to_existence("wifi_interference_mild"), "mild");
        assert_eq!(exact_to_existence("good"), "good");
    }

    #[test]
    fn ambient_faults_labelled() {
        let gt = GroundTruth {
            fault: FaultKind::None,
            qoe: QoeClass::Mild,
        };
        assert_eq!(gt.label(LabelScheme::Exact), "ambient_mild");
        assert_eq!(gt.label(LabelScheme::Location), "wan_mild");
    }
}
