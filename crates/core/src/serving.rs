//! Batched diagnosis serving: compiled model + columnar batch API.
//!
//! [`Diagnoser::diagnose`] is correct but built for one session at a
//! time: every call resolves feature names with linear string scans,
//! re-derives tree importances, and allocates a handful of vectors.
//! At the deployment scale the paper targets (scoring every video
//! session an ISP carries) the serving path is the product, so this
//! module compiles the model once —
//!
//! * the decision tree flattened to SoA node tables
//!   ([`vqd_ml::CompiledTree`]),
//! * the post-selection schema interned to dense column ids
//!   ([`vqd_ml::FeatureInterner`]),
//! * feature importances, tree-used columns, vantage-point groups and
//!   the Q2/Q1 label projections all pre-resolved —
//!
//! and scores N sessions into a columnar [`DiagnosisBatch`] with
//! **zero allocation inside the per-session loop** (scratch buffers
//! and per-shape [`InstancePlan`]s are reused; only genuinely new
//! metric-name shapes compile a plan).
//!
//! # Determinism
//!
//! The batch is sharded across threads as contiguous index ranges,
//! each worker writing its own disjoint slice of every output column,
//! so the result is **byte-identical to the scalar path at any thread
//! count**: per-session work is a pure function of the session, every
//! floating-point expression keeps the scalar path's exact shape and
//! evaluation order (leaf-visit order, ascending-index coverage sums,
//! class-order projection accumulation, last-max tie-breaks), and no
//! reduction crosses a shard boundary.

use std::cmp::Ordering;

use vqd_features::InstancePlan;
use vqd_ml::compiled::{AuditStep, CompiledTree, DescentFrame};
use vqd_ml::dtree::DecisionTree;
use vqd_ml::intern::FeatureInterner;

use crate::diagnoser::{Diagnoser, Diagnosis, DiagnosisQuality, Resolution};
use crate::drift::DriftWindow;
use crate::robustness::thread_count;

/// Sentinel for "no fallback label" in [`DiagnosisBatch::fallback`].
const NO_FALLBACK: u32 = u32::MAX;

/// Optional extras for a batched diagnosis — everything here is off
/// by default and none of it changes a single output bit.
#[derive(Default)]
pub struct BatchOptions<'a> {
    /// Record each session's decision path (every split the descent
    /// crossed: node, feature, threshold, observed value, direction)
    /// into the batch's [`AuditTrail`].
    pub audit: bool,
    /// Sketch every constructed row and diagnosis outcome into this
    /// drift window (see [`crate::drift`]).
    pub drift: Option<&'a mut DriftWindow>,
}

/// Recorded decision paths for a batch: a flat step arena plus
/// per-session offsets (`offsets.len() == n + 1`), so audit-on
/// batches make one allocation pattern per shard, not per session.
#[derive(Debug, Clone, Default)]
pub struct AuditTrail {
    steps: Vec<AuditStep>,
    offsets: Vec<usize>,
}

impl AuditTrail {
    fn with_capacity(n: usize) -> AuditTrail {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        AuditTrail {
            steps: Vec::new(),
            offsets,
        }
    }

    /// Decision path of session `i`, in descent order.
    pub fn path(&self, i: usize) -> &[AuditStep] {
        &self.steps[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Number of recorded paths.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no paths were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&mut self, path: &[AuditStep]) {
        self.steps.extend_from_slice(path);
        self.offsets.push(self.steps.len());
    }

    /// Append another trail (shard-stitching).
    fn absorb(&mut self, other: &AuditTrail) {
        let base = self.steps.len();
        self.steps.extend_from_slice(&other.steps);
        self.offsets
            .extend(other.offsets.iter().skip(1).map(|o| base + o));
    }
}

/// Everything about a trained model that the serving hot path needs,
/// resolved once at construction time.
#[derive(Debug, Clone)]
pub(crate) struct CompiledModel {
    /// The flattened tree.
    pub(crate) ctree: CompiledTree,
    /// Post-FC/FS schema, interned (dense column ids).
    pub(crate) schema: FeatureInterner,
    /// Whether sessions go through feature construction first.
    pub(crate) with_fc: bool,
    /// Tree-used schema columns, ascending.
    used: Vec<u32>,
    /// Importance per schema column (same bits as
    /// `DecisionTree::feature_importance`).
    imp: Vec<f64>,
    /// `Σ imp[used]`, the scalar path's per-call coverage denominator.
    total_imp: f64,
    /// First-occurrence vantage-point names over the schema.
    vp_names: Vec<String>,
    /// Vantage-point index of each schema column.
    vp_of_col: Vec<u32>,
    /// Q2 (location) projection: group names in first-occurrence order
    /// and the group of each class.
    loc_names: Vec<String>,
    loc_group: Vec<u32>,
    /// Q1 (existence) projection, same layout.
    ex_names: Vec<String>,
    ex_group: Vec<u32>,
    /// `1 / n_classes` — the chance level confidence shrinks toward.
    chance: f64,
    /// Reusable worker scratch states (see [`ScratchPool`]).
    pool: ScratchPool,
}

/// Pool of per-worker [`Scratch`] states, owned by the compiled model
/// so consecutive `diagnose`/`diagnose_batch` calls reuse warm plan
/// caches instead of recompiling every shape from nothing — this is
/// what makes a batch-of-one call cheap. Scratch sizes are a function
/// of the model, and the pool is rebuilt with it (and emptied on
/// clone), so a pooled scratch always fits. Workers pop concurrently
/// under the mutex — one lock per shard, never per session.
pub(crate) struct ScratchPool(std::sync::Mutex<Vec<Scratch>>);

impl ScratchPool {
    fn new() -> ScratchPool {
        ScratchPool(std::sync::Mutex::new(Vec::new()))
    }

    fn get(&self, cm: &CompiledModel) -> Scratch {
        self.0
            .lock()
            .ok()
            .and_then(|mut v| v.pop())
            .unwrap_or_else(|| Scratch::new(cm))
    }

    fn put(&self, sc: Scratch) {
        if let Ok(mut v) = self.0.lock() {
            v.push(sc);
        }
    }
}

impl Clone for ScratchPool {
    fn clone(&self) -> Self {
        ScratchPool::new()
    }
}

impl std::fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ScratchPool")
    }
}

impl CompiledModel {
    pub(crate) fn build(tree: &DecisionTree, with_fc: bool) -> CompiledModel {
        let ctree = CompiledTree::from_tree(tree);
        let schema = FeatureInterner::from_names(&tree.feature_names);
        let imp = ctree.feature_importance();
        let used: Vec<u32> = ctree.features_used().iter().map(|&i| i as u32).collect();
        // Same expression the scalar path evaluates per call.
        let total_imp: f64 = used.iter().map(|&i| imp[i as usize]).sum();

        // First-occurrence VP list + per-column VP index, mirroring the
        // scalar `coverage_of` silent-VP scan.
        let mut vp_names: Vec<String> = Vec::new();
        let mut vp_of_col = Vec::with_capacity(tree.feature_names.len());
        for n in &tree.feature_names {
            let vp = n.split('.').next().unwrap_or("");
            let vi = match vp_names.iter().position(|v| v == vp) {
                Some(i) => i,
                None => {
                    vp_names.push(vp.to_string());
                    vp_names.len() - 1
                }
            };
            vp_of_col.push(vi as u32);
        }

        let (loc_names, loc_group) =
            Self::projection(&tree.class_names, crate::scenario::exact_to_location);
        let (ex_names, ex_group) =
            Self::projection(&tree.class_names, crate::scenario::exact_to_existence);
        let chance = 1.0 / tree.class_names.len().max(1) as f64;
        CompiledModel {
            ctree,
            schema,
            with_fc,
            used,
            imp,
            total_imp,
            vp_names,
            vp_of_col,
            loc_names,
            loc_group,
            ex_names,
            ex_group,
            chance,
            pool: ScratchPool::new(),
        }
    }

    /// Pre-resolve one label projection: group names in the
    /// first-occurrence order the scalar `project_dist` discovers them,
    /// plus each class's group index.
    fn projection(classes: &[String], f: impl Fn(&str) -> String) -> (Vec<String>, Vec<u32>) {
        let mut names: Vec<String> = Vec::new();
        let mut group = Vec::with_capacity(classes.len());
        for c in classes {
            let g = f(c);
            let gi = match names.iter().position(|n| *n == g) {
                Some(i) => i,
                None => {
                    names.push(g);
                    names.len() - 1
                }
            };
            group.push(gi as u32);
        }
        (names, group)
    }

    /// Words per session in the silent-VP bitmask.
    fn silent_words(&self) -> usize {
        self.vp_names.len().div_ceil(64).max(1)
    }
}

/// Columnar results of a batched diagnosis: one entry per session, in
/// input order, bit-identical to calling [`Diagnoser::diagnose`] per
/// session. Use the accessors for zero-copy reads or
/// [`DiagnosisBatch::get`] to materialise one [`Diagnosis`].
#[derive(Debug, Clone)]
pub struct DiagnosisBatch {
    n_classes: usize,
    /// Silent-VP bitmask words per session.
    nw: usize,
    classes: Vec<String>,
    vp_names: Vec<String>,
    loc_names: Vec<String>,
    ex_names: Vec<String>,
    /// Predicted class per session.
    class: Vec<u32>,
    /// Class distributions, session-major (`n × n_classes`).
    dist: Vec<f64>,
    coverage: Vec<f64>,
    missing_descent: Vec<f64>,
    confidence: Vec<f64>,
    resolution: Vec<Resolution>,
    /// Fallback group index per session ([`NO_FALLBACK`] when the
    /// answer is exact); indexes `loc_names` or `ex_names` according
    /// to `resolution`.
    fallback: Vec<u32>,
    /// Silent-VP bitmask, session-major (`n × nw`).
    silent: Vec<u64>,
    /// Decision paths, present when the batch ran with
    /// [`BatchOptions::audit`].
    audit: Option<AuditTrail>,
}

impl DiagnosisBatch {
    /// Number of sessions diagnosed.
    pub fn len(&self) -> usize {
        self.class.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.class.is_empty()
    }

    /// Predicted class index of session `i`.
    pub fn class(&self, i: usize) -> usize {
        self.class[i] as usize
    }

    /// Predicted class label of session `i`.
    pub fn label(&self, i: usize) -> &str {
        &self.classes[self.class[i] as usize]
    }

    /// Class distribution of session `i`.
    pub fn dist(&self, i: usize) -> &[f64] {
        &self.dist[i * self.n_classes..(i + 1) * self.n_classes]
    }

    /// Feature coverage of session `i`.
    pub fn coverage(&self, i: usize) -> f64 {
        self.coverage[i]
    }

    /// Downgraded confidence of session `i`.
    pub fn confidence(&self, i: usize) -> f64 {
        self.confidence[i]
    }

    /// Resolution of session `i`.
    pub fn resolution(&self, i: usize) -> Resolution {
        self.resolution[i]
    }

    /// The reported answer for session `i`: the exact label, or the
    /// coarser fallback when coverage forced one.
    pub fn answer(&self, i: usize) -> &str {
        match self.fallback_label(i) {
            Some(f) => f,
            None => self.label(i),
        }
    }

    fn fallback_label(&self, i: usize) -> Option<&str> {
        let names = match self.resolution[i] {
            Resolution::Exact => return None,
            Resolution::Location => &self.loc_names,
            Resolution::Existence => &self.ex_names,
        };
        Some(match names.get(self.fallback[i] as usize) {
            Some(n) => n.as_str(),
            // Empty class list: the scalar path answers "good".
            None => "good",
        })
    }

    /// Silent vantage points of session `i`, in schema order.
    pub fn silent_vps(&self, i: usize) -> Vec<String> {
        let words = &self.silent[i * self.nw..(i + 1) * self.nw];
        self.vp_names
            .iter()
            .enumerate()
            .filter(|(v, _)| words[v / 64] & (1u64 << (v % 64)) != 0)
            .map(|(_, n)| n.clone())
            .collect()
    }

    /// Decision path of session `i` — `None` unless the batch ran
    /// with [`BatchOptions::audit`].
    pub fn audit_path(&self, i: usize) -> Option<&[AuditStep]> {
        self.audit.as_ref().map(|t| t.path(i))
    }

    /// Materialise session `i` as a scalar [`Diagnosis`] — field-for-
    /// field (and bit-for-bit) what [`Diagnoser::diagnose`] returns.
    pub fn get(&self, i: usize) -> Diagnosis {
        Diagnosis {
            label: self.classes[self.class[i] as usize].clone(),
            class: self.class[i] as usize,
            dist: self.dist(i).to_vec(),
            quality: DiagnosisQuality {
                feature_coverage: self.coverage[i],
                silent_vps: self.silent_vps(i),
                missing_descent: self.missing_descent[i],
                confidence: self.confidence[i],
            },
            resolution: self.resolution[i],
            fallback_label: self.fallback_label(i).map(str::to_string),
        }
    }
}

/// Per-shard mutable views over the batch's output columns.
struct Shard<'a> {
    class: &'a mut [u32],
    dist: &'a mut [f64],
    coverage: &'a mut [f64],
    missing_descent: &'a mut [f64],
    confidence: &'a mut [f64],
    resolution: &'a mut [Resolution],
    fallback: &'a mut [u32],
    silent: &'a mut [u64],
}

/// Per-worker scratch: reused across every session of a shard so the
/// hot loop allocates nothing (a new metric-name *shape* compiles one
/// plan; repeated shapes hit the cache).
struct Scratch {
    row: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
    stack: Vec<DescentFrame>,
    gacc: Vec<f64>,
    /// Per-session decision-path scratch (audit mode only; cleared by
    /// the audited descent, so it never grows past one path).
    path: Vec<AuditStep>,
    plans: Vec<(u64, InstancePlan)>,
    /// Index of the most recently hit plan — tried first, before any
    /// hashing, so shape-stable session streams pay one fused
    /// verify+scatter pass and nothing else.
    mru: usize,
}

impl Scratch {
    fn new(cm: &CompiledModel) -> Scratch {
        let w = cm.schema.len();
        Scratch {
            row: vec![0.0; w],
            stamp: vec![0u32; w],
            epoch: 0,
            stack: Vec::new(),
            gacc: vec![0.0; cm.loc_names.len().max(cm.ex_names.len())],
            path: Vec::new(),
            plans: Vec::new(),
            mru: 0,
        }
    }

    /// Advance the session epoch, resetting the stamps on wrap so a
    /// recycled epoch value can never validate a stale write.
    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Plan-cache discriminator over a session's metric-name shape:
    /// an FNV fold of the name-length sequence. Lengths live in the
    /// `String` headers, so hashing touches no name bytes at all —
    /// deliberately cheap, because it only routes the lookup; the
    /// authoritative check is [`InstancePlan::apply_verified`]'s
    /// name-by-name comparison (shapes that collide here diverge on
    /// their first differing name), so a collision costs a retried
    /// epoch, never a wrong row.
    fn shape_hash(metrics: &[(String, f64)]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (name, _) in metrics {
            h ^= name.len() as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Build the schema row for one session: find (or compile) the
    /// plan for its metric-name shape and scatter its values, leaving
    /// the result in `self.row`. Verification is fused into the
    /// scatter, so a cache hit costs a single pass over the session.
    fn construct_row(&mut self, metrics: &[(String, f64)], cm: &CompiledModel) {
        self.bump_epoch();
        // MRU fast path: verification is fused into the scatter, so
        // trying the last-hit plan outright is cheaper than hashing
        // the session's names whenever shapes repeat back to back.
        let mru = self.mru;
        if mru < self.plans.len() && self.plans[mru].1.shape_len() == metrics.len() {
            if self.plans[mru]
                .1
                .apply_verified(metrics, &mut self.row, &mut self.stamp, self.epoch)
            {
                return;
            }
            // The failed attempt may have scattered a few values
            // before diverging; invalidate them.
            self.bump_epoch();
        }
        let h = Self::shape_hash(metrics);
        for i in 0..self.plans.len() {
            if i == mru || self.plans[i].0 != h {
                continue;
            }
            if self.plans[i]
                .1
                .apply_verified(metrics, &mut self.row, &mut self.stamp, self.epoch)
            {
                self.mru = i;
                return;
            }
            // Hash collision: invalidate any partial scatter and keep
            // looking.
            self.bump_epoch();
        }
        let names: Vec<String> = metrics.iter().map(|(n, _)| n.clone()).collect();
        let plan = if cm.with_fc {
            InstancePlan::with_construction(&names, &cm.schema)
        } else {
            InstancePlan::direct(&names, &cm.schema)
        };
        let ok = plan.apply_verified(metrics, &mut self.row, &mut self.stamp, self.epoch);
        debug_assert!(ok, "freshly compiled plan must match its own shape");
        self.plans.push((h, plan));
        self.mru = self.plans.len() - 1;
    }
}

/// Split `len` elements off the front of `*s`, advancing it — the
/// progressive-carving idiom for handing disjoint column ranges to
/// worker threads.
fn carve<'a, T>(s: &mut &'a mut [T], len: usize) -> &'a mut [T] {
    let tmp = std::mem::take(s);
    let (a, b) = tmp.split_at_mut(len);
    *s = b;
    a
}

/// Per-shard observability tallies, flushed once per shard so the hot
/// loop never formats metric names.
#[derive(Default)]
struct ShardObs {
    res_counts: [u64; 3],
    exact_labels: Vec<u64>,
    loc_labels: Vec<u64>,
    ex_labels: Vec<u64>,
    construct_ns: u64,
    descend_ns: u64,
    score_ns: u64,
}

impl Diagnoser {
    /// Diagnose a batch of sessions — one [`Diagnosis`]-worth of
    /// output per session, bit-identical to calling
    /// [`Diagnoser::diagnose`] on each, at a fraction of the cost.
    ///
    /// `threads` shards the batch across scoped worker threads
    /// (0 = available parallelism); the output is identical for every
    /// thread count. Sessions are arbitrary `(metric name, value)`
    /// slices, exactly as the scalar API takes them.
    pub fn diagnose_batch<S>(&self, sessions: &[S], threads: usize) -> DiagnosisBatch
    where
        S: AsRef<[(String, f64)]> + Sync,
    {
        self.diagnose_batch_with(sessions, threads, BatchOptions::default())
    }

    /// [`Diagnoser::diagnose_batch`] plus opt-in extras: decision-path
    /// audit recording and drift sketching ([`BatchOptions`]). With
    /// everything off this *is* `diagnose_batch`; with extras on,
    /// every diagnosis output bit is still identical — the audit
    /// recorder observes the descent without touching any of its
    /// floating-point expressions, and drift sketching only reads the
    /// constructed rows.
    pub fn diagnose_batch_with<S>(
        &self,
        sessions: &[S],
        threads: usize,
        mut opts: BatchOptions<'_>,
    ) -> DiagnosisBatch
    where
        S: AsRef<[(String, f64)]> + Sync,
    {
        let cm = &self.compiled;
        let n = sessions.len();
        let k = cm.ctree.n_classes();
        let nw = cm.silent_words();
        let mut batch = DiagnosisBatch {
            n_classes: k,
            nw,
            classes: self.classes.clone(),
            vp_names: cm.vp_names.clone(),
            loc_names: cm.loc_names.clone(),
            ex_names: cm.ex_names.clone(),
            class: vec![0; n],
            dist: vec![0.0; n * k],
            coverage: vec![0.0; n],
            missing_descent: vec![0.0; n],
            confidence: vec![0.0; n],
            resolution: vec![Resolution::Exact; n],
            fallback: vec![NO_FALLBACK; n],
            silent: vec![0; n * nw],
            audit: opts.audit.then(|| AuditTrail::with_capacity(n)),
        };
        if n == 0 {
            return batch;
        }

        let obs_on = vqd_obs::enabled();
        if obs_on {
            let r = vqd_obs::recorder();
            r.counter_add("core.batch.calls", 1);
            r.counter_add("core.batch.sessions", n as u64);
            r.hist_record("core.batch.size", n as f64);
        }

        let nt = thread_count(threads, n);
        if nt == 1 {
            // Single worker: run inline. Identical output to the
            // sharded path (it is the one-shard case of it), without
            // paying a thread spawn — this keeps the batch-of-one
            // calls `diagnose` makes cheap.
            let out = Shard {
                class: &mut batch.class,
                dist: &mut batch.dist,
                coverage: &mut batch.coverage,
                missing_descent: &mut batch.missing_descent,
                confidence: &mut batch.confidence,
                resolution: &mut batch.resolution,
                fallback: &mut batch.fallback,
                silent: &mut batch.silent,
            };
            self.run_shard(sessions, out, obs_on, batch.audit.as_mut(), opts.drift);
            return batch;
        }
        let cs = n.div_ceil(nt);
        let audit_on = batch.audit.is_some();
        let drift_schema = opts
            .drift
            .as_ref()
            .map(|dw| (dw.sketches.len(), dw.label_counts.len()));
        // Shard-local extras, stitched back in shard (= session) order
        // after the scope joins, so the merged trail is identical to
        // the single-thread one.
        let extras: Vec<(Option<AuditTrail>, Option<DriftWindow>)> = std::thread::scope(|s| {
            let mut class = batch.class.as_mut_slice();
            let mut dist = batch.dist.as_mut_slice();
            let mut coverage = batch.coverage.as_mut_slice();
            let mut missing = batch.missing_descent.as_mut_slice();
            let mut confidence = batch.confidence.as_mut_slice();
            let mut resolution = batch.resolution.as_mut_slice();
            let mut fallback = batch.fallback.as_mut_slice();
            let mut silent = batch.silent.as_mut_slice();
            let mut start = 0usize;
            let mut handles = Vec::new();
            while start < n {
                let len = cs.min(n - start);
                let out = Shard {
                    class: carve(&mut class, len),
                    dist: carve(&mut dist, len * k),
                    coverage: carve(&mut coverage, len),
                    missing_descent: carve(&mut missing, len),
                    confidence: carve(&mut confidence, len),
                    resolution: carve(&mut resolution, len),
                    fallback: carve(&mut fallback, len),
                    silent: carve(&mut silent, len * nw),
                };
                let chunk = &sessions[start..start + len];
                handles.push(s.spawn(move || {
                    let mut trail = audit_on.then(|| AuditTrail::with_capacity(chunk.len()));
                    let mut window = drift_schema.map(|(f, c)| DriftWindow::new(f, c));
                    self.run_shard(chunk, out, obs_on, trail.as_mut(), window.as_mut());
                    (trail, window)
                }));
                start += len;
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(p) => std::panic::resume_unwind(p),
                })
                .collect()
        });
        for (trail, window) in &extras {
            if let (Some(into), Some(t)) = (batch.audit.as_mut(), trail.as_ref()) {
                into.absorb(t);
            }
            if let (Some(dw), Some(w)) = (opts.drift.as_deref_mut(), window.as_ref()) {
                dw.absorb(w);
            }
        }
        batch
    }

    /// Score one contiguous shard of sessions into its output slices.
    fn run_shard<S>(
        &self,
        sessions: &[S],
        out: Shard<'_>,
        obs_on: bool,
        mut audit: Option<&mut AuditTrail>,
        mut drift: Option<&mut DriftWindow>,
    ) where
        S: AsRef<[(String, f64)]>,
    {
        let cm = &self.compiled;
        let k = cm.ctree.n_classes();
        let nw = cm.silent_words();
        let n_vps = cm.vp_names.len();
        let mut sc = cm.pool.get(cm);
        let mut tally = ShardObs {
            exact_labels: vec![0; self.classes.len()],
            loc_labels: vec![0; cm.loc_names.len()],
            ex_labels: vec![0; cm.ex_names.len()],
            ..Default::default()
        };

        for (i, session) in sessions.iter().enumerate() {
            let metrics = session.as_ref();
            let t0 = obs_on.then(std::time::Instant::now);

            // Construct + scatter: compiled transform into the schema
            // row (first-match-wins via epoch stamps).
            sc.construct_row(metrics, cm);
            if let Some(dw) = drift.as_deref_mut() {
                dw.record_row(&sc.row);
            }
            let t1 = obs_on.then(std::time::Instant::now);

            // Descend the compiled tree — audited when a trail is
            // attached; the audited descent is the same loop with a
            // step recorder bolted on, so the outputs are bitwise
            // identical either way.
            let dist = &mut out.dist[i * k..(i + 1) * k];
            let (missing_descent, depth) = match audit.as_deref_mut() {
                Some(trail) => {
                    let r =
                        cm.ctree
                            .predict_into_audited(&sc.row, dist, &mut sc.stack, &mut sc.path);
                    trail.push(&sc.path);
                    r
                }
                None => cm.ctree.predict_into(&sc.row, dist, &mut sc.stack),
            };
            let t2 = obs_on.then(std::time::Instant::now);

            // Normalise + argmax (last max on ties, like the scalar
            // path's `max_by`).
            let total: f64 = dist.iter().sum();
            if total > 0.0 {
                for d in dist.iter_mut() {
                    *d /= total;
                }
            }
            let mut class = 0usize;
            for c in 1..k {
                if dist[c].total_cmp(&dist[class]) != Ordering::Less {
                    class = c;
                }
            }

            // Coverage: importance-weighted, summed in ascending used-
            // column order exactly as the scalar path does.
            let coverage = if cm.total_imp > 0.0 {
                let mut s = 0.0;
                for &u in &cm.used {
                    if sc.row[u as usize].is_finite() {
                        s += cm.imp[u as usize];
                    }
                }
                s / cm.total_imp
            } else if cm.used.is_empty() {
                1.0
            } else {
                let present = cm
                    .used
                    .iter()
                    .filter(|&&u| sc.row[u as usize].is_finite())
                    .count();
                present as f64 / cm.used.len() as f64
            };
            let coverage = coverage + 0.0;

            // Silent VPs: start all-silent, clear each VP that has any
            // finite column.
            let words = &mut out.silent[i * nw..(i + 1) * nw];
            for (w, word) in words.iter_mut().enumerate() {
                let bits = n_vps.saturating_sub(w * 64).min(64);
                *word = if bits == 64 {
                    u64::MAX
                } else {
                    (1u64 << bits) - 1
                };
            }
            for (j, v) in sc.row.iter().enumerate() {
                if v.is_finite() {
                    let vp = cm.vp_of_col[j] as usize;
                    words[vp / 64] &= !(1u64 << (vp % 64));
                }
            }

            let p_top = dist.get(class).copied().unwrap_or(0.0);
            let confidence = p_top * (1.0 - missing_descent) + cm.chance * missing_descent;

            let (resolution, fb) = if coverage >= self.min_coverage_exact {
                (Resolution::Exact, NO_FALLBACK)
            } else if coverage >= self.min_coverage_location {
                (
                    Resolution::Location,
                    project(&cm.loc_group, cm.loc_names.len(), dist, &mut sc.gacc),
                )
            } else {
                (
                    Resolution::Existence,
                    project(&cm.ex_group, cm.ex_names.len(), dist, &mut sc.gacc),
                )
            };

            out.class[i] = class as u32;
            out.coverage[i] = coverage;
            out.missing_descent[i] = missing_descent;
            out.confidence[i] = confidence;
            out.resolution[i] = resolution;
            out.fallback[i] = fb;
            if let Some(dw) = drift.as_deref_mut() {
                dw.record_outcome(class, confidence, coverage);
            }

            // Scoring ends here: sample the clock before any recorder
            // work so score_ns measures the stage, not the recorders.
            // Like t0–t2 this rides the enabled fast path — with obs
            // off the loop reads no clock at all.
            let t3 = obs_on.then(std::time::Instant::now);

            if obs_on {
                let r = vqd_obs::recorder();
                r.hist_record("core.diagnose.coverage", coverage);
                r.hist_record("core.diagnose.confidence", confidence);
                r.hist_record("core.diagnose.depth", depth as f64);
                match resolution {
                    Resolution::Exact => {
                        tally.res_counts[0] += 1;
                        tally.exact_labels[class] += 1;
                    }
                    Resolution::Location => {
                        tally.res_counts[1] += 1;
                        if let Some(c) = tally.loc_labels.get_mut(fb as usize) {
                            *c += 1;
                        }
                    }
                    Resolution::Existence => {
                        tally.res_counts[2] += 1;
                        if let Some(c) = tally.ex_labels.get_mut(fb as usize) {
                            *c += 1;
                        }
                    }
                }
                if let (Some(t0), Some(t1), Some(t2), Some(t3)) = (t0, t1, t2, t3) {
                    tally.construct_ns += (t1 - t0).as_nanos() as u64;
                    tally.descend_ns += (t2 - t1).as_nanos() as u64;
                    tally.score_ns += (t3 - t2).as_nanos() as u64;
                }
            }
        }

        cm.pool.put(sc);
        if obs_on {
            self.flush_obs(&tally, sessions.len());
            if let Some(trail) = audit.as_deref() {
                let r = vqd_obs::recorder();
                r.counter_add("core.audit.path.sessions", trail.len() as u64);
                r.counter_add("core.audit.path.steps", trail.steps.len() as u64);
                for i in 0..trail.len() {
                    r.hist_record("core.audit.path.len", trail.path(i).len() as f64);
                }
            }
        }
    }

    /// An empty [`DriftWindow`] sized to this model's schema and
    /// class list, ready for [`BatchOptions::drift`].
    pub fn drift_window(&self) -> DriftWindow {
        DriftWindow::new(self.feature_names.len(), self.classes.len())
    }

    /// Re-run a recorded decision path against this model: consume the
    /// steps in order, validate each against the compiled tree, and
    /// return the normalised class distribution, predicted class (the
    /// batch path's last-max tie-break) and missing-descent weight —
    /// bitwise what the original descent produced. Errors when the
    /// path does not fit this tree.
    pub fn replay_audit(&self, steps: &[AuditStep]) -> Result<(Vec<f64>, usize, f64), String> {
        let cm = &self.compiled;
        let k = cm.ctree.n_classes();
        let mut dist = vec![0.0; k];
        let mut stack = Vec::new();
        let (missing_descent, _depth) = cm.ctree.replay_into(steps, &mut dist, &mut stack)?;
        let total: f64 = dist.iter().sum();
        if total > 0.0 {
            for d in dist.iter_mut() {
                *d /= total;
            }
        }
        let mut class = 0usize;
        for c in 1..k {
            if dist[c].total_cmp(&dist[class]) != Ordering::Less {
                class = c;
            }
        }
        Ok((dist, class, missing_descent))
    }

    /// Flush one shard's tallies to the registry — the same counter
    /// names the scalar path records, plus the batch-stage timings.
    fn flush_obs(&self, t: &ShardObs, sessions: usize) {
        let cm = &self.compiled;
        let r = vqd_obs::recorder();
        r.counter_add("core.diagnose.calls", sessions as u64);
        for (name, count) in [
            ("core.diagnose.resolution.exact", t.res_counts[0]),
            ("core.diagnose.resolution.location", t.res_counts[1]),
            ("core.diagnose.resolution.existence", t.res_counts[2]),
        ] {
            if count > 0 {
                r.counter_add(name, count);
            }
        }
        let label_sets = [
            (&t.exact_labels, &self.classes),
            (&t.loc_labels, &cm.loc_names),
            (&t.ex_labels, &cm.ex_names),
        ];
        for (counts, names) in label_sets {
            for (c, name) in counts.iter().zip(names) {
                if *c > 0 {
                    r.counter_add_dyn(&format!("core.diagnose.label.{name}"), *c);
                }
            }
        }
        r.hist_record("core.batch.stage.construct_ms", t.construct_ns as f64 / 1e6);
        r.hist_record("core.batch.stage.descend_ms", t.descend_ns as f64 / 1e6);
        r.hist_record("core.batch.stage.score_ms", t.score_ns as f64 / 1e6);
    }
}

/// Project a normalised class distribution onto a coarser label group
/// set and argmax it — identical accumulation order (class order per
/// group) and tie-break (last max) to the scalar `project_dist`.
fn project(group: &[u32], ngroups: usize, dist: &[f64], gacc: &mut [f64]) -> u32 {
    if ngroups == 0 {
        return NO_FALLBACK;
    }
    for g in gacc[..ngroups].iter_mut() {
        *g = 0.0;
    }
    for (c, p) in dist.iter().enumerate() {
        gacc[group[c] as usize] += p;
    }
    let mut best = 0usize;
    for i in 1..ngroups {
        if gacc[i].total_cmp(&gacc[best]) != Ordering::Less {
            best = i;
        }
    }
    best as u32
}
