//! Streaming diagnosis serving: the `vqd serve` daemon engine.
//!
//! The paper diagnoses sessions offline from completed corpora; an
//! operator runs the same model against *live* traffic, where probe
//! telemetry arrives as an interleaved, reordered, duplicated and
//! sometimes truncated stream of per-VP events. This module turns the
//! batched serving engine into a long-running daemon:
//!
//! ```text
//!   events ──route by fnv(session id)──► shard queues (bounded)
//!                                           │ one worker thread each
//!                                           ▼
//!                                     session tables
//!                               (reassemble samples by seq)
//!                                           │ complete / watermark
//!                                           │ expiry / eviction
//!                                           ▼
//!                                  flush batches through
//!                                 Diagnoser::diagnose_batch
//!                                           │
//!                                           ▼
//!                                     sink callback
//! ```
//!
//! **Determinism.** The daemon's hard invariant is that a session's
//! diagnosis is bitwise identical to offline `vqd diagnose --batch`
//! over the same samples, for *any* arrival order, interleaving,
//! duplication or shard count. Three properties compose to give it:
//!
//! 1. A session's canonical metric vector is its samples sorted by the
//!    source-assigned `seq`, duplicates dropped — a pure function of
//!    the event *set*, not the arrival order.
//! 2. One session is owned by exactly one shard (routing hashes only
//!    the session id), so no session is ever split across tables.
//! 3. [`Diagnoser::diagnose_batch`] computes each row independently
//!    (per-row feature scatter, no cross-row reductions), so how
//!    sessions are grouped into flush batches cannot change any
//!    session's bits — and PR 5's engine is already bit-identical to
//!    the scalar path at any thread count.
//!
//! Only the *order* in which diagnoses are emitted varies run to run;
//! consumers key on the session id.
//!
//! **Lifecycle.** A session flushes on the first of: *completion* (its
//! `end` marker and every promised `seq` arrived), *watermark expiry*
//! (event time advanced more than the allowed lateness past the
//! session's newest timestamp), *eviction* (shard table over its cap;
//! least-recently-touched session goes first), or *shutdown* (input
//! ended). Partial sessions are diagnosed from whatever arrived and
//! resolve through the quality-tier fallback (exact → location →
//! existence) instead of erroring — the §6.2 partial-deployment
//! machinery doing live duty.
//!
//! **Backpressure.** Shard queues are bounded; when a worker falls
//! behind, [`StreamServer::push_event`] blocks instead of buffering
//! without limit, propagating pressure to the ingest edge (stdin or
//! socket), where the transport's own flow control takes over.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use vqd_obs::LogHistogram;
use vqd_probes::event::{EventKind, ProbeEvent};

use crate::dataset::LabeledRun;
use crate::diagnoser::{Diagnoser, Diagnosis, Resolution};
use crate::error::VqdError;

/// Lock a mutex, riding through poisoning: a panicked holder leaves
/// per-shard tallies possibly stale, never unsound, and the daemon
/// must outlive any single worker's panic.
fn lock_in<T: ?Sized>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Bounded MPSC queue
// ---------------------------------------------------------------------------

/// A bounded FIFO handing events to one shard worker.
///
/// `std::sync::mpsc::sync_channel` would block the same way, but hides
/// its depth; the serving daemon wants the queue observable (depth
/// gauges are the first thing an operator looks at) and closable from
/// the producer side, so this is the minimal Mutex + two-Condvar
/// queue.
pub struct Bounded<T> {
    inner: Mutex<BoundedInner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
}

struct BoundedInner<T> {
    q: VecDeque<T>,
    closed: bool,
}

impl<T> Bounded<T> {
    /// A queue holding at most `cap` items (min 1).
    pub fn new(cap: usize) -> Self {
        Bounded {
            inner: Mutex::new(BoundedInner {
                q: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Push, blocking while the queue is full (this is the
    /// backpressure edge). Returns `false` if the queue was closed.
    pub fn push(&self, v: T) -> bool {
        let mut g = lock_in(&self.inner);
        while g.q.len() >= self.cap && !g.closed {
            g = self
                .not_full
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if g.closed {
            return false;
        }
        g.q.push_back(v);
        drop(g);
        self.not_empty.notify_one();
        true
    }

    /// Pop, blocking while empty. `None` means closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = lock_in(&self.inner);
        loop {
            if let Some(v) = g.q.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(v);
            }
            if g.closed {
                return None;
            }
            g = self
                .not_empty
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Close the queue: pushes start failing, pops drain then end.
    pub fn close(&self) {
        lock_in(&self.inner).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current depth (racy by nature; for gauges only).
    pub fn len(&self) -> usize {
        lock_in(&self.inner).q.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Tuning for the streaming daemon. `Default` is sized for tests and
/// small replays; the CLI exposes every knob.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard (worker thread) count; sessions are hash-partitioned
    /// across shards. Any value yields bit-identical diagnoses.
    pub shards: usize,
    /// Per-shard event queue capacity; producers block when full.
    pub queue_capacity: usize,
    /// Sessions accumulated per `diagnose_batch` flush. Batching
    /// amortises the compiled-plan lookup; the engine's per-row
    /// independence makes the grouping invisible in the output.
    pub flush_batch: usize,
    /// Watermark lateness in event-time seconds: once a shard has seen
    /// event time `T`, sessions whose newest timestamp is older than
    /// `T - lateness` are flushed as partial. `None` disables expiry;
    /// events without `ts` never advance or trip watermarks either
    /// way.
    pub lateness: Option<f64>,
    /// Resident-session cap per shard; beyond it the least recently
    /// touched session is flushed as evicted.
    pub max_sessions: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_capacity: 1024,
            flush_batch: 32,
            lateness: None,
            max_sessions: 4096,
        }
    }
}

/// Why a session left the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushCause {
    /// `end` marker seen and every promised `seq` present.
    Complete,
    /// Event time moved past the session by more than the lateness.
    Watermark,
    /// Shard table exceeded `max_sessions`.
    Evicted,
    /// Input ended with the session still resident.
    Shutdown,
}

impl FlushCause {
    /// Stable lowercase name (TSV/report vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            FlushCause::Complete => "complete",
            FlushCause::Watermark => "watermark",
            FlushCause::Evicted => "evicted",
            FlushCause::Shutdown => "shutdown",
        }
    }
}

/// One diagnosed session leaving the daemon.
#[derive(Debug)]
pub struct FlushedSession {
    /// Session id (as carried by its events).
    pub session: String,
    /// Why it flushed.
    pub cause: FlushCause,
    /// Distinct samples that arrived.
    pub samples: usize,
    /// Duplicate sample events dropped during reassembly.
    pub duplicates: u64,
    /// Owning shard.
    pub shard: usize,
    /// The diagnosis — bitwise what offline batch serving produces
    /// for the same samples.
    pub diagnosis: Diagnosis,
}

/// End-of-run accounting, merged across shards.
#[derive(Debug, Default)]
pub struct ServeReport {
    /// Events routed to shards (parse failures excluded).
    pub events: u64,
    /// Malformed lines rejected at the ingest edge.
    pub parse_errors: u64,
    /// Duplicate sample events dropped.
    pub duplicates: u64,
    /// Events dropped because their session was already flushed
    /// (stragglers past a completion or lateness flush).
    pub late_events: u64,
    /// Sessions flushed, total and by cause.
    pub sessions: u64,
    /// Sessions flushed complete.
    pub complete: u64,
    /// Sessions flushed by watermark expiry.
    pub expired: u64,
    /// Sessions flushed by eviction pressure.
    pub evicted: u64,
    /// Sessions flushed at shutdown.
    pub shutdown: u64,
    /// Diagnoses per resolution tier (exact, location, existence).
    pub tiers: [u64; 3],
    /// `diagnose_batch` flush calls.
    pub flush_batches: u64,
    /// Flush latency in milliseconds (whole batch; mergeable).
    pub flush_ms: LogHistogram,
}

impl ServeReport {
    fn absorb(&mut self, s: &ShardStats) {
        self.duplicates += s.duplicates;
        self.late_events += s.late_events;
        self.sessions += s.sessions;
        self.complete += s.complete;
        self.expired += s.expired;
        self.evicted += s.evicted;
        self.shutdown += s.shutdown;
        for (t, n) in self.tiers.iter_mut().zip(s.tiers) {
            *t += n;
        }
        self.flush_batches += s.flush_batches;
        self.flush_ms.merge(&s.flush_ms);
    }
}

#[derive(Default)]
struct ShardStats {
    duplicates: u64,
    late_events: u64,
    sessions: u64,
    complete: u64,
    expired: u64,
    evicted: u64,
    shutdown: u64,
    tiers: [u64; 3],
    flush_batches: u64,
    flush_ms: LogHistogram,
}

// ---------------------------------------------------------------------------
// Session reassembly
// ---------------------------------------------------------------------------

/// One in-flight session: samples keyed by canonical `seq`, kept
/// sorted and unique so the rebuilt metric vector is a pure function
/// of the event set.
#[derive(Default)]
struct SessionState {
    /// `(seq, metric, value)`, sorted by `seq`, no duplicate seqs.
    samples: Vec<(u64, String, f64)>,
    /// Sample count promised by the `end` marker, once seen.
    expected: Option<u64>,
    /// Newest event timestamp seen (`None` until a `ts` arrives).
    newest_ts: Option<f64>,
    /// Shard tick of the last touch (eviction recency; unique per
    /// shard, so the eviction victim is deterministic).
    last_tick: u64,
    /// Duplicate sample events dropped.
    duplicates: u64,
}

impl SessionState {
    fn touch(&mut self, tick: u64, ts: Option<f64>) {
        self.last_tick = tick;
        if let Some(t) = ts {
            self.newest_ts = Some(match self.newest_ts {
                Some(prev) => prev.max(t),
                None => t,
            });
        }
    }

    fn add_sample(&mut self, seq: u64, metric: String, value: f64) {
        match self.samples.binary_search_by_key(&seq, |s| s.0) {
            Ok(_) => self.duplicates += 1,
            Err(pos) => self.samples.insert(pos, (seq, metric, value)),
        }
    }

    /// Complete ⇔ `end` seen and the sorted-unique seqs are exactly
    /// `0..expected` (length + endpoints pin the set by pigeonhole).
    fn complete(&self) -> bool {
        match self.expected {
            Some(0) => self.samples.is_empty(),
            Some(e) => {
                self.samples.len() as u64 == e
                    && self.samples[0].0 == 0
                    && self.samples[self.samples.len() - 1].0 == e - 1
            }
            None => false,
        }
    }

    fn into_metrics(self) -> (Vec<(String, f64)>, u64) {
        (
            self.samples.into_iter().map(|(_, n, v)| (n, v)).collect(),
            self.duplicates,
        )
    }
}

/// FNV-1a session-id hash for shard routing. Only the id is hashed,
/// so one session always lands on one shard.
fn shard_of(session: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in session.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    (h % shards as u64) as usize
}

// ---------------------------------------------------------------------------
// Shard worker
// ---------------------------------------------------------------------------

/// Events between watermark / eviction sweeps of a shard table.
const SWEEP_EVERY: u64 = 64;

type Sink = Arc<Mutex<dyn FnMut(FlushedSession) + Send>>;

struct PendingFlush {
    session: String,
    cause: FlushCause,
    metrics: Vec<(String, f64)>,
    duplicates: u64,
}

struct ShardWorker {
    shard: usize,
    diagnoser: Arc<Diagnoser>,
    cfg: ServeConfig,
    sink: Sink,
    table: HashMap<String, SessionState>,
    /// Recently flushed session ids: stragglers for an
    /// already-answered session (duplicate copies racing a completion
    /// flush, data beyond the allowed lateness) are dropped instead of
    /// reopening it — the daemon answers each session exactly once.
    /// Bounded FIFO so a long-lived daemon can't leak.
    retired: HashSet<String>,
    retired_fifo: VecDeque<String>,
    pending: Vec<PendingFlush>,
    tick: u64,
    max_ts: Option<f64>,
    stats: ShardStats,
}

impl ShardWorker {
    fn run(mut self, queue: Arc<Bounded<ProbeEvent>>) -> ShardStats {
        while let Some(ev) = queue.pop() {
            self.tick += 1;
            self.ingest(ev);
            if self.pending.len() >= self.cfg.flush_batch {
                self.flush();
            }
            if self.tick.is_multiple_of(SWEEP_EVERY) {
                self.sweep_watermark();
                if vqd_obs::enabled() {
                    vqd_obs::recorder().hist_record("serve.queue.depth", queue.len() as f64);
                }
            }
        }
        // Input over: everything still resident flushes as shutdown,
        // in session-id order so the drain itself is deterministic.
        let mut keys: Vec<String> = self.table.keys().cloned().collect();
        keys.sort_unstable();
        for k in keys {
            self.retire(&k, FlushCause::Shutdown);
        }
        self.flush();
        self.stats
    }

    fn ingest(&mut self, ev: ProbeEvent) {
        let ProbeEvent { session, ts, kind } = ev;
        if let Some(t) = ts {
            self.max_ts = Some(match self.max_ts {
                Some(prev) => prev.max(t),
                None => t,
            });
        }
        if self.retired.contains(&session) {
            self.stats.late_events += 1;
            if vqd_obs::enabled() {
                vqd_obs::recorder().counter_add("serve.events.late", 1);
            }
            return;
        }
        if !self.table.contains_key(&session) {
            self.table.insert(session.clone(), SessionState::default());
        }
        let done = match self.table.get_mut(&session) {
            Some(entry) => {
                entry.touch(self.tick, ts);
                match kind {
                    EventKind::Sample { seq, metric, value } => {
                        entry.add_sample(seq, metric, value)
                    }
                    EventKind::End { expected } => entry.expected = Some(expected),
                }
                entry.complete()
            }
            None => false,
        };
        if done {
            self.retire(&session, FlushCause::Complete);
        } else if self.table.len() > self.cfg.max_sessions {
            self.evict_one();
        }
    }

    /// Remove `key` from the table, stage it for the next flush, and
    /// tombstone it so stragglers can't reopen it.
    fn retire(&mut self, key: &str, cause: FlushCause) {
        if let Some(state) = self.table.remove(key) {
            if self.retired.insert(key.to_string()) {
                self.retired_fifo.push_back(key.to_string());
                // Remember ~4 tables' worth of flushed ids; beyond
                // that a reopened straggler session is accepted (and
                // flushed again at shutdown) rather than leaking.
                if self.retired_fifo.len() > self.cfg.max_sessions.saturating_mul(4).max(1024) {
                    if let Some(old) = self.retired_fifo.pop_front() {
                        self.retired.remove(&old);
                    }
                }
            }
            let (metrics, duplicates) = state.into_metrics();
            self.pending.push(PendingFlush {
                session: key.to_string(),
                cause,
                metrics,
                duplicates,
            });
        }
    }

    /// Flush sessions whose newest event time fell behind the shard's
    /// watermark (max event time minus allowed lateness).
    fn sweep_watermark(&mut self) {
        let (Some(lateness), Some(max_ts)) = (self.cfg.lateness, self.max_ts) else {
            return;
        };
        let cutoff = max_ts - lateness;
        let mut victims: Vec<String> = self
            .table
            .iter()
            .filter(|(_, s)| s.newest_ts.is_some_and(|t| t < cutoff))
            .map(|(k, _)| k.clone())
            .collect();
        victims.sort_unstable();
        for k in victims {
            self.retire(&k, FlushCause::Watermark);
        }
    }

    /// Flush the least recently touched session (unique per shard:
    /// ticks are a per-shard monotone counter).
    fn evict_one(&mut self) {
        let victim = self
            .table
            .iter()
            .min_by_key(|(_, s)| s.last_tick)
            .map(|(k, _)| k.clone());
        if let Some(k) = victim {
            self.retire(&k, FlushCause::Evicted);
        }
    }

    /// Push the staged sessions through `diagnose_batch` and hand the
    /// diagnoses to the sink. Single-shard engine call: the daemon's
    /// parallelism is across shard workers, and the warm
    /// `ScratchPool` on the compiled model means each worker reuses
    /// its interned plan cache across flushes.
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let staged = std::mem::take(&mut self.pending);
        let t0 = Instant::now();
        let batch = {
            let views: Vec<&[(String, f64)]> =
                staged.iter().map(|p| p.metrics.as_slice()).collect();
            self.diagnoser.diagnose_batch(&views, 1)
        };
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        self.stats.flush_batches += 1;
        self.stats.flush_ms.record(ms);
        let obs_on = vqd_obs::enabled();
        if obs_on {
            let r = vqd_obs::recorder();
            r.hist_record("serve.flush.ms", ms);
            r.hist_record("serve.flush.sessions", staged.len() as f64);
            r.counter_add("serve.flushes", 1);
        }
        for (i, p) in staged.into_iter().enumerate() {
            let dx = batch.get(i);
            let tier = match dx.resolution {
                Resolution::Exact => 0,
                Resolution::Location => 1,
                Resolution::Existence => 2,
            };
            self.stats.tiers[tier] += 1;
            self.stats.sessions += 1;
            self.stats.duplicates += p.duplicates;
            match p.cause {
                FlushCause::Complete => self.stats.complete += 1,
                FlushCause::Watermark => self.stats.expired += 1,
                FlushCause::Evicted => self.stats.evicted += 1,
                FlushCause::Shutdown => self.stats.shutdown += 1,
            }
            if obs_on {
                let r = vqd_obs::recorder();
                r.counter_add(
                    match tier {
                        0 => "serve.tier.exact",
                        1 => "serve.tier.location",
                        _ => "serve.tier.existence",
                    },
                    1,
                );
                r.counter_add(
                    match p.cause {
                        FlushCause::Complete => "serve.sessions.complete",
                        FlushCause::Watermark => "serve.sessions.expired",
                        FlushCause::Evicted => "serve.sessions.evicted",
                        FlushCause::Shutdown => "serve.sessions.shutdown",
                    },
                    1,
                );
            }
            (lock_in(&self.sink))(FlushedSession {
                session: p.session,
                cause: p.cause,
                samples: p.metrics.len(),
                duplicates: p.duplicates,
                shard: self.shard,
                diagnosis: dx,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// The streaming daemon: routes events to shard workers and joins
/// them at the end. Drop-in embedding API for the `vqd serve`
/// subcommand and the tests/benches.
pub struct StreamServer {
    queues: Vec<Arc<Bounded<ProbeEvent>>>,
    workers: Vec<JoinHandle<ShardStats>>,
    events: u64,
    parse_errors: u64,
}

impl StreamServer {
    /// Spawn `cfg.shards` workers serving `diagnoser`; every flushed
    /// session is handed to `sink` (called from worker threads, one
    /// at a time).
    pub fn new(
        diagnoser: Arc<Diagnoser>,
        cfg: ServeConfig,
        sink: impl FnMut(FlushedSession) + Send + 'static,
    ) -> StreamServer {
        let shards = cfg.shards.max(1);
        let sink: Sink = Arc::new(Mutex::new(sink));
        let mut queues = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let queue = Arc::new(Bounded::new(cfg.queue_capacity));
            let worker = ShardWorker {
                shard,
                diagnoser: Arc::clone(&diagnoser),
                cfg: cfg.clone(),
                sink: Arc::clone(&sink),
                table: HashMap::new(),
                retired: HashSet::new(),
                retired_fifo: VecDeque::new(),
                pending: Vec::new(),
                tick: 0,
                max_ts: None,
                stats: ShardStats::default(),
            };
            let q = Arc::clone(&queue);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("vqd-serve-{shard}"))
                    .spawn(move || worker.run(q))
                    .unwrap_or_else(|e| panic!("spawn serve shard {shard}: {e}")),
            );
            queues.push(queue);
        }
        StreamServer {
            queues,
            workers,
            events: 0,
            parse_errors: 0,
        }
    }

    /// Route one event to its shard, blocking if that shard's queue
    /// is full (backpressure).
    pub fn push_event(&mut self, ev: ProbeEvent) {
        self.events += 1;
        if self.events.is_multiple_of(256) && vqd_obs::enabled() {
            let depth: usize = self.queues.iter().map(|q| q.len()).sum();
            vqd_obs::recorder().gauge_set("serve.queue.depth", depth as f64);
        }
        let shard = shard_of(&ev.session, self.queues.len());
        self.queues[shard].push(ev);
        if vqd_obs::enabled() {
            vqd_obs::recorder().counter_add("serve.events", 1);
        }
    }

    /// Parse and route one JSONL event line (1-based `lineno` for
    /// error messages). Blank lines are ignored. A malformed line is
    /// counted, reported as a typed error and *dropped* — the caller
    /// decides whether to keep going; the daemon state is untouched.
    pub fn push_line(&mut self, lineno: usize, line: &str) -> Result<(), VqdError> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(());
        }
        match ProbeEvent::parse(line) {
            Ok(ev) => {
                self.push_event(ev);
                Ok(())
            }
            Err(e) => {
                self.parse_errors += 1;
                if vqd_obs::enabled() {
                    vqd_obs::recorder().counter_add("serve.events.malformed", 1);
                }
                Err(VqdError::Event {
                    line: lineno,
                    source: e,
                })
            }
        }
    }

    /// Total queued events across shards right now (for gauges).
    pub fn queue_depth(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Close the queues, drain and join every worker, and return the
    /// merged accounting. Flushes all still-resident sessions as
    /// [`FlushCause::Shutdown`].
    pub fn finish(self) -> ServeReport {
        for q in &self.queues {
            q.close();
        }
        let mut report = ServeReport {
            events: self.events,
            parse_errors: self.parse_errors,
            ..ServeReport::default()
        };
        for w in self.workers {
            match w.join() {
                Ok(stats) => report.absorb(&stats),
                Err(_) => {
                    // A worker died; its sessions are lost but the
                    // daemon still reports what the others did.
                    if vqd_obs::enabled() {
                        vqd_obs::recorder().counter_add("serve.shard.panics", 1);
                    }
                }
            }
        }
        report
    }
}

// ---------------------------------------------------------------------------
// Shared output format + corpus replay
// ---------------------------------------------------------------------------

/// Stable lowercase name of a resolution tier.
pub fn resolution_name(r: Resolution) -> &'static str {
    match r {
        Resolution::Exact => "exact",
        Resolution::Location => "location",
        Resolution::Existence => "existence",
    }
}

/// Header for the diagnosis TSV emitted by both `vqd diagnose
/// --batch` and `vqd serve`.
pub const RESULT_HEADER: &str = "session\tlabel\tresolution\tconfidence\tcoverage\tfallback\n";

/// One diagnosis TSV line (with trailing newline), keyed by `key`.
/// `vqd diagnose --batch` and `vqd serve` both emit exactly this, so
/// the streaming-equals-offline gate compares bytes, not parses.
pub fn result_line(key: &str, dx: &Diagnosis) -> String {
    format!(
        "{key}\t{}\t{}\t{:.3}\t{:.3}\t{}\n",
        dx.label,
        resolution_name(dx.resolution),
        dx.quality.confidence,
        dx.quality.feature_coverage,
        dx.fallback_label.as_deref().unwrap_or("-"),
    )
}

/// Explode a labelled corpus into the probe events a live deployment
/// would have emitted: session id = corpus index, `seq` = metric
/// position, one `end` marker each. In-order replay through
/// [`StreamServer`] reproduces offline batch diagnosis bit for bit —
/// and, by the determinism argument above, so does any shuffle.
pub fn corpus_to_events(runs: &[LabeledRun]) -> Vec<ProbeEvent> {
    let mut out = Vec::with_capacity(runs.iter().map(|r| r.metrics.len() + 1).sum());
    for (i, run) in runs.iter().enumerate() {
        let sid = i.to_string();
        for (j, (name, v)) in run.metrics.iter().enumerate() {
            out.push(ProbeEvent::sample(sid.clone(), j as u64, name.clone(), *v));
        }
        out.push(ProbeEvent::end(sid, run.metrics.len() as u64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_fifo_close_drain() {
        let q = Bounded::new(4);
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.len(), 2);
        q.close();
        assert!(!q.push(3), "push after close must fail");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn bounded_queue_blocks_until_popped() {
        let q = Arc::new(Bounded::new(1));
        assert!(q.push(10u32));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.push(11));
        // The pusher is blocked on the full queue until we pop.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(10));
        assert!(h.join().expect("pusher"));
        assert_eq!(q.pop(), Some(11));
    }

    #[test]
    fn session_state_reassembles_by_seq() {
        let mut s = SessionState::default();
        s.add_sample(2, "c".into(), 3.0);
        s.add_sample(0, "a".into(), 1.0);
        s.add_sample(1, "b".into(), 2.0);
        s.add_sample(1, "b".into(), 2.0); // duplicate
        assert!(!s.complete());
        s.expected = Some(3);
        assert!(s.complete());
        let (m, dups) = s.into_metrics();
        assert_eq!(dups, 1);
        assert_eq!(
            m,
            vec![
                ("a".to_string(), 1.0),
                ("b".to_string(), 2.0),
                ("c".to_string(), 3.0)
            ]
        );
    }

    #[test]
    fn completeness_needs_contiguous_seqs() {
        let mut s = SessionState::default();
        s.add_sample(0, "a".into(), 1.0);
        s.add_sample(2, "c".into(), 3.0);
        s.expected = Some(2);
        assert!(!s.complete(), "seq 2 present but seq 1 missing");
        let empty = SessionState {
            expected: Some(0),
            ..SessionState::default()
        };
        assert!(empty.complete(), "zero-sample session completes on end");
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 8] {
            for id in ["0", "17", "session-x", ""] {
                let a = shard_of(id, shards);
                assert!(a < shards);
                assert_eq!(a, shard_of(id, shards));
            }
        }
    }
}
