//! Streaming diagnosis serving: the `vqd serve` daemon engine.
//!
//! The paper diagnoses sessions offline from completed corpora; an
//! operator runs the same model against *live* traffic, where probe
//! telemetry arrives as an interleaved, reordered, duplicated and
//! sometimes truncated stream of per-VP events. This module turns the
//! batched serving engine into a long-running daemon:
//!
//! ```text
//!   events ──route by fnv(session id)──► shard queues (bounded)
//!                                           │ one worker thread each
//!                                           ▼
//!                                     session tables
//!                               (reassemble samples by seq)
//!                                           │ complete / watermark
//!                                           │ expiry / eviction
//!                                           ▼
//!                                  flush batches through
//!                                 Diagnoser::diagnose_batch
//!                                           │
//!                                           ▼
//!                                     sink callback
//! ```
//!
//! **Determinism.** The daemon's hard invariant is that a session's
//! diagnosis is bitwise identical to offline `vqd diagnose --batch`
//! over the same samples, for *any* arrival order, interleaving,
//! duplication or shard count. Three properties compose to give it:
//!
//! 1. A session's canonical metric vector is its samples sorted by the
//!    source-assigned `seq`, duplicates dropped — a pure function of
//!    the event *set*, not the arrival order.
//! 2. One session is owned by exactly one shard (routing hashes only
//!    the session id), so no session is ever split across tables.
//! 3. [`Diagnoser::diagnose_batch`] computes each row independently
//!    (per-row feature scatter, no cross-row reductions), so how
//!    sessions are grouped into flush batches cannot change any
//!    session's bits — and PR 5's engine is already bit-identical to
//!    the scalar path at any thread count.
//!
//! Only the *order* in which diagnoses are emitted varies run to run;
//! consumers key on the session id.
//!
//! **Lifecycle.** A session flushes on the first of: *completion* (its
//! `end` marker and every promised `seq` arrived), *watermark expiry*
//! (event time advanced more than the allowed lateness past the
//! session's newest timestamp), *eviction* (shard table over its cap;
//! least-recently-touched session goes first), or *shutdown* (input
//! ended). Partial sessions are diagnosed from whatever arrived and
//! resolve through the quality-tier fallback (exact → location →
//! existence) instead of erroring — the §6.2 partial-deployment
//! machinery doing live duty.
//!
//! **Backpressure.** Shard queues are bounded; when a worker falls
//! behind, [`StreamServer::push_event`] blocks instead of buffering
//! without limit, propagating pressure to the ingest edge (stdin or
//! socket), where the transport's own flow control takes over. Past
//! the optional shedding high-water mark the daemon instead starts
//! dropping the lowest-value buffered samples (see [`ServeConfig::
//! shed`]), trading per-session answer quality for ingest liveness.
//!
//! **Durability.** With a [`Durability`] config, accepted events are
//! journaled ([`vqd_probes::journal`]) before they enter a shard
//! queue, and consistent state snapshots ([`snapshot`]) are cut on a
//! cadence and at shutdown via an in-band barrier message through the
//! FIFO queues. Recovery ([`recovery`]) = newest valid snapshot +
//! journal suffix replay + output-file dedup; the recovered daemon's
//! merged output is byte-identical to offline batch diagnosis, every
//! session answered exactly once.

pub mod ops;
pub mod recovery;
pub mod snapshot;

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use vqd_obs::LogHistogram;
use vqd_probes::event::{EventKind, ProbeEvent};
use vqd_probes::journal::JournalWriter;

use crate::dataset::LabeledRun;
use crate::diagnoser::{Diagnoser, Diagnosis, Resolution};
use crate::error::VqdError;

pub use recovery::{
    inspect_recovery, prepare_output, recover_state, Durability, JournalSpec, OutputPrep,
    RecoveredState, RecoveryInfo, SnapshotSpec,
};
pub use snapshot::{PortableSession, StreamSnapshot};

/// Lock a mutex, riding through poisoning: a panicked holder leaves
/// per-shard tallies possibly stale, never unsound, and the daemon
/// must outlive any single worker's panic.
fn lock_in<T: ?Sized>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Bounded MPSC queue
// ---------------------------------------------------------------------------

/// A bounded FIFO handing events to one shard worker.
///
/// `std::sync::mpsc::sync_channel` would block the same way, but hides
/// its depth; the serving daemon wants the queue observable (depth
/// gauges are the first thing an operator looks at) and closable from
/// the producer side, so this is the minimal Mutex + two-Condvar
/// queue.
pub struct Bounded<T> {
    inner: Mutex<BoundedInner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
}

struct BoundedInner<T> {
    q: VecDeque<T>,
    closed: bool,
}

impl<T> Bounded<T> {
    /// A queue holding at most `cap` items (min 1).
    pub fn new(cap: usize) -> Self {
        Bounded {
            inner: Mutex::new(BoundedInner {
                q: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Push, blocking while the queue is full (this is the
    /// backpressure edge). Returns `false` if the queue was closed.
    pub fn push(&self, v: T) -> bool {
        let mut g = lock_in(&self.inner);
        while g.q.len() >= self.cap && !g.closed {
            g = self
                .not_full
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if g.closed {
            return false;
        }
        g.q.push_back(v);
        drop(g);
        self.not_empty.notify_one();
        true
    }

    /// Pop, blocking while empty. `None` means closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = lock_in(&self.inner);
        loop {
            if let Some(v) = g.q.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(v);
            }
            if g.closed {
                return None;
            }
            g = self
                .not_empty
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Close the queue: pushes start failing, pops drain then end.
    pub fn close(&self) {
        lock_in(&self.inner).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current depth (racy by nature; for gauges only).
    pub fn len(&self) -> usize {
        lock_in(&self.inner).q.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Tuning for the streaming daemon. `Default` is sized for tests and
/// small replays; the CLI exposes every knob.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard (worker thread) count; sessions are hash-partitioned
    /// across shards. Any value yields bit-identical diagnoses.
    pub shards: usize,
    /// Per-shard event queue capacity; producers block when full.
    pub queue_capacity: usize,
    /// Sessions accumulated per `diagnose_batch` flush. Batching
    /// amortises the compiled-plan lookup; the engine's per-row
    /// independence makes the grouping invisible in the output.
    pub flush_batch: usize,
    /// Watermark lateness in event-time seconds: once a shard has seen
    /// event time `T`, sessions whose newest timestamp is older than
    /// `T - lateness` are flushed as partial. `None` disables expiry;
    /// events without `ts` never advance or trip watermarks either
    /// way.
    pub lateness: Option<f64>,
    /// Resident-session cap per shard; beyond it the least recently
    /// touched session is flushed as evicted.
    pub max_sessions: usize,
    /// Overload-shedding high-water mark: buffered samples per shard
    /// beyond which the shard sheds its lowest-value samples (largest
    /// session first, least important metric first) instead of letting
    /// backpressure stall ingest. Shed sessions degrade through the
    /// quality tiers rather than blocking the stream. `None` (the
    /// default, and `--no-shed`) never sheds: strict mode, where the
    /// streamed-equals-offline invariant holds unconditionally.
    pub shed: Option<usize>,
    /// Record each diagnosis's decision path and attach it to the
    /// [`FlushedSession`] (`--audit-log`). Verdicts are bitwise
    /// unaffected.
    pub audit: bool,
    /// Shared drift monitor: each shard keeps a local
    /// [`DriftWindow`](crate::drift::DriftWindow) and folds it in on
    /// every flush, after which the monitor publishes `serve.drift.*`
    /// gauges and raises threshold alerts.
    pub drift: Option<Arc<Mutex<crate::drift::DriftMonitor>>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_capacity: 1024,
            flush_batch: 32,
            lateness: None,
            max_sessions: 4096,
            shed: None,
            audit: false,
            drift: None,
        }
    }
}

/// Why a session left the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushCause {
    /// `end` marker seen and every promised `seq` present.
    Complete,
    /// Event time moved past the session by more than the lateness.
    Watermark,
    /// Shard table exceeded `max_sessions`.
    Evicted,
    /// Input ended with the session still resident.
    Shutdown,
}

impl FlushCause {
    /// Stable lowercase name (TSV/report vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            FlushCause::Complete => "complete",
            FlushCause::Watermark => "watermark",
            FlushCause::Evicted => "evicted",
            FlushCause::Shutdown => "shutdown",
        }
    }
}

/// One diagnosed session leaving the daemon.
#[derive(Debug)]
pub struct FlushedSession {
    /// Session id (as carried by its events).
    pub session: String,
    /// Why it flushed.
    pub cause: FlushCause,
    /// Distinct samples that arrived.
    pub samples: usize,
    /// Duplicate sample events dropped during reassembly.
    pub duplicates: u64,
    /// Samples shed from this session under overload (degraded
    /// answer if nonzero).
    pub shed: u64,
    /// Owning shard.
    pub shard: usize,
    /// The diagnosis — bitwise what offline batch serving produces
    /// for the same samples.
    pub diagnosis: Diagnosis,
    /// The decision path behind the diagnosis, when the server ran
    /// with [`ServeConfig::audit`]; replaying it through the same
    /// model reproduces the verdict exactly.
    pub audit: Option<Vec<vqd_ml::AuditStep>>,
}

/// End-of-run accounting, merged across shards.
#[derive(Debug, Default)]
pub struct ServeReport {
    /// Events routed to shards (parse failures excluded).
    pub events: u64,
    /// Malformed lines rejected at the ingest edge.
    pub parse_errors: u64,
    /// Duplicate sample events dropped.
    pub duplicates: u64,
    /// Events dropped because their session was already flushed
    /// (stragglers past a completion or lateness flush).
    pub late_events: u64,
    /// Sessions flushed, total and by cause.
    pub sessions: u64,
    /// Sessions flushed complete.
    pub complete: u64,
    /// Sessions flushed by watermark expiry.
    pub expired: u64,
    /// Sessions flushed by eviction pressure.
    pub evicted: u64,
    /// Sessions flushed at shutdown.
    pub shutdown: u64,
    /// Diagnoses per resolution tier (exact, location, existence).
    pub tiers: [u64; 3],
    /// `diagnose_batch` flush calls.
    pub flush_batches: u64,
    /// Flush latency in milliseconds (whole batch; mergeable).
    pub flush_ms: LogHistogram,
    /// Samples shed under overload.
    pub shed_samples: u64,
    /// Sessions that lost at least one sample to shedding.
    pub shed_sessions: u64,
    /// Journal records replayed during recovery startup.
    pub replayed: u64,
    /// Re-flushes suppressed because the session was already answered
    /// in the output file before the crash.
    pub suppressed: u64,
    /// State snapshots written (cadence + shutdown).
    pub snapshots: u64,
}

impl ServeReport {
    fn absorb(&mut self, s: &ShardStats) {
        self.duplicates += s.duplicates;
        self.late_events += s.late_events;
        self.sessions += s.sessions;
        self.complete += s.complete;
        self.expired += s.expired;
        self.evicted += s.evicted;
        self.shutdown += s.shutdown;
        for (t, n) in self.tiers.iter_mut().zip(s.tiers) {
            *t += n;
        }
        self.flush_batches += s.flush_batches;
        self.flush_ms.merge(&s.flush_ms);
        self.shed_samples += s.shed_samples;
        self.shed_sessions += s.shed_sessions;
    }
}

#[derive(Default)]
struct ShardStats {
    duplicates: u64,
    late_events: u64,
    sessions: u64,
    complete: u64,
    expired: u64,
    evicted: u64,
    shutdown: u64,
    tiers: [u64; 3],
    flush_batches: u64,
    flush_ms: LogHistogram,
    shed_samples: u64,
    shed_sessions: u64,
}

// ---------------------------------------------------------------------------
// Session reassembly
// ---------------------------------------------------------------------------

/// One in-flight session: samples keyed by canonical `seq`, kept
/// sorted and unique so the rebuilt metric vector is a pure function
/// of the event set.
#[derive(Default)]
struct SessionState {
    /// `(seq, metric, value)`, sorted by `seq`, no duplicate seqs.
    samples: Vec<(u64, String, f64)>,
    /// Sample count promised by the `end` marker, once seen.
    expected: Option<u64>,
    /// Newest event timestamp seen (`None` until a `ts` arrives).
    newest_ts: Option<f64>,
    /// Shard tick of the last touch (eviction recency; unique per
    /// shard, so the eviction victim is deterministic).
    last_tick: u64,
    /// Duplicate sample events dropped.
    duplicates: u64,
    /// Samples shed under overload (the answer is degraded).
    shed: u64,
}

impl SessionState {
    fn touch(&mut self, tick: u64, ts: Option<f64>) {
        self.last_tick = tick;
        if let Some(t) = ts {
            self.newest_ts = Some(match self.newest_ts {
                Some(prev) => prev.max(t),
                None => t,
            });
        }
    }

    /// Insert one sample; `false` means a duplicate seq was dropped.
    fn add_sample(&mut self, seq: u64, metric: String, value: f64) -> bool {
        match self.samples.binary_search_by_key(&seq, |s| s.0) {
            Ok(_) => {
                self.duplicates += 1;
                false
            }
            Err(pos) => {
                self.samples.insert(pos, (seq, metric, value));
                true
            }
        }
    }

    /// Portable form for snapshots (clones; the session stays live).
    fn to_portable(&self, id: &str) -> PortableSession {
        PortableSession {
            id: id.to_string(),
            expected: self.expected,
            newest_ts: self.newest_ts,
            duplicates: self.duplicates,
            shed: self.shed,
            samples: self.samples.clone(),
        }
    }

    /// Rebuild from a snapshot at restore tick `tick`.
    fn from_portable(p: PortableSession, tick: u64) -> (String, SessionState) {
        (
            p.id,
            SessionState {
                samples: p.samples,
                expected: p.expected,
                newest_ts: p.newest_ts,
                last_tick: tick,
                duplicates: p.duplicates,
                shed: p.shed,
            },
        )
    }

    /// Complete ⇔ `end` seen and the sorted-unique seqs are exactly
    /// `0..expected` (length + endpoints pin the set by pigeonhole).
    fn complete(&self) -> bool {
        match self.expected {
            Some(0) => self.samples.is_empty(),
            Some(e) => {
                self.samples.len() as u64 == e
                    && self.samples[0].0 == 0
                    && self.samples[self.samples.len() - 1].0 == e - 1
            }
            None => false,
        }
    }

    fn into_metrics(self) -> (Vec<(String, f64)>, u64) {
        (
            self.samples.into_iter().map(|(_, n, v)| (n, v)).collect(),
            self.duplicates,
        )
    }
}

/// FNV-1a session-id hash for shard routing. Only the id is hashed,
/// so one session always lands on one shard.
fn shard_of(session: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in session.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    (h % shards as u64) as usize
}

// ---------------------------------------------------------------------------
// Shard worker
// ---------------------------------------------------------------------------

/// Events between watermark / eviction sweeps of a shard table.
const SWEEP_EVERY: u64 = 64;

type Sink = Arc<Mutex<dyn FnMut(FlushedSession) + Send>>;

/// What travels down a shard queue: events, or an in-band snapshot
/// barrier. Because the queue is FIFO, a worker that answers `Snap`
/// has processed *exactly* the events routed before the barrier was
/// pushed — a consistent cut across shards with no global pause.
enum ShardMsg {
    /// One routed probe event.
    Event(ProbeEvent),
    /// Snapshot barrier: reply with this shard's state as of now.
    Snap(mpsc::Sender<ShardSnap>),
}

/// One shard's contribution to a snapshot (or its final state at
/// graceful shutdown: sessions empty, tombstones and clock kept).
struct ShardSnap {
    shard: usize,
    /// `(last_tick, session)` — recency preserved for restore.
    sessions: Vec<(u64, PortableSession)>,
    /// Retired ids, FIFO order.
    tombstones: Vec<String>,
    max_ts: Option<f64>,
}

/// Per-metric shed value derived from the model: feature importance
/// of the exact feature, half-credit for features the metric merely
/// feeds (substring match), zero for metrics the tree never splits
/// on. Under overload the *least* valuable samples go first, so the
/// degraded diagnosis keeps the splits that matter most.
struct ShedValues {
    by_name: HashMap<String, f64>,
    features: Vec<(String, f64)>,
}

impl ShedValues {
    fn new(diagnoser: &Diagnoser) -> ShedValues {
        let imp = diagnoser.tree().feature_importance();
        let features: Vec<(String, f64)> = diagnoser
            .feature_names
            .iter()
            .cloned()
            .zip(imp.iter().copied())
            .collect();
        ShedValues {
            by_name: features.iter().cloned().collect(),
            features,
        }
    }

    fn value(&self, metric: &str) -> f64 {
        if let Some(v) = self.by_name.get(metric) {
            return *v;
        }
        let mut best = 0.0f64;
        for (name, v) in &self.features {
            if name.contains(metric) || metric.contains(name.as_str()) {
                best = best.max(0.5 * v);
            }
        }
        best
    }
}

struct PendingFlush {
    session: String,
    cause: FlushCause,
    metrics: Vec<(String, f64)>,
    duplicates: u64,
    shed: u64,
}

struct ShardWorker {
    shard: usize,
    diagnoser: Arc<Diagnoser>,
    cfg: ServeConfig,
    sink: Sink,
    table: HashMap<String, SessionState>,
    /// Recently flushed session ids: stragglers for an
    /// already-answered session (duplicate copies racing a completion
    /// flush, data beyond the allowed lateness) are dropped instead of
    /// reopening it — the daemon answers each session exactly once.
    /// Bounded FIFO so a long-lived daemon can't leak.
    retired: HashSet<String>,
    retired_fifo: VecDeque<String>,
    pending: Vec<PendingFlush>,
    tick: u64,
    max_ts: Option<f64>,
    stats: ShardStats,
    /// Buffered samples across the table (shedding trigger).
    buffered: usize,
    /// Per-metric shed values (shared, model-derived) + memo cache.
    shed_values: Arc<ShedValues>,
    shed_memo: HashMap<String, f64>,
    /// Simulated-crash flag: when set, bail out without flushing
    /// anything — the in-process equivalent of `kill -9`.
    abandon: Arc<AtomicBool>,
    /// Shard-local drift window (when [`ServeConfig::drift`] is set):
    /// filled lock-free inside each flush's diagnose pass, folded
    /// into the shared monitor afterwards.
    drift_local: Option<crate::drift::DriftWindow>,
}

impl ShardWorker {
    fn run(mut self, queue: Arc<Bounded<ShardMsg>>) -> (ShardStats, ShardSnap) {
        while let Some(msg) = queue.pop() {
            if self.abandon.load(Ordering::SeqCst) {
                return self.dead_snap();
            }
            match msg {
                ShardMsg::Event(ev) => {
                    self.tick += 1;
                    self.ingest(ev);
                    if self.pending.len() >= self.cfg.flush_batch {
                        self.flush();
                    }
                    if self.tick.is_multiple_of(SWEEP_EVERY) {
                        self.sweep_watermark();
                        if vqd_obs::enabled() {
                            vqd_obs::recorder()
                                .hist_record("serve.queue.depth", queue.len() as f64);
                        }
                    }
                }
                ShardMsg::Snap(tx) => {
                    // Flush staged sessions first: their output lines
                    // must be durable before a snapshot tombstones
                    // them, or a crash between the two would lose
                    // their answers.
                    self.flush();
                    let snap = self.collect_snap();
                    let _ = tx.send(snap);
                }
            }
        }
        if self.abandon.load(Ordering::SeqCst) {
            return self.dead_snap();
        }
        // Input over: everything still resident flushes as shutdown,
        // in session-id order so the drain itself is deterministic.
        let mut keys: Vec<String> = self.table.keys().cloned().collect();
        keys.sort_unstable();
        for k in keys {
            self.retire(&k, FlushCause::Shutdown);
        }
        self.flush();
        let fin = self.collect_snap();
        (self.stats, fin)
    }

    /// A crashed worker's return value: nothing in it may be trusted
    /// or persisted, it only satisfies the join.
    fn dead_snap(self) -> (ShardStats, ShardSnap) {
        (
            self.stats,
            ShardSnap {
                shard: self.shard,
                sessions: Vec::new(),
                tombstones: Vec::new(),
                max_ts: None,
            },
        )
    }

    /// This shard's state in portable form, recency order.
    fn collect_snap(&self) -> ShardSnap {
        let mut sessions: Vec<(u64, PortableSession)> = self
            .table
            .iter()
            .map(|(id, s)| (s.last_tick, s.to_portable(id)))
            .collect();
        sessions.sort_unstable_by_key(|(tick, _)| *tick);
        ShardSnap {
            shard: self.shard,
            sessions,
            tombstones: self.retired_fifo.iter().cloned().collect(),
            max_ts: self.max_ts,
        }
    }

    fn ingest(&mut self, ev: ProbeEvent) {
        let ProbeEvent { session, ts, kind } = ev;
        if let Some(t) = ts {
            self.max_ts = Some(match self.max_ts {
                Some(prev) => prev.max(t),
                None => t,
            });
        }
        if self.retired.contains(&session) {
            self.stats.late_events += 1;
            if vqd_obs::enabled() {
                vqd_obs::recorder().counter_add("serve.events.late", 1);
            }
            return;
        }
        if !self.table.contains_key(&session) {
            self.table.insert(session.clone(), SessionState::default());
        }
        let done = match self.table.get_mut(&session) {
            Some(entry) => {
                entry.touch(self.tick, ts);
                match kind {
                    EventKind::Sample { seq, metric, value } => {
                        if entry.add_sample(seq, metric, value) {
                            self.buffered += 1;
                        }
                    }
                    EventKind::End { expected } => entry.expected = Some(expected),
                }
                entry.complete()
            }
            None => false,
        };
        if done {
            self.retire(&session, FlushCause::Complete);
        } else if self.table.len() > self.cfg.max_sessions {
            self.evict_one();
        }
        if let Some(high) = self.cfg.shed {
            if self.buffered > high {
                self.shed_down(high);
            }
        }
    }

    /// Shed buffered samples until at most `target` remain. Victim
    /// selection is deterministic (a pure function of shard state):
    /// largest session first (tie: smallest id), and within it the
    /// lowest-value metrics first (tie: highest seq), so what survives
    /// is what the model would miss most. Shed sessions keep serving —
    /// they just resolve through coarser quality tiers.
    fn shed_down(&mut self, target: usize) {
        while self.buffered > target {
            let victim = self
                .table
                .iter()
                .filter(|(_, s)| !s.samples.is_empty())
                .max_by(|(ak, a), (bk, b)| {
                    a.samples
                        .len()
                        .cmp(&b.samples.len())
                        .then_with(|| bk.cmp(ak))
                })
                .map(|(k, _)| k.clone());
            let Some(key) = victim else {
                return; // nothing sheddable (end-only sessions)
            };
            let need = self.buffered - target;
            let Some(state) = self.table.get_mut(&key) else {
                return;
            };
            // Drop up to half the session per round so the pain
            // spreads across sessions instead of zeroing one out.
            let k = need.min((state.samples.len() / 2).max(1));
            let mut order: Vec<usize> = (0..state.samples.len()).collect();
            let values: Vec<f64> = state
                .samples
                .iter()
                .map(|(_, m, _)| match self.shed_memo.get(m) {
                    Some(v) => *v,
                    None => {
                        let v = self.shed_values.value(m);
                        self.shed_memo.insert(m.clone(), v);
                        v
                    }
                })
                .collect();
            order.sort_unstable_by(|&a, &b| {
                values[a]
                    .total_cmp(&values[b])
                    .then_with(|| state.samples[b].0.cmp(&state.samples[a].0))
            });
            let mut doomed: Vec<usize> = order[..k].to_vec();
            doomed.sort_unstable_by(|a, b| b.cmp(a));
            for i in doomed {
                state.samples.remove(i);
            }
            if state.shed == 0 {
                self.stats.shed_sessions += 1;
                if vqd_obs::enabled() {
                    vqd_obs::recorder().counter_add("serve.shed.sessions", 1);
                }
            }
            state.shed += k as u64;
            self.buffered -= k;
            self.stats.shed_samples += k as u64;
            if vqd_obs::enabled() {
                vqd_obs::recorder().counter_add("serve.shed.samples", k as u64);
            }
        }
    }

    /// Remove `key` from the table, stage it for the next flush, and
    /// tombstone it so stragglers can't reopen it.
    fn retire(&mut self, key: &str, cause: FlushCause) {
        if let Some(state) = self.table.remove(key) {
            if self.retired.insert(key.to_string()) {
                self.retired_fifo.push_back(key.to_string());
                // Remember ~4 tables' worth of flushed ids; beyond
                // that a reopened straggler session is accepted (and
                // flushed again at shutdown) rather than leaking.
                if self.retired_fifo.len() > self.cfg.max_sessions.saturating_mul(4).max(1024) {
                    if let Some(old) = self.retired_fifo.pop_front() {
                        self.retired.remove(&old);
                    }
                }
            }
            self.buffered = self.buffered.saturating_sub(state.samples.len());
            let shed = state.shed;
            let (metrics, duplicates) = state.into_metrics();
            self.pending.push(PendingFlush {
                session: key.to_string(),
                cause,
                metrics,
                duplicates,
                shed,
            });
        }
    }

    /// Flush sessions whose newest event time fell behind the shard's
    /// watermark (max event time minus allowed lateness).
    fn sweep_watermark(&mut self) {
        let (Some(lateness), Some(max_ts)) = (self.cfg.lateness, self.max_ts) else {
            return;
        };
        let cutoff = max_ts - lateness;
        let mut victims: Vec<String> = self
            .table
            .iter()
            .filter(|(_, s)| s.newest_ts.is_some_and(|t| t < cutoff))
            .map(|(k, _)| k.clone())
            .collect();
        victims.sort_unstable();
        for k in victims {
            self.retire(&k, FlushCause::Watermark);
        }
    }

    /// Flush the least recently touched session (unique per shard:
    /// ticks are a per-shard monotone counter).
    fn evict_one(&mut self) {
        let victim = self
            .table
            .iter()
            .min_by_key(|(_, s)| s.last_tick)
            .map(|(k, _)| k.clone());
        if let Some(k) = victim {
            self.retire(&k, FlushCause::Evicted);
        }
    }

    /// Push the staged sessions through `diagnose_batch` and hand the
    /// diagnoses to the sink. Single-shard engine call: the daemon's
    /// parallelism is across shard workers, and the warm
    /// `ScratchPool` on the compiled model means each worker reuses
    /// its interned plan cache across flushes.
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let staged = std::mem::take(&mut self.pending);
        let t0 = Instant::now();
        let batch = {
            let views: Vec<&[(String, f64)]> =
                staged.iter().map(|p| p.metrics.as_slice()).collect();
            self.diagnoser.diagnose_batch_with(
                &views,
                1,
                crate::serving::BatchOptions {
                    audit: self.cfg.audit,
                    drift: self.drift_local.as_mut(),
                },
            )
        };
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        self.stats.flush_batches += 1;
        self.stats.flush_ms.record(ms);
        let obs_on = vqd_obs::enabled();
        if obs_on {
            let r = vqd_obs::recorder();
            r.hist_record("serve.flush.ms", ms);
            r.hist_record("serve.flush.sessions", staged.len() as f64);
            r.counter_add("serve.flushes", 1);
        }
        for (i, p) in staged.into_iter().enumerate() {
            let dx = batch.get(i);
            let tier = match dx.resolution {
                Resolution::Exact => 0,
                Resolution::Location => 1,
                Resolution::Existence => 2,
            };
            self.stats.tiers[tier] += 1;
            self.stats.sessions += 1;
            self.stats.duplicates += p.duplicates;
            match p.cause {
                FlushCause::Complete => self.stats.complete += 1,
                FlushCause::Watermark => self.stats.expired += 1,
                FlushCause::Evicted => self.stats.evicted += 1,
                FlushCause::Shutdown => self.stats.shutdown += 1,
            }
            if obs_on {
                let r = vqd_obs::recorder();
                r.counter_add(
                    match tier {
                        0 => "serve.tier.exact",
                        1 => "serve.tier.location",
                        _ => "serve.tier.existence",
                    },
                    1,
                );
                r.counter_add(
                    match p.cause {
                        FlushCause::Complete => "serve.sessions.complete",
                        FlushCause::Watermark => "serve.sessions.expired",
                        FlushCause::Evicted => "serve.sessions.evicted",
                        FlushCause::Shutdown => "serve.sessions.shutdown",
                    },
                    1,
                );
            }
            (lock_in(&self.sink))(FlushedSession {
                session: p.session,
                cause: p.cause,
                samples: p.metrics.len(),
                duplicates: p.duplicates,
                shed: p.shed,
                shard: self.shard,
                diagnosis: dx,
                audit: batch.audit_path(i).map(<[_]>::to_vec),
            });
        }
        // Flush cadence = drift cadence: fold this shard's window into
        // the shared monitor and re-evaluate. The hot ingest path
        // never touches the monitor lock.
        if let (Some(monitor), Some(local)) = (&self.cfg.drift, &mut self.drift_local) {
            if !local.is_empty() {
                if let Ok(mut m) = monitor.lock() {
                    m.absorb(local);
                    let reading = m.evaluate();
                    for alert in &reading.alerts {
                        eprintln!("[vqd serve] {alert}");
                    }
                }
                local.clear();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// The streaming daemon: routes events to shard workers and joins
/// them at the end. Drop-in embedding API for the `vqd serve`
/// subcommand and the tests/benches. With a [`Durability`] config it
/// journals accepted events, cuts barrier snapshots, and can restart
/// from a [`RecoveredState`].
pub struct StreamServer {
    queues: Vec<Arc<Bounded<ShardMsg>>>,
    workers: Vec<JoinHandle<(ShardStats, ShardSnap)>>,
    events: u64,
    parse_errors: u64,
    journal: Option<JournalWriter>,
    snapshots: Option<SnapshotSpec>,
    /// Events routed to queues so far — the journal seq a snapshot
    /// barrier pushed *now* would cover.
    covered_seq: u64,
    /// Events routed since the last snapshot (cadence counter).
    since_snap: u64,
    snapshots_written: u64,
    replayed: u64,
    suppressed: Arc<AtomicU64>,
    abandon: Arc<AtomicBool>,
    /// Journal appends not yet folded into the obs counter; reported
    /// in batches so the hot path skips the per-event recorder call.
    journal_unreported: u64,
}

impl StreamServer {
    /// Spawn `cfg.shards` workers serving `diagnoser`; every flushed
    /// session is handed to `sink` (called from worker threads, one
    /// at a time). No durability: the PR 6 daemon, nothing survives a
    /// crash.
    pub fn new(
        diagnoser: Arc<Diagnoser>,
        cfg: ServeConfig,
        sink: impl FnMut(FlushedSession) + Send + 'static,
    ) -> StreamServer {
        match Self::start(diagnoser, cfg, Durability::none(), None, sink) {
            Ok(s) => s,
            Err(e) => unreachable!("StreamServer without durability cannot fail to start: {e}"),
        }
    }

    /// Spawn the daemon with durability. `recovered` (from
    /// [`recover_state`]) seeds the shard tables from the snapshot
    /// and replays the journal suffix before this returns; flushes
    /// for sessions already present in the output file are
    /// suppressed. Restored sessions are re-routed by id hash, so the
    /// shard count may differ from the crashed run's.
    pub fn start(
        diagnoser: Arc<Diagnoser>,
        cfg: ServeConfig,
        durability: Durability,
        recovered: Option<RecoveredState>,
        sink: impl FnMut(FlushedSession) + Send + 'static,
    ) -> Result<StreamServer, VqdError> {
        let shards = cfg.shards.max(1);
        if durability.snapshots.is_some() && durability.journal.is_none() && recovered.is_none() {
            return Err(VqdError::Config(
                "snapshots require a journal: a snapshot is keyed by a journal seq".to_string(),
            ));
        }

        // Suppression: sessions answered before the crash must not be
        // re-emitted by the replay. Diagnosis is deterministic, so
        // the suppressed line would have been byte-identical anyway.
        let suppressed = Arc::new(AtomicU64::new(0));
        let sink: Sink = match recovered.as_ref().map(|r| r.emitted.clone()) {
            Some(emitted) if !emitted.is_empty() => {
                let sup = Arc::clone(&suppressed);
                let mut inner = sink;
                Arc::new(Mutex::new(move |fs: FlushedSession| {
                    if emitted.contains(&fs.session) {
                        sup.fetch_add(1, Ordering::Relaxed);
                        if vqd_obs::enabled() {
                            vqd_obs::recorder().counter_add("serve.recovery.suppressed", 1);
                        }
                    } else {
                        inner(fs);
                    }
                }))
            }
            _ => Arc::new(Mutex::new(sink)),
        };

        // Distribute recovered state across the (possibly different)
        // shard layout: sessions and tombstones re-route by the same
        // id hash; the watermark clock collapses to its global max,
        // which can only delay expiry, never change a diagnosis.
        let mut init_sessions: Vec<Vec<PortableSession>> = vec![Vec::new(); shards];
        let mut init_tombs: Vec<Vec<String>> = vec![Vec::new(); shards];
        let mut init_max_ts: Option<f64> = None;
        let (journal, replay) = match recovered {
            Some(r) => {
                let RecoveredState {
                    writer,
                    sessions,
                    tombstones,
                    max_ts,
                    replay,
                    ..
                } = r;
                for s in sessions {
                    init_sessions[shard_of(&s.id, shards)].push(s);
                }
                for t in tombstones {
                    init_tombs[shard_of(&t, shards)].push(t);
                }
                init_max_ts = max_ts;
                (Some(writer), replay)
            }
            None => match &durability.journal {
                Some(spec) => {
                    let (writer, scan) =
                        JournalWriter::open(&spec.dir, spec.config()).map_err(VqdError::Journal)?;
                    if scan.next_seq() != 0 || scan.torn.is_some() {
                        return Err(VqdError::Config(format!(
                            "journal directory {} already holds {} record(s); \
                             pass --recover to resume from it or point --journal at a fresh \
                             directory",
                            spec.dir.display(),
                            scan.next_seq()
                        )));
                    }
                    (Some(writer), Vec::new())
                }
                None => (None, Vec::new()),
            },
        };
        let covered_seq = journal.as_ref().map(|j| j.next_seq()).unwrap_or(0) - replay.len() as u64;

        let shed_values = Arc::new(ShedValues::new(&diagnoser));
        let abandon = Arc::new(AtomicBool::new(false));
        let mut queues = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (shard, (sessions, tombstones)) in init_sessions
            .drain(..)
            .zip(init_tombs.drain(..))
            .enumerate()
        {
            let queue = Arc::new(Bounded::new(cfg.queue_capacity));
            let mut table = HashMap::with_capacity(sessions.len());
            let mut buffered = 0usize;
            let mut tick = 0u64;
            for p in sessions {
                tick += 1;
                let (id, state) = SessionState::from_portable(p, tick);
                buffered += state.samples.len();
                table.insert(id, state);
            }
            let retired: HashSet<String> = tombstones.iter().cloned().collect();
            let retired_fifo: VecDeque<String> = tombstones.into();
            let worker = ShardWorker {
                shard,
                diagnoser: Arc::clone(&diagnoser),
                cfg: cfg.clone(),
                sink: Arc::clone(&sink),
                table,
                retired,
                retired_fifo,
                pending: Vec::new(),
                tick,
                max_ts: init_max_ts,
                stats: ShardStats::default(),
                buffered,
                shed_values: Arc::clone(&shed_values),
                shed_memo: HashMap::new(),
                abandon: Arc::clone(&abandon),
                drift_local: cfg.drift.is_some().then(|| diagnoser.drift_window()),
            };
            let q = Arc::clone(&queue);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("vqd-serve-{shard}"))
                    .spawn(move || worker.run(q))
                    .unwrap_or_else(|e| panic!("spawn serve shard {shard}: {e}")),
            );
            queues.push(queue);
        }
        let mut server = StreamServer {
            queues,
            workers,
            events: 0,
            parse_errors: 0,
            journal,
            snapshots: durability.snapshots,
            covered_seq,
            since_snap: 0,
            snapshots_written: 0,
            replayed: 0,
            suppressed,
            abandon,
            journal_unreported: 0,
        };
        // Replay the journal suffix (already journaled — route only).
        for ev in replay {
            server.route(ev);
            server.replayed += 1;
        }
        Ok(server)
    }

    /// Fold batched journal appends into the obs counter.
    fn report_journal_counter(&mut self) {
        if self.journal_unreported > 0 {
            if vqd_obs::enabled() {
                vqd_obs::recorder().counter_add("serve.journal.records", self.journal_unreported);
            }
            self.journal_unreported = 0;
        }
    }

    /// Route one event to its shard queue without journaling.
    fn route(&mut self, ev: ProbeEvent) {
        self.events += 1;
        if self.events.is_multiple_of(256) && vqd_obs::enabled() {
            let depth: usize = self.queues.iter().map(|q| q.len()).sum();
            vqd_obs::recorder().gauge_set("serve.queue.depth", depth as f64);
        }
        let shard = shard_of(&ev.session, self.queues.len());
        self.queues[shard].push(ShardMsg::Event(ev));
        self.covered_seq += 1;
        if vqd_obs::enabled() {
            vqd_obs::recorder().counter_add("serve.events", 1);
        }
    }

    /// Accept one event: journal it (write-ahead), route it to its
    /// shard (blocking if that queue is full — backpressure), and cut
    /// a snapshot if the cadence came due. The only error source is
    /// the durability layer; without one this never fails.
    pub fn push_event(&mut self, ev: ProbeEvent) -> Result<(), VqdError> {
        if let Some(j) = self.journal.as_mut() {
            j.append_with(|buf| ev.to_journal_bytes_into(buf))
                .map_err(VqdError::Journal)?;
            self.journal_unreported += 1;
            if self.journal_unreported >= 256 {
                self.report_journal_counter();
            }
        }
        self.route(ev);
        self.since_snap += 1;
        if let Some(every) = self.snapshots.as_ref().map(|s| s.every_events) {
            if every > 0 && self.since_snap >= every {
                self.write_snapshot()?;
            }
        }
        Ok(())
    }

    /// Parse and route one JSONL event line (1-based `lineno` for
    /// error messages). Blank lines are ignored. A malformed line is
    /// counted, reported as a typed error and *dropped* — the caller
    /// decides whether to keep going; the daemon state is untouched.
    pub fn push_line(&mut self, lineno: usize, line: &str) -> Result<(), VqdError> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(());
        }
        match ProbeEvent::parse(line) {
            Ok(ev) => self.push_event(ev),
            Err(e) => {
                self.parse_errors += 1;
                if vqd_obs::enabled() {
                    vqd_obs::recorder().counter_add("serve.events.malformed", 1);
                }
                Err(VqdError::Event {
                    line: lineno,
                    source: e,
                })
            }
        }
    }

    /// Journal seq of the next accepted event — the ingest ack a
    /// sender resumes from after a crash (0 when not journaling).
    pub fn next_seq(&self) -> u64 {
        self.journal.as_ref().map(|j| j.next_seq()).unwrap_or(0)
    }

    /// Total queued events across shards right now (for gauges).
    pub fn queue_depth(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Cut a consistent snapshot *now*: flush the journal, push a
    /// barrier message down every shard queue, assemble the replies
    /// at `covered_seq`, write atomically, prune old snapshots and
    /// the journal prefix they cover.
    pub fn write_snapshot(&mut self) -> Result<(), VqdError> {
        let Some(spec) = self.snapshots.clone() else {
            return Ok(());
        };
        if let Some(j) = self.journal.as_mut() {
            j.flush().map_err(VqdError::Journal)?;
        }
        let (tx, rx) = mpsc::channel();
        for q in &self.queues {
            if !q.push(ShardMsg::Snap(tx.clone())) {
                return Ok(()); // shutting down; finish() snapshots
            }
        }
        drop(tx);
        let mut shards: Vec<ShardSnap> = Vec::with_capacity(self.queues.len());
        for _ in 0..self.queues.len() {
            match rx.recv() {
                Ok(s) => shards.push(s),
                Err(_) => {
                    // A worker died mid-barrier: skip this snapshot
                    // rather than persist a partial cut.
                    if vqd_obs::enabled() {
                        vqd_obs::recorder().counter_add("serve.snapshot.failed", 1);
                    }
                    return Ok(());
                }
            }
        }
        self.persist_snapshot(&spec, shards)
    }

    /// Assemble per-shard cuts into one snapshot file at
    /// `covered_seq` and rotate retention.
    fn persist_snapshot(
        &mut self,
        spec: &SnapshotSpec,
        mut shards: Vec<ShardSnap>,
    ) -> Result<(), VqdError> {
        shards.sort_unstable_by_key(|s| s.shard);
        let mut snap = StreamSnapshot {
            seq: self.covered_seq,
            ..StreamSnapshot::default()
        };
        for sh in shards {
            if let Some(t) = sh.max_ts {
                snap.max_ts = Some(match snap.max_ts {
                    Some(prev) => prev.max(t),
                    None => t,
                });
            }
            snap.sessions
                .extend(sh.sessions.into_iter().map(|(_, p)| p));
            snap.tombstones.extend(sh.tombstones);
        }
        snap.save(&spec.dir)?;
        self.since_snap = 0;
        self.snapshots_written += 1;
        if vqd_obs::enabled() {
            vqd_obs::recorder().counter_add("serve.snapshot.written", 1);
        }
        if let Some(oldest_kept) = snapshot::prune_snapshots(&spec.dir, spec.keep)? {
            if let Some(j) = self.journal.as_mut() {
                j.prune_through(oldest_kept).map_err(VqdError::Journal)?;
            }
        }
        Ok(())
    }

    /// Close the queues, drain and join every worker, and return the
    /// merged accounting. Flushes all still-resident sessions as
    /// [`FlushCause::Shutdown`], then writes a final snapshot (empty
    /// tables, full tombstones) so a subsequent `--recover` restart
    /// replays nothing and re-answers nothing.
    pub fn finish(mut self) -> Result<ServeReport, VqdError> {
        self.report_journal_counter();
        if let Some(j) = self.journal.as_mut() {
            j.flush().map_err(VqdError::Journal)?;
        }
        for q in &self.queues {
            q.close();
        }
        let mut report = ServeReport {
            events: self.events,
            parse_errors: self.parse_errors,
            replayed: self.replayed,
            ..ServeReport::default()
        };
        let mut finals: Vec<ShardSnap> = Vec::with_capacity(self.workers.len());
        for w in self.workers.drain(..) {
            match w.join() {
                Ok((stats, fin)) => {
                    report.absorb(&stats);
                    finals.push(fin);
                }
                Err(_) => {
                    // A worker died; its sessions are lost but the
                    // daemon still reports what the others did.
                    if vqd_obs::enabled() {
                        vqd_obs::recorder().counter_add("serve.shard.panics", 1);
                    }
                }
            }
        }
        if let Some(spec) = self.snapshots.clone() {
            if finals.len() == self.queues.len() {
                self.persist_snapshot(&spec, finals)?;
            }
        }
        if let Some(mut j) = self.journal.take() {
            j.flush().map_err(VqdError::Journal)?;
        }
        report.suppressed = self.suppressed.load(Ordering::Relaxed);
        report.snapshots = self.snapshots_written;
        Ok(report)
    }

    /// Simulate `kill -9` in-process: workers bail without flushing,
    /// the journal's buffered tail is discarded unwritten, no
    /// snapshot is cut. Everything the chaos harness needs to die at
    /// an exact event boundary — deterministically — without forking.
    pub fn crash(mut self) {
        self.abandon.store(true, Ordering::SeqCst);
        for q in &self.queues {
            q.close();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(j) = self.journal.take() {
            j.abandon();
        }
    }
}

// ---------------------------------------------------------------------------
// Shared output format + corpus replay
// ---------------------------------------------------------------------------

/// Stable lowercase name of a resolution tier.
pub fn resolution_name(r: Resolution) -> &'static str {
    match r {
        Resolution::Exact => "exact",
        Resolution::Location => "location",
        Resolution::Existence => "existence",
    }
}

/// Header for the diagnosis TSV emitted by both `vqd diagnose
/// --batch` and `vqd serve`.
pub const RESULT_HEADER: &str = "session\tlabel\tresolution\tconfidence\tcoverage\tfallback\n";

/// One diagnosis TSV line (with trailing newline), keyed by `key`.
/// `vqd diagnose --batch` and `vqd serve` both emit exactly this, so
/// the streaming-equals-offline gate compares bytes, not parses.
pub fn result_line(key: &str, dx: &Diagnosis) -> String {
    format!(
        "{key}\t{}\t{}\t{:.3}\t{:.3}\t{}\n",
        dx.label,
        resolution_name(dx.resolution),
        dx.quality.confidence,
        dx.quality.feature_coverage,
        dx.fallback_label.as_deref().unwrap_or("-"),
    )
}

/// Explode a labelled corpus into the probe events a live deployment
/// would have emitted: session id = corpus index, `seq` = metric
/// position, one `end` marker each. In-order replay through
/// [`StreamServer`] reproduces offline batch diagnosis bit for bit —
/// and, by the determinism argument above, so does any shuffle.
pub fn corpus_to_events(runs: &[LabeledRun]) -> Vec<ProbeEvent> {
    corpus_to_events_from(runs, 0)
}

/// [`corpus_to_events`] with session ids starting at `base` — the
/// chunked-streaming form: exploding corpus chunk `k` with `base` set
/// to the sessions already emitted concatenates to exactly the
/// whole-corpus event list.
pub fn corpus_to_events_from(runs: &[LabeledRun], base: usize) -> Vec<ProbeEvent> {
    let mut out = Vec::with_capacity(runs.iter().map(|r| r.metrics.len() + 1).sum());
    for (i, run) in runs.iter().enumerate() {
        let sid = (base + i).to_string();
        for (j, (name, v)) in run.metrics.iter().enumerate() {
            out.push(ProbeEvent::sample(sid.clone(), j as u64, name.clone(), *v));
        }
        out.push(ProbeEvent::end(sid, run.metrics.len() as u64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_fifo_close_drain() {
        let q = Bounded::new(4);
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.len(), 2);
        q.close();
        assert!(!q.push(3), "push after close must fail");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn bounded_queue_blocks_until_popped() {
        let q = Arc::new(Bounded::new(1));
        assert!(q.push(10u32));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.push(11));
        // The pusher is blocked on the full queue until we pop.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(10));
        assert!(h.join().expect("pusher"));
        assert_eq!(q.pop(), Some(11));
    }

    #[test]
    fn session_state_reassembles_by_seq() {
        let mut s = SessionState::default();
        s.add_sample(2, "c".into(), 3.0);
        s.add_sample(0, "a".into(), 1.0);
        s.add_sample(1, "b".into(), 2.0);
        s.add_sample(1, "b".into(), 2.0); // duplicate
        assert!(!s.complete());
        s.expected = Some(3);
        assert!(s.complete());
        let (m, dups) = s.into_metrics();
        assert_eq!(dups, 1);
        assert_eq!(
            m,
            vec![
                ("a".to_string(), 1.0),
                ("b".to_string(), 2.0),
                ("c".to_string(), 3.0)
            ]
        );
    }

    #[test]
    fn completeness_needs_contiguous_seqs() {
        let mut s = SessionState::default();
        s.add_sample(0, "a".into(), 1.0);
        s.add_sample(2, "c".into(), 3.0);
        s.expected = Some(2);
        assert!(!s.complete(), "seq 2 present but seq 1 missing");
        let empty = SessionState {
            expected: Some(0),
            ..SessionState::default()
        };
        assert!(empty.complete(), "zero-sample session completes on end");
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 8] {
            for id in ["0", "17", "session-x", ""] {
                let a = shard_of(id, shards);
                assert!(a < shards);
                assert_eq!(a, shard_of(id, shards));
            }
        }
    }
}
