//! The live ops surface of `vqd serve`: a dependency-free blocking
//! HTTP listener exposing `/metrics` (Prometheus text exposition of
//! the obs registry), `/healthz` (process liveness) and `/readyz`
//! (serving readiness: model loaded ∧ shards running ∧ journal
//! writable).
//!
//! The listener thread renders the exposition from a periodically
//! refreshed registry snapshot cache, so a scrape — however slow the
//! scraper drains the socket — never takes a lock the event hot path
//! cares about and never triggers more than one snapshot per refresh
//! interval even under a scrape storm.

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What the `/readyz` probe reports. All three legs start `false`;
/// the daemon flips them as it brings each piece up, so orchestration
/// holds traffic until the process can actually answer.
#[derive(Debug, Default)]
pub struct Readiness {
    /// The model file parsed and compiled.
    pub model_loaded: AtomicBool,
    /// Shard workers spawned and consuming their queues.
    pub shards_running: AtomicBool,
    /// The event journal (when durability is on) opened writable;
    /// daemons without durability set this immediately.
    pub journal_writable: AtomicBool,
}

impl Readiness {
    /// True when every leg is up.
    pub fn ready(&self) -> bool {
        self.model_loaded.load(Ordering::SeqCst)
            && self.shards_running.load(Ordering::SeqCst)
            && self.journal_writable.load(Ordering::SeqCst)
    }

    /// The legs still down, for the 503 body.
    fn missing(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if !self.model_loaded.load(Ordering::SeqCst) {
            out.push("model");
        }
        if !self.shards_running.load(Ordering::SeqCst) {
            out.push("shards");
        }
        if !self.journal_writable.load(Ordering::SeqCst) {
            out.push("journal");
        }
        out
    }
}

/// The ops listener: owns the accept thread; dropping or
/// [`OpsServer::shutdown`] stops it.
pub struct OpsServer {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

/// How long a connection may dribble its request before we give up on
/// it — an ops endpoint must never be wedged by a stuck client.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

/// Accept-loop poll interval while idle (non-blocking accept).
const POLL: Duration = Duration::from_millis(10);

impl OpsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9464`; port 0 picks a free port)
    /// and start serving. `refresh` bounds how often a scrape may
    /// re-snapshot the registry.
    pub fn bind(addr: &str, readiness: Arc<Readiness>, refresh: Duration) -> io::Result<OpsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("vqd-ops".to_string())
            .spawn(move || accept_loop(listener, readiness, refresh, stop2))?;
        Ok(OpsServer {
            stop,
            handle: Some(handle),
            addr: local,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the listener thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The refresh-bounded exposition cache.
struct MetricsCache {
    body: String,
    at: Option<Instant>,
    refresh: Duration,
}

impl MetricsCache {
    fn get(&mut self) -> &str {
        let stale = match self.at {
            Some(t) => t.elapsed() >= self.refresh,
            None => true,
        };
        if stale {
            self.body = vqd_obs::expose::render_prometheus(&vqd_obs::snapshot());
            self.at = Some(Instant::now());
        }
        &self.body
    }
}

fn accept_loop(
    listener: TcpListener,
    readiness: Arc<Readiness>,
    refresh: Duration,
    stop: Arc<AtomicBool>,
) {
    let mut cache = MetricsCache {
        body: String::new(),
        at: None,
        refresh,
    };
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: ops traffic is one scraper and the
                // occasional probe, and the cache makes each request
                // cheap; a stuck client costs at most READ_TIMEOUT.
                let _ = serve_conn(stream, &readiness, &mut cache);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Read the request line (`GET <path> HTTP/1.x`), route, respond.
fn serve_conn(
    mut stream: TcpStream,
    readiness: &Readiness,
    cache: &mut MetricsCache,
) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(READ_TIMEOUT))?;
    let mut buf = [0u8; 1024];
    let mut req = Vec::new();
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => break,
        };
        req.extend_from_slice(&buf[..n]);
        if req.windows(2).any(|w| w == b"\r\n") || req.contains(&b'\n') || req.len() > 8192 {
            break;
        }
    }
    let line = String::from_utf8_lossy(&req);
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    match path {
        "/metrics" => {
            let body = cache.get().to_string();
            respond(&mut stream, 200, vqd_obs::expose::CONTENT_TYPE, &body)
        }
        "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "/readyz" => {
            if readiness.ready() {
                respond(&mut stream, 200, "text/plain", "ready\n")
            } else {
                let body = format!("not ready: {}\n", readiness.missing().join(", "));
                respond(&mut stream, 503, "text/plain", &body)
            }
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn respond(stream: &mut TcpStream, code: u16, ctype: &str, body: &str) -> io::Result<()> {
    let reason = match code {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal test client: one GET, whole response as a string.
    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).ok();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("write");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_metrics_health_and_readiness() {
        let readiness = Arc::new(Readiness::default());
        let ops = OpsServer::bind(
            "127.0.0.1:0",
            Arc::clone(&readiness),
            Duration::from_millis(0),
        )
        .expect("bind");
        let addr = ops.local_addr();

        assert!(get(addr, "/healthz").starts_with("HTTP/1.1 200"));

        // Not ready until every leg is up, and the body names the
        // missing pieces.
        let r = get(addr, "/readyz");
        assert!(r.starts_with("HTTP/1.1 503"), "{r}");
        assert!(r.contains("model"), "{r}");
        readiness.model_loaded.store(true, Ordering::SeqCst);
        readiness.shards_running.store(true, Ordering::SeqCst);
        let r = get(addr, "/readyz");
        assert!(
            r.starts_with("HTTP/1.1 503") && r.contains("journal"),
            "{r}"
        );
        readiness.journal_writable.store(true, Ordering::SeqCst);
        assert!(get(addr, "/readyz").starts_with("HTTP/1.1 200"));

        // /metrics renders a valid exposition document with the right
        // content type.
        let resp = get(addr, "/metrics");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains(vqd_obs::expose::CONTENT_TYPE), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).unwrap_or("");
        vqd_obs::expose::validate_exposition(body).expect("valid exposition");

        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        assert!({
            let mut s = TcpStream::connect(addr).expect("connect");
            s.set_read_timeout(Some(Duration::from_secs(5))).ok();
            write!(s, "POST /metrics HTTP/1.1\r\n\r\n").expect("write");
            let mut out = String::new();
            s.read_to_string(&mut out).expect("read");
            out.starts_with("HTTP/1.1 405")
        });
        ops.shutdown();
    }

    #[test]
    fn metrics_cache_respects_refresh_interval() {
        let mut cache = MetricsCache {
            body: String::new(),
            at: None,
            refresh: Duration::from_secs(3600),
        };
        let a = cache.get().to_string();
        // A long refresh pins the cache: the second read re-renders
        // nothing even if the registry moved.
        let b = cache.get().to_string();
        assert_eq!(a, b);
    }
}
