//! Crash recovery: newest valid snapshot + journal suffix replay.
//!
//! The recovery invariant, enforced by `tests/chaos.rs` and the CI
//! chaos-smoke job: **kill the daemon at any point, restart with
//! `--recover`, and the merged output is byte-identical to offline
//! `vqd diagnose --batch`, every session answered exactly once.**
//! Three mechanisms compose to give it:
//!
//! 1. The journal holds every acknowledged event; recovery rebuilds
//!    the tables from the newest valid snapshot and replays the
//!    journal records past the snapshot's `seq`. The journal's
//!    `next_seq` is the ingest ack — a sender resumes feeding from it,
//!    so group-commit buffering loses nothing end to end.
//! 2. The output TSV doubles as the *emission log*: a torn final line
//!    (the crash hit mid-`write`) is truncated away, and every session
//!    id already present is suppressed during replay — diagnosis is
//!    deterministic, so a suppressed re-emission would have been
//!    byte-identical anyway. That closes the window between "session
//!    flushed to output" and "snapshot recorded the tombstone".
//! 3. Restored sessions are re-routed by the same id hash, so
//!    recovery works across `--shards` changes; only per-shard
//!    watermark clocks collapse to their max, which can only *delay*
//!    expiry, never change a diagnosis.

use std::collections::HashSet;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use vqd_probes::event::ProbeEvent;
use vqd_probes::journal::{self, JournalConfig, JournalError, JournalWriter};

use crate::error::VqdError;

use super::snapshot::{self, StreamSnapshot};

/// Where and how the daemon journals accepted events.
#[derive(Debug, Clone)]
pub struct JournalSpec {
    /// Journal directory (segments live here).
    pub dir: PathBuf,
    /// Segment rotation size in bytes.
    pub segment_bytes: u64,
    /// Records per group commit (1 = flush every record).
    pub flush_every: u64,
}

impl JournalSpec {
    /// Journal at `dir` with default rotation and group commit.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        let d = JournalConfig::default();
        JournalSpec {
            dir: dir.into(),
            segment_bytes: d.segment_bytes,
            flush_every: d.flush_every,
        }
    }

    pub(crate) fn config(&self) -> JournalConfig {
        JournalConfig {
            segment_bytes: self.segment_bytes,
            flush_every: self.flush_every,
        }
    }
}

/// Where and how often the daemon snapshots its state.
#[derive(Debug, Clone)]
pub struct SnapshotSpec {
    /// Snapshot directory.
    pub dir: PathBuf,
    /// Events between automatic snapshots (0 = only on shutdown).
    pub every_events: u64,
    /// Snapshots retained (older ones pruned, journal trimmed to the
    /// oldest survivor).
    pub keep: usize,
}

impl SnapshotSpec {
    /// Snapshots at `dir` every `every_events` events, keeping 2.
    pub fn new(dir: impl Into<PathBuf>, every_events: u64) -> Self {
        SnapshotSpec {
            dir: dir.into(),
            every_events,
            keep: 2,
        }
    }
}

/// The daemon's durability configuration. `Durability::none()` is the
/// PR 6 daemon: fast, volatile, nothing survives a crash.
#[derive(Debug, Clone, Default)]
pub struct Durability {
    /// Write-ahead journal of accepted events.
    pub journal: Option<JournalSpec>,
    /// Periodic + shutdown state snapshots.
    pub snapshots: Option<SnapshotSpec>,
}

impl Durability {
    /// No journal, no snapshots.
    pub fn none() -> Self {
        Durability::default()
    }
}

/// Everything `recover_state` salvaged, ready to hand to
/// [`StreamServer::start`](super::StreamServer::start).
pub struct RecoveredState {
    /// The reopened journal writer (torn tail already truncated),
    /// positioned after the last valid record.
    pub(super) writer: JournalWriter,
    /// Journal seq the snapshot covered (0 if none).
    pub snapshot_seq: u64,
    /// Seq the next accepted event will get — the sender's resume
    /// point (re-feed events from here).
    pub next_seq: u64,
    /// The snapshot file recovery loaded, if any.
    pub snapshot_path: Option<PathBuf>,
    /// Torn journal bytes discarded (crash debris).
    pub torn_bytes: u64,
    /// In-flight sessions from the snapshot, recency order.
    pub(super) sessions: Vec<snapshot::PortableSession>,
    /// Tombstones from the snapshot, FIFO order.
    pub(super) tombstones: Vec<String>,
    /// Watermark clock from the snapshot.
    pub(super) max_ts: Option<f64>,
    /// Journal suffix to replay (events `snapshot_seq..next_seq`).
    pub(super) replay: Vec<ProbeEvent>,
    /// Session ids already answered in the output file; re-emission is
    /// suppressed during replay.
    pub(super) emitted: HashSet<String>,
}

impl RecoveredState {
    /// Events that will be replayed into the shard queues on start.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }
}

/// Rebuild daemon state from disk: reopen the journal (truncating any
/// torn tail), load the newest valid snapshot no newer than the
/// journal, and stage the journal suffix for replay. `emitted` is the
/// set of already-answered session ids from [`prepare_output`].
pub fn recover_state(
    durability: &Durability,
    emitted: HashSet<String>,
) -> Result<RecoveredState, VqdError> {
    let spec = durability.journal.as_ref().ok_or_else(|| {
        VqdError::Config("recovery requires a journal (--journal <dir>)".to_string())
    })?;
    let (writer, scan) = JournalWriter::open(&spec.dir, spec.config())?;
    let torn_bytes = scan.torn.as_ref().map(|t| t.bytes_dropped).unwrap_or(0);

    let mut snapshot_seq = 0;
    let mut snapshot_path = None;
    let mut sessions = Vec::new();
    let mut tombstones = Vec::new();
    let mut max_ts = None;
    if let Some(sspec) = &durability.snapshots {
        if let Some((path, snap)) = snapshot::find_newest_valid(&sspec.dir, scan.next_seq())? {
            let StreamSnapshot {
                seq,
                max_ts: ts,
                sessions: ss,
                tombstones: tt,
            } = snap;
            if seq < scan.first_seq() {
                return Err(VqdError::snapshot(
                    &path,
                    0,
                    format!(
                        "snapshot covers seq {seq} but the journal starts at {} — \
                         journal segments were deleted out from under the snapshots",
                        scan.first_seq()
                    ),
                ));
            }
            snapshot_seq = seq;
            snapshot_path = Some(path);
            sessions = ss;
            tombstones = tt;
            max_ts = ts;
        }
    }
    if snapshot_seq == 0 && scan.first_seq() != 0 {
        return Err(VqdError::Journal(JournalError::corrupt(
            &spec.dir,
            0,
            format!(
                "journal starts at seq {} with no usable snapshot covering it",
                scan.first_seq()
            ),
        )));
    }

    let mut replay = Vec::with_capacity((scan.next_seq() - snapshot_seq) as usize);
    for seq in snapshot_seq..scan.next_seq() {
        let payload = scan
            .record(seq)
            .unwrap_or_else(|| unreachable!("seq bounds checked above"));
        let ev = ProbeEvent::from_journal_bytes(payload).map_err(|e| {
            VqdError::Journal(JournalError::corrupt(
                &spec.dir,
                seq,
                format!("record {seq} is not a valid event: {e}"),
            ))
        })?;
        replay.push(ev);
    }

    if vqd_obs::enabled() {
        let r = vqd_obs::recorder();
        r.counter_add("serve.recovery.replayed", replay.len() as u64);
        r.counter_add("serve.recovery.sessions", sessions.len() as u64);
        if torn_bytes > 0 {
            r.counter_add("serve.recovery.torn_bytes", torn_bytes);
        }
    }

    Ok(RecoveredState {
        writer,
        snapshot_seq,
        next_seq: scan.next_seq(),
        snapshot_path,
        torn_bytes,
        sessions,
        tombstones,
        max_ts,
        replay,
        emitted,
    })
}

/// What [`prepare_output`] did to the output file.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct OutputPrep {
    /// Session ids already answered (suppressed on replay).
    pub emitted: usize,
    /// Torn trailing bytes truncated off (crash mid-write).
    pub truncated_bytes: u64,
}

/// Ready an output TSV for resumed appending: truncate a torn final
/// line (no trailing newline = the crash hit mid-`write`) and collect
/// the session ids already answered. A missing file is a fresh start.
pub fn prepare_output(path: &Path) -> Result<(HashSet<String>, OutputPrep), VqdError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((HashSet::new(), OutputPrep::default()))
        }
        Err(e) => return Err(VqdError::io(path, e)),
    };
    let valid_len = match bytes.iter().rposition(|&b| b == b'\n') {
        Some(i) => i + 1,
        None => 0,
    };
    let truncated = (bytes.len() - valid_len) as u64;
    if truncated > 0 {
        let f = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| VqdError::io(path, e))?;
        f.set_len(valid_len as u64)
            .map_err(|e| VqdError::io(path, e))?;
        f.sync_all().map_err(|e| VqdError::io(path, e))?;
    }
    let text = String::from_utf8_lossy(&bytes[..valid_len]);
    let mut emitted = HashSet::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with("session\t") {
            continue; // header
        }
        let id = line.split('\t').next().unwrap_or(line);
        emitted.insert(id.to_string());
    }
    let prep = OutputPrep {
        emitted: emitted.len(),
        truncated_bytes: truncated,
    };
    Ok((emitted, prep))
}

/// Append `text` to `path`, creating it with `header` first if it
/// does not exist yet (or is empty). The journaling serve path keeps
/// the file open instead; this is the one-shot variant used by tests.
pub fn append_output(path: &Path, header: &str, text: &str) -> Result<(), VqdError> {
    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| VqdError::io(path, e))?;
    let len = f.metadata().map_err(|e| VqdError::io(path, e))?.len();
    if len == 0 {
        f.write_all(header.as_bytes())
            .map_err(|e| VqdError::io(path, e))?;
    }
    f.write_all(text.as_bytes())
        .map_err(|e| VqdError::io(path, e))
}

/// Read-only report of what recovery *would* find — the `vqd recover`
/// inspection subcommand. Touches nothing: no truncation, no
/// snapshot pruning, safe to run beside a live daemon.
#[derive(Debug)]
pub struct RecoveryInfo {
    /// Journal segment count.
    pub segments: usize,
    /// First retained journal seq.
    pub first_seq: u64,
    /// Next journal seq — the sender's resume point.
    pub next_seq: u64,
    /// Torn bytes at the journal tail (discarded on writer open).
    pub torn_bytes: u64,
    /// Newest valid snapshot file, if any.
    pub snapshot_path: Option<PathBuf>,
    /// Journal seq that snapshot covers.
    pub snapshot_seq: u64,
    /// In-flight sessions in that snapshot.
    pub snapshot_sessions: usize,
    /// Tombstones in that snapshot.
    pub snapshot_tombstones: usize,
    /// Journal records a recovery would replay.
    pub replay: u64,
    /// Session ids already answered in the output file.
    pub emitted: usize,
    /// Torn trailing bytes in the output file.
    pub output_torn_bytes: u64,
}

/// Inspect journal, snapshots and output without modifying anything.
pub fn inspect_recovery(
    journal_dir: &Path,
    snapshot_dir: Option<&Path>,
    output: Option<&Path>,
) -> Result<RecoveryInfo, VqdError> {
    let scan = journal::scan(journal_dir).map_err(VqdError::Journal)?;
    let mut info = RecoveryInfo {
        segments: scan.segments.len(),
        first_seq: scan.first_seq(),
        next_seq: scan.next_seq(),
        torn_bytes: scan.torn.as_ref().map(|t| t.bytes_dropped).unwrap_or(0),
        snapshot_path: None,
        snapshot_seq: 0,
        snapshot_sessions: 0,
        snapshot_tombstones: 0,
        replay: scan.next_seq() - scan.first_seq(),
        emitted: 0,
        output_torn_bytes: 0,
    };
    if let Some(dir) = snapshot_dir {
        if let Some((path, snap)) = snapshot::find_newest_valid(dir, scan.next_seq())? {
            info.snapshot_seq = snap.seq;
            info.snapshot_sessions = snap.sessions.len();
            info.snapshot_tombstones = snap.tombstones.len();
            info.replay = scan.next_seq() - snap.seq.max(scan.first_seq());
            info.snapshot_path = Some(path);
        }
    }
    if let Some(out) = output {
        match std::fs::read(out) {
            Ok(bytes) => {
                let valid_len = bytes
                    .iter()
                    .rposition(|&b| b == b'\n')
                    .map(|i| i + 1)
                    .unwrap_or(0);
                info.output_torn_bytes = (bytes.len() - valid_len) as u64;
                let text = String::from_utf8_lossy(&bytes[..valid_len]);
                info.emitted = text
                    .lines()
                    .filter(|l| !l.is_empty() && !l.starts_with("session\t"))
                    .count();
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(VqdError::io(out, e)),
        }
    }
    Ok(info)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vqd-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn prepare_output_truncates_torn_line_and_collects_ids() {
        let dir = tmpdir("prep");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("out.tsv");
        std::fs::write(
            &out,
            "session\tlabel\tresolution\tconfidence\tcoverage\tfallback\n\
             7\tok\texact\t1.000\t1.000\t-\n\
             12\tok\texact\t1.000\t1.000\t-\n\
             99\tok\texa",
        )
        .unwrap();
        let (emitted, prep) = prepare_output(&out).unwrap();
        assert_eq!(prep.emitted, 2);
        assert!(prep.truncated_bytes > 0);
        assert!(emitted.contains("7") && emitted.contains("12"));
        assert!(!emitted.contains("99"), "torn line must not count");
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.ends_with("-\n"), "file physically truncated");
        // Idempotent on a clean file.
        let (_, prep2) = prepare_output(&out).unwrap();
        assert_eq!(prep2.truncated_bytes, 0);
        assert_eq!(prep2.emitted, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prepare_output_missing_file_is_fresh_start() {
        let out = tmpdir("prep-missing").join("nope.tsv");
        let (emitted, prep) = prepare_output(&out).unwrap();
        assert!(emitted.is_empty());
        assert_eq!(prep, OutputPrep::default());
    }

    #[test]
    fn recover_requires_a_journal() {
        let err = match recover_state(&Durability::none(), HashSet::new()) {
            Err(e) => e,
            Ok(_) => panic!("recovery without a journal must fail"),
        };
        assert!(matches!(err, VqdError::Config(_)), "{err}");
    }

    #[test]
    fn inspect_is_read_only_on_missing_dirs() {
        let dir = tmpdir("inspect-none");
        let info = inspect_recovery(&dir, Some(&dir.join("snaps")), None).unwrap();
        assert_eq!(info.next_seq, 0);
        assert_eq!(info.replay, 0);
        assert!(!dir.exists(), "inspection must not create directories");
    }
}
