//! Versioned snapshots of full `StreamServer` state.
//!
//! A snapshot is a consistent cut of the daemon at a journal sequence
//! number: every in-flight session's reassembly buffer, every shard's
//! retired-session tombstones, and the event-time watermark. Recovery
//! loads the newest valid snapshot and replays the journal suffix past
//! its `seq`, so snapshot cadence trades replay time against snapshot
//! I/O — correctness never depends on it.
//!
//! The format is a line-oriented text file, versioned by its first
//! line and sealed by a trailing FNV-64 checksum:
//!
//! ```text
//! vqdsnap v1
//! seq <journal seq this snapshot covers>
//! max_ts <f64 bits as 16 hex digits, or ->
//! sessions <count>
//! s <expected|-> <newest_ts|-> <dups> <shed> <samples> <id as JSON>
//! m <seq> <f64 bits as 16 hex digits> <metric name as JSON>
//! ...
//! tombstones <count>
//! t <id as JSON>
//! ...
//! end <FNV-64 of every preceding byte, 16 hex digits>
//! ```
//!
//! Floats travel as raw bit patterns (`{:016x}` of `to_bits`), so
//! `-0.0`, NaN payloads and infinities round-trip bit-exactly — the
//! recovered daemon must reproduce offline diagnosis bit for bit, and
//! any decimal detour would quietly break that. Ids and metric names
//! are JSON strings (the wire format's own escaping) placed last on
//! their line so embedded spaces never confuse the field split.
//!
//! Writing is atomic: serialize to `<name>.tmp`, fsync, rename. A
//! crash mid-write leaves debris that never shadows a good snapshot,
//! and a torn rename target fails the checksum and is skipped by
//! [`find_newest_valid`] — recovery falls back to the previous
//! snapshot plus a longer replay, never to a half-read table.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use vqd_obs::json::Json;

use crate::error::VqdError;

/// Snapshot format version — the `v1` on the first line.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Filename for the snapshot covering journal seq `seq`.
pub fn snapshot_name(seq: u64) -> String {
    format!("snap-{seq:020}.vqds")
}

/// One in-flight session in portable (shard-independent) form: enough
/// to rebuild `SessionState` exactly, on any shard layout.
#[derive(Debug, Clone, PartialEq)]
pub struct PortableSession {
    /// Session id.
    pub id: String,
    /// Sample count promised by the `end` marker, once seen.
    pub expected: Option<u64>,
    /// Newest event timestamp seen.
    pub newest_ts: Option<f64>,
    /// Duplicate sample events dropped so far.
    pub duplicates: u64,
    /// Samples shed under overload so far.
    pub shed: u64,
    /// `(seq, metric, value)`, sorted by `seq`, no duplicate seqs.
    pub samples: Vec<(u64, String, f64)>,
}

/// A full daemon state cut at journal seq `seq`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamSnapshot {
    /// Journal seq this snapshot covers: every event with seq `< seq`
    /// is reflected in the state below; replay resumes here.
    pub seq: u64,
    /// Max event timestamp seen across shards (watermark clock).
    pub max_ts: Option<f64>,
    /// In-flight sessions, in eviction-recency order (least recently
    /// touched first) so restore can reassign ticks faithfully.
    pub sessions: Vec<PortableSession>,
    /// Retired-session tombstones, oldest first (FIFO order), shards
    /// concatenated.
    pub tombstones: Vec<String>,
}

/// FNV-1a 64-bit over raw bytes — the whole-file seal.
fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

fn hex_bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn opt_hex_bits(v: Option<f64>) -> String {
    v.map(hex_bits).unwrap_or_else(|| "-".to_string())
}

fn parse_hex_bits(tok: &str) -> Result<f64, String> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 bit pattern {tok:?}"))
}

fn parse_opt_hex_bits(tok: &str) -> Result<Option<f64>, String> {
    if tok == "-" {
        Ok(None)
    } else {
        parse_hex_bits(tok).map(Some)
    }
}

fn parse_u64(tok: &str, what: &str) -> Result<u64, String> {
    tok.parse::<u64>()
        .map_err(|_| format!("bad {what} {tok:?}"))
}

fn parse_opt_u64(tok: &str, what: &str) -> Result<Option<u64>, String> {
    if tok == "-" {
        Ok(None)
    } else {
        parse_u64(tok, what).map(Some)
    }
}

fn parse_json_str(tok: &str, what: &str) -> Result<String, String> {
    match Json::parse(tok) {
        Ok(Json::Str(s)) => Ok(s),
        Ok(_) => Err(format!("{what} is not a JSON string: {tok}")),
        Err(e) => Err(format!("bad {what}: {e}")),
    }
}

impl StreamSnapshot {
    /// Serialize to the `vqdsnap v1` text form, checksum included.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("vqdsnap v{SNAPSHOT_VERSION}\n"));
        out.push_str(&format!("seq {}\n", self.seq));
        out.push_str(&format!("max_ts {}\n", opt_hex_bits(self.max_ts)));
        out.push_str(&format!("sessions {}\n", self.sessions.len()));
        for s in &self.sessions {
            let expected = s
                .expected
                .map(|e| e.to_string())
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "s {expected} {} {} {} {} {}\n",
                opt_hex_bits(s.newest_ts),
                s.duplicates,
                s.shed,
                s.samples.len(),
                Json::str(&s.id),
            ));
            for (seq, metric, value) in &s.samples {
                out.push_str(&format!(
                    "m {seq} {} {}\n",
                    hex_bits(*value),
                    Json::str(metric)
                ));
            }
        }
        out.push_str(&format!("tombstones {}\n", self.tombstones.len()));
        for t in &self.tombstones {
            out.push_str(&format!("t {}\n", Json::str(t)));
        }
        let seal = fnv64(out.as_bytes());
        out.push_str(&format!("end {seal:016x}\n"));
        out
    }

    /// Parse the text form back. The error is `(1-based line, msg)`;
    /// callers wrap it with the file path.
    pub fn deserialize(text: &str) -> Result<StreamSnapshot, (usize, String)> {
        // Seal first: everything before the final "end " line must
        // hash to the hex on it. A torn or bit-flipped file dies here,
        // before any field is trusted.
        let body_end = text
            .rfind("\nend ")
            .map(|i| i + 1)
            .or_else(|| text.starts_with("end ").then_some(0))
            .ok_or((0, "missing end-checksum line".to_string()))?;
        let seal_line = text[body_end..]
            .strip_prefix("end ")
            .and_then(|s| s.strip_suffix('\n'))
            .ok_or((0, "malformed end-checksum line".to_string()))?;
        let want = u64::from_str_radix(seal_line.trim(), 16)
            .map_err(|_| (0, format!("bad end checksum {seal_line:?}")))?;
        let got = fnv64(&text.as_bytes()[..body_end]);
        if got != want {
            return Err((
                0,
                format!("checksum mismatch: file says {want:016x}, content hashes to {got:016x}"),
            ));
        }

        let mut lines = text[..body_end].lines().enumerate();
        let mut expect = |tag: &str| -> Result<(usize, String), (usize, String)> {
            match lines.next() {
                Some((i, line)) => {
                    let rest = line
                        .strip_prefix(tag)
                        .ok_or((i + 1, format!("expected {tag:?} line, got {line:?}")))?;
                    Ok((i + 1, rest.to_string()))
                }
                None => Err((0, format!("truncated: missing {tag:?} line"))),
            }
        };

        let (line_no, version) = expect("vqdsnap v")?;
        let v: u32 = version
            .trim()
            .parse()
            .map_err(|_| (line_no, format!("bad version {version:?}")))?;
        if v != SNAPSHOT_VERSION {
            return Err((
                line_no,
                format!(
                    "snapshot version {v} not supported (this build reads v{SNAPSHOT_VERSION})"
                ),
            ));
        }
        let (line_no, seq) = expect("seq ")?;
        let seq = parse_u64(seq.trim(), "seq").map_err(|m| (line_no, m))?;
        let (line_no, max_ts) = expect("max_ts ")?;
        let max_ts = parse_opt_hex_bits(max_ts.trim()).map_err(|m| (line_no, m))?;
        let (line_no, n_sessions) = expect("sessions ")?;
        let n_sessions =
            parse_u64(n_sessions.trim(), "session count").map_err(|m| (line_no, m))? as usize;

        let mut sessions = Vec::with_capacity(n_sessions.min(1 << 20));
        for _ in 0..n_sessions {
            let (line_no, rest) = expect("s ")?;
            let mut f = rest.splitn(6, ' ');
            let mut next = |what: &str| {
                f.next()
                    .ok_or((line_no, format!("session line missing {what}")))
            };
            let expected =
                parse_opt_u64(next("expected")?, "expected").map_err(|m| (line_no, m))?;
            let newest_ts = parse_opt_hex_bits(next("newest_ts")?).map_err(|m| (line_no, m))?;
            let duplicates =
                parse_u64(next("duplicates")?, "duplicates").map_err(|m| (line_no, m))?;
            let shed = parse_u64(next("shed")?, "shed").map_err(|m| (line_no, m))?;
            let n_samples =
                parse_u64(next("samples")?, "sample count").map_err(|m| (line_no, m))? as usize;
            let id = parse_json_str(next("id")?, "session id").map_err(|m| (line_no, m))?;
            let mut samples = Vec::with_capacity(n_samples.min(1 << 20));
            for _ in 0..n_samples {
                let (line_no, rest) = expect("m ")?;
                let mut f = rest.splitn(3, ' ');
                let mut next = |what: &str| {
                    f.next()
                        .ok_or((line_no, format!("sample line missing {what}")))
                };
                let sseq = parse_u64(next("seq")?, "seq").map_err(|m| (line_no, m))?;
                let value = parse_hex_bits(next("value")?).map_err(|m| (line_no, m))?;
                let metric = parse_json_str(next("metric")?, "metric").map_err(|m| (line_no, m))?;
                if let Some((prev, _, _)) = samples.last() {
                    if *prev >= sseq {
                        return Err((line_no, format!("sample seqs not increasing at {sseq}")));
                    }
                }
                samples.push((sseq, metric, value));
            }
            sessions.push(PortableSession {
                id,
                expected,
                newest_ts,
                duplicates,
                shed,
                samples,
            });
        }

        let (line_no, n_tomb) = expect("tombstones ")?;
        let n_tomb =
            parse_u64(n_tomb.trim(), "tombstone count").map_err(|m| (line_no, m))? as usize;
        let mut tombstones = Vec::with_capacity(n_tomb.min(1 << 20));
        for _ in 0..n_tomb {
            let (line_no, rest) = expect("t ")?;
            tombstones.push(parse_json_str(&rest, "tombstone id").map_err(|m| (line_no, m))?);
        }
        if let Some((i, line)) = lines.next() {
            return Err((i + 1, format!("trailing content {line:?}")));
        }
        Ok(StreamSnapshot {
            seq,
            max_ts,
            sessions,
            tombstones,
        })
    }

    /// Write atomically into `dir` as `snap-<seq>.vqds`: tmp file,
    /// fsync, rename. Creates the directory if missing.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, VqdError> {
        std::fs::create_dir_all(dir).map_err(|e| VqdError::io(dir, e))?;
        let path = dir.join(snapshot_name(self.seq));
        let tmp = dir.join(format!("{}.tmp", snapshot_name(self.seq)));
        let text = self.serialize();
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| VqdError::io(&tmp, e))?;
        f.write_all(text.as_bytes())
            .and_then(|()| f.sync_all())
            .map_err(|e| VqdError::io(&tmp, e))?;
        drop(f);
        std::fs::rename(&tmp, &path).map_err(|e| VqdError::io(&path, e))?;
        Ok(path)
    }

    /// Load and validate one snapshot file.
    pub fn load(path: &Path) -> Result<StreamSnapshot, VqdError> {
        let text = std::fs::read_to_string(path).map_err(|e| VqdError::io(path, e))?;
        StreamSnapshot::deserialize(&text)
            .map_err(|(line, msg)| VqdError::snapshot(path, line, msg))
    }
}

/// List a snapshot directory's files in ascending seq order. A
/// missing directory is an empty list, not an error.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, VqdError> {
    let mut snaps = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(snaps),
        Err(e) => return Err(VqdError::io(dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| VqdError::io(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("snap-")
            .and_then(|s| s.strip_suffix(".vqds"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            snaps.push((seq, entry.path()));
        }
    }
    snaps.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(snaps)
}

/// Newest snapshot that both validates and covers no more than
/// `max_seq` journal records. Invalid files (torn writes, stale
/// versions) are *skipped*, not fatal: recovery prefers an older good
/// snapshot plus a longer replay over refusing to start.
pub fn find_newest_valid(
    dir: &Path,
    max_seq: u64,
) -> Result<Option<(PathBuf, StreamSnapshot)>, VqdError> {
    for (seq, path) in list_snapshots(dir)?.into_iter().rev() {
        if seq > max_seq {
            continue;
        }
        match StreamSnapshot::load(&path) {
            Ok(snap) => return Ok(Some((path, snap))),
            Err(_) => {
                if vqd_obs::enabled() {
                    vqd_obs::recorder().counter_add("serve.snapshot.invalid", 1);
                }
            }
        }
    }
    Ok(None)
}

/// Delete all but the newest `keep` snapshots (and any `.tmp` debris)
/// and return the seq of the oldest survivor, which bounds how far
/// the journal may be pruned.
pub fn prune_snapshots(dir: &Path, keep: usize) -> Result<Option<u64>, VqdError> {
    let snaps = list_snapshots(dir)?;
    let cut = snaps.len().saturating_sub(keep.max(1));
    for (_, path) in &snaps[..cut] {
        std::fs::remove_file(path).map_err(|e| VqdError::io(path, e))?;
    }
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if entry.file_name().to_string_lossy().ends_with(".tmp") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
    Ok(snaps.get(cut).map(|(seq, _)| *seq))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> StreamSnapshot {
        StreamSnapshot {
            seq: 12345,
            max_ts: Some(-0.0),
            sessions: vec![
                PortableSession {
                    id: "plain".into(),
                    expected: Some(3),
                    newest_ts: Some(17.25),
                    duplicates: 2,
                    shed: 1,
                    samples: vec![
                        (0, "mobile.phy.rssi_avg".into(), -62.25),
                        (2, "mobile.hw.cpu avg sp".into(), f64::NAN),
                        (7, "x".into(), f64::NEG_INFINITY),
                    ],
                },
                PortableSession {
                    id: "id with spaces \"and quotes\"\n".into(),
                    expected: None,
                    newest_ts: None,
                    duplicates: 0,
                    shed: 0,
                    samples: vec![(1, "m".into(), 0.0)],
                },
            ],
            tombstones: vec!["gone".into(), "also gone ".into()],
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let snap = sample_snapshot();
        let text = snap.serialize();
        let back = StreamSnapshot::deserialize(&text).unwrap();
        assert_eq!(back.seq, snap.seq);
        assert_eq!(
            back.max_ts.map(f64::to_bits),
            snap.max_ts.map(f64::to_bits),
            "-0.0 must survive"
        );
        assert_eq!(back.tombstones, snap.tombstones);
        assert_eq!(back.sessions.len(), snap.sessions.len());
        for (a, b) in back.sessions.iter().zip(&snap.sessions) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.expected, b.expected);
            assert_eq!(a.duplicates, b.duplicates);
            assert_eq!(a.shed, b.shed);
            for ((sa, ma, va), (sb, mb, vb)) in a.samples.iter().zip(&b.samples) {
                assert_eq!(sa, sb);
                assert_eq!(ma, mb);
                assert_eq!(va.to_bits(), vb.to_bits(), "{ma}: {va} vs {vb}");
            }
        }
    }

    #[test]
    fn any_truncation_or_flip_is_rejected() {
        let text = sample_snapshot().serialize();
        for cut in 0..text.len() {
            assert!(
                StreamSnapshot::deserialize(&text[..cut]).is_err(),
                "cut at {cut} must not validate"
            );
        }
        let mut flipped = text.clone().into_bytes();
        flipped[text.len() / 2] ^= 0x01;
        if let Ok(s) = std::str::from_utf8(&flipped) {
            assert!(StreamSnapshot::deserialize(s).is_err(), "bit flip accepted");
        }
    }

    #[test]
    fn unsupported_version_is_a_typed_error() {
        let text = sample_snapshot().serialize();
        let bumped = text.replace("vqdsnap v1\n", "vqdsnap v9\n");
        // Re-seal so only the version check can fail.
        let body_end = bumped.rfind("\nend ").unwrap() + 1;
        let resealed = format!(
            "{}end {:016x}\n",
            &bumped[..body_end],
            fnv64(&bumped.as_bytes()[..body_end])
        );
        let err = StreamSnapshot::deserialize(&resealed).unwrap_err();
        assert!(err.1.contains("version 9"), "{err:?}");
    }

    #[test]
    fn save_load_prune_and_newest_valid() {
        let dir = std::env::temp_dir().join(format!("vqd-snap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for seq in [10u64, 20, 30] {
            let snap = StreamSnapshot {
                seq,
                ..StreamSnapshot::default()
            };
            snap.save(&dir).unwrap();
        }
        // Corrupt the newest: find_newest_valid must fall back to 20.
        let newest = dir.join(snapshot_name(30));
        std::fs::write(&newest, b"vqdsnap v1\ngarbage\n").unwrap();
        let (_, snap) = find_newest_valid(&dir, u64::MAX).unwrap().unwrap();
        assert_eq!(snap.seq, 20);
        // Cap at max_seq below 20: falls back to 10.
        let (_, snap) = find_newest_valid(&dir, 15).unwrap().unwrap();
        assert_eq!(snap.seq, 10);
        let oldest = prune_snapshots(&dir, 2).unwrap();
        assert_eq!(oldest, Some(20));
        assert_eq!(list_snapshots(&dir).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_lists_empty() {
        let dir = std::env::temp_dir().join("vqd-snap-none-such");
        assert!(list_snapshots(&dir).unwrap().is_empty());
        assert!(find_newest_valid(&dir, u64::MAX).unwrap().is_none());
    }
}
