//! The controlled testbed (Section 4 of the paper) and the single-
//! session runner.
//!
//! Topology (Figure 2): a content server wired to a router/AP through
//! the shaped WAN link (`tc`-style DSL or cellular profile, Table 3); a
//! phone and a second wireless station on the router's WLAN; a wired
//! LAN client for cross traffic. Every session streams one randomly
//! picked catalogue video through a real TCP flow while background
//! variations run, one fault plan is injected, and the three probes
//! (mobile / router / server) record their views.

use vqd_faults::{background_apps, FaultPlan, TestbedHandles};
use vqd_probes::{ProbeSet, SamplerApp, VpData};
use vqd_simnet::engine::{Harness, SimArena};
use vqd_simnet::host::{CpuModel, Host, MemoryModel};
use vqd_simnet::link::LinkConfig;
use vqd_simnet::rng::SimRng;
use vqd_simnet::time::SimTime;
use vqd_simnet::topology::TopologyBuilder;
use vqd_video::catalog::{Catalog, Video};
use vqd_video::mos;
use vqd_video::player::{Player, PlayerConfig};
use vqd_video::server::{SessionDirectory, VideoServer, VideoServerConfig};
use vqd_video::session::SessionQoe;
use vqd_wireless::{Wlan80211, WlanConfig};

use crate::scenario::GroundTruth;

/// WAN access profile (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WanProfile {
    /// 7.8 Mbit/s, 50±20 ms, 0.75±0.5 %.
    Dsl,
    /// 5.22 Mbit/s, 100±30 ms, 1.4±1 %.
    Mobile,
}

/// Specification of one controlled session.
#[derive(Debug, Clone, Copy)]
pub struct SessionSpec {
    /// Root seed — the session is a pure function of it and the other
    /// fields.
    pub seed: u64,
    /// Fault to inject.
    pub fault: FaultPlan,
    /// Background-variation level (0 = silent network, 1 = nominal).
    pub background: f64,
    /// WAN profile.
    pub wan: WanProfile,
}

/// Result of one session: application QoE, ground-truth label and the
/// raw metric vector of every probe that saw the flow.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Application-layer QoE (labelling only).
    pub qoe: SessionQoe,
    /// Ground truth.
    pub truth: GroundTruth,
    /// Concatenated `(name, value)` metrics from all probes.
    pub metrics: Vec<(String, f64)>,
    /// The video streamed.
    pub video: Video,
    /// Simulator events dispatched while running the session (for
    /// events-per-second throughput accounting).
    pub events: u64,
}

/// Hardware profile of the phone under test (Galaxy S II-class).
pub fn mobile_host_profile() -> Host {
    // Galaxy S II-class: dual core, 1 GiB RAM.
    Host {
        name: "mobile".into(),
        cpu: CpuModel::new(2.0),
        mem: MemoryModel::new(1024.0, 350.0),
        io_load: 0.0,
        fwd: Vec::new(),
    }
}

/// Hardware profile of a content server.
pub fn server_host_profile() -> Host {
    Host {
        name: "server".into(),
        cpu: CpuModel::new(8.0),
        mem: MemoryModel::new(8192.0, 1024.0),
        io_load: 0.0,
        fwd: Vec::new(),
    }
}

/// Per-session observability flush shared by the testbed and
/// real-world runners: probe sampling totals, QoE tallies, and — when
/// tracing — virtual-time session/stall spans on the sim clock.
/// Purely write-only, and called after the simulation is torn down, so
/// it cannot perturb RNG streams or event order.
pub(crate) fn flush_session_obs(qoe: &SessionQoe, vps: &[vqd_probes::VpHandle]) {
    if !vqd_obs::enabled() {
        return;
    }
    for vp in vps {
        vp.borrow().flush_obs();
    }
    let r = vqd_obs::recorder();
    r.counter_add("core.qoe.stalls", qoe.stalls.len() as u64);
    if qoe.completed {
        r.counter_add("core.qoe.completed", 1);
    }
    if qoe.failed {
        r.counter_add("core.qoe.failed", 1);
    }
    if vqd_obs::tracing_enabled() {
        let start = qoe.started_at.0;
        let end = qoe.ended_at.map(|t| t.0).unwrap_or(start);
        vqd_obs::virtual_span("session", "sim", start, end);
        if let Some(t) = qoe.playback_at {
            vqd_obs::virtual_span("startup", "sim", start, t.0);
        }
        for (at, dur) in &qoe.stalls {
            vqd_obs::virtual_span("stall", "sim", at.0, at.0 + dur.0);
        }
    }
}

/// Run one controlled session; deterministic in `spec` and
/// `catalog_seed`.
pub fn run_controlled_session(spec: &SessionSpec, catalog: &Catalog) -> SessionOutcome {
    run_controlled_session_with(spec, &[], catalog)
}

/// Run one controlled session reusing `arena`'s storage (corpus
/// workers recycle one arena across their hundreds of sessions).
/// Output is bit-identical to [`run_controlled_session`].
pub fn run_controlled_session_in(
    spec: &SessionSpec,
    catalog: &Catalog,
    arena: &mut SimArena,
) -> SessionOutcome {
    run_controlled_session_with_in(spec, &[], catalog, arena)
}

/// Run a controlled session with additional co-occurring faults on top
/// of `spec.fault` — the paper's future-work "multi-problem" scenario.
/// The ground-truth label still carries the primary fault.
pub fn run_controlled_session_with(
    spec: &SessionSpec,
    extra_faults: &[FaultPlan],
    catalog: &Catalog,
) -> SessionOutcome {
    run_controlled_session_with_in(spec, extra_faults, catalog, &mut SimArena::default())
}

fn run_controlled_session_with_in(
    spec: &SessionSpec,
    extra_faults: &[FaultPlan],
    catalog: &Catalog,
    arena: &mut SimArena,
) -> SessionOutcome {
    let mut rng = SimRng::seed_from_u64(spec.seed);
    let mut video = catalog.pick(&mut rng.split(1)).clone();
    // Cellular access gets the SD encode, as the real service serves.
    if spec.wan == WanProfile::Mobile {
        video = video.sd_variant();
    }

    // --- Topology -----------------------------------------------------
    let mut tb = TopologyBuilder::with_seed_in(rng.split(2).range_u64(0, u64::MAX - 1), arena);
    let mobile = tb.add_host_with(mobile_host_profile());
    let router = tb.add_host("router");
    let server = tb.add_host_with(server_host_profile());
    let wired_client = tb.add_host("wired-client");
    let wifi_client = tb.add_host("wifi-client");

    // Home Ethernet.
    let (_, router_lan) =
        tb.add_duplex_link(wired_client, router, LinkConfig::ethernet(100_000_000));
    // WAN (shaped per Table 3, per-session parameter draws).
    let mut link_rng = rng.split(3);
    let wan_cfg = match spec.wan {
        WanProfile::Dsl => LinkConfig::dsl(&mut link_rng),
        WanProfile::Mobile => LinkConfig::mobile(&mut link_rng),
    };
    let (wan_up, wan_down) = tb.add_duplex_link(router, server, wan_cfg);
    // WLAN.
    let mut wlan = Wlan80211::new(router, WlanConfig::default());
    wlan.add_station(mobile, rng.range_f64(2.5, 8.0));
    wlan.add_station(wifi_client, rng.range_f64(2.5, 6.0));
    let medium = tb.add_medium(Box::new(wlan));
    let (mobile_up, _) = tb.add_wireless(mobile, router, medium, 1460);
    tb.add_wireless(wifi_client, router, medium, 1460);

    let mut net = tb.build();

    // --- Fault injection ----------------------------------------------
    let handles = TestbedHandles {
        mobile,
        router,
        server,
        wired_client: Some(wired_client),
        wifi_client: Some(wifi_client),
        wan_up,
        wan_down,
        medium: Some(medium),
    };
    let mut fault_rng = rng.split(4);
    let mut floods = spec.fault.apply(&mut net, &handles, &mut fault_rng);
    for (i, extra) in extra_faults.iter().enumerate() {
        let mut r = rng.split(40 + i as u64);
        floods.extend(extra.apply(&mut net, &handles, &mut r));
    }

    // --- Probes ---------------------------------------------------------
    let vps = vec![
        VpData::new("mobile", mobile, &[80]),
        VpData::new("router", router, &[80]),
        VpData::new("server", server, &[80]),
    ];
    // Stable NIC role names: feature columns must mean the same
    // interface on every topology the model ever sees.
    VpData::label_nic(&vps[0], mobile_up, "net");
    VpData::label_nic(&vps[1], wan_up, "wan");
    VpData::label_nic(&vps[1], router_lan, "lan");
    VpData::label_nic(&vps[2], wan_down, "wan");
    let obs = ProbeSet::new(vps.clone());

    // --- Applications ----------------------------------------------------
    let mut sim = Harness::with_observer_in(net, obs, arena);
    let dir = SessionDirectory::new();
    let (player, handle) = Player::new(
        mobile,
        server,
        80,
        video.clone(),
        PlayerConfig::default(),
        dir.clone(),
    );
    sim.add_app(Box::new(player));
    sim.add_app(Box::new(VideoServer::new(
        server,
        VideoServerConfig::default(),
        dir,
    )));
    sim.add_app(Box::new(SamplerApp::new(vps.clone())));
    for f in floods {
        sim.add_app(Box::new(f));
    }
    for app in background_apps(
        wired_client,
        server,
        spec.background,
        rng.split(5).range_u64(0, u64::MAX - 1),
    ) {
        sim.add_app(app);
    }

    // --- Run --------------------------------------------------------------
    let cap = SimTime::from_secs_f(video.duration_s * 5.0 + 120.0);
    let mut t = SimTime::ZERO;
    while !handle.done() && t < cap {
        t = SimTime(t.0 + 1_000_000_000);
        sim.run_until(t);
    }

    // --- Extract ------------------------------------------------------------
    let events = sim.sched_stats().dispatched;
    sim.recycle_into(arena);
    let qoe = handle.qoe();
    let truth = GroundTruth {
        fault: spec.fault.kind,
        qoe: mos::label(&qoe),
    };
    let mut metrics = Vec::new();
    if let Some(flow) = handle.flow() {
        for vp in &vps {
            if let Some(m) = vp.borrow().metrics_for(flow) {
                metrics.extend(m);
            }
        }
    }
    flush_session_obs(&qoe, &vps);
    SessionOutcome {
        qoe,
        truth,
        metrics,
        video,
        events,
    }
}

trait FromSecsF {
    fn from_secs_f(s: f64) -> SimTime;
}
impl FromSecsF for SimTime {
    fn from_secs_f(s: f64) -> SimTime {
        SimTime((s * 1e9) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqd_faults::FaultKind;
    use vqd_video::QoeClass;

    fn catalog() -> Catalog {
        Catalog::top100(77)
    }

    fn run(kind: FaultKind, intensity: f64, seed: u64) -> SessionOutcome {
        let spec = SessionSpec {
            seed,
            fault: FaultPlan { kind, intensity },
            background: 0.5,
            wan: WanProfile::Dsl,
        };
        run_controlled_session(&spec, &catalog())
    }

    #[test]
    fn healthy_session_is_good_with_full_metrics() {
        let o = run(FaultKind::None, 0.0, 5);
        assert!(!o.qoe.failed, "{:?}", o.qoe);
        assert_eq!(o.truth.qoe, QoeClass::Good, "{:?}", o.qoe);
        // All three probes contributed.
        let vps: std::collections::HashSet<&str> = o
            .metrics
            .iter()
            .map(|(n, _)| n.split('.').next().unwrap())
            .collect();
        assert!(vps.contains("mobile") && vps.contains("router") && vps.contains("server"));
        // The mobile probe saw RSSI.
        assert!(o.metrics.iter().any(|(n, _)| n == "mobile.phy.rssi_avg"));
        // And the server did not.
        assert!(!o.metrics.iter().any(|(n, _)| n == "server.phy.rssi_avg"));
    }

    #[test]
    fn severe_wan_shaping_degrades_qoe() {
        let o = run(FaultKind::WanShaping, 0.95, 2);
        assert_ne!(o.truth.qoe, QoeClass::Good, "{:?}", o.qoe);
    }

    #[test]
    fn severe_mobile_load_causes_stutter() {
        let o = run(FaultKind::MobileLoad, 0.95, 3);
        assert!(
            o.qoe.frame_skip_s > 0.5 || o.truth.qoe != QoeClass::Good,
            "{:?}",
            o.qoe
        );
        // CPU metric at the mobile probe reflects the stress load.
        let cpu = o
            .metrics
            .iter()
            .find(|(n, _)| n == "mobile.hw.cpu_avg")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(cpu > 0.9, "cpu {cpu}");
    }

    #[test]
    fn severe_low_rssi_visible_in_phy_metrics() {
        let o = run(FaultKind::LowRssi, 0.9, 4);
        let rssi = o
            .metrics
            .iter()
            .find(|(n, _)| n == "mobile.phy.rssi_avg")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(rssi < -75.0, "rssi {rssi}");
    }

    #[test]
    fn determinism() {
        let a = run(FaultKind::WanCongestion, 0.7, 9);
        let b = run(FaultKind::WanCongestion, 0.7, 9);
        assert_eq!(a.truth.qoe, b.truth.qoe);
        assert_eq!(a.metrics.len(), b.metrics.len());
        for ((n1, v1), (n2, v2)) in a.metrics.iter().zip(&b.metrics) {
            assert_eq!(n1, n2);
            assert!(
                (v1 - v2).abs() < 1e-12 || (v1.is_nan() && v2.is_nan()),
                "{n1}: {v1} vs {v2}"
            );
        }
    }
}
