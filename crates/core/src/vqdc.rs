//! `.vqdc` — the binary columnar corpus format (DESIGN.md §7h).
//!
//! The text corpus (`corpus_to_text`) is the debug/interchange path:
//! one session per line, every float printed and re-parsed. That
//! costs a float parse per value and forces whole-file residency. The
//! `.vqdc` format stores the same corpus feature-major so training can
//! stream one column (or a chunk of one) at a time:
//!
//! ```text
//! offset 0   magic  "VQDCORP1"                                  8 B
//! META       u64 payload_len | u32 checksum32 | payload
//!            payload: u32 version(=1) | u64 n_rows | u32 n_cols
//!                     | u32 n_shapes
//!                     | n_cols  × (u32 len | name UTF-8)
//!                     | n_shapes × (u32 len | len × u32 col id)
//! LABELS     u64 payload_len | u32 checksum32 | payload
//!            payload: n_rows × (u8 fault | u8 qoe | u32 shape)   6 B/row
//! COLUMNS    n_cols × (u32 checksum32 | n_rows × f64 bits LE)
//! ```
//!
//! Everything little-endian; checksums are `probes::journal`'s
//! [`checksum32`] over each section payload, and the magic/section
//! conventions mirror the journal's segment format. Column cells are
//! fixed-width f64 bit patterns, so a column (or any row range of one)
//! is a single `pread` at a computable offset — mmap-friendly, no
//! parsing. A *shape* is an interned sequence of column ids recording
//! which metrics a session emitted and in which order; absent cells
//! hold a canonical-NaN filler that is never read (the shape says
//! which cells exist), so a metric whose *value* is NaN survives a
//! round trip distinct from a metric that was never emitted, and
//! `text → binary → text` is byte-identical.
//!
//! Failure handling is typed end to end: bad magic, truncation,
//! checksum mismatches and malformed sections all surface as
//! [`VqdError::BinCorpus`] naming the damaged section — never a panic
//! (proptest-enforced).

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read};
use std::path::{Path, PathBuf};

use vqd_faults::FaultKind;
use vqd_probes::journal::{checksum32, Checksum32};
use vqd_video::QoeClass;

use crate::dataset::LabeledRun;
use crate::error::VqdError;
use crate::scenario::{class_id, GroundTruth, LabelScheme};

/// `.vqdc` file magic, byte-for-byte at offset 0.
pub const VQDC_MAGIC: &[u8; 8] = b"VQDCORP1";

const VERSION: u32 = 1;
const LABEL_BYTES: u64 = 6;
const CELL_BYTES: u64 = 8;
const COL_HEADER_BYTES: u64 = 4;

fn fault_code(f: FaultKind) -> u8 {
    if f == FaultKind::None {
        0
    } else {
        match FaultKind::ALL.iter().position(|&k| k == f) {
            Some(i) => (i + 1) as u8,
            None => 0,
        }
    }
}

fn fault_of(code: u8) -> Option<FaultKind> {
    match code {
        0 => Some(FaultKind::None),
        c => FaultKind::ALL.get(c as usize - 1).copied(),
    }
}

fn qoe_code(q: QoeClass) -> u8 {
    match q {
        QoeClass::Good => 0,
        QoeClass::Mild => 1,
        QoeClass::Severe => 2,
    }
}

fn qoe_of(code: u8) -> Option<QoeClass> {
    match code {
        0 => Some(QoeClass::Good),
        1 => Some(QoeClass::Mild),
        2 => Some(QoeClass::Severe),
        _ => None,
    }
}

/// Pass-1 state of a `.vqdc` encode: interned names (first-seen
/// order — the `DatasetBuilder` schema order), interned shapes, and
/// the per-row label/shape records. `O(n_rows)` memory (the same
/// resident state [`VqdcReader`] keeps) but never the cell values, so
/// a streaming writer can scan a corpus far larger than RAM. Feed
/// every session through [`VqdcSchema::scan`], then either serialise
/// in memory ([`corpus_to_vqdc_bytes`]) or hand the schema to
/// [`VqdcWriter`] for a second, chunked value pass.
#[derive(Default)]
pub struct VqdcSchema {
    col_of: HashMap<String, u32>,
    names: Vec<String>,
    shape_of: HashMap<Vec<u32>, u32>,
    shapes: Vec<Vec<u32>>,
    row_shape: Vec<u32>,
    labels: Vec<u8>,
    seen: Vec<u32>,
}

impl VqdcSchema {
    /// Fresh, empty schema.
    pub fn new() -> VqdcSchema {
        VqdcSchema::default()
    }

    /// Sessions scanned so far.
    pub fn n_rows(&self) -> usize {
        self.row_shape.len()
    }

    /// Distinct metric names seen so far.
    pub fn n_cols(&self) -> usize {
        self.names.len()
    }

    /// Intern one chunk of sessions (call repeatedly, in corpus
    /// order). Errors — as a line-addressed corpus error — if a
    /// session emits the same metric name twice: a columnar file has
    /// one cell per (row, column), so duplicates cannot be
    /// represented; the simulator never produces them.
    pub fn scan(&mut self, runs: &[LabeledRun]) -> Result<(), VqdError> {
        for r in runs {
            let i = self.row_shape.len();
            if i + 1 >= u32::MAX as usize {
                return Err(VqdError::corpus(0, "corpus exceeds u32 row range"));
            }
            let mut shape: Vec<u32> = Vec::with_capacity(r.metrics.len());
            for (n, _) in &r.metrics {
                let c = match self.col_of.get(n.as_str()) {
                    Some(&c) => c,
                    None => {
                        let c = self.names.len() as u32;
                        self.col_of.insert(n.clone(), c);
                        self.names.push(n.clone());
                        c
                    }
                };
                shape.push(c);
            }
            self.seen.resize(self.names.len(), u32::MAX);
            for &c in &shape {
                if self.seen[c as usize] == i as u32 {
                    return Err(VqdError::corpus(
                        i + 1,
                        format!(
                            "duplicate metric {:?} in one session (unrepresentable in columnar form)",
                            self.names[c as usize]
                        ),
                    ));
                }
                self.seen[c as usize] = i as u32;
            }
            let sid = *self.shape_of.entry(shape.clone()).or_insert_with(|| {
                self.shapes.push(shape);
                (self.shapes.len() - 1) as u32
            });
            self.row_shape.push(sid);
            self.labels.push(fault_code(r.truth.fault));
            self.labels.push(qoe_code(r.truth.qoe));
            self.labels.extend_from_slice(&sid.to_le_bytes());
        }
        Ok(())
    }

    /// Serialise magic + META + LABELS — everything before the column
    /// region — exactly as the file stores them.
    fn header_bytes(&self) -> Vec<u8> {
        let mut meta = Vec::new();
        meta.extend_from_slice(&VERSION.to_le_bytes());
        meta.extend_from_slice(&(self.n_rows() as u64).to_le_bytes());
        meta.extend_from_slice(&(self.names.len() as u32).to_le_bytes());
        meta.extend_from_slice(&(self.shapes.len() as u32).to_le_bytes());
        for n in &self.names {
            meta.extend_from_slice(&(n.len() as u32).to_le_bytes());
            meta.extend_from_slice(n.as_bytes());
        }
        for s in &self.shapes {
            meta.extend_from_slice(&(s.len() as u32).to_le_bytes());
            for &c in s {
                meta.extend_from_slice(&c.to_le_bytes());
            }
        }
        let mut out = Vec::new();
        out.extend_from_slice(VQDC_MAGIC);
        for section in [&meta, &self.labels] {
            out.extend_from_slice(&(section.len() as u64).to_le_bytes());
            out.extend_from_slice(&checksum32(section).to_le_bytes());
            out.extend_from_slice(section);
        }
        out
    }
}

/// Encode a corpus into `.vqdc` bytes (whole corpus resident — the
/// convenience path; [`VqdcWriter`] is the bounded-memory one).
pub fn corpus_to_vqdc_bytes(runs: &[LabeledRun]) -> Result<Vec<u8>, VqdError> {
    let mut schema = VqdcSchema::new();
    schema.scan(runs)?;
    let n_rows = runs.len();

    // Pass 2: fill the column matrix (absent = canonical-NaN filler).
    let filler = f64::NAN.to_bits();
    let mut cols: Vec<Vec<u64>> = vec![vec![filler; n_rows]; schema.n_cols()];
    for (i, r) in runs.iter().enumerate() {
        for (n, v) in &r.metrics {
            let c = schema.col_of[n.as_str()] as usize;
            cols[c][i] = v.to_bits();
        }
    }

    let mut out = schema.header_bytes();
    let mut colbuf = Vec::with_capacity(n_rows * CELL_BYTES as usize);
    for col in &cols {
        colbuf.clear();
        for &bits in col {
            colbuf.extend_from_slice(&bits.to_le_bytes());
        }
        out.extend_from_slice(&checksum32(&colbuf).to_le_bytes());
        out.extend_from_slice(&colbuf);
    }
    Ok(out)
}

/// Positioned write mirroring [`VqdcReader`]'s `read_at`.
fn write_at(file: &File, path: &Path, buf: &[u8], off: u64) -> Result<(), VqdError> {
    #[cfg(unix)]
    let res = {
        use std::os::unix::fs::FileExt;
        file.write_all_at(buf, off)
    };
    #[cfg(not(unix))]
    let res = (|| {
        use std::io::{Seek, Write};
        let mut f = File::options().write(true).open(path)?;
        f.seek(io::SeekFrom::Start(off))?;
        f.write_all(buf)
    })();
    res.map_err(|e| VqdError::io(path, e))
}

/// Streaming `.vqdc` writer: bounded memory no matter the corpus
/// size. Two passes over the source — first [`VqdcSchema::scan`]
/// every session, then replay the same sessions through
/// [`VqdcWriter::write_rows`], which transposes each chunk into
/// per-column slabs written at their final offsets while column
/// checksums accumulate incrementally ([`Checksum32`]). Peak memory
/// is `O(chunk × n_cols)` cells plus the schema — never the corpus.
/// The bytes produced are identical to [`corpus_to_vqdc_bytes`] over
/// the same sessions (test-enforced).
pub struct VqdcWriter {
    file: File,
    path: PathBuf,
    schema: VqdcSchema,
    columns_start: u64,
    sums: Vec<Option<Checksum32>>,
    at: usize,
}

impl VqdcWriter {
    /// Create `path` and write the header for a corpus whose schema
    /// pass already ran. The column region is sized up front; every
    /// byte of it is overwritten by `write_rows` + `finish`.
    pub fn create(path: impl AsRef<Path>, schema: VqdcSchema) -> Result<VqdcWriter, VqdError> {
        let path = path.as_ref().to_path_buf();
        let header = schema.header_bytes();
        let n_rows = schema.n_rows() as u64;
        let file = File::create(&path).map_err(|e| VqdError::io(&path, e))?;
        write_at(&file, &path, &header, 0)?;
        let columns_start = header.len() as u64;
        let total =
            columns_start + schema.n_cols() as u64 * (COL_HEADER_BYTES + n_rows * CELL_BYTES);
        file.set_len(total).map_err(|e| VqdError::io(&path, e))?;
        let sums = (0..schema.n_cols())
            .map(|_| Some(Checksum32::new(n_rows * CELL_BYTES)))
            .collect();
        Ok(VqdcWriter {
            file,
            path,
            schema,
            columns_start,
            sums,
            at: 0,
        })
    }

    fn col_offset(&self, j: usize) -> u64 {
        self.columns_start
            + j as u64 * (COL_HEADER_BYTES + self.schema.n_rows() as u64 * CELL_BYTES)
    }

    /// Write the next chunk of sessions (same sessions, same order as
    /// the schema scan — verified per row via the interned shape, so
    /// a source that changed between the passes is a typed error, not
    /// a corrupt file).
    pub fn write_rows(&mut self, runs: &[LabeledRun]) -> Result<(), VqdError> {
        if runs.is_empty() {
            return Ok(());
        }
        let start = self.at;
        if start + runs.len() > self.schema.n_rows() {
            return Err(VqdError::corpus(
                start + runs.len(),
                "corpus grew between schema scan and write passes",
            ));
        }
        let count = runs.len();
        let filler = f64::NAN.to_bits().to_le_bytes();
        let mut slabs: Vec<Vec<u8>> = (0..self.schema.n_cols())
            .map(|_| filler.repeat(count))
            .collect();
        let mut shape: Vec<u32> = Vec::new();
        for (i, r) in runs.iter().enumerate() {
            let row = start + i;
            shape.clear();
            for (n, v) in &r.metrics {
                let Some(&c) = self.schema.col_of.get(n.as_str()) else {
                    return Err(VqdError::corpus(
                        row + 1,
                        format!("metric {n:?} appeared between schema scan and write passes"),
                    ));
                };
                shape.push(c);
                let cell = i * CELL_BYTES as usize;
                slabs[c as usize][cell..cell + CELL_BYTES as usize]
                    .copy_from_slice(&v.to_bits().to_le_bytes());
            }
            let sid = self.schema.row_shape[row] as usize;
            if self.schema.shapes[sid] != shape {
                return Err(VqdError::corpus(
                    row + 1,
                    "session shape changed between schema scan and write passes",
                ));
            }
        }
        for (j, slab) in slabs.iter().enumerate() {
            write_at(
                &self.file,
                &self.path,
                slab,
                self.col_offset(j) + COL_HEADER_BYTES + start as u64 * CELL_BYTES,
            )?;
            if let Some(sum) = self.sums[j].as_mut() {
                sum.update(slab);
            }
        }
        self.at += count;
        Ok(())
    }

    /// Patch in the column checksums and flush. Errors if fewer rows
    /// were written than the schema scan promised. Returns the number
    /// of sessions written.
    pub fn finish(mut self) -> Result<usize, VqdError> {
        let n_rows = self.schema.n_rows();
        if self.at != n_rows {
            return Err(VqdError::corpus(
                self.at,
                format!(
                    "corpus shrank between passes: wrote {} of {n_rows} rows",
                    self.at
                ),
            ));
        }
        for j in 0..self.schema.n_cols() {
            let sum = self.sums[j]
                .take()
                .unwrap_or_else(|| unreachable!("checksum consumed once"))
                .finish();
            write_at(
                &self.file,
                &self.path,
                &sum.to_le_bytes(),
                self.col_offset(j),
            )?;
        }
        self.file
            .sync_data()
            .map_err(|e| VqdError::io(&self.path, e))?;
        Ok(n_rows)
    }
}

/// Encode and write a corpus to `path`.
pub fn write_vqdc(runs: &[LabeledRun], path: impl AsRef<Path>) -> Result<(), VqdError> {
    let path = path.as_ref();
    let bytes = corpus_to_vqdc_bytes(runs)?;
    std::fs::write(path, bytes).map_err(|e| VqdError::io(path, e))
}

/// Does `path` start with the `.vqdc` magic? (`false` on any read
/// failure — callers fall back to the text parser's error reporting.)
pub fn sniff_vqdc(path: impl AsRef<Path>) -> bool {
    let mut magic = [0u8; 8];
    match File::open(path.as_ref()).and_then(|mut f| f.read_exact(&mut magic)) {
        Ok(()) => &magic == VQDC_MAGIC,
        Err(_) => false,
    }
}

/// `read_exact` with typed errors: truncation (unexpected EOF) becomes
/// a [`VqdError::BinCorpus`] naming the section, any other I/O failure
/// a [`VqdError::Io`].
fn read_exact_or(
    file: &mut File,
    buf: &mut [u8],
    path: &Path,
    section: &str,
) -> Result<(), VqdError> {
    file.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            VqdError::bin_corpus(
                path,
                format!("{section} section truncated (unexpected EOF)"),
            )
        } else {
            VqdError::io(path, e)
        }
    })
}

/// Bounds-checked little-endian cursor over a section payload.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| format!("{} section truncated", self.section))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, String> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
    fn u64(&mut self) -> Result<u64, String> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }
}

/// Random-access reader over a `.vqdc` file. The header (names,
/// shapes, labels) is resident — `O(n_rows)` for the labels — while
/// column cells stay on disk until asked for.
pub struct VqdcReader {
    file: File,
    path: PathBuf,
    n_rows: usize,
    names: Vec<String>,
    shapes: Vec<Vec<u32>>,
    truths: Vec<GroundTruth>,
    row_shape: Vec<u32>,
    columns_start: u64,
}

impl VqdcReader {
    /// Open and validate `path`: magic, META/LABELS checksums, section
    /// shapes, id ranges, and the exact expected file length. Typed
    /// errors on every failure mode; never panics.
    pub fn open(path: impl AsRef<Path>) -> Result<VqdcReader, VqdError> {
        let path = path.as_ref().to_path_buf();
        let fail = |msg: String| VqdError::bin_corpus(&path, msg);
        let mut file = File::open(&path).map_err(|e| VqdError::io(&path, e))?;
        let file_len = file.metadata().map_err(|e| VqdError::io(&path, e))?.len();

        let mut magic = [0u8; 8];
        read_exact_or(&mut file, &mut magic, &path, "magic")?;
        if &magic != VQDC_MAGIC {
            return Err(fail("not a .vqdc file (bad magic)".into()));
        }
        let mut offset = 8u64;
        let read_section = |file: &mut File,
                            offset: &mut u64,
                            section: &'static str|
         -> Result<Vec<u8>, VqdError> {
            let mut hdr = [0u8; 12];
            read_exact_or(file, &mut hdr, &path, section)?;
            let len = u64::from_le_bytes([
                hdr[0], hdr[1], hdr[2], hdr[3], hdr[4], hdr[5], hdr[6], hdr[7],
            ]);
            let want_sum = u32::from_le_bytes([hdr[8], hdr[9], hdr[10], hdr[11]]);
            if len > file_len.saturating_sub(*offset + 12) {
                return Err(VqdError::bin_corpus(
                    &path,
                    format!("{section} section truncated (length {len} past end of file)"),
                ));
            }
            let mut payload = vec![0u8; len as usize];
            read_exact_or(file, &mut payload, &path, section)?;
            if checksum32(&payload) != want_sum {
                return Err(VqdError::bin_corpus(
                    &path,
                    format!("{section} checksum mismatch (corrupt section)"),
                ));
            }
            *offset += 12 + len;
            Ok(payload)
        };

        let meta = read_section(&mut file, &mut offset, "META")?;
        let mut c = Cur {
            b: &meta,
            pos: 0,
            section: "META",
        };
        let parsed = (|| -> Result<_, String> {
            let version = c.u32()?;
            if version != VERSION {
                return Err(format!(
                    "unsupported version {version} (expected {VERSION})"
                ));
            }
            let n_rows = c.u64()?;
            if n_rows >= u32::MAX as u64 {
                return Err(format!("row count {n_rows} exceeds u32 range"));
            }
            let n_cols = c.u32()? as usize;
            let n_shapes = c.u32()? as usize;
            let mut names = Vec::with_capacity(n_cols.min(1 << 20));
            for _ in 0..n_cols {
                let len = c.u32()? as usize;
                let bytes = c.take(len)?;
                names.push(
                    std::str::from_utf8(bytes)
                        .map_err(|_| "META feature name is not UTF-8".to_string())?
                        .to_string(),
                );
            }
            let mut shapes = Vec::with_capacity(n_shapes.min(1 << 20));
            for _ in 0..n_shapes {
                let len = c.u32()? as usize;
                let mut shape = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    let col = c.u32()?;
                    if col as usize >= n_cols {
                        return Err(format!("META shape references column {col} of {n_cols}"));
                    }
                    shape.push(col);
                }
                shapes.push(shape);
            }
            if c.pos != meta.len() {
                return Err("META section has trailing bytes".into());
            }
            Ok((n_rows as usize, names, shapes))
        })()
        .map_err(&fail)?;
        let (n_rows, names, shapes) = parsed;

        let labels = read_section(&mut file, &mut offset, "LABELS")?;
        if labels.len() as u64 != n_rows as u64 * LABEL_BYTES {
            return Err(fail(format!(
                "LABELS section is {} bytes, expected {} for {n_rows} rows",
                labels.len(),
                n_rows as u64 * LABEL_BYTES
            )));
        }
        let mut truths = Vec::with_capacity(n_rows);
        let mut row_shape = Vec::with_capacity(n_rows);
        for (i, rec) in labels.chunks_exact(LABEL_BYTES as usize).enumerate() {
            let fault = fault_of(rec[0])
                .ok_or_else(|| fail(format!("row {i}: unknown fault code {}", rec[0])))?;
            let qoe = qoe_of(rec[1])
                .ok_or_else(|| fail(format!("row {i}: unknown QoE code {}", rec[1])))?;
            let sid = u32::from_le_bytes([rec[2], rec[3], rec[4], rec[5]]);
            if sid as usize >= shapes.len() {
                return Err(fail(format!("row {i}: shape id {sid} of {}", shapes.len())));
            }
            truths.push(GroundTruth { fault, qoe });
            row_shape.push(sid);
        }

        let columns_start = offset;
        // Checked arithmetic: header-controlled n_cols/n_rows must not
        // wrap the expected length into agreement with a crafted file.
        let expect = (n_rows as u64)
            .checked_mul(CELL_BYTES)
            .and_then(|b| b.checked_add(COL_HEADER_BYTES))
            .and_then(|col| col.checked_mul(names.len() as u64))
            .and_then(|cols| cols.checked_add(columns_start))
            .ok_or_else(|| {
                fail(format!(
                    "META geometry overflows ({} columns × {n_rows} rows)",
                    names.len()
                ))
            })?;
        if file_len != expect {
            return Err(fail(format!(
                "file is {file_len} bytes, expected {expect} ({} columns × {n_rows} rows)",
                names.len()
            )));
        }
        Ok(VqdcReader {
            file,
            path,
            n_rows,
            names,
            shapes,
            truths,
            row_shape,
            columns_start,
        })
    }

    /// Number of sessions.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The file this reader is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Feature (column) names, in column order — the first-seen metric
    /// order, identical to the `DatasetBuilder` schema over the same
    /// corpus.
    pub fn feature_names(&self) -> &[String] {
        &self.names
    }

    /// Ground truth per row.
    pub fn truths(&self) -> &[GroundTruth] {
        &self.truths
    }

    /// Per-row class ids under a label scheme (the training `y`).
    pub fn class_ids(&self, scheme: LabelScheme) -> Vec<usize> {
        self.truths.iter().map(|t| class_id(t, scheme)).collect()
    }

    fn col_offset(&self, j: usize) -> u64 {
        self.columns_start + j as u64 * (COL_HEADER_BYTES + self.n_rows as u64 * CELL_BYTES)
    }

    fn read_at(&self, buf: &mut [u8], off: u64) -> io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, off)
        }
        #[cfg(not(unix))]
        {
            use std::io::Seek;
            let mut f = File::open(&self.path)?;
            f.seek(io::SeekFrom::Start(off))?;
            f.read_exact(buf)
        }
    }

    /// Copy rows `start..start + out.len()` of column `j` into `out`
    /// (raw cell values; absent cells read as the NaN filler). No
    /// checksum pass — the open-time length check catches truncation;
    /// use [`VqdcReader::verify`] for full integrity.
    pub fn fill_column(&self, j: usize, start: usize, out: &mut [f64]) -> io::Result<()> {
        if j >= self.names.len() || start + out.len() > self.n_rows {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "column range out of bounds",
            ));
        }
        let mut raw = vec![0u8; out.len() * CELL_BYTES as usize];
        self.read_at(
            &mut raw,
            self.col_offset(j) + COL_HEADER_BYTES + start as u64 * CELL_BYTES,
        )?;
        for (o, cell) in out.iter_mut().zip(raw.chunks_exact(CELL_BYTES as usize)) {
            *o = f64::from_bits(u64::from_le_bytes([
                cell[0], cell[1], cell[2], cell[3], cell[4], cell[5], cell[6], cell[7],
            ]));
        }
        Ok(())
    }

    /// Read one full column, verifying its checksum.
    pub fn column(&self, j: usize) -> Result<Vec<f64>, VqdError> {
        if j >= self.names.len() {
            return Err(VqdError::bin_corpus(
                &self.path,
                format!("column {j} of {}", self.names.len()),
            ));
        }
        let mut raw = vec![0u8; (COL_HEADER_BYTES + self.n_rows as u64 * CELL_BYTES) as usize];
        self.read_at(&mut raw, self.col_offset(j))
            .map_err(|e| VqdError::io(&self.path, e))?;
        let want = u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]);
        let payload = &raw[COL_HEADER_BYTES as usize..];
        if checksum32(payload) != want {
            return Err(VqdError::bin_corpus(
                &self.path,
                format!("column {j} ({:?}) checksum mismatch", self.names[j]),
            ));
        }
        Ok(payload
            .chunks_exact(CELL_BYTES as usize)
            .map(|c| {
                f64::from_bits(u64::from_le_bytes([
                    c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
                ]))
            })
            .collect())
    }

    /// Verify every column checksum.
    pub fn verify(&self) -> Result<(), VqdError> {
        for j in 0..self.names.len() {
            self.column(j)?;
        }
        Ok(())
    }

    /// Reconstruct rows `start..start + count` as [`LabeledRun`]s —
    /// the blocked transpose the streaming corpus reader uses. Each
    /// session's metric list comes back in its original emission order
    /// with original value bits.
    pub fn read_rows(&self, start: usize, count: usize) -> Result<Vec<LabeledRun>, VqdError> {
        let count = count.min(self.n_rows.saturating_sub(start));
        if count == 0 {
            return Ok(Vec::new());
        }
        let n_cols = self.names.len();
        let mut block: Vec<Vec<f64>> = Vec::with_capacity(n_cols);
        for j in 0..n_cols {
            let mut col = vec![0.0f64; count];
            self.fill_column(j, start, &mut col)
                .map_err(|e| VqdError::io(&self.path, e))?;
            block.push(col);
        }
        let mut out = Vec::with_capacity(count);
        for (i, &shape_id) in self.row_shape[start..start + count].iter().enumerate() {
            let shape = &self.shapes[shape_id as usize];
            let metrics: Vec<(String, f64)> = shape
                .iter()
                .map(|&c| (self.names[c as usize].clone(), block[c as usize][i]))
                .collect();
            out.push(LabeledRun {
                metrics,
                truth: self.truths[start + i],
            });
        }
        Ok(out)
    }

    /// Reconstruct the whole corpus, checksum-verified. The column
    /// region is fetched in **one** read and verified in place, then
    /// rows are transposed straight out of that buffer — not a
    /// `verify()` sweep followed by a second per-column read pass.
    pub fn to_runs(&self) -> Result<Vec<LabeledRun>, VqdError> {
        let n_cols = self.names.len();
        let stride = (COL_HEADER_BYTES + self.n_rows as u64 * CELL_BYTES) as usize;
        let mut raw = vec![0u8; n_cols * stride];
        self.read_at(&mut raw, self.columns_start)
            .map_err(|e| VqdError::io(&self.path, e))?;
        for j in 0..n_cols {
            let col = &raw[j * stride..(j + 1) * stride];
            let want = u32::from_le_bytes([col[0], col[1], col[2], col[3]]);
            if checksum32(&col[COL_HEADER_BYTES as usize..]) != want {
                return Err(VqdError::bin_corpus(
                    &self.path,
                    format!("column {j} ({:?}) checksum mismatch", self.names[j]),
                ));
            }
        }
        let cell = |c: usize, i: usize| {
            let off = c * stride + COL_HEADER_BYTES as usize + i * CELL_BYTES as usize;
            let b = &raw[off..off + CELL_BYTES as usize];
            f64::from_bits(u64::from_le_bytes([
                b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
            ]))
        };
        let mut out = Vec::with_capacity(self.n_rows);
        for i in 0..self.n_rows {
            let shape = &self.shapes[self.row_shape[i] as usize];
            let metrics: Vec<(String, f64)> = shape
                .iter()
                .map(|&c| (self.names[c as usize].clone(), cell(c as usize, i)))
                .collect();
            out.push(LabeledRun {
                metrics,
                truth: self.truths[i],
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_runs() -> Vec<LabeledRun> {
        vec![
            LabeledRun {
                metrics: vec![
                    ("mobile.phy.rssi_avg".into(), -62.25),
                    ("mobile.hw.cpu_avg".into(), f64::NAN),
                    ("mobile.tcp.rtt".into(), -0.0),
                ],
                truth: GroundTruth {
                    fault: FaultKind::LowRssi,
                    qoe: QoeClass::Severe,
                },
            },
            LabeledRun {
                // Different shape: a subset, in a different order.
                metrics: vec![
                    ("mobile.tcp.rtt".into(), 0.125),
                    ("server.tcp.iat".into(), 1e-300),
                ],
                truth: GroundTruth {
                    fault: FaultKind::None,
                    qoe: QoeClass::Good,
                },
            },
            LabeledRun {
                metrics: vec![],
                truth: GroundTruth {
                    fault: FaultKind::None,
                    qoe: QoeClass::Mild,
                },
            },
        ]
    }

    fn open_bytes(bytes: &[u8]) -> Result<VqdcReader, VqdError> {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "vqdc-test-{}-{:p}.vqdc",
            std::process::id(),
            bytes.as_ptr()
        ));
        std::fs::write(&path, bytes).unwrap();
        let r = VqdcReader::open(&path);
        std::fs::remove_file(&path).ok();
        r
    }

    #[test]
    fn round_trips_shapes_labels_and_value_bits() {
        let runs = sample_runs();
        let bytes = corpus_to_vqdc_bytes(&runs).unwrap();
        let reader = open_bytes(&bytes).unwrap();
        assert_eq!(reader.n_rows(), 3);
        let back = reader.to_runs().unwrap();
        assert_eq!(back.len(), runs.len());
        for (a, b) in runs.iter().zip(&back) {
            assert_eq!(a.truth.fault, b.truth.fault);
            assert_eq!(a.truth.qoe, b.truth.qoe);
            assert_eq!(a.metrics.len(), b.metrics.len());
            for ((na, va), (nb, vb)) in a.metrics.iter().zip(&b.metrics) {
                assert_eq!(na, nb);
                assert_eq!(va.to_bits(), vb.to_bits(), "{na}");
            }
        }
        // Text round trip through the binary format is byte-identical.
        let text = crate::dataset::corpus_to_text(&runs);
        assert_eq!(crate::dataset::corpus_to_text(&back), text);
    }

    #[test]
    fn streaming_writer_is_byte_identical_to_batch_encoder() {
        let runs = sample_runs();
        let want = corpus_to_vqdc_bytes(&runs).unwrap();
        for chunk in [1usize, 2, 3, 7] {
            let mut schema = VqdcSchema::new();
            for c in runs.chunks(chunk) {
                schema.scan(c).unwrap();
            }
            let path = std::env::temp_dir()
                .join(format!("vqdc-stream-{}-{chunk}.vqdc", std::process::id()));
            let mut w = VqdcWriter::create(&path, schema).unwrap();
            for c in runs.chunks(chunk) {
                w.write_rows(c).unwrap();
            }
            assert_eq!(w.finish().unwrap(), runs.len());
            let got = std::fs::read(&path).unwrap();
            std::fs::remove_file(&path).ok();
            assert_eq!(got, want, "chunk={chunk}");
        }
    }

    #[test]
    fn streaming_writer_rejects_source_changed_between_passes() {
        let runs = sample_runs();
        let mut schema = VqdcSchema::new();
        schema.scan(&runs).unwrap();
        let path =
            std::env::temp_dir().join(format!("vqdc-stream-race-{}.vqdc", std::process::id()));
        // Pass 2 sees a different second session: typed error, no file
        // silently encoding the wrong values.
        let mut changed = runs.clone();
        changed[1].metrics.push(("late.metric".into(), 9.0));
        let mut w = VqdcWriter::create(&path, schema).unwrap();
        let e = w.write_rows(&changed).unwrap_err();
        assert!(
            e.to_string().contains("between schema scan and write"),
            "{e}"
        );
        // And a shrunken pass 2 fails at finish.
        let mut schema = VqdcSchema::new();
        schema.scan(&runs).unwrap();
        let mut w = VqdcWriter::create(&path, schema).unwrap();
        w.write_rows(&runs[..1]).unwrap();
        assert!(w.finish().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn absent_cell_differs_from_present_nan() {
        let runs = sample_runs();
        let bytes = corpus_to_vqdc_bytes(&runs).unwrap();
        let reader = open_bytes(&bytes).unwrap();
        let back = reader.to_runs().unwrap();
        // Row 0 carries cpu_avg as a *present* NaN.
        assert!(back[0]
            .metrics
            .iter()
            .any(|(n, v)| n == "mobile.hw.cpu_avg" && v.is_nan()));
        // Row 1 does not carry it at all.
        assert!(!back[1]
            .metrics
            .iter()
            .any(|(n, _)| n == "mobile.hw.cpu_avg"));
    }

    #[test]
    fn duplicate_metric_in_one_session_is_rejected() {
        let runs = vec![LabeledRun {
            metrics: vec![("a.b".into(), 1.0), ("a.b".into(), 2.0)],
            truth: GroundTruth {
                fault: FaultKind::None,
                qoe: QoeClass::Good,
            },
        }];
        let e = corpus_to_vqdc_bytes(&runs).unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
    }

    #[test]
    fn corruption_is_a_typed_error_never_a_panic() {
        let runs = sample_runs();
        let bytes = corpus_to_vqdc_bytes(&runs).unwrap();
        // Bad magic.
        let mut b = bytes.clone();
        b[0] ^= 0xff;
        assert!(matches!(open_bytes(&b), Err(VqdError::BinCorpus { .. })));
        // Truncation at every section boundary and mid-column.
        for cut in [4usize, 12, 40, bytes.len() / 2, bytes.len() - 3] {
            let b = &bytes[..cut.min(bytes.len())];
            assert!(open_bytes(b).is_err(), "cut at {cut} must fail");
        }
        // Flipped payload byte: either a section checksum catches it at
        // open, or the column checksum does on full read.
        let mut b = bytes.clone();
        let last = b.len() - 1;
        b[last] ^= 0x01;
        match open_bytes(&b) {
            Err(_) => {}
            Ok(r) => {
                assert!(r.to_runs().is_err(), "flipped column byte must fail verify");
            }
        }
    }

    #[test]
    fn fill_column_rejects_out_of_bounds() {
        let bytes = corpus_to_vqdc_bytes(&sample_runs()).unwrap();
        let reader = open_bytes(&bytes).unwrap();
        let mut buf = vec![0.0; 10];
        assert!(reader.fill_column(0, 0, &mut buf).is_err()); // past n_rows
        let mut one = vec![0.0; 1];
        assert!(reader.fill_column(99, 0, &mut one).is_err()); // no such column
    }
}
