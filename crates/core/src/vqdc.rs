//! `.vqdc` — the binary columnar corpus format (DESIGN.md §7h, §7j).
//!
//! The text corpus (`corpus_to_text`) is the debug/interchange path:
//! one session per line, every float printed and re-parsed. That
//! costs a float parse per value and forces whole-file residency. The
//! `.vqdc` format stores the same corpus feature-major so training can
//! stream one column (or a chunk of one) at a time. Two container
//! versions coexist:
//!
//! **v1** (PR 8, still read and written):
//!
//! ```text
//! offset 0   magic  "VQDCORP1"                                  8 B
//! META       u64 payload_len | u32 checksum32 | payload
//!            payload: u32 version(=1) | u64 n_rows | u32 n_cols
//!                     | u32 n_shapes
//!                     | n_cols  × (u32 len | name UTF-8)
//!                     | n_shapes × (u32 len | len × u32 col id)
//! LABELS     u64 payload_len | u32 checksum32 | payload
//!            payload: n_rows × (u8 fault | u8 qoe | u32 shape)   6 B/row
//! COLUMNS    n_cols × (u32 checksum32 | n_rows × f64 bits LE)
//! ```
//!
//! **v2** (this PR): the same META (plus a `block_rows` field) and
//! LABELS sections, then the cells cut into per-column *blocks* of
//! `block_rows` rows, each block independently encoded with the
//! best-measuring codec from [`crate::colcodec`] and checksummed, laid
//! out row-group-major with every block 8-byte aligned:
//!
//! ```text
//! offset 0   magic  "VQDCORP2"                                  8 B
//! META       … as v1, payload gains trailing u32 block_rows
//! LABELS     … as v1
//! (zero pad to 8-byte boundary)
//! DATA       for each row group g (block_rows rows):
//!              for each column j:
//!                encoded block bytes, zero-padded to 8 B multiple
//! BLOCKDIR   u64 payload_len | u32 checksum32 | payload
//!            payload: n_groups × n_cols ×
//!                     (u64 offset | u32 enc_len | u32 checksum32
//!                      | u8 codec)                              17 B
//! TRAILER    u64 blockdir_offset | magic "VQDCEND2"             16 B
//! ```
//!
//! Row-group-major order lets the two-pass streaming writer emit the
//! file append-only in bounded memory; the trailing block directory
//! (found via the fixed-size trailer) gives the reader random access
//! to any (group, column) block. Raw blocks are 8-aligned so the mmap
//! read path can lend them out as `&[u64]` views without copying.
//!
//! Everything little-endian; checksums are `probes::journal`'s
//! [`checksum32`] — over each section payload, and in v2 additionally
//! over each encoded block. A *shape* is an interned sequence of
//! column ids recording which metrics a session emitted and in which
//! order; absent cells hold a canonical-NaN filler that is never read
//! (the shape says which cells exist), so a metric whose *value* is
//! NaN survives a round trip distinct from a metric that was never
//! emitted, and `text → binary → text` is byte-identical in both
//! versions.
//!
//! Reads go through one of two interchangeable backends: a zero-copy
//! **mmap** view (default where supported) or positioned **pread**
//! (`VQD_VQDC_IO=pread`, kept as the differential oracle exactly like
//! the PR 3 heap-vs-wheel scheduler oracle). Column checksums are
//! verified lazily, once per column per reader, whichever backend.
//! The mmap path re-checks the on-disk file length before every
//! access window so a file that shrinks beneath the map surfaces as a
//! typed error, not SIGBUS (the residual TOCTOU window is documented
//! in DESIGN.md §7j).
//!
//! Failure handling is typed end to end: bad magic, truncation,
//! checksum mismatches, malformed sections, corrupt blocks and
//! shrunken files all surface as [`VqdError::BinCorpus`] naming the
//! damaged section — never a panic (proptest-enforced).

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use vqd_faults::FaultKind;
use vqd_probes::journal::{checksum32, Checksum32};
use vqd_video::QoeClass;

use crate::colcodec::{decode_block, encode_block, CODEC_RAW};
use crate::dataset::LabeledRun;
use crate::error::VqdError;
use crate::mmapio::Mmap;
use crate::scenario::{class_id, GroundTruth, LabelScheme};

/// `.vqdc` v1 file magic, byte-for-byte at offset 0.
pub const VQDC_MAGIC: &[u8; 8] = b"VQDCORP1";
/// `.vqdc` v2 file magic, byte-for-byte at offset 0.
pub const VQDC2_MAGIC: &[u8; 8] = b"VQDCORP2";
/// v2 end-of-file trailer magic (last 8 bytes of the file).
pub const VQDC2_END_MAGIC: &[u8; 8] = b"VQDCEND2";

const LABEL_BYTES: u64 = 6;
const CELL_BYTES: u64 = 8;
const COL_HEADER_BYTES: u64 = 4;
/// Bytes of one v2 block-directory entry.
const DIR_ENTRY_BYTES: u64 = 17;
/// Bytes of the v2 trailer (u64 blockdir offset + end magic).
const TRAILER_BYTES: u64 = 16;
/// Default rows per v2 column block: big enough to amortise per-block
/// overhead and give the codecs context, small enough that decoding
/// one block is cache-friendly.
pub const DEFAULT_BLOCK_ROWS: u32 = 65_536;
/// Hard cap on `block_rows`, so a raw block (8 B/cell) always fits the
/// directory's u32 `enc_len` with headroom.
const MAX_BLOCK_ROWS: u32 = 1 << 24;

fn align8(n: u64) -> u64 {
    n.div_ceil(8) * 8
}

fn fault_code(f: FaultKind) -> u8 {
    if f == FaultKind::None {
        0
    } else {
        match FaultKind::ALL.iter().position(|&k| k == f) {
            Some(i) => (i + 1) as u8,
            None => 0,
        }
    }
}

fn fault_of(code: u8) -> Option<FaultKind> {
    match code {
        0 => Some(FaultKind::None),
        c => FaultKind::ALL.get(c as usize - 1).copied(),
    }
}

fn qoe_code(q: QoeClass) -> u8 {
    match q {
        QoeClass::Good => 0,
        QoeClass::Mild => 1,
        QoeClass::Severe => 2,
    }
}

fn qoe_of(code: u8) -> Option<QoeClass> {
    match code {
        0 => Some(QoeClass::Good),
        1 => Some(QoeClass::Mild),
        2 => Some(QoeClass::Severe),
        _ => None,
    }
}

/// Container version of a `.vqdc` file being written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VqdcVersion {
    /// PR 8 layout: one checksummed raw column after another.
    V1,
    /// Blocked layout: per-block codecs, block directory, trailer.
    V2,
}

/// Everything a `.vqdc` writer needs to know beyond the sessions.
#[derive(Debug, Clone, Copy)]
pub struct VqdcWriteOptions {
    /// Container version to emit.
    pub version: VqdcVersion,
    /// Rows per column block (v2 only; clamped to `1..=2^24`).
    pub block_rows: u32,
    /// Try the compressing codecs per block (v2 only)? `false` forces
    /// every block Raw — the shape the mmap path lends out zero-copy.
    pub compress: bool,
}

impl Default for VqdcWriteOptions {
    fn default() -> VqdcWriteOptions {
        VqdcWriteOptions {
            version: VqdcVersion::V2,
            block_rows: DEFAULT_BLOCK_ROWS,
            compress: true,
        }
    }
}

impl VqdcWriteOptions {
    /// The PR 8 layout.
    pub fn v1() -> VqdcWriteOptions {
        VqdcWriteOptions {
            version: VqdcVersion::V1,
            ..VqdcWriteOptions::default()
        }
    }

    /// Parse a CLI `--format` value: `v1`, `v2` (compressed, the
    /// default) or `v2raw` (v2 container, every block Raw).
    pub fn parse(s: &str) -> Option<VqdcWriteOptions> {
        match s {
            "v1" => Some(VqdcWriteOptions::v1()),
            "v2" => Some(VqdcWriteOptions::default()),
            "v2raw" => Some(VqdcWriteOptions {
                compress: false,
                ..VqdcWriteOptions::default()
            }),
            _ => None,
        }
    }

    fn block_rows_clamped(&self) -> usize {
        self.block_rows.clamp(1, MAX_BLOCK_ROWS) as usize
    }
}

/// Pass-1 state of a `.vqdc` encode: interned names (first-seen
/// order — the `DatasetBuilder` schema order), interned shapes, and
/// the per-row label/shape records. `O(n_rows)` memory (the same
/// resident state [`VqdcReader`] keeps) but never the cell values, so
/// a streaming writer can scan a corpus far larger than RAM. Feed
/// every session through [`VqdcSchema::scan`], then either serialise
/// in memory ([`corpus_to_vqdc_bytes`]) or hand the schema to
/// [`VqdcWriter`] for a second, chunked value pass.
#[derive(Default)]
pub struct VqdcSchema {
    col_of: HashMap<String, u32>,
    names: Vec<String>,
    shape_of: HashMap<Vec<u32>, u32>,
    shapes: Vec<Vec<u32>>,
    row_shape: Vec<u32>,
    labels: Vec<u8>,
    seen: Vec<u32>,
}

impl VqdcSchema {
    /// Fresh, empty schema.
    pub fn new() -> VqdcSchema {
        VqdcSchema::default()
    }

    /// Sessions scanned so far.
    pub fn n_rows(&self) -> usize {
        self.row_shape.len()
    }

    /// Distinct metric names seen so far.
    pub fn n_cols(&self) -> usize {
        self.names.len()
    }

    /// Intern one chunk of sessions (call repeatedly, in corpus
    /// order). Errors — as a line-addressed corpus error — if a
    /// session emits the same metric name twice: a columnar file has
    /// one cell per (row, column), so duplicates cannot be
    /// represented; the simulator never produces them.
    pub fn scan(&mut self, runs: &[LabeledRun]) -> Result<(), VqdError> {
        for r in runs {
            let i = self.row_shape.len();
            if i + 1 >= u32::MAX as usize {
                return Err(VqdError::corpus(0, "corpus exceeds u32 row range"));
            }
            let mut shape: Vec<u32> = Vec::with_capacity(r.metrics.len());
            for (n, _) in &r.metrics {
                let c = match self.col_of.get(n.as_str()) {
                    Some(&c) => c,
                    None => {
                        let c = self.names.len() as u32;
                        self.col_of.insert(n.clone(), c);
                        self.names.push(n.clone());
                        c
                    }
                };
                shape.push(c);
            }
            self.seen.resize(self.names.len(), u32::MAX);
            for &c in &shape {
                if self.seen[c as usize] == i as u32 {
                    return Err(VqdError::corpus(
                        i + 1,
                        format!(
                            "duplicate metric {:?} in one session (unrepresentable in columnar form)",
                            self.names[c as usize]
                        ),
                    ));
                }
                self.seen[c as usize] = i as u32;
            }
            let sid = *self.shape_of.entry(shape.clone()).or_insert_with(|| {
                self.shapes.push(shape);
                (self.shapes.len() - 1) as u32
            });
            self.row_shape.push(sid);
            self.labels.push(fault_code(r.truth.fault));
            self.labels.push(qoe_code(r.truth.qoe));
            self.labels.extend_from_slice(&sid.to_le_bytes());
        }
        Ok(())
    }

    /// Serialise magic + META + LABELS — everything before the cell
    /// region — exactly as the file stores them. v2 headers append
    /// `block_rows` to the META payload and pad the whole header to an
    /// 8-byte boundary so the first data block is aligned.
    fn header_bytes(&self, opts: &VqdcWriteOptions) -> Vec<u8> {
        let (magic, version) = match opts.version {
            VqdcVersion::V1 => (VQDC_MAGIC, 1u32),
            VqdcVersion::V2 => (VQDC2_MAGIC, 2u32),
        };
        let mut meta = Vec::new();
        meta.extend_from_slice(&version.to_le_bytes());
        meta.extend_from_slice(&(self.n_rows() as u64).to_le_bytes());
        meta.extend_from_slice(&(self.names.len() as u32).to_le_bytes());
        meta.extend_from_slice(&(self.shapes.len() as u32).to_le_bytes());
        for n in &self.names {
            meta.extend_from_slice(&(n.len() as u32).to_le_bytes());
            meta.extend_from_slice(n.as_bytes());
        }
        for s in &self.shapes {
            meta.extend_from_slice(&(s.len() as u32).to_le_bytes());
            for &c in s {
                meta.extend_from_slice(&c.to_le_bytes());
            }
        }
        if opts.version == VqdcVersion::V2 {
            meta.extend_from_slice(&(opts.block_rows_clamped() as u32).to_le_bytes());
        }
        let mut out = Vec::new();
        out.extend_from_slice(magic);
        for section in [&meta, &self.labels] {
            out.extend_from_slice(&(section.len() as u64).to_le_bytes());
            out.extend_from_slice(&checksum32(section).to_le_bytes());
            out.extend_from_slice(section);
        }
        if opts.version == VqdcVersion::V2 {
            out.resize(align8(out.len() as u64) as usize, 0);
        }
        out
    }
}

/// Transpose one chunk of sessions into per-column cell vectors
/// (absent = canonical-NaN filler), verifying each row's shape against
/// the interned schema — a source that changed between the schema and
/// value passes is a typed error, not a corrupt file.
fn transpose_chunk(
    schema: &VqdcSchema,
    start: usize,
    runs: &[LabeledRun],
) -> Result<Vec<Vec<u64>>, VqdError> {
    let filler = f64::NAN.to_bits();
    let mut cells: Vec<Vec<u64>> = vec![vec![filler; runs.len()]; schema.n_cols()];
    let mut shape: Vec<u32> = Vec::new();
    for (i, r) in runs.iter().enumerate() {
        let row = start + i;
        shape.clear();
        for (n, v) in &r.metrics {
            let Some(&c) = schema.col_of.get(n.as_str()) else {
                return Err(VqdError::corpus(
                    row + 1,
                    format!("metric {n:?} appeared between schema scan and write passes"),
                ));
            };
            shape.push(c);
            cells[c as usize][i] = v.to_bits();
        }
        let sid = schema.row_shape[row] as usize;
        if schema.shapes[sid] != shape {
            return Err(VqdError::corpus(
                row + 1,
                "session shape changed between schema scan and write passes",
            ));
        }
    }
    Ok(cells)
}

/// Encode a corpus into `.vqdc` **v1** bytes (whole corpus resident —
/// the convenience path; [`VqdcWriter`] is the bounded-memory one).
pub fn corpus_to_vqdc_bytes(runs: &[LabeledRun]) -> Result<Vec<u8>, VqdError> {
    let mut schema = VqdcSchema::new();
    schema.scan(runs)?;
    let n_rows = runs.len();

    // Pass 2: fill the column matrix (absent = canonical-NaN filler).
    let filler = f64::NAN.to_bits();
    let mut cols: Vec<Vec<u64>> = vec![vec![filler; n_rows]; schema.n_cols()];
    for (i, r) in runs.iter().enumerate() {
        for (n, v) in &r.metrics {
            let c = schema.col_of[n.as_str()] as usize;
            cols[c][i] = v.to_bits();
        }
    }

    let mut out = schema.header_bytes(&VqdcWriteOptions::v1());
    let mut colbuf = Vec::with_capacity(n_rows * CELL_BYTES as usize);
    for col in &cols {
        colbuf.clear();
        for &bits in col {
            colbuf.extend_from_slice(&bits.to_le_bytes());
        }
        out.extend_from_slice(&checksum32(&colbuf).to_le_bytes());
        out.extend_from_slice(&colbuf);
    }
    Ok(out)
}

/// Encode a corpus into `.vqdc` bytes at any version/options. The v2
/// path routes through the same group encoder as the streaming
/// [`VqdcWriter`], so batch and streamed v2 bytes are identical by
/// construction (and test).
pub fn corpus_to_vqdc_bytes_with(
    runs: &[LabeledRun],
    opts: &VqdcWriteOptions,
) -> Result<Vec<u8>, VqdError> {
    match opts.version {
        VqdcVersion::V1 => corpus_to_vqdc_bytes(runs),
        VqdcVersion::V2 => {
            let mut schema = VqdcSchema::new();
            schema.scan(runs)?;
            let mut w = VqdcWriter::create_mem(schema, opts)?;
            w.write_rows(runs)?;
            w.finish_bytes()
        }
    }
}

/// Positioned write mirroring [`VqdcReader`]'s `read_at`.
fn write_at(file: &File, path: &Path, buf: &[u8], off: u64) -> Result<(), VqdError> {
    #[cfg(unix)]
    let res = {
        use std::os::unix::fs::FileExt;
        file.write_all_at(buf, off)
    };
    #[cfg(not(unix))]
    let res = (|| {
        use std::io::{Seek, Write};
        let mut f = File::options().write(true).open(path)?;
        f.seek(io::SeekFrom::Start(off))?;
        f.write_all(buf)
    })();
    res.map_err(|e| VqdError::io(path, e))
}

/// One v2 block-directory entry, as held in memory. `enc_len` is the
/// true encoded length — the on-disk block is zero-padded to the next
/// 8-byte boundary, and the checksum covers only the true bytes.
#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    offset: u64,
    enc_len: u64,
    sum: u32,
    codec: u8,
}

/// Append-only byte sink for the v2 writer: a buffered file or an
/// in-memory vector (the batch encoder), so both paths share one
/// serialiser and stay byte-identical.
enum Sink {
    File(io::BufWriter<File>),
    Mem(Vec<u8>),
}

impl Sink {
    fn write_all(&mut self, path: &Path, b: &[u8]) -> Result<(), VqdError> {
        match self {
            Sink::File(f) => f.write_all(b).map_err(|e| VqdError::io(path, e)),
            Sink::Mem(v) => {
                v.extend_from_slice(b);
                Ok(())
            }
        }
    }
}

enum WriterBody {
    V1 {
        file: File,
        columns_start: u64,
        sums: Vec<Option<Checksum32>>,
    },
    V2 {
        sink: Sink,
        block_rows: usize,
        compress: bool,
        /// Next byte offset in the file (== bytes written so far).
        pos: u64,
        /// Pending cells of the current row group, per column.
        group: Vec<Vec<u64>>,
        pending: usize,
        dir: Vec<BlockMeta>,
        enc: Vec<u8>,
    },
}

/// Streaming `.vqdc` writer: bounded memory no matter the corpus
/// size. Two passes over the source — first [`VqdcSchema::scan`]
/// every session, then replay the same sessions through
/// [`VqdcWriter::write_rows`]. v1 transposes each chunk into
/// per-column slabs written at their final offsets while column
/// checksums accumulate incrementally ([`Checksum32`]); v2 buffers
/// one row group of cells, encodes each column's block with the best
/// codec and appends it — purely sequential I/O. Peak memory is
/// `O(chunk × n_cols)` cells (v1) or `O(block_rows × n_cols)` (v2)
/// plus the schema — never the corpus. The bytes produced are
/// identical to the batch encoders over the same sessions
/// (test-enforced).
pub struct VqdcWriter {
    path: PathBuf,
    schema: VqdcSchema,
    at: usize,
    body: WriterBody,
}

impl VqdcWriter {
    /// Create `path` with default options (v2, compressed).
    pub fn create(path: impl AsRef<Path>, schema: VqdcSchema) -> Result<VqdcWriter, VqdError> {
        VqdcWriter::create_with(path, schema, &VqdcWriteOptions::default())
    }

    /// Create `path` and write the header for a corpus whose schema
    /// pass already ran.
    pub fn create_with(
        path: impl AsRef<Path>,
        schema: VqdcSchema,
        opts: &VqdcWriteOptions,
    ) -> Result<VqdcWriter, VqdError> {
        let path = path.as_ref().to_path_buf();
        let header = schema.header_bytes(opts);
        let file = File::create(&path).map_err(|e| VqdError::io(&path, e))?;
        match opts.version {
            VqdcVersion::V1 => {
                write_at(&file, &path, &header, 0)?;
                let n_rows = schema.n_rows() as u64;
                let columns_start = header.len() as u64;
                let total = columns_start
                    + schema.n_cols() as u64 * (COL_HEADER_BYTES + n_rows * CELL_BYTES);
                file.set_len(total).map_err(|e| VqdError::io(&path, e))?;
                let sums = (0..schema.n_cols())
                    .map(|_| Some(Checksum32::new(n_rows * CELL_BYTES)))
                    .collect();
                Ok(VqdcWriter {
                    path,
                    schema,
                    at: 0,
                    body: WriterBody::V1 {
                        file,
                        columns_start,
                        sums,
                    },
                })
            }
            VqdcVersion::V2 => {
                let mut sink = Sink::File(io::BufWriter::with_capacity(1 << 20, file));
                sink.write_all(&path, &header)?;
                Ok(VqdcWriter {
                    at: 0,
                    body: WriterBody::V2 {
                        sink,
                        block_rows: opts.block_rows_clamped(),
                        compress: opts.compress,
                        pos: header.len() as u64,
                        group: vec![Vec::new(); schema.n_cols()],
                        pending: 0,
                        dir: Vec::new(),
                        enc: Vec::new(),
                    },
                    path,
                    schema,
                })
            }
        }
    }

    /// In-memory v2 writer backing [`corpus_to_vqdc_bytes_with`]: same
    /// serialiser as the file writer, bytes returned by
    /// [`VqdcWriter::finish_bytes`].
    fn create_mem(schema: VqdcSchema, opts: &VqdcWriteOptions) -> Result<VqdcWriter, VqdError> {
        debug_assert_eq!(opts.version, VqdcVersion::V2);
        let header = schema.header_bytes(opts);
        let pos = header.len() as u64;
        Ok(VqdcWriter {
            path: PathBuf::from("<memory>"),
            at: 0,
            body: WriterBody::V2 {
                sink: Sink::Mem(header),
                block_rows: opts.block_rows_clamped(),
                compress: opts.compress,
                pos,
                group: vec![Vec::new(); schema.n_cols()],
                pending: 0,
                dir: Vec::new(),
                enc: Vec::new(),
            },
            schema,
        })
    }

    fn col_offset(columns_start: u64, n_rows: u64, j: usize) -> u64 {
        columns_start + j as u64 * (COL_HEADER_BYTES + n_rows * CELL_BYTES)
    }

    /// Write the next chunk of sessions (same sessions, same order as
    /// the schema scan — verified per row via the interned shape, so
    /// a source that changed between the passes is a typed error, not
    /// a corrupt file).
    pub fn write_rows(&mut self, runs: &[LabeledRun]) -> Result<(), VqdError> {
        if runs.is_empty() {
            return Ok(());
        }
        let start = self.at;
        if start + runs.len() > self.schema.n_rows() {
            return Err(VqdError::corpus(
                start + runs.len(),
                "corpus grew between schema scan and write passes",
            ));
        }
        let count = runs.len();
        let cells = transpose_chunk(&self.schema, start, runs)?;
        match &mut self.body {
            WriterBody::V1 {
                file,
                columns_start,
                sums,
            } => {
                let n_rows = self.schema.n_rows() as u64;
                let mut slab = Vec::with_capacity(count * CELL_BYTES as usize);
                for (j, col) in cells.iter().enumerate() {
                    slab.clear();
                    for &bits in col {
                        slab.extend_from_slice(&bits.to_le_bytes());
                    }
                    write_at(
                        file,
                        &self.path,
                        &slab,
                        VqdcWriter::col_offset(*columns_start, n_rows, j)
                            + COL_HEADER_BYTES
                            + start as u64 * CELL_BYTES,
                    )?;
                    if let Some(sum) = sums[j].as_mut() {
                        sum.update(&slab);
                    }
                }
            }
            WriterBody::V2 {
                sink,
                block_rows,
                compress,
                pos,
                group,
                pending,
                dir,
                enc,
            } => {
                let mut done = 0usize;
                while done < count {
                    let take = (*block_rows - *pending).min(count - done);
                    for (g, col) in group.iter_mut().zip(&cells) {
                        g.extend_from_slice(&col[done..done + take]);
                    }
                    *pending += take;
                    done += take;
                    if *pending == *block_rows {
                        flush_group(sink, &self.path, *compress, pos, group, pending, dir, enc)?;
                    }
                }
            }
        }
        self.at += count;
        Ok(())
    }

    fn finish_impl(&mut self) -> Result<(), VqdError> {
        let n_rows = self.schema.n_rows();
        if self.at != n_rows {
            return Err(VqdError::corpus(
                self.at,
                format!(
                    "corpus shrank between passes: wrote {} of {n_rows} rows",
                    self.at
                ),
            ));
        }
        match &mut self.body {
            WriterBody::V1 {
                file,
                columns_start,
                sums,
            } => {
                for (j, slot) in sums.iter_mut().enumerate() {
                    let sum = slot
                        .take()
                        .unwrap_or_else(|| unreachable!("checksum consumed once"))
                        .finish();
                    write_at(
                        file,
                        &self.path,
                        &sum.to_le_bytes(),
                        VqdcWriter::col_offset(*columns_start, n_rows as u64, j),
                    )?;
                }
                file.sync_data().map_err(|e| VqdError::io(&self.path, e))?;
            }
            WriterBody::V2 {
                sink,
                compress,
                pos,
                group,
                pending,
                dir,
                enc,
                ..
            } => {
                if *pending > 0 {
                    flush_group(sink, &self.path, *compress, pos, group, pending, dir, enc)?;
                }
                let blockdir_off = *pos;
                let mut payload = Vec::with_capacity(dir.len() * DIR_ENTRY_BYTES as usize);
                for m in dir.iter() {
                    payload.extend_from_slice(&m.offset.to_le_bytes());
                    payload.extend_from_slice(&(m.enc_len as u32).to_le_bytes());
                    payload.extend_from_slice(&m.sum.to_le_bytes());
                    payload.push(m.codec);
                }
                let mut tail = Vec::with_capacity(payload.len() + 28);
                tail.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                tail.extend_from_slice(&checksum32(&payload).to_le_bytes());
                tail.extend_from_slice(&payload);
                tail.extend_from_slice(&blockdir_off.to_le_bytes());
                tail.extend_from_slice(VQDC2_END_MAGIC);
                sink.write_all(&self.path, &tail)?;
                if let Sink::File(w) = sink {
                    w.flush().map_err(|e| VqdError::io(&self.path, e))?;
                    w.get_ref()
                        .sync_data()
                        .map_err(|e| VqdError::io(&self.path, e))?;
                }
            }
        }
        Ok(())
    }

    /// Flush and finalise the file (v2: trailing block directory and
    /// trailer; v1: patch in the column checksums). Errors if fewer
    /// rows were written than the schema scan promised. Returns the
    /// number of sessions written.
    pub fn finish(mut self) -> Result<usize, VqdError> {
        self.finish_impl()?;
        Ok(self.schema.n_rows())
    }

    /// [`VqdcWriter::finish`] for the in-memory sink: the encoded
    /// file bytes.
    fn finish_bytes(mut self) -> Result<Vec<u8>, VqdError> {
        self.finish_impl()?;
        match self.body {
            WriterBody::V2 {
                sink: Sink::Mem(v), ..
            } => Ok(v),
            _ => Err(VqdError::Config("finish_bytes on a file writer".into())),
        }
    }
}

/// Encode and append one completed row group: per column, the best
/// codec's bytes, checksummed and zero-padded to an 8-byte boundary.
#[allow(clippy::too_many_arguments)]
fn flush_group(
    sink: &mut Sink,
    path: &Path,
    compress: bool,
    pos: &mut u64,
    group: &mut [Vec<u64>],
    pending: &mut usize,
    dir: &mut Vec<BlockMeta>,
    enc: &mut Vec<u8>,
) -> Result<(), VqdError> {
    const PAD: [u8; 8] = [0; 8];
    for col in group.iter_mut() {
        enc.clear();
        let codec = encode_block(&col[..*pending], compress, enc);
        let sum = checksum32(enc);
        dir.push(BlockMeta {
            offset: *pos,
            enc_len: enc.len() as u64,
            sum,
            codec,
        });
        sink.write_all(path, enc)?;
        let pad = (align8(enc.len() as u64) - enc.len() as u64) as usize;
        if pad > 0 {
            sink.write_all(path, &PAD[..pad])?;
        }
        *pos += align8(enc.len() as u64);
        col.clear();
    }
    *pending = 0;
    Ok(())
}

/// Encode and write a corpus to `path` with default options (v2).
pub fn write_vqdc(runs: &[LabeledRun], path: impl AsRef<Path>) -> Result<(), VqdError> {
    write_vqdc_with(runs, path, &VqdcWriteOptions::default())
}

/// Encode and write a corpus to `path` at any version/options.
pub fn write_vqdc_with(
    runs: &[LabeledRun],
    path: impl AsRef<Path>,
    opts: &VqdcWriteOptions,
) -> Result<(), VqdError> {
    let path = path.as_ref();
    let bytes = corpus_to_vqdc_bytes_with(runs, opts)?;
    std::fs::write(path, bytes).map_err(|e| VqdError::io(path, e))
}

/// Does `path` start with a `.vqdc` magic (either version)? (`false`
/// on any read failure — callers fall back to the text parser's error
/// reporting.)
pub fn sniff_vqdc(path: impl AsRef<Path>) -> bool {
    let mut magic = [0u8; 8];
    match File::open(path.as_ref()).and_then(|mut f| f.read_exact(&mut magic)) {
        Ok(()) => &magic == VQDC_MAGIC || &magic == VQDC2_MAGIC,
        Err(_) => false,
    }
}

/// `read_exact` with typed errors: truncation (unexpected EOF) becomes
/// a [`VqdError::BinCorpus`] naming the section, any other I/O failure
/// a [`VqdError::Io`].
fn read_exact_or(
    file: &mut File,
    buf: &mut [u8],
    path: &Path,
    section: &str,
) -> Result<(), VqdError> {
    file.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            VqdError::bin_corpus(
                path,
                format!("{section} section truncated (unexpected EOF)"),
            )
        } else {
            VqdError::io(path, e)
        }
    })
}

/// Bounds-checked little-endian cursor over a section payload.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| format!("{} section truncated", self.section))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, String> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
    fn u64(&mut self) -> Result<u64, String> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }
}

/// Which read backend a [`VqdcReader`] should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VqdcIoMode {
    /// Honour `VQD_VQDC_IO` (`mmap`/`pread`); otherwise try mmap and
    /// fall back to pread where unsupported.
    Auto,
    /// Positioned reads only — the differential oracle.
    Pread,
    /// Require the memory map; error if the target can't map.
    Mmap,
}

#[derive(Debug)]
enum Backing {
    Pread,
    Map(Mmap),
}

/// Random-access reader over a `.vqdc` file, either version. The
/// header (names, shapes, labels) is resident — `O(n_rows)` for the
/// labels — while column cells stay on disk (or in the page cache,
/// behind the map) until asked for. Column checksums are verified
/// lazily: the first access to a column checks every one of its
/// blocks, later accesses are free.
#[derive(Debug)]
pub struct VqdcReader {
    file: File,
    path: PathBuf,
    version: u32,
    n_rows: usize,
    block_rows: usize,
    n_groups: usize,
    names: Vec<String>,
    shapes: Vec<Vec<u32>>,
    truths: Vec<GroundTruth>,
    row_shape: Vec<u32>,
    /// Block directory, `[g * n_cols + j]`. v1 files get one synthetic
    /// Raw block per column so every read path is version-blind.
    blocks: Vec<BlockMeta>,
    file_len: u64,
    backing: Backing,
    verified: Vec<AtomicBool>,
    /// Borrow-path access counter: the shrink guard's `fstat` runs on
    /// every [`SHRINK_CHECK_PERIOD`]th `borrow_cells` call instead of
    /// every call, so the zero-copy path is not throttled to syscall
    /// speed by its own safety net.
    borrow_tick: AtomicU64,
}

/// How many `borrow_cells` calls share one shrink-guard `fstat`. The
/// guard is best-effort either way (the check-to-access TOCTOU window
/// is inherent to mmap), so amortising it trades none of the contract
/// away — truncation still surfaces as a typed error within a bounded
/// number of borrows, and every bulk read path (`to_runs`, `verify`,
/// `fill_column`) keeps its unconditional check.
const SHRINK_CHECK_PERIOD: u64 = 64;

impl VqdcReader {
    /// Open and validate `path` with [`VqdcIoMode::Auto`].
    pub fn open(path: impl AsRef<Path>) -> Result<VqdcReader, VqdError> {
        VqdcReader::open_with(path, VqdcIoMode::Auto)
    }

    /// Open and validate `path`: magic, META/LABELS checksums, section
    /// shapes, id ranges, block directory and the exact expected file
    /// length. Typed errors on every failure mode; never panics.
    pub fn open_with(path: impl AsRef<Path>, mode: VqdcIoMode) -> Result<VqdcReader, VqdError> {
        let path = path.as_ref().to_path_buf();
        let fail = |msg: String| VqdError::bin_corpus(&path, msg);
        let mut file = File::open(&path).map_err(|e| VqdError::io(&path, e))?;
        let file_len = file.metadata().map_err(|e| VqdError::io(&path, e))?.len();

        let mut magic = [0u8; 8];
        read_exact_or(&mut file, &mut magic, &path, "magic")?;
        let version = if &magic == VQDC_MAGIC {
            1u32
        } else if &magic == VQDC2_MAGIC {
            2u32
        } else {
            return Err(fail("not a .vqdc file (bad magic)".into()));
        };
        let mut offset = 8u64;
        let read_section = |file: &mut File,
                            offset: &mut u64,
                            section: &'static str|
         -> Result<Vec<u8>, VqdError> {
            let mut hdr = [0u8; 12];
            read_exact_or(file, &mut hdr, &path, section)?;
            let len = u64::from_le_bytes([
                hdr[0], hdr[1], hdr[2], hdr[3], hdr[4], hdr[5], hdr[6], hdr[7],
            ]);
            let want_sum = u32::from_le_bytes([hdr[8], hdr[9], hdr[10], hdr[11]]);
            if len > file_len.saturating_sub(*offset + 12) {
                return Err(VqdError::bin_corpus(
                    &path,
                    format!("{section} section truncated (length {len} past end of file)"),
                ));
            }
            let mut payload = vec![0u8; len as usize];
            read_exact_or(file, &mut payload, &path, section)?;
            if checksum32(&payload) != want_sum {
                return Err(VqdError::bin_corpus(
                    &path,
                    format!("{section} checksum mismatch (corrupt section)"),
                ));
            }
            *offset += 12 + len;
            Ok(payload)
        };

        let meta = read_section(&mut file, &mut offset, "META")?;
        let mut c = Cur {
            b: &meta,
            pos: 0,
            section: "META",
        };
        let parsed = (|| -> Result<_, String> {
            let v = c.u32()?;
            if v != version {
                return Err(format!(
                    "META version {v} does not match the {version} magic"
                ));
            }
            let n_rows = c.u64()?;
            if n_rows >= u32::MAX as u64 {
                return Err(format!("row count {n_rows} exceeds u32 range"));
            }
            let n_cols = c.u32()? as usize;
            let n_shapes = c.u32()? as usize;
            let mut names = Vec::with_capacity(n_cols.min(1 << 20));
            for _ in 0..n_cols {
                let len = c.u32()? as usize;
                let bytes = c.take(len)?;
                names.push(
                    std::str::from_utf8(bytes)
                        .map_err(|_| "META feature name is not UTF-8".to_string())?
                        .to_string(),
                );
            }
            let mut shapes = Vec::with_capacity(n_shapes.min(1 << 20));
            for _ in 0..n_shapes {
                let len = c.u32()? as usize;
                let mut shape = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    let col = c.u32()?;
                    if col as usize >= n_cols {
                        return Err(format!("META shape references column {col} of {n_cols}"));
                    }
                    shape.push(col);
                }
                shapes.push(shape);
            }
            let block_rows = if version == 2 {
                let b = c.u32()?;
                if b == 0 || b > MAX_BLOCK_ROWS {
                    return Err(format!("block_rows {b} outside 1..={MAX_BLOCK_ROWS}"));
                }
                b as usize
            } else {
                // v1 is one undivided run of rows per column.
                (n_rows as usize).max(1)
            };
            if c.pos != meta.len() {
                return Err("META section has trailing bytes".into());
            }
            Ok((n_rows as usize, names, shapes, block_rows))
        })()
        .map_err(&fail)?;
        let (n_rows, names, shapes, block_rows) = parsed;

        let labels = read_section(&mut file, &mut offset, "LABELS")?;
        if labels.len() as u64 != n_rows as u64 * LABEL_BYTES {
            return Err(fail(format!(
                "LABELS section is {} bytes, expected {} for {n_rows} rows",
                labels.len(),
                n_rows as u64 * LABEL_BYTES
            )));
        }
        let mut truths = Vec::with_capacity(n_rows);
        let mut row_shape = Vec::with_capacity(n_rows);
        for (i, rec) in labels.chunks_exact(LABEL_BYTES as usize).enumerate() {
            let fault = fault_of(rec[0])
                .ok_or_else(|| fail(format!("row {i}: unknown fault code {}", rec[0])))?;
            let qoe = qoe_of(rec[1])
                .ok_or_else(|| fail(format!("row {i}: unknown QoE code {}", rec[1])))?;
            let sid = u32::from_le_bytes([rec[2], rec[3], rec[4], rec[5]]);
            if sid as usize >= shapes.len() {
                return Err(fail(format!("row {i}: shape id {sid} of {}", shapes.len())));
            }
            truths.push(GroundTruth { fault, qoe });
            row_shape.push(sid);
        }

        let n_cols = names.len();
        let blocks = if version == 1 {
            let columns_start = offset;
            // Checked arithmetic: header-controlled n_cols/n_rows must
            // not wrap the expected length into agreement with a
            // crafted file.
            let expect = (n_rows as u64)
                .checked_mul(CELL_BYTES)
                .and_then(|b| b.checked_add(COL_HEADER_BYTES))
                .and_then(|col| col.checked_mul(n_cols as u64))
                .and_then(|cols| cols.checked_add(columns_start))
                .ok_or_else(|| {
                    fail(format!(
                        "META geometry overflows ({n_cols} columns × {n_rows} rows)"
                    ))
                })?;
            if file_len != expect {
                return Err(fail(format!(
                    "file is {file_len} bytes, expected {expect} ({n_cols} columns × {n_rows} rows)"
                )));
            }
            // Synthetic single-block-per-column directory: the column
            // checksum header becomes the block checksum.
            let mut blocks = Vec::with_capacity(n_cols);
            for j in 0..n_cols {
                let col_off =
                    columns_start + j as u64 * (COL_HEADER_BYTES + n_rows as u64 * CELL_BYTES);
                let mut sum = [0u8; 4];
                read_at_file(&file, &path, &mut sum, col_off)?;
                blocks.push(BlockMeta {
                    offset: col_off + COL_HEADER_BYTES,
                    enc_len: n_rows as u64 * CELL_BYTES,
                    sum: u32::from_le_bytes(sum),
                    codec: CODEC_RAW,
                });
            }
            blocks
        } else {
            let data_start = align8(offset);
            let n_groups = if n_rows == 0 {
                0
            } else {
                n_rows.div_ceil(block_rows)
            };
            let n_blocks = (n_groups as u64)
                .checked_mul(n_cols as u64)
                .filter(|&n| n < (1 << 32))
                .ok_or_else(|| {
                    fail(format!(
                        "META geometry overflows ({n_cols} columns × {n_groups} groups)"
                    ))
                })?;
            if file_len < data_start + 12 + TRAILER_BYTES {
                return Err(fail(
                    "BLOCKDIR trailer missing (file truncated before the block table)".into(),
                ));
            }
            let mut trailer = [0u8; TRAILER_BYTES as usize];
            read_at_file(&file, &path, &mut trailer, file_len - TRAILER_BYTES)?;
            if &trailer[8..] != VQDC2_END_MAGIC {
                return Err(fail(
                    "BLOCKDIR trailer magic missing (truncated file, or a v1 body under a v2 header)"
                        .into(),
                ));
            }
            let blockdir_off = u64::from_le_bytes([
                trailer[0], trailer[1], trailer[2], trailer[3], trailer[4], trailer[5], trailer[6],
                trailer[7],
            ]);
            if blockdir_off < data_start
                || blockdir_off % 8 != 0
                || blockdir_off > file_len - TRAILER_BYTES - 12
            {
                return Err(fail(format!(
                    "BLOCKDIR offset {blockdir_off} outside the data region"
                )));
            }
            let want_payload = file_len - TRAILER_BYTES - 12 - blockdir_off;
            let mut hdr = [0u8; 12];
            read_at_file(&file, &path, &mut hdr, blockdir_off)?;
            let dir_len = u64::from_le_bytes([
                hdr[0], hdr[1], hdr[2], hdr[3], hdr[4], hdr[5], hdr[6], hdr[7],
            ]);
            let want_sum = u32::from_le_bytes([hdr[8], hdr[9], hdr[10], hdr[11]]);
            if dir_len != want_payload {
                return Err(fail(format!(
                    "BLOCKDIR is {dir_len} bytes but {want_payload} remain before the trailer"
                )));
            }
            if dir_len != n_blocks * DIR_ENTRY_BYTES {
                return Err(fail(format!(
                    "BLOCKDIR is {dir_len} bytes, expected {} for {n_blocks} blocks",
                    n_blocks * DIR_ENTRY_BYTES
                )));
            }
            let mut payload = vec![0u8; dir_len as usize];
            read_at_file(&file, &path, &mut payload, blockdir_off + 12)?;
            if checksum32(&payload) != want_sum {
                return Err(fail(
                    "BLOCKDIR checksum mismatch (corrupt block table)".into(),
                ));
            }
            let mut blocks = Vec::with_capacity(n_blocks as usize);
            for (i, e) in payload.chunks_exact(DIR_ENTRY_BYTES as usize).enumerate() {
                let off = u64::from_le_bytes([e[0], e[1], e[2], e[3], e[4], e[5], e[6], e[7]]);
                let enc_len = u32::from_le_bytes([e[8], e[9], e[10], e[11]]) as u64;
                let sum = u32::from_le_bytes([e[12], e[13], e[14], e[15]]);
                let codec = e[16];
                let end = off
                    .checked_add(enc_len)
                    .ok_or_else(|| fail(format!("block {i}: offset + length overflows")))?;
                if off < data_start || off % 8 != 0 || end > blockdir_off {
                    return Err(fail(format!(
                        "block {i}: bytes {off}..{end} outside the data region \
                         {data_start}..{blockdir_off}"
                    )));
                }
                if codec > crate::colcodec::CODEC_XORPACK {
                    return Err(fail(format!("block {i}: unknown codec {codec}")));
                }
                blocks.push(BlockMeta {
                    offset: off,
                    enc_len,
                    sum,
                    codec,
                });
            }
            blocks
        };

        let n_groups = blocks.len().checked_div(n_cols).unwrap_or(0);
        let backing = match resolve_io_mode(mode)? {
            VqdcIoMode::Pread => Backing::Pread,
            VqdcIoMode::Mmap => Backing::Map(Mmap::map(&file).map_err(|e| VqdError::io(&path, e))?),
            VqdcIoMode::Auto => match Mmap::map(&file) {
                Ok(m) => Backing::Map(m),
                Err(_) => Backing::Pread,
            },
        };
        let verified = (0..n_cols).map(|_| AtomicBool::new(false)).collect();
        Ok(VqdcReader {
            file,
            path,
            version,
            n_rows,
            block_rows,
            n_groups,
            names,
            shapes,
            truths,
            row_shape,
            blocks,
            file_len,
            backing,
            verified,
            borrow_tick: AtomicU64::new(0),
        })
    }

    /// Number of sessions.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Container version of the file (1 or 2).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Rows per column block (v2; the whole column for v1).
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Which backend reads are going through: `"mmap"` or `"pread"`.
    pub fn io_backend(&self) -> &'static str {
        match self.backing {
            Backing::Map(_) => "mmap",
            Backing::Pread => "pread",
        }
    }

    /// The file this reader is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Feature (column) names, in column order — the first-seen metric
    /// order, identical to the `DatasetBuilder` schema over the same
    /// corpus.
    pub fn feature_names(&self) -> &[String] {
        &self.names
    }

    /// Ground truth per row.
    pub fn truths(&self) -> &[GroundTruth] {
        &self.truths
    }

    /// Per-row class ids under a label scheme (the training `y`).
    pub fn class_ids(&self, scheme: LabelScheme) -> Vec<usize> {
        self.truths.iter().map(|t| class_id(t, scheme)).collect()
    }

    fn meta(&self, g: usize, j: usize) -> &BlockMeta {
        &self.blocks[g * self.names.len() + j]
    }

    fn rows_in_group(&self, g: usize) -> usize {
        if g + 1 < self.n_groups {
            self.block_rows
        } else {
            self.n_rows - g * self.block_rows
        }
    }

    /// The mmap shrink guard: before any window of accesses through
    /// the map, re-check that the file still holds every byte the map
    /// was built over, so a concurrently-truncated file is a typed
    /// error rather than SIGBUS. (A shrink *between* the check and the
    /// access can still fault — that TOCTOU window is inherent to
    /// mmap; `VQD_VQDC_IO=pread` closes it completely.)
    fn check_not_shrunk(&self) -> Result<(), VqdError> {
        if let Backing::Map(_) = self.backing {
            let now = self
                .file
                .metadata()
                .map_err(|e| VqdError::io(&self.path, e))?
                .len();
            if now < self.file_len {
                return Err(VqdError::bin_corpus(
                    &self.path,
                    format!(
                        "file shrank beneath the mmap reader ({now} bytes, mapped {})",
                        self.file_len
                    ),
                ));
            }
        }
        Ok(())
    }

    fn read_at(&self, buf: &mut [u8], off: u64) -> io::Result<()> {
        read_at_raw(&self.file, &self.path, buf, off)
    }

    /// Fetch one block's encoded bytes: a guarded subslice of the map,
    /// or a positioned read into `scratch`.
    fn block_bytes<'a>(
        &'a self,
        m: &BlockMeta,
        scratch: &'a mut Vec<u8>,
    ) -> Result<&'a [u8], VqdError> {
        match &self.backing {
            Backing::Map(map) => map
                .as_slice()
                .get(m.offset as usize..(m.offset + m.enc_len) as usize)
                .ok_or_else(|| {
                    VqdError::bin_corpus(
                        &self.path,
                        format!(
                            "block bytes {}..{} outside the {}-byte map",
                            m.offset,
                            m.offset + m.enc_len,
                            map.len()
                        ),
                    )
                }),
            Backing::Pread => {
                scratch.resize(m.enc_len as usize, 0);
                self.read_at(scratch, m.offset)
                    .map_err(|e| VqdError::io(&self.path, e))?;
                Ok(&scratch[..])
            }
        }
    }

    /// Verify every block checksum of column `j`, once per reader —
    /// later calls return immediately. Concurrent first calls may both
    /// verify; that is idempotent.
    fn ensure_verified(&self, j: usize) -> Result<(), VqdError> {
        if self.verified[j].load(Ordering::Acquire) {
            return Ok(());
        }
        self.check_not_shrunk()?;
        let mut scratch = Vec::new();
        for g in 0..self.n_groups {
            let m = self.meta(g, j);
            let bytes = self.block_bytes(m, &mut scratch)?;
            if checksum32(bytes) != m.sum {
                return Err(VqdError::bin_corpus(
                    &self.path,
                    format!(
                        "column {j} ({:?}) group {g} checksum mismatch",
                        self.names[j]
                    ),
                ));
            }
        }
        self.verified[j].store(true, Ordering::Release);
        Ok(())
    }

    /// Walk cells `start..start + n` of column `j`, handing each raw
    /// little-endian bit pattern to `put(index_in_window, bits)`.
    /// Raw blocks copy only the covered cells; compressed blocks are
    /// decoded whole and sliced.
    fn for_cells(
        &self,
        j: usize,
        start: usize,
        n: usize,
        mut put: impl FnMut(usize, u64),
    ) -> Result<(), VqdError> {
        if j >= self.names.len() || start + n > self.n_rows {
            return Err(VqdError::bin_corpus(
                &self.path,
                format!(
                    "cell range {start}..{} of column {j} out of bounds ({} rows × {} cols)",
                    start + n,
                    self.n_rows,
                    self.names.len()
                ),
            ));
        }
        self.ensure_verified(j)?;
        self.check_not_shrunk()?;
        let mut scratch = Vec::new();
        let mut cells: Vec<u64> = Vec::new();
        let mut i = 0usize;
        while i < n {
            let row = start + i;
            let g = row / self.block_rows;
            let in_b = row % self.block_rows;
            let rows_g = self.rows_in_group(g);
            let take = (rows_g - in_b).min(n - i);
            let m = self.meta(g, j);
            if m.codec == CODEC_RAW {
                // Touch only the covered cells of the raw block.
                match &self.backing {
                    Backing::Map(map) => {
                        let off = (m.offset + in_b as u64 * CELL_BYTES) as usize;
                        let bytes = map
                            .as_slice()
                            .get(off..off + take * CELL_BYTES as usize)
                            .ok_or_else(|| {
                                VqdError::bin_corpus(&self.path, "raw block outside the map")
                            })?;
                        for (k, c) in bytes.chunks_exact(CELL_BYTES as usize).enumerate() {
                            put(
                                i + k,
                                u64::from_le_bytes([
                                    c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
                                ]),
                            );
                        }
                    }
                    Backing::Pread => {
                        scratch.resize(take * CELL_BYTES as usize, 0);
                        self.read_at(&mut scratch, m.offset + in_b as u64 * CELL_BYTES)
                            .map_err(|e| VqdError::io(&self.path, e))?;
                        for (k, c) in scratch.chunks_exact(CELL_BYTES as usize).enumerate() {
                            put(
                                i + k,
                                u64::from_le_bytes([
                                    c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
                                ]),
                            );
                        }
                    }
                }
            } else {
                let bytes = self.block_bytes(m, &mut scratch)?;
                decode_block(m.codec, bytes, rows_g, &mut cells).map_err(|msg| {
                    VqdError::bin_corpus(
                        &self.path,
                        format!("column {j} ({:?}) group {g}: {msg}", self.names[j]),
                    )
                })?;
                for (k, &bits) in cells[in_b..in_b + take].iter().enumerate() {
                    put(i + k, bits);
                }
            }
            i += take;
        }
        Ok(())
    }

    /// Copy rows `start..start + out.len()` of column `j` into `out`
    /// (raw cell values; absent cells read as the NaN filler). The
    /// first access to a column verifies all its block checksums;
    /// later accesses skip them.
    pub fn fill_column(&self, j: usize, start: usize, out: &mut [f64]) -> io::Result<()> {
        let n = out.len();
        self.for_cells(j, start, n, |k, bits| out[k] = f64::from_bits(bits))
            .map_err(io::Error::other)
    }

    /// Borrow rows `start..` of column `j` as raw little-endian f64
    /// bit patterns, zero-copy, up to the end of the serving block.
    /// `Ok(Some(..))` only when the backend is mmap, the block is Raw
    /// and 8-aligned, and the target is little-endian (so the mapped
    /// bytes *are* native `u64`s); every other case is `Ok(None)` and
    /// callers fall back to [`VqdcReader::fill_column`]. Verifies the
    /// column lazily; the shrink guard's length re-check is amortised
    /// over [`SHRINK_CHECK_PERIOD`] borrows (it is best-effort under
    /// mmap regardless — see [`VqdcIoMode`]).
    pub fn borrow_cells(&self, j: usize, start: usize) -> Result<Option<&[u64]>, VqdError> {
        if j >= self.names.len() || start >= self.n_rows {
            return Err(VqdError::bin_corpus(
                &self.path,
                format!(
                    "cell {start} of column {j} out of bounds ({} rows × {} cols)",
                    self.n_rows,
                    self.names.len()
                ),
            ));
        }
        if cfg!(target_endian = "big") {
            return Ok(None);
        }
        let Backing::Map(map) = &self.backing else {
            return Ok(None);
        };
        let g = start / self.block_rows;
        let in_b = start % self.block_rows;
        let m = self.meta(g, j);
        if m.codec != CODEC_RAW {
            return Ok(None);
        }
        self.ensure_verified(j)?;
        // Amortised shrink guard: an fstat per call would cost as much
        // as the pread it replaces. First call always checks.
        if self
            .borrow_tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(SHRINK_CHECK_PERIOD)
        {
            self.check_not_shrunk()?;
        }
        let take = self.rows_in_group(g) - in_b;
        let off = (m.offset + in_b as u64 * CELL_BYTES) as usize;
        let bytes = map
            .as_slice()
            .get(off..off + take * CELL_BYTES as usize)
            .ok_or_else(|| VqdError::bin_corpus(&self.path, "raw block outside the map"))?;
        let ptr = bytes.as_ptr();
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<u64>()) {
            // v1 column payloads sit 4 past an arbitrary offset; only
            // lend views that are truly aligned.
            return Ok(None);
        }
        // SAFETY: the byte range lies inside the live read-only map
        // (borrowing &self pins it), is 8-aligned (checked above), and
        // u64 has no invalid bit patterns. On little-endian targets
        // the stored LE cells are native u64 values.
        Ok(Some(unsafe {
            std::slice::from_raw_parts(ptr as *const u64, take)
        }))
    }

    /// Read one full column (first access verifies its checksums).
    pub fn column(&self, j: usize) -> Result<Vec<f64>, VqdError> {
        if j >= self.names.len() {
            return Err(VqdError::bin_corpus(
                &self.path,
                format!("column {j} of {}", self.names.len()),
            ));
        }
        let mut out = vec![0.0f64; self.n_rows];
        self.for_cells(j, 0, self.n_rows, |k, bits| out[k] = f64::from_bits(bits))?;
        Ok(out)
    }

    /// Verify every block checksum of every column, unconditionally —
    /// a fresh integrity sweep even on columns already lazily verified.
    pub fn verify(&self) -> Result<(), VqdError> {
        self.check_not_shrunk()?;
        let mut scratch = Vec::new();
        for j in 0..self.names.len() {
            for g in 0..self.n_groups {
                let m = self.meta(g, j);
                let bytes = self.block_bytes(m, &mut scratch)?;
                if checksum32(bytes) != m.sum {
                    return Err(VqdError::bin_corpus(
                        &self.path,
                        format!(
                            "column {j} ({:?}) group {g} checksum mismatch",
                            self.names[j]
                        ),
                    ));
                }
            }
            self.verified[j].store(true, Ordering::Release);
        }
        Ok(())
    }

    /// Reconstruct rows `start..start + count` as [`LabeledRun`]s —
    /// the blocked transpose the streaming corpus reader uses. Each
    /// session's metric list comes back in its original emission order
    /// with original value bits.
    pub fn read_rows(&self, start: usize, count: usize) -> Result<Vec<LabeledRun>, VqdError> {
        let count = count.min(self.n_rows.saturating_sub(start));
        if count == 0 {
            return Ok(Vec::new());
        }
        let n_cols = self.names.len();
        let mut block: Vec<Vec<f64>> = Vec::with_capacity(n_cols);
        for j in 0..n_cols {
            let mut col = vec![0.0f64; count];
            self.for_cells(j, start, count, |k, bits| col[k] = f64::from_bits(bits))?;
            block.push(col);
        }
        let mut out = Vec::with_capacity(count);
        for (i, &shape_id) in self.row_shape[start..start + count].iter().enumerate() {
            let shape = &self.shapes[shape_id as usize];
            let metrics: Vec<(String, f64)> = shape
                .iter()
                .map(|&c| (self.names[c as usize].clone(), block[c as usize][i]))
                .collect();
            out.push(LabeledRun {
                metrics,
                truth: self.truths[start + i],
            });
        }
        Ok(out)
    }

    /// Reconstruct the whole corpus, checksum-verified (lazily, per
    /// column, on first touch). On the mmap backend the whole data
    /// region is `madvise(SEQUENTIAL)`-hinted first, since this is a
    /// front-to-back scan of every block.
    pub fn to_runs(&self) -> Result<Vec<LabeledRun>, VqdError> {
        self.advise_sequential_scan();
        self.read_rows(0, self.n_rows)
    }

    /// Hint the kernel that the data region is about to be scanned
    /// front to back (no-op on the pread backend).
    pub fn advise_sequential_scan(&self) {
        if let Backing::Map(map) = &self.backing {
            if let Some(first) = self.blocks.first() {
                map.advise_sequential(first.offset as usize, map.len());
            }
        }
    }
}

/// Positioned read against `file` (shared by the open-time directory
/// reads and the pread backend).
fn read_at_raw(file: &File, path: &Path, buf: &mut [u8], off: u64) -> io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        let _ = path;
        file.read_exact_at(buf, off)
    }
    #[cfg(not(unix))]
    {
        use std::io::Seek;
        let mut f = File::open(path)?;
        f.seek(io::SeekFrom::Start(off))?;
        f.read_exact(buf)
    }
}

/// `read_at_raw` with the reader's typed-error convention: truncation
/// is a [`VqdError::BinCorpus`], anything else [`VqdError::Io`].
fn read_at_file(file: &File, path: &Path, buf: &mut [u8], off: u64) -> Result<(), VqdError> {
    read_at_raw(file, path, buf, off).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            VqdError::bin_corpus(path, "file truncated (unexpected EOF)")
        } else {
            VqdError::io(path, e)
        }
    })
}

/// Resolve [`VqdcIoMode::Auto`] against `VQD_VQDC_IO`.
fn resolve_io_mode(mode: VqdcIoMode) -> Result<VqdcIoMode, VqdError> {
    if mode != VqdcIoMode::Auto {
        return Ok(mode);
    }
    match std::env::var("VQD_VQDC_IO") {
        Ok(v) if v == "pread" => Ok(VqdcIoMode::Pread),
        Ok(v) if v == "mmap" => Ok(VqdcIoMode::Mmap),
        Ok(v) if v.is_empty() => Ok(VqdcIoMode::Auto),
        Ok(v) => Err(VqdError::Config(format!(
            "VQD_VQDC_IO must be \"mmap\" or \"pread\", not {v:?}"
        ))),
        Err(_) => Ok(VqdcIoMode::Auto),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_runs() -> Vec<LabeledRun> {
        vec![
            LabeledRun {
                metrics: vec![
                    ("mobile.phy.rssi_avg".into(), -62.25),
                    ("mobile.hw.cpu_avg".into(), f64::NAN),
                    ("mobile.tcp.rtt".into(), -0.0),
                ],
                truth: GroundTruth {
                    fault: FaultKind::LowRssi,
                    qoe: QoeClass::Severe,
                },
            },
            LabeledRun {
                // Different shape: a subset, in a different order.
                metrics: vec![
                    ("mobile.tcp.rtt".into(), 0.125),
                    ("server.tcp.iat".into(), 1e-300),
                ],
                truth: GroundTruth {
                    fault: FaultKind::None,
                    qoe: QoeClass::Good,
                },
            },
            LabeledRun {
                metrics: vec![],
                truth: GroundTruth {
                    fault: FaultKind::None,
                    qoe: QoeClass::Mild,
                },
            },
        ]
    }

    fn open_bytes(bytes: &[u8]) -> Result<VqdcReader, VqdError> {
        open_bytes_mode(bytes, VqdcIoMode::Auto)
    }

    fn open_bytes_mode(bytes: &[u8], mode: VqdcIoMode) -> Result<VqdcReader, VqdError> {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "vqdc-test-{}-{:p}-{:?}.vqdc",
            std::process::id(),
            bytes.as_ptr(),
            mode
        ));
        std::fs::write(&path, bytes).unwrap();
        let r = VqdcReader::open_with(&path, mode);
        std::fs::remove_file(&path).ok();
        r
    }

    fn assert_same_corpus(a: &[LabeledRun], b: &[LabeledRun]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.truth.fault, y.truth.fault);
            assert_eq!(x.truth.qoe, y.truth.qoe);
            assert_eq!(x.metrics.len(), y.metrics.len());
            for ((na, va), (nb, vb)) in x.metrics.iter().zip(&y.metrics) {
                assert_eq!(na, nb);
                assert_eq!(va.to_bits(), vb.to_bits(), "{na}");
            }
        }
    }

    #[test]
    fn round_trips_shapes_labels_and_value_bits_both_versions() {
        let runs = sample_runs();
        for opts in [
            VqdcWriteOptions::v1(),
            VqdcWriteOptions::default(),
            VqdcWriteOptions {
                block_rows: 2,
                ..VqdcWriteOptions::default()
            },
            VqdcWriteOptions {
                compress: false,
                ..VqdcWriteOptions::default()
            },
        ] {
            let bytes = corpus_to_vqdc_bytes_with(&runs, &opts).unwrap();
            let reader = open_bytes(&bytes).unwrap();
            assert_eq!(reader.n_rows(), 3);
            let back = reader.to_runs().unwrap();
            assert_same_corpus(&runs, &back);
            // Text round trip through the binary format is
            // byte-identical.
            let text = crate::dataset::corpus_to_text(&runs);
            assert_eq!(crate::dataset::corpus_to_text(&back), text);
        }
    }

    #[test]
    fn mmap_and_pread_backends_agree_bit_for_bit() {
        let runs = sample_runs();
        for opts in [
            VqdcWriteOptions::v1(),
            VqdcWriteOptions::default(),
            VqdcWriteOptions {
                block_rows: 2,
                ..VqdcWriteOptions::default()
            },
        ] {
            let bytes = corpus_to_vqdc_bytes_with(&runs, &opts).unwrap();
            let pread = open_bytes_mode(&bytes, VqdcIoMode::Pread).unwrap();
            assert_eq!(pread.io_backend(), "pread");
            let auto = open_bytes_mode(&bytes, VqdcIoMode::Auto).unwrap();
            for j in 0..pread.feature_names().len() {
                let a = pread.column(j).unwrap();
                let b = auto.column(j).unwrap();
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&a), bits(&b), "column {j}");
            }
            assert_eq!(
                crate::dataset::corpus_to_text(&pread.to_runs().unwrap()),
                crate::dataset::corpus_to_text(&auto.to_runs().unwrap())
            );
        }
    }

    #[test]
    fn borrowed_views_match_filled_cells() {
        let runs = sample_runs();
        let opts = VqdcWriteOptions {
            compress: false,
            block_rows: 2,
            ..VqdcWriteOptions::default()
        };
        let bytes = corpus_to_vqdc_bytes_with(&runs, &opts).unwrap();
        let reader = open_bytes(&bytes).unwrap();
        if reader.io_backend() != "mmap" {
            return; // target without the shim: nothing to lend
        }
        for j in 0..reader.feature_names().len() {
            let mut whole = vec![0.0; reader.n_rows()];
            reader.fill_column(j, 0, &mut whole).unwrap();
            let mut at = 0usize;
            while at < reader.n_rows() {
                let cells = reader
                    .borrow_cells(j, at)
                    .unwrap()
                    .expect("raw v2 blocks must be borrowable under mmap");
                assert!(!cells.is_empty());
                for (k, &bits) in cells.iter().enumerate() {
                    assert_eq!(bits, whole[at + k].to_bits(), "col {j} row {}", at + k);
                }
                at += cells.len();
            }
        }
    }

    #[test]
    fn streaming_writer_is_byte_identical_to_batch_encoder() {
        let runs = sample_runs();
        for opts in [
            VqdcWriteOptions::v1(),
            VqdcWriteOptions::default(),
            VqdcWriteOptions {
                block_rows: 2,
                ..VqdcWriteOptions::default()
            },
            VqdcWriteOptions {
                block_rows: 2,
                compress: false,
                ..VqdcWriteOptions::default()
            },
        ] {
            let want = corpus_to_vqdc_bytes_with(&runs, &opts).unwrap();
            for chunk in [1usize, 2, 3, 7] {
                let mut schema = VqdcSchema::new();
                for c in runs.chunks(chunk) {
                    schema.scan(c).unwrap();
                }
                let path = std::env::temp_dir().join(format!(
                    "vqdc-stream-{}-{chunk}-{:?}-{}-{}.vqdc",
                    std::process::id(),
                    opts.version,
                    opts.block_rows,
                    opts.compress
                ));
                let mut w = VqdcWriter::create_with(&path, schema, &opts).unwrap();
                for c in runs.chunks(chunk) {
                    w.write_rows(c).unwrap();
                }
                assert_eq!(w.finish().unwrap(), runs.len());
                let got = std::fs::read(&path).unwrap();
                std::fs::remove_file(&path).ok();
                assert_eq!(got, want, "chunk={chunk} opts={opts:?}");
            }
        }
    }

    #[test]
    fn streaming_writer_rejects_source_changed_between_passes() {
        let runs = sample_runs();
        for opts in [VqdcWriteOptions::v1(), VqdcWriteOptions::default()] {
            let mut schema = VqdcSchema::new();
            schema.scan(&runs).unwrap();
            let path = std::env::temp_dir().join(format!(
                "vqdc-stream-race-{}-{:?}.vqdc",
                std::process::id(),
                opts.version
            ));
            // Pass 2 sees a different second session: typed error, no
            // file silently encoding the wrong values.
            let mut changed = runs.clone();
            changed[1].metrics.push(("late.metric".into(), 9.0));
            let mut w = VqdcWriter::create_with(&path, schema, &opts).unwrap();
            let e = w.write_rows(&changed).unwrap_err();
            assert!(
                e.to_string().contains("between schema scan and write"),
                "{e}"
            );
            // And a shrunken pass 2 fails at finish.
            let mut schema = VqdcSchema::new();
            schema.scan(&runs).unwrap();
            let mut w = VqdcWriter::create_with(&path, schema, &opts).unwrap();
            w.write_rows(&runs[..1]).unwrap();
            assert!(w.finish().is_err());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn absent_cell_differs_from_present_nan() {
        let runs = sample_runs();
        for opts in [VqdcWriteOptions::v1(), VqdcWriteOptions::default()] {
            let bytes = corpus_to_vqdc_bytes_with(&runs, &opts).unwrap();
            let reader = open_bytes(&bytes).unwrap();
            let back = reader.to_runs().unwrap();
            // Row 0 carries cpu_avg as a *present* NaN.
            assert!(back[0]
                .metrics
                .iter()
                .any(|(n, v)| n == "mobile.hw.cpu_avg" && v.is_nan()));
            // Row 1 does not carry it at all.
            assert!(!back[1]
                .metrics
                .iter()
                .any(|(n, _)| n == "mobile.hw.cpu_avg"));
        }
    }

    #[test]
    fn duplicate_metric_in_one_session_is_rejected() {
        let runs = vec![LabeledRun {
            metrics: vec![("a.b".into(), 1.0), ("a.b".into(), 2.0)],
            truth: GroundTruth {
                fault: FaultKind::None,
                qoe: QoeClass::Good,
            },
        }];
        let e = corpus_to_vqdc_bytes(&runs).unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
        assert!(corpus_to_vqdc_bytes_with(&runs, &VqdcWriteOptions::default()).is_err());
    }

    #[test]
    fn corruption_is_a_typed_error_never_a_panic() {
        let runs = sample_runs();
        for opts in [VqdcWriteOptions::v1(), VqdcWriteOptions::default()] {
            let bytes = corpus_to_vqdc_bytes_with(&runs, &opts).unwrap();
            // Bad magic.
            let mut b = bytes.clone();
            b[0] ^= 0xff;
            assert!(matches!(open_bytes(&b), Err(VqdError::BinCorpus { .. })));
            // Truncation at every section boundary and mid-file.
            for cut in [4usize, 12, 40, bytes.len() / 2, bytes.len() - 3] {
                let b = &bytes[..cut.min(bytes.len())];
                assert!(open_bytes(b).is_err(), "cut at {cut} must fail ({opts:?})");
            }
            // Flipped payload byte anywhere: either a section/table
            // checksum catches it at open, or a block checksum does on
            // read.
            for flip in [bytes.len() - 1, bytes.len() / 2, 60] {
                let mut b = bytes.clone();
                b[flip] ^= 0x01;
                match open_bytes(&b) {
                    Err(_) => {}
                    Ok(r) => {
                        let _ = r.to_runs(); // must not panic
                    }
                }
            }
        }
    }

    #[test]
    fn v2_header_on_v1_body_is_a_typed_error() {
        let runs = sample_runs();
        let mut bytes = corpus_to_vqdc_bytes(&runs).unwrap();
        // Swap the magic to v2 over an otherwise-v1 body: the META
        // version (1) no longer matches the magic.
        bytes[..8].copy_from_slice(VQDC2_MAGIC);
        let e = open_bytes(&bytes).unwrap_err();
        assert!(matches!(e, VqdError::BinCorpus { .. }), "{e}");
        // And a v2 file whose trailer is sliced off — the shape a v1
        // writer would leave — names the missing block table.
        let v2 = corpus_to_vqdc_bytes_with(&runs, &VqdcWriteOptions::default()).unwrap();
        let e = open_bytes(&v2[..v2.len() - TRAILER_BYTES as usize]).unwrap_err();
        assert!(e.to_string().contains("BLOCKDIR"), "{e}");
    }

    #[test]
    fn shrunken_file_is_a_typed_error_not_sigbus() {
        let runs = sample_runs();
        let bytes = corpus_to_vqdc_bytes_with(&runs, &VqdcWriteOptions::default()).unwrap();
        let path = std::env::temp_dir().join(format!("vqdc-shrink-{}.vqdc", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let reader = VqdcReader::open(&path).unwrap();
        if reader.io_backend() == "mmap" {
            // Truncate the file beneath the live map, then read.
            File::options()
                .write(true)
                .open(&path)
                .unwrap()
                .set_len(24)
                .unwrap();
            let e = reader.to_runs().unwrap_err();
            assert!(e.to_string().contains("shrank"), "{e}");
            assert!(matches!(e, VqdError::BinCorpus { .. }));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fill_column_rejects_out_of_bounds() {
        let bytes = corpus_to_vqdc_bytes(&sample_runs()).unwrap();
        let reader = open_bytes(&bytes).unwrap();
        let mut buf = vec![0.0; 10];
        assert!(reader.fill_column(0, 0, &mut buf).is_err()); // past n_rows
        let mut one = vec![0.0; 1];
        assert!(reader.fill_column(99, 0, &mut one).is_err()); // no such column
        assert!(reader.borrow_cells(99, 0).is_err());
    }

    #[test]
    fn v2_compresses_the_nan_filler_heavy_corpus() {
        // Sparse shapes mean long filler runs: v2 must be smaller.
        let runs: Vec<LabeledRun> = (0..2000)
            .map(|i| LabeledRun {
                metrics: if i % 2 == 0 {
                    vec![("a.x".into(), 1.0 + (i % 5) as f64 * 0.5)]
                } else {
                    vec![("b.y".into(), -3.0), ("a.x".into(), 2.0)]
                },
                truth: GroundTruth {
                    fault: FaultKind::None,
                    qoe: QoeClass::Good,
                },
            })
            .collect();
        let v1 = corpus_to_vqdc_bytes(&runs).unwrap();
        let v2 = corpus_to_vqdc_bytes_with(&runs, &VqdcWriteOptions::default()).unwrap();
        assert!(
            (v2.len() as f64) < v1.len() as f64 / 1.5,
            "v2 {} bytes vs v1 {}",
            v2.len(),
            v1.len()
        );
        let reader = open_bytes(&v2).unwrap();
        assert_same_corpus(&runs, &reader.to_runs().unwrap());
    }
}
