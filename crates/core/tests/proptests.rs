//! Property-based robustness: diagnosis must never panic, whatever
//! subset of the telemetry survives and however the surviving values
//! are mangled.

use std::sync::OnceLock;

use proptest::prelude::*;

use vqd_core::dataset::{generate_corpus, to_dataset, CorpusConfig, LabeledRun};
use vqd_core::diagnoser::{Diagnoser, DiagnoserConfig, Resolution};
use vqd_core::scenario::LabelScheme;
use vqd_core::stream::{FlushCause, FlushedSession, ServeConfig, StreamServer};
use vqd_probes::degrade::{DegradeKind, DegradePlan};
use vqd_probes::event::ProbeEvent;
use vqd_video::catalog::Catalog;

/// One lab-trained model plus its corpus, shared by every property
/// (simulation and training are the expensive part).
fn fixture() -> &'static (std::sync::Arc<Diagnoser>, Vec<LabeledRun>) {
    static FIX: OnceLock<(std::sync::Arc<Diagnoser>, Vec<LabeledRun>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let cfg = CorpusConfig {
            sessions: 24,
            seed: 7701,
            ..Default::default()
        };
        let runs = generate_corpus(&cfg, &Catalog::top100(42));
        let model = Diagnoser::train(
            &to_dataset(&runs, LabelScheme::Exact),
            &DiagnoserConfig::default(),
        );
        (std::sync::Arc::new(model), runs)
    })
}

/// Check the invariants every diagnosis must satisfy.
fn check_diagnosis(model: &Diagnoser, metrics: &[(String, f64)]) -> Result<(), TestCaseError> {
    let dx = model.diagnose(metrics);
    prop_assert!(dx.class < model.classes.len());
    prop_assert_eq!(&dx.label, &model.classes[dx.class]);
    let total: f64 = dx.dist.iter().sum();
    prop_assert!(
        total.abs() < 1e-9 || (total - 1.0).abs() < 1e-6,
        "dist sums to {total}"
    );
    prop_assert!((0.0..=1.0).contains(&dx.quality.feature_coverage));
    prop_assert!((0.0..=1.0).contains(&dx.quality.missing_descent));
    prop_assert!((0.0..=1.0 + 1e-9).contains(&dx.quality.confidence));
    prop_assert_eq!(
        dx.fallback_label.is_some(),
        dx.resolution != Resolution::Exact
    );
    Ok(())
}

proptest! {
    /// Dropping any subset of the metrics (down to none at all) never
    /// panics and always yields a well-formed diagnosis.
    #[test]
    fn diagnose_survives_any_metric_subset(
        run in any::<prop::sample::Index>(),
        mask in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let (model, runs) = fixture();
        let model: &Diagnoser = model;
        let base = &runs[run.index(runs.len())].metrics;
        let kept: Vec<(String, f64)> = base
            .iter()
            .enumerate()
            .filter(|(i, _)| mask[i % mask.len()])
            .map(|(_, m)| m.clone())
            .collect();
        check_diagnosis(model, &kept)?;
    }

    /// Dropping whole vantage points (any subset of them) never
    /// panics — the paper's partial-deployment scenario.
    #[test]
    fn diagnose_survives_any_vp_subset(
        run in any::<prop::sample::Index>(),
        keep_mobile in any::<bool>(),
        keep_router in any::<bool>(),
        keep_server in any::<bool>(),
    ) {
        let (model, runs) = fixture();
        let model: &Diagnoser = model;
        let base = &runs[run.index(runs.len())].metrics;
        let kept: Vec<(String, f64)> = base
            .iter()
            .filter(|(n, _)| {
                let vp = n.split('.').next().unwrap_or("");
                (vp == "mobile" && keep_mobile)
                    || (vp == "router" && keep_router)
                    || (vp == "server" && keep_server)
            })
            .cloned()
            .collect();
        check_diagnosis(model, &kept)?;
    }

    /// Mangling surviving values — NaN, infinities, zeros, huge
    /// magnitudes — never panics the pipeline (FC + tree descent).
    #[test]
    fn diagnose_survives_corrupt_values(
        run in any::<prop::sample::Index>(),
        hits in proptest::collection::vec((any::<prop::sample::Index>(), 0u8..5), 1..32),
    ) {
        let (model, runs) = fixture();
        let model: &Diagnoser = model;
        let mut metrics = runs[run.index(runs.len())].metrics.clone();
        for (pick, variant) in &hits {
            let i = pick.index(metrics.len());
            metrics[i].1 = match variant {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                _ => 1e300,
            };
        }
        check_diagnosis(model, &metrics)?;
    }

    /// Any degradation plan applied to any run yields metrics the
    /// diagnoser accepts, and surviving metric names are always a
    /// subset of the input names (degradation never invents data).
    #[test]
    fn degrade_then_diagnose_never_panics(
        kind_pick in any::<prop::sample::Index>(),
        intensity in 0.0f64..1.0,
        seed in 0u64..1_000_000,
        run in any::<prop::sample::Index>(),
    ) {
        let (model, runs) = fixture();
        let model: &Diagnoser = model;
        let kind = DegradeKind::ALL[kind_pick.index(DegradeKind::ALL.len())];
        let plan = DegradePlan::new(kind, intensity, seed);
        let i = run.index(runs.len());
        let degraded = plan.apply(i as u64, &runs[i].metrics);
        for (n, _) in &degraded {
            prop_assert!(runs[i].metrics.iter().any(|(m, _)| m == n));
        }
        check_diagnosis(model, &degraded)?;
    }
}

/// Bitwise equality between two diagnoses — the batch/scalar contract
/// is exact IEEE-754 bits, not approximate agreement.
fn assert_bitwise(
    a: &vqd_core::diagnoser::Diagnosis,
    b: &vqd_core::diagnoser::Diagnosis,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.label, &b.label);
    prop_assert_eq!(a.class, b.class);
    prop_assert_eq!(a.dist.len(), b.dist.len());
    for (x, y) in a.dist.iter().zip(&b.dist) {
        prop_assert_eq!(x.to_bits(), y.to_bits());
    }
    prop_assert_eq!(
        a.quality.feature_coverage.to_bits(),
        b.quality.feature_coverage.to_bits()
    );
    prop_assert_eq!(
        a.quality.missing_descent.to_bits(),
        b.quality.missing_descent.to_bits()
    );
    prop_assert_eq!(
        a.quality.confidence.to_bits(),
        b.quality.confidence.to_bits()
    );
    prop_assert_eq!(&a.quality.silent_vps, &b.quality.silent_vps);
    prop_assert_eq!(a.resolution, b.resolution);
    prop_assert_eq!(&a.fallback_label, &b.fallback_label);
    Ok(())
}

proptest! {
    /// The batched engine is bit-identical to the per-session scalar
    /// path for any mix of metric subsets, at any thread count — the
    /// serving engine's core contract, probed on adversarial shapes
    /// (shared plans, unique plans, empty sessions) rather than just
    /// the fixed corpus.
    #[test]
    fn batch_matches_scalar_bitwise_any_shape(
        picks in proptest::collection::vec(any::<prop::sample::Index>(), 1..10),
        mask in proptest::collection::vec(any::<bool>(), 1..64),
        threads in 0usize..9,
    ) {
        let (model, runs) = fixture();
        let model: &Diagnoser = model;
        let sessions: Vec<Vec<(String, f64)>> = picks
            .iter()
            .enumerate()
            .map(|(j, p)| {
                let base = &runs[p.index(runs.len())].metrics;
                base.iter()
                    .enumerate()
                    // Rotate the mask per session so the batch mixes
                    // repeated and distinct shapes.
                    .filter(|(i, _)| mask[(i + j) % mask.len()])
                    .map(|(_, m)| m.clone())
                    .collect()
            })
            .collect();
        let batch = model.diagnose_batch(&sessions, threads);
        for (i, s) in sessions.iter().enumerate() {
            assert_bitwise(&model.diagnose(s), &batch.get(i))?;
        }
    }

    /// Same contract under telemetry degradation: any plan, any
    /// intensity, batch == scalar bit for bit and threads are
    /// invisible.
    #[test]
    fn batch_matches_scalar_bitwise_degraded(
        kind_pick in any::<prop::sample::Index>(),
        intensity in 0.0f64..1.0,
        seed in 0u64..1_000_000,
        threads in 1usize..9,
    ) {
        let (model, runs) = fixture();
        let model: &Diagnoser = model;
        let kind = DegradeKind::ALL[kind_pick.index(DegradeKind::ALL.len())];
        let plan = DegradePlan::new(kind, intensity, seed);
        let sessions: Vec<Vec<(String, f64)>> = runs
            .iter()
            .take(12)
            .enumerate()
            .map(|(i, r)| plan.apply(i as u64, &r.metrics))
            .collect();
        let b1 = model.diagnose_batch(&sessions, 1);
        let bt = model.diagnose_batch(&sessions, threads);
        for (i, s) in sessions.iter().enumerate() {
            assert_bitwise(&model.diagnose(s), &b1.get(i))?;
            assert_bitwise(&b1.get(i), &bt.get(i))?;
        }
    }
}

/// Replay events through a streaming daemon and collect every flushed
/// session — the proptest twin of the helper in `tests/stream.rs`.
fn serve_all(cfg: ServeConfig, events: Vec<ProbeEvent>) -> Vec<FlushedSession> {
    use std::sync::{Arc, Mutex, PoisonError};
    let (model, _) = fixture();
    let got: Arc<Mutex<Vec<FlushedSession>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    let mut server = StreamServer::new(Arc::clone(model), cfg, move |fs| {
        sink.lock().unwrap_or_else(PoisonError::into_inner).push(fs);
    });
    for ev in events {
        server
            .push_event(ev)
            .unwrap_or_else(|e| panic!("push without durability cannot fail: {e}"));
    }
    server
        .finish()
        .unwrap_or_else(|e| panic!("finish without durability cannot fail: {e}"));
    Arc::try_unwrap(got)
        .unwrap_or_else(|_| panic!("sink still shared after finish"))
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Deterministic xorshift64* Fisher–Yates, same scheme as `vqd events
/// --shuffle`, so any permutation is reproducible from one u64.
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

proptest! {
    /// The daemon's hard invariant, probed adversarially: a session's
    /// diagnosis is invariant under arbitrary permutation and
    /// duplication of its events, at any shard count — always bitwise
    /// identical to the scalar engine on the canonical sample set.
    #[test]
    fn stream_diagnosis_invariant_under_permutation_and_duplication(
        picks in proptest::collection::vec(any::<prop::sample::Index>(), 1..5),
        dup_mask in proptest::collection::vec(any::<bool>(), 1..32),
        order_seed in any::<u64>(),
        shards in 1usize..9,
    ) {
        let (model, runs) = fixture();
        let model: &Diagnoser = model;
        let mut events = Vec::new();
        for (j, p) in picks.iter().enumerate() {
            let m = &runs[p.index(runs.len())].metrics;
            for (k, (n, v)) in m.iter().enumerate() {
                events.push(ProbeEvent::sample(j.to_string(), k as u64, n.clone(), *v));
            }
            events.push(ProbeEvent::end(j.to_string(), m.len() as u64));
        }
        let dups: Vec<ProbeEvent> = events
            .iter()
            .enumerate()
            .filter(|(i, _)| dup_mask[i % dup_mask.len()])
            .map(|(_, e)| e.clone())
            .collect();
        events.extend(dups);
        shuffle(&mut events, order_seed);
        let got = serve_all(
            ServeConfig {
                shards,
                flush_batch: 3, // force several partial flush batches
                ..ServeConfig::default()
            },
            events,
        );
        prop_assert_eq!(got.len(), picks.len());
        for fs in &got {
            prop_assert_eq!(fs.cause, FlushCause::Complete);
            let j: usize = fs.session.parse().unwrap_or(usize::MAX);
            prop_assert!(j < picks.len(), "unknown session {:?}", fs.session);
            let want = model.diagnose(&runs[picks[j].index(runs.len())].metrics);
            assert_bitwise(&want, &fs.diagnosis)?;
        }
    }

    /// Watermark-expired partial sessions resolve through the
    /// quality-tier fallback with no panic, for any `DegradePlan`:
    /// the expired diagnosis is well formed, bitwise equal to the
    /// scalar result on the samples that arrived, and a coarser tier
    /// always carries a fallback answer.
    #[test]
    fn watermark_expired_partials_fall_back_for_any_degrade_plan(
        kind_pick in any::<prop::sample::Index>(),
        intensity in 0.0f64..1.0,
        seed in 0u64..1_000_000,
        run in any::<prop::sample::Index>(),
        frac in 0.05f64..0.95,
    ) {
        let (model, runs) = fixture();
        let model: &Diagnoser = model;
        let kind = DegradeKind::ALL[kind_pick.index(DegradeKind::ALL.len())];
        let plan = DegradePlan::new(kind, intensity, seed);
        let i = run.index(runs.len());
        let degraded = plan.apply(i as u64, &runs[i].metrics);
        if degraded.is_empty() {
            // Plan erased every sample: nothing ever reaches the wire.
            return Ok(());
        }
        let keep = ((degraded.len() as f64 * frac) as usize).max(1);
        let partial = &degraded[..keep];
        let mut events = Vec::new();
        // The degraded session sends a prefix around t=0, then goes
        // quiet — no end marker ever arrives.
        for (k, (n, v)) in partial.iter().enumerate() {
            events.push(ProbeEvent::sample("stale", k as u64, n.clone(), *v).at(k as f64 * 1e-3));
        }
        // A busy neighbour on the same shard drives the event clock
        // far past the lateness bound so the partial session expires.
        let busy = &runs[(i + 1) % runs.len()].metrics;
        for (k, (n, v)) in busy.iter().enumerate() {
            events.push(ProbeEvent::sample("busy", k as u64, n.clone(), *v).at(1_000.0 + k as f64));
        }
        events.push(ProbeEvent::end("busy", busy.len() as u64).at(1_000.0 + busy.len() as f64));
        let got = serve_all(
            ServeConfig {
                shards: 1,
                lateness: Some(5.0),
                ..ServeConfig::default()
            },
            events,
        );
        let stale = got.iter().find(|fs| fs.session == "stale");
        let stale = match stale {
            Some(fs) => fs,
            None => return Err(TestCaseError::fail("stale session never flushed")),
        };
        // Sweeps are amortised, so a short busy stream may only expire
        // the session at EOF — either way it must resolve, not panic.
        prop_assert!(
            matches!(stale.cause, FlushCause::Watermark | FlushCause::Shutdown),
            "unexpected flush cause {:?}",
            stale.cause
        );
        assert_bitwise(&model.diagnose(partial), &stale.diagnosis)?;
        prop_assert_eq!(
            stale.diagnosis.fallback_label.is_some(),
            stale.diagnosis.resolution != Resolution::Exact
        );
    }
}

// ---------------------------------------------------------------------------
// Snapshot save → load bit-exact round trip.
// ---------------------------------------------------------------------------

/// A float that stresses the hex-bits codec: mostly arbitrary bit
/// patterns, salted with the values a naive `{}`/`parse` codec
/// mangles (-0.0, NaN with a payload, ±inf, subnormals).
fn chaos_f64(rng: &mut vqd_core::SplitMix64) -> f64 {
    match rng.below(8) {
        0 => -0.0,
        1 => f64::NAN,
        2 => f64::from_bits(0x7ff8_0000_0000_beef), // NaN payload
        3 => f64::INFINITY,
        4 => f64::NEG_INFINITY,
        5 => f64::MIN_POSITIVE / 2.0, // subnormal
        _ => f64::from_bits(rng.next_u64()),
    }
}

/// A string that stresses the JSON string codec: quotes, backslashes,
/// control characters, tabs, newlines, non-ASCII.
fn chaos_string(rng: &mut vqd_core::SplitMix64) -> String {
    const POOL: &[char] = &[
        'a', 'Z', '7', '"', '\\', '\t', '\n', '\r', '\u{1}', ' ', 'é', '→', '🎬', '\u{7f}',
    ];
    let len = rng.below(12) as usize;
    (0..len)
        .map(|_| POOL[rng.below(POOL.len() as u64) as usize])
        .collect()
}

/// An arbitrary in-flight session derived from the seed stream.
fn chaos_session(rng: &mut vqd_core::SplitMix64) -> vqd_core::stream::PortableSession {
    let n_samples = rng.below(12) as usize;
    let mut samples: Vec<(u64, String, f64)> = (0..n_samples)
        .map(|_| (rng.next_u64(), chaos_string(rng), chaos_f64(rng)))
        .collect();
    samples.sort_unstable_by_key(|(seq, _, _)| *seq);
    samples.dedup_by_key(|(seq, _, _)| *seq);
    vqd_core::stream::PortableSession {
        id: chaos_string(rng),
        expected: (rng.below(2) == 0).then(|| rng.next_u64()),
        newest_ts: (rng.below(2) == 0).then(|| chaos_f64(rng)),
        duplicates: rng.next_u64(),
        shed: rng.next_u64(),
        samples,
    }
}

/// Bit-exact snapshot equality (`==` is wrong for NaN and blind to
/// -0.0).
fn assert_snap_bits_eq(
    a: &vqd_core::stream::StreamSnapshot,
    b: &vqd_core::stream::StreamSnapshot,
) -> Result<(), TestCaseError> {
    let bits = |v: Option<f64>| v.map(f64::to_bits);
    prop_assert_eq!(a.seq, b.seq);
    prop_assert_eq!(bits(a.max_ts), bits(b.max_ts));
    prop_assert_eq!(&a.tombstones, &b.tombstones);
    prop_assert_eq!(a.sessions.len(), b.sessions.len());
    for (x, y) in a.sessions.iter().zip(&b.sessions) {
        prop_assert_eq!(&x.id, &y.id);
        prop_assert_eq!(x.expected, y.expected);
        prop_assert_eq!(bits(x.newest_ts), bits(y.newest_ts));
        prop_assert_eq!(x.duplicates, y.duplicates);
        prop_assert_eq!(x.shed, y.shed);
        prop_assert_eq!(x.samples.len(), y.samples.len());
        for ((s1, n1, v1), (s2, n2, v2)) in x.samples.iter().zip(&y.samples) {
            prop_assert_eq!(s1, s2);
            prop_assert_eq!(n1, n2);
            prop_assert_eq!(v1.to_bits(), v2.to_bits());
        }
    }
    Ok(())
}

proptest! {
    /// serialize → deserialize and save → load both reproduce the
    /// snapshot bit for bit: every float (NaN payloads, -0.0, ±inf,
    /// subnormals), every id and tombstone (quotes, control chars,
    /// non-ASCII through the JSON string codec), in order.
    #[test]
    fn snapshot_roundtrip_is_bit_exact(
        seed in any::<u64>(),
        n_sessions in 0usize..8,
        n_tombstones in 0usize..8,
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        use vqd_core::stream::StreamSnapshot;
        static NEXT: AtomicU64 = AtomicU64::new(0);

        let mut rng = vqd_core::SplitMix64::new(seed);
        let snap = StreamSnapshot {
            seq: rng.next_u64(),
            max_ts: (rng.below(2) == 0).then(|| chaos_f64(&mut rng)),
            sessions: (0..n_sessions).map(|_| chaos_session(&mut rng)).collect(),
            tombstones: (0..n_tombstones).map(|_| chaos_string(&mut rng)).collect(),
        };

        // Text round trip.
        let text = snap.serialize();
        let back = StreamSnapshot::deserialize(&text)
            .unwrap_or_else(|(line, msg)| panic!("line {line}: {msg}"));
        assert_snap_bits_eq(&snap, &back)?;
        // Idempotence: re-serialising the decoded state is identical.
        prop_assert_eq!(&back.serialize(), &text);

        // Disk round trip (tmp + fsync + rename path).
        let dir = std::env::temp_dir().join(format!(
            "vqd-snap-prop-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = snap.save(&dir).unwrap();
        let loaded = StreamSnapshot::load(&path).unwrap();
        assert_snap_bits_eq(&snap, &loaded)?;
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
