//! Background variations (Section 4.2 of the paper).
//!
//! The testbed never measures on a silent network: D-ITG-style
//! application mixes run between the wired client and the server
//! (crossing LAN and WAN), and an ApacheBench-style load process
//! wobbles the content server's CPU. Training with these variations is
//! what lets the lab-trained model survive the real world.

use vqd_simnet::engine::{App, Ctl};
use vqd_simnet::ids::HostId;
use vqd_simnet::rng::SimRng;
use vqd_simnet::time::SimDuration;
use vqd_simnet::traffic::{AppMix, MixKind};

/// ApacheBench-style server load: a bounded random-walk CPU demand.
pub struct ServerLoad {
    /// The content server.
    pub host: HostId,
    /// Long-run mean demand in cores.
    pub mean_cores: f64,
    /// Walk amplitude.
    pub amplitude: f64,
    rng: SimRng,
    token: Option<u64>,
    current: f64,
}

impl ServerLoad {
    /// Load process with the given mean demand (cores).
    pub fn new(host: HostId, mean_cores: f64, amplitude: f64, seed: u64) -> Self {
        ServerLoad {
            host,
            mean_cores,
            amplitude,
            rng: SimRng::seed_from_u64(seed),
            token: None,
            current: mean_cores,
        }
    }
}

impl App for ServerLoad {
    fn start(&mut self, ctl: &mut Ctl) {
        let host = self.host;
        let demand = self.current.max(0.0);
        self.token = Some(ctl.host_mut(host).cpu.register(demand));
        ctl.timer(SimDuration::from_millis(500), 0);
    }

    fn on_timer(&mut self, _t: u64, ctl: &mut Ctl) {
        // Mean-reverting walk, clamped non-negative.
        let pull = 0.2 * (self.mean_cores - self.current);
        self.current = (self.current + pull + self.rng.normal(0.0, self.amplitude * 0.3)).max(0.0);
        if let Some(tok) = self.token {
            let host = self.host;
            let demand = self.current;
            ctl.host_mut(host).cpu.set_demand(tok, demand);
        }
        ctl.timer(SimDuration::from_millis(500), 0);
    }
}

/// The full background-variation bundle: returns the apps the
/// orchestrator registers alongside the video session.
pub fn background_apps(
    wired_client: HostId,
    server: HostId,
    level: f64,
    seed: u64,
) -> Vec<Box<dyn App>> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut apps: Vec<Box<dyn App>> = Vec::new();
    if level > 0.0 {
        apps.push(Box::new(AppMix::new(
            wired_client,
            server,
            &MixKind::ALL,
            level,
            rng.split(1).range_u64(0, u64::MAX - 1),
        )));
        apps.push(Box::new(ServerLoad::new(
            server,
            0.4 * level,
            0.5 * level,
            rng.split(2).range_u64(0, u64::MAX - 1),
        )));
    }
    apps
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqd_simnet::engine::Harness;
    use vqd_simnet::link::LinkConfig;
    use vqd_simnet::time::SimTime;
    use vqd_simnet::topology::TopologyBuilder;

    #[test]
    fn server_load_varies_cpu() {
        let mut tb = TopologyBuilder::new();
        let s = tb.add_host("server");
        let net = tb.build();
        let mut sim = Harness::new(net, 1);
        sim.add_app(Box::new(ServerLoad::new(s, 1.5, 1.0, 42)));
        let mut samples = Vec::new();
        for t in 1..60 {
            sim.run_until(SimTime::from_millis(t * 500));
            samples.push(sim.net.hosts[0].cpu.utilization());
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean > 0.1 && mean < 0.9, "mean {mean}");
        let varies = samples.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-6);
        assert!(varies, "load must fluctuate");
    }

    #[test]
    fn bundle_generates_traffic() {
        let mut tb = TopologyBuilder::new();
        let c = tb.add_host("client");
        let s = tb.add_host("server");
        tb.add_duplex_link(c, s, LinkConfig::ethernet(20_000_000));
        let net = tb.build();
        let mut sim = Harness::new(net, 2);
        for app in background_apps(c, s, 1.0, 9) {
            sim.add_app(app);
        }
        sim.run_until(SimTime::from_secs(15));
        let l = sim.net.link_between(c, s).unwrap();
        assert!(sim.net.links[l.idx()].ctr.delivered_bytes > 5_000);
        assert!(sim.net.hosts[1].cpu.utilization() >= 0.0);
    }

    #[test]
    fn zero_level_is_empty() {
        assert!(background_apps(HostId(0), HostId(1), 0.0, 1).is_empty());
    }
}
