//! The fault taxonomy and injectors (Table 2 of the paper).
//!
//! | Simulated problem      | Paper's tool       | Our injector                          |
//! |------------------------|--------------------|---------------------------------------|
//! | LAN shaping            | `tc`/`netem`       | WLAN PHY-rate cap 1–70 Mbit/s         |
//! | WAN shaping            | `tc`/`netem`       | WAN link rate/delay/loss override     |
//! | LAN congestion         | `iperf` UDP        | UDP flood crossing the WLAN           |
//! | WAN congestion         | `iperf` UDP        | UDP flood server→router               |
//! | Mobile load            | `stress`           | CPU/memory/IO demand on the phone     |
//! | Poor signal reception  | distance + attenuator | station distance + attenuation      |
//! | WiFi interference      | co-channel WLAN    | interferer airtime + noise rise       |
//!
//! Each injector takes a continuous `intensity ∈ [0,1]`; the QoE label
//! (good/mild/severe) is decided afterwards from the session's MOS,
//! exactly as in the paper's labelling methodology (§4.4).

use vqd_simnet::engine::Network;
use vqd_simnet::ids::{HostId, LinkId, MediumId};
use vqd_simnet::rng::SimRng;
use vqd_simnet::time::SimDuration;
use vqd_simnet::traffic::UdpFlood;
use vqd_wireless::Wlan80211;

/// The fault classes of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// No induced fault.
    None,
    /// UDP cross traffic over the WAN segment.
    WanCongestion,
    /// Bandwidth/delay/loss restriction on the WAN segment.
    WanShaping,
    /// UDP cross traffic over the WLAN.
    LanCongestion,
    /// 802.11-rate restriction on the WLAN.
    LanShaping,
    /// CPU/memory/IO load on the mobile device.
    MobileLoad,
    /// Poor signal reception (distance + attenuation).
    LowRssi,
    /// Co-channel WiFi interference.
    WifiInterference,
}

impl FaultKind {
    /// All injectable faults (excludes `None`).
    pub const ALL: [FaultKind; 7] = [
        FaultKind::WanCongestion,
        FaultKind::WanShaping,
        FaultKind::LanCongestion,
        FaultKind::LanShaping,
        FaultKind::MobileLoad,
        FaultKind::LowRssi,
        FaultKind::WifiInterference,
    ];

    /// Short snake-case name ("wan_congestion", …).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::None => "none",
            FaultKind::WanCongestion => "wan_congestion",
            FaultKind::WanShaping => "wan_shaping",
            FaultKind::LanCongestion => "lan_congestion",
            FaultKind::LanShaping => "lan_shaping",
            FaultKind::MobileLoad => "mobile_load",
            FaultKind::LowRssi => "low_rssi",
            FaultKind::WifiInterference => "wifi_interference",
        }
    }

    /// The path segment the fault lives on.
    pub fn location(self) -> &'static str {
        match self {
            FaultKind::None => "none",
            FaultKind::WanCongestion | FaultKind::WanShaping => "wan",
            FaultKind::LanCongestion | FaultKind::LanShaping => "lan",
            FaultKind::MobileLoad => "mobile",
            // Wireless-medium problems manifest on the LAN segment but
            // the paper treats them as their own "mobile/wireless
            // proximity" — we follow its 3-way split: mobile-side.
            FaultKind::LowRssi | FaultKind::WifiInterference => "mobile",
        }
    }
}

/// Everything an injector needs to know about the testbed topology.
#[derive(Debug, Clone, Copy)]
pub struct TestbedHandles {
    /// The phone under test.
    pub mobile: HostId,
    /// The router/AP.
    pub router: HostId,
    /// The content server.
    pub server: HostId,
    /// The wired LAN client (congestion source), if the topology has
    /// one.
    pub wired_client: Option<HostId>,
    /// A second wireless station (LAN-congestion sink on the WLAN).
    pub wifi_client: Option<HostId>,
    /// WAN link router→server.
    pub wan_up: LinkId,
    /// WAN link server→router.
    pub wan_down: LinkId,
    /// The WLAN (absent on cellular access).
    pub medium: Option<MediumId>,
}

impl TestbedHandles {
    /// Whether `kind` can be injected on this topology.
    pub fn supports(&self, kind: FaultKind) -> bool {
        match kind {
            FaultKind::None
            | FaultKind::WanCongestion
            | FaultKind::WanShaping
            | FaultKind::MobileLoad => true,
            FaultKind::LanCongestion => self.wired_client.is_some() && self.wifi_client.is_some(),
            FaultKind::LanShaping | FaultKind::LowRssi | FaultKind::WifiInterference => {
                self.medium.is_some()
            }
        }
    }
}

/// A sampled fault instance.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// What to inject.
    pub kind: FaultKind,
    /// Strength in `[0, 1]` (0 = barely noticeable, 1 = crippling).
    pub intensity: f64,
}

impl FaultPlan {
    /// No fault.
    pub fn none() -> Self {
        FaultPlan {
            kind: FaultKind::None,
            intensity: 0.0,
        }
    }

    /// Sample an intensity for `kind`.
    pub fn sample(kind: FaultKind, rng: &mut SimRng) -> Self {
        let intensity = if kind == FaultKind::None {
            0.0
        } else {
            rng.range_f64(0.05, 1.0)
        };
        FaultPlan { kind, intensity }
    }

    /// Apply the static part of the fault to the network (link/medium/
    /// host mutations) and return any cross-traffic generators the
    /// caller must register as apps.
    pub fn apply(&self, net: &mut Network, h: &TestbedHandles, rng: &mut SimRng) -> Vec<UdpFlood> {
        let k = self.intensity;
        match self.kind {
            FaultKind::None => Vec::new(),
            FaultKind::WanCongestion => {
                // Flood the WAN downlink (server→router), like iperf
                // between server and router. Mild ≈ half the pipe,
                // severe ≈ 1.6×.
                let wan_rate = net.links[h.wan_down.idx()].cfg.rate_bps as f64;
                let rate = wan_rate * (0.35 + 1.35 * k);
                let mut floods = vec![UdpFlood::new(h.server, h.router, rate as u64)];
                // Matching (smaller) upstream component.
                let up = UdpFlood::new(h.router, h.server, (rate * 0.1) as u64);
                floods.push(up);
                floods
            }
            FaultKind::WanShaping => {
                // Shrink the WAN pipe and worsen delay/loss with
                // intensity (a tc profile below the Table 3 nominal).
                for l in [h.wan_down, h.wan_up] {
                    let cfg = &mut net.links[l.idx()].cfg;
                    cfg.rate_bps = ((cfg.rate_bps as f64) * (1.0 - 0.90 * k)).max(200_000.0) as u64;
                    cfg.delay += SimDuration::from_secs_f64(0.120 * k);
                    cfg.loss = (cfg.loss + 0.035 * k).min(0.12);
                }
                Vec::new()
            }
            FaultKind::LanCongestion => {
                // Cross traffic that crosses the WLAN: wired client →
                // second wireless station. The shared airtime and the
                // AP's single transmit queue are the bottleneck the
                // video competes on. Geometric ramp: "multiple iperf
                // instances", severe saturates the WLAN.
                let (Some(src), Some(dst)) = (h.wired_client, h.wifi_client) else {
                    return Vec::new();
                };
                let rate = 8_000_000.0 * (40.0f64 / 8.0).powf(k);
                vec![UdpFlood::new(src, dst, rate as u64)]
            }
            FaultKind::LanShaping => {
                // Cap the WLAN at an 802.11a/b/g-style rate: 70 Mbit/s
                // down to 1 Mbit/s (geometric — the 802.11 rate ladder
                // is itself geometric).
                let cap = 70_000_000.0 * (1.0f64 / 70.0).powf(k);
                let Some(m) = h.medium else { return Vec::new() };
                let wlan = net
                    .medium_mut(m)
                    .as_any_mut()
                    .downcast_mut::<Wlan80211>()
                    .expect("testbed medium is a Wlan80211");
                wlan.set_rate_cap(Some(cap as u64));
                wlan.refresh(rng);
                Vec::new()
            }
            FaultKind::MobileLoad => {
                // stress: CPU workers + memory + IO.
                let host = &mut net.hosts[h.mobile.idx()];
                let cores = host.cpu.cores;
                host.cpu.register(cores * (0.5 + 2.5 * k));
                let total = host.mem.total_mb;
                host.mem.register(total * 0.90 * k);
                host.io_load = (0.8 * k).min(0.9);
                Vec::new()
            }
            FaultKind::LowRssi => {
                // Walk away from the AP and attenuate its antenna.
                let Some(m) = h.medium else { return Vec::new() };
                let wlan = net
                    .medium_mut(m)
                    .as_any_mut()
                    .downcast_mut::<Wlan80211>()
                    .expect("testbed medium is a Wlan80211");
                wlan.set_distance(h.mobile, 8.0 * (55.0f64 / 8.0).powf(k));
                wlan.set_attenuation(h.mobile, 22.0 * k);
                wlan.refresh(rng);
                Vec::new()
            }
            FaultKind::WifiInterference => {
                let Some(m) = h.medium else { return Vec::new() };
                let wlan = net
                    .medium_mut(m)
                    .as_any_mut()
                    .downcast_mut::<Wlan80211>()
                    .expect("testbed medium is a Wlan80211");
                wlan.set_interference(0.20 + 0.78 * k, 3.0 + 16.0 * k);
                wlan.refresh(rng);
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_locations() {
        assert_eq!(FaultKind::WanCongestion.name(), "wan_congestion");
        assert_eq!(FaultKind::WanCongestion.location(), "wan");
        assert_eq!(FaultKind::LanShaping.location(), "lan");
        assert_eq!(FaultKind::MobileLoad.location(), "mobile");
        assert_eq!(FaultKind::LowRssi.location(), "mobile");
        assert_eq!(FaultKind::ALL.len(), 7);
    }

    #[test]
    fn sample_intensity_in_range() {
        let mut rng = SimRng::seed_from_u64(1);
        for kind in FaultKind::ALL {
            for _ in 0..50 {
                let p = FaultPlan::sample(kind, &mut rng);
                assert!((0.05..=1.0).contains(&p.intensity));
            }
        }
        assert_eq!(FaultPlan::sample(FaultKind::None, &mut rng).intensity, 0.0);
    }
}
