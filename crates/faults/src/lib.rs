//! # vqd-faults — fault injection and background variation
//!
//! Reproduces the testbed's problem toolbox (Table 2 of the paper):
//! the seven induced fault classes with continuous intensity
//! ([`fault`]) and the always-on background variation processes
//! (D-ITG-style traffic mixes, ApacheBench-style server load) that make
//! the training data realistic ([`background`]).

pub mod background;
pub mod fault;

pub use background::{background_apps, ServerLoad};
pub use fault::{FaultKind, FaultPlan, TestbedHandles};
