//! Property-based tests of the fault injectors.

use proptest::prelude::*;

use vqd_faults::{FaultKind, FaultPlan, TestbedHandles};
use vqd_simnet::host::Host;
use vqd_simnet::link::LinkConfig;
use vqd_simnet::rng::SimRng;
use vqd_simnet::topology::TopologyBuilder;
use vqd_wireless::{Wlan80211, WlanConfig};

fn testbed() -> (vqd_simnet::engine::Network, TestbedHandles) {
    let mut tb = TopologyBuilder::with_seed(1);
    let mobile = tb.add_host_with(Host::new("mobile"));
    let router = tb.add_host("router");
    let server = tb.add_host("server");
    let wired = tb.add_host("wired");
    let wific = tb.add_host("wific");
    tb.add_duplex_link(wired, router, LinkConfig::ethernet(100_000_000));
    let (wan_up, wan_down) = tb.add_duplex_link(router, server, LinkConfig::dsl_nominal());
    let mut wlan = Wlan80211::new(router, WlanConfig::default());
    wlan.add_station(mobile, 4.0);
    wlan.add_station(wific, 4.0);
    let medium = tb.add_medium(Box::new(wlan));
    tb.add_wireless(mobile, router, medium, 1460);
    tb.add_wireless(wific, router, medium, 1460);
    let net = tb.build();
    let handles = TestbedHandles {
        mobile,
        router,
        server,
        wired_client: Some(wired),
        wifi_client: Some(wific),
        wan_up,
        wan_down,
        medium: Some(medium),
    };
    (net, handles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every fault applies cleanly at every intensity and the
    /// resulting network state is physical (positive rates, bounded
    /// loss, non-negative loads).
    #[test]
    fn faults_apply_cleanly(kind_i in 0usize..7, intensity in 0.0f64..1.0, seed in any::<u64>()) {
        let kind = FaultKind::ALL[kind_i];
        let (mut net, handles) = testbed();
        let mut rng = SimRng::seed_from_u64(seed);
        let plan = FaultPlan { kind, intensity };
        let floods = plan.apply(&mut net, &handles, &mut rng);
        // Links remain physical.
        for l in &net.links {
            prop_assert!(l.cfg.rate_bps >= 100_000, "rate {}", l.cfg.rate_bps);
            prop_assert!((0.0..=0.2).contains(&l.cfg.loss), "loss {}", l.cfg.loss);
        }
        // Host models remain bounded.
        for h in &net.hosts {
            prop_assert!(h.cpu.utilization() <= 1.0);
            prop_assert!(h.mem.free_mb() >= 0.0);
            prop_assert!((0.0..=1.0).contains(&h.io_load));
        }
        // Congestion faults produce at least one flood; others none.
        match kind {
            FaultKind::WanCongestion | FaultKind::LanCongestion => {
                prop_assert!(!floods.is_empty())
            }
            _ => prop_assert!(floods.is_empty()),
        }
        for f in &floods {
            prop_assert!(f.rate_bps > 0);
        }
    }

    /// WAN shaping is monotone: higher intensity never yields a faster
    /// or cleaner WAN.
    #[test]
    fn wan_shaping_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo_k, hi_k) = if a <= b { (a, b) } else { (b, a) };
        let run = |k: f64| {
            let (mut net, handles) = testbed();
            let mut rng = SimRng::seed_from_u64(7);
            FaultPlan { kind: FaultKind::WanShaping, intensity: k }
                .apply(&mut net, &handles, &mut rng);
            let l = &net.links[handles.wan_down.idx()];
            (l.cfg.rate_bps, l.cfg.loss, l.cfg.delay)
        };
        let (r_lo, loss_lo, d_lo) = run(lo_k);
        let (r_hi, loss_hi, d_hi) = run(hi_k);
        prop_assert!(r_hi <= r_lo);
        prop_assert!(loss_hi >= loss_lo - 1e-12);
        prop_assert!(d_hi >= d_lo);
    }

    /// Unsupported-fault guard: a cellular-style handle set (no WLAN,
    /// no LAN clients) degrades wireless/LAN faults to no-ops instead
    /// of panicking.
    #[test]
    fn cellular_handles_never_panic(kind_i in 0usize..7, intensity in 0.0f64..1.0) {
        let kind = FaultKind::ALL[kind_i];
        let (mut net, mut handles) = testbed();
        handles.medium = None;
        handles.wired_client = None;
        handles.wifi_client = None;
        let supported = handles.supports(kind);
        let mut rng = SimRng::seed_from_u64(3);
        if supported {
            let _ = FaultPlan { kind, intensity }.apply(&mut net, &handles, &mut rng);
        } else {
            // The caller is expected to gate on supports(); applying an
            // unsupported fault must still not corrupt anything.
            let floods = FaultPlan { kind, intensity }.apply(&mut net, &handles, &mut rng);
            prop_assert!(floods.is_empty());
        }
    }
}
