//! Feature Construction (Section 3.2 of the paper).
//!
//! Makes the feature space agnostic to video type, delivery mechanism
//! and network technology:
//!
//! * every packet-count metric is normalised by the probe's **total
//!   packets** for the session, and every byte metric by the **total
//!   bytes** — a 2-minute HD session and a 30-second SD clip then map
//!   to the same scale;
//! * raw NIC transfer rates are dropped in favour of the probes'
//!   capacity-relative **utilisations**. (The paper divides by the
//!   maximum rate observed for that NIC across the dataset; that
//!   denominator does not transfer between deployments with different
//!   access links — a 20 Mbit/s office line would saturate a scale
//!   learned on 7.8 Mbit/s DSL — so we use the NIC's own line rate,
//!   which every probe knows locally and which the paper's recipe
//!   approximates in the limit.)
//! * of the RSSI aggregates only the **average** is kept (the paper
//!   found min/max less predictive);
//! * scale-free metrics (RTTs, windows, MSS, CPU, memory fractions,
//!   delays) pass through unchanged.

use vqd_ml::{Dataset, FeatureInterner};

/// Applies feature construction to raw probe datasets.
///
/// The construction rules are purely name-driven (scale-free ratios
/// and drops), so the same transform applies verbatim to evaluation
/// data from any deployment — the train-in-lab / test-in-the-wild
/// pipeline is leakage-free by construction.
#[derive(Debug, Clone, Default)]
pub struct FeatureConstructor {}

/// Column classification for the construction rules.
fn is_pkt_count(name: &str) -> bool {
    name.contains(".tcp.")
        && (name.ends_with(".pkts")
            || name.ends_with("retx_pkts")
            || name.ends_with("ooo_pkts")
            || name.ends_with("data_pkts")
            || name.ends_with("pure_acks")
            || name.ends_with("dup_acks")
            || name.ends_with("zero_wnd"))
        && !name.contains("total_")
}

fn is_byte_count(name: &str) -> bool {
    name.contains(".tcp.")
        && (name.ends_with(".bytes")
            || name.ends_with("data_bytes")
            || name.ends_with("retx_bytes"))
        && !name.contains("total_")
}

fn is_rate(name: &str) -> bool {
    // Raw rates (bit/s) are deployment-scale-dependent; the
    // capacity-relative utilisations carry the same signal portably.
    name.contains("tx_bps") || name.contains("rx_bps") || name.ends_with("throughput_bps")
}

/// Raw aggregates discarded after construction.
fn dropped(name: &str) -> bool {
    // Session totals only served as denominators; absolute totals leak
    // video size. RSSI min/max/std: the paper keeps the average only.
    // Raw NIC rates: superseded by capacity-relative utilisations.
    name.ends_with("tcp.total_pkts")
        || name.ends_with("tcp.total_data_bytes")
        || name.ends_with("phy.rssi_min")
        || name.ends_with("phy.rssi_max")
        || name.ends_with("phy.rssi_std")
        || is_rate(name)
}

impl FeatureConstructor {
    /// Build a constructor (kept as a fit/transform pair for API
    /// symmetry; the rules carry no learned state).
    pub fn fit(_data: &Dataset) -> Self {
        FeatureConstructor {}
    }

    fn vp_of(name: &str) -> &str {
        name.split('.').next().unwrap_or("")
    }

    /// Transform a dataset with the learned denominators.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let plan = ConstructionPlan::for_schema(&data.features);
        let mut out = Dataset::new(plan.names.clone(), data.classes.clone());
        for (i, row) in data.x.iter().enumerate() {
            let new_row: Vec<f64> = plan
                .ops
                .iter()
                .map(|p| match *p {
                    ColumnOp::Copy(j) => row[j],
                    ColumnOp::Ratio(j, t) => ConstructionPlan::ratio(row[j], row[t]),
                })
                .collect();
            out.push(new_row, data.y[i]);
        }
        out
    }
}

/// One output column of the batch construction plan: which raw
/// column(s) it reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnOp {
    /// Raw column `.0` passes through unchanged.
    Copy(usize),
    /// Raw column `.0` normalised by the VP's session total in raw
    /// column `.1` (see [`ConstructionPlan::ratio`]).
    Ratio(usize, usize),
}

/// The batch construction rules resolved against a raw feature schema:
/// the transformed feature names plus, per output column, the raw
/// columns it reads. This is the column-oriented twin of
/// [`FeatureConstructor::transform`] — the streaming corpus/training
/// paths use it to construct one transformed column at a time without
/// materialising the raw dataset. `transform` itself is implemented on
/// top of it, so the two can never drift.
#[derive(Debug, Clone)]
pub struct ConstructionPlan {
    /// Transformed feature names, in output-column order.
    pub names: Vec<String>,
    /// Per output column, the raw columns it reads (aligned 1:1 with
    /// `names`).
    pub ops: Vec<ColumnOp>,
}

impl ConstructionPlan {
    /// Resolve the construction rules against a raw schema. Duplicate
    /// raw names resolve denominators to their first occurrence,
    /// matching [`Dataset::feature_index`].
    pub fn for_schema(raw: &[String]) -> ConstructionPlan {
        let first = |want: String| raw.iter().position(|n| *n == want);
        let mut names = Vec::new();
        let mut ops = Vec::new();
        for (j, name) in raw.iter().enumerate() {
            if dropped(name) {
                continue;
            }
            let vp = FeatureConstructor::vp_of(name);
            if is_pkt_count(name) {
                if let Some(t) = first(format!("{vp}.tcp.total_pkts")) {
                    names.push(format!("{name}_norm"));
                    ops.push(ColumnOp::Ratio(j, t));
                    continue;
                }
            }
            if is_byte_count(name) {
                if let Some(t) = first(format!("{vp}.tcp.total_data_bytes")) {
                    names.push(format!("{name}_norm"));
                    ops.push(ColumnOp::Ratio(j, t));
                    continue;
                }
            }
            names.push(name.clone());
            ops.push(ColumnOp::Copy(j));
        }
        ConstructionPlan { names, ops }
    }

    /// The exact ratio arithmetic of the batch transform: NaN
    /// numerators stay NaN, non-positive or NaN denominators zero the
    /// ratio (count metrics are zero when nothing flowed).
    pub fn ratio(num: f64, denom: f64) -> f64 {
        if num.is_nan() || denom.is_nan() || denom <= 0.0 {
            if num.is_nan() {
                f64::NAN
            } else {
                0.0
            }
        } else {
            num / denom
        }
    }
}

impl FeatureConstructor {
    /// Transform a single instance given as `(name, value)` pairs —
    /// the online path used when diagnosing one live session.
    pub fn transform_instance(&self, metrics: &[(String, f64)]) -> Vec<(String, f64)> {
        let lookup = |name: &str| -> Option<f64> {
            metrics.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
        };
        let mut out = Vec::with_capacity(metrics.len());
        for (name, v) in metrics {
            if dropped(name) {
                continue;
            }
            let vp = Self::vp_of(name);
            if is_pkt_count(name) {
                if let Some(t) = lookup(&format!("{vp}.tcp.total_pkts")) {
                    let r = if v.is_nan() || t <= 0.0 {
                        if v.is_nan() {
                            f64::NAN
                        } else {
                            0.0
                        }
                    } else {
                        v / t
                    };
                    out.push((format!("{name}_norm"), r));
                    continue;
                }
            }
            if is_byte_count(name) {
                if let Some(t) = lookup(&format!("{vp}.tcp.total_data_bytes")) {
                    let r = if v.is_nan() || t <= 0.0 {
                        if v.is_nan() {
                            f64::NAN
                        } else {
                            0.0
                        }
                    } else {
                        v / t
                    };
                    out.push((format!("{name}_norm"), r));
                    continue;
                }
            }
            out.push((name.clone(), *v));
        }
        out
    }
}

/// One step of a compiled instance transform, aligned 1:1 with the
/// session's metric list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStep {
    /// Metric is dropped by construction, or its (transformed) name is
    /// not in the model schema.
    Skip,
    /// Metric passes through to schema column `dst`.
    Copy {
        /// Schema column the value lands in.
        dst: u32,
    },
    /// Metric is normalised by the value of metric index `denom`
    /// before landing in schema column `dst`.
    Ratio {
        /// Schema column the ratio lands in.
        dst: u32,
        /// Index (into the session's metric list) of the denominator.
        denom: u32,
    },
}

/// A compiled single-session transform: feature construction plus
/// schema-row scatter, resolved to column indices once per distinct
/// metric-name shape so the per-session loop does no string work and
/// no allocation.
///
/// Semantically this is `FeatureConstructor::transform_instance`
/// followed by a first-match-wins lookup of every schema name — the
/// exact scalar serving path — with all name resolution (construction
/// rules, `_norm` renames, denominator lookup, schema scatter) hoisted
/// to compile time.
#[derive(Debug, Clone)]
pub struct InstancePlan {
    /// The metric-name shape this plan was compiled for, concatenated
    /// into one buffer with per-name end offsets (aligned 1:1 with
    /// `steps`). Stored flat so [`InstancePlan::apply_verified`]'s
    /// name check walks a single sequential buffer instead of chasing
    /// one heap pointer per name.
    name_buf: String,
    name_end: Vec<u32>,
    steps: Vec<PlanStep>,
}

/// Pack a name list into [`InstancePlan`]'s flat shape encoding.
fn pack_names(names: &[String]) -> (String, Vec<u32>) {
    let mut buf = String::with_capacity(names.iter().map(|n| n.len()).sum());
    let mut end = Vec::with_capacity(names.len());
    for n in names {
        buf.push_str(n);
        end.push(buf.len() as u32);
    }
    (buf, end)
}

impl InstancePlan {
    /// Compile a plan for sessions whose metric list has exactly the
    /// names `names` (in order), applying the construction rules and
    /// scattering into `schema` columns.
    pub fn with_construction(names: &[String], schema: &FeatureInterner) -> InstancePlan {
        // First-match denominator lookup over the *raw* metric list,
        // mirroring `transform_instance`'s `lookup` closure (dropped
        // metrics still serve as denominators).
        let first = |want: &str| names.iter().position(|n| n == want).map(|i| i as u32);
        let steps = names
            .iter()
            .map(|name| {
                if dropped(name) {
                    return PlanStep::Skip;
                }
                let vp = FeatureConstructor::vp_of(name);
                if is_pkt_count(name) {
                    if let Some(t) = first(&format!("{vp}.tcp.total_pkts")) {
                        return Self::ratio_step(&format!("{name}_norm"), t, schema);
                    }
                }
                if is_byte_count(name) {
                    if let Some(t) = first(&format!("{vp}.tcp.total_data_bytes")) {
                        return Self::ratio_step(&format!("{name}_norm"), t, schema);
                    }
                }
                Self::copy_step(name, schema)
            })
            .collect();
        let (name_buf, name_end) = pack_names(names);
        InstancePlan {
            name_buf,
            name_end,
            steps,
        }
    }

    /// Number of metrics in the shape this plan was compiled for.
    pub fn shape_len(&self) -> usize {
        self.name_end.len()
    }

    /// Compile a pass-through plan (no feature construction): each
    /// metric scatters to its schema column directly.
    pub fn direct(names: &[String], schema: &FeatureInterner) -> InstancePlan {
        let (name_buf, name_end) = pack_names(names);
        InstancePlan {
            name_buf,
            name_end,
            steps: names.iter().map(|n| Self::copy_step(n, schema)).collect(),
        }
    }

    fn copy_step(name: &str, schema: &FeatureInterner) -> PlanStep {
        match schema.index(name) {
            Some(d) => PlanStep::Copy { dst: d as u32 },
            None => PlanStep::Skip,
        }
    }

    fn ratio_step(out_name: &str, denom: u32, schema: &FeatureInterner) -> PlanStep {
        match schema.index(out_name) {
            Some(d) => PlanStep::Ratio {
                dst: d as u32,
                denom,
            },
            None => PlanStep::Skip,
        }
    }

    /// Scatter one session's metric values into the schema row.
    ///
    /// `row` (len = schema width) is reset to all-`NaN` here; `stamp`
    /// (same len) carries per-column epoch marks so duplicate metric
    /// names keep their *first* value — even a first value that is
    /// legitimately `NaN` — without clearing the stamp vector between
    /// sessions. The caller bumps `epoch` per session (and resets
    /// `stamp` on wrap). Zero allocation.
    pub fn apply_into(
        &self,
        metrics: &[(String, f64)],
        row: &mut [f64],
        stamp: &mut [u32],
        epoch: u32,
    ) {
        let ok = self.apply_verified(metrics, row, stamp, epoch);
        debug_assert!(ok, "plan/session shape mismatch");
    }

    /// [`InstancePlan::apply_into`] fused with shape verification: the
    /// single pass both compares each incoming metric name against the
    /// compiled shape and scatters its value. Returns `false` on the
    /// first mismatch, leaving `row` partially written — the caller
    /// must retry under a fresh `epoch` (with another plan or after
    /// recompiling) so the stale writes stay invisible.
    ///
    /// This keeps plan-cache lookups cheap: the cache's hash is only a
    /// discriminator, and the authoritative name-by-name check costs no
    /// extra pass over the session.
    pub fn apply_verified(
        &self,
        metrics: &[(String, f64)],
        row: &mut [f64],
        stamp: &mut [u32],
        epoch: u32,
    ) -> bool {
        if metrics.len() != self.name_end.len() {
            return false;
        }
        debug_assert_eq!(row.len(), stamp.len());
        for r in row.iter_mut() {
            *r = f64::NAN;
        }
        let shape = self.name_buf.as_bytes();
        let mut start = 0usize;
        for ((step, &end), (m, v)) in self.steps.iter().zip(&self.name_end).zip(metrics) {
            let end = end as usize;
            if m.as_bytes() != &shape[start..end] {
                return false;
            }
            start = end;
            let (dst, val) = match *step {
                PlanStep::Skip => continue,
                PlanStep::Copy { dst } => (dst as usize, *v),
                PlanStep::Ratio { dst, denom } => {
                    // Exact branch structure of the scalar instance
                    // transform (note: no NaN check on the denominator
                    // there either — `v / NaN` is `NaN` by itself).
                    let t = metrics[denom as usize].1;
                    let r = if v.is_nan() || t <= 0.0 {
                        if v.is_nan() {
                            f64::NAN
                        } else {
                            0.0
                        }
                    } else {
                        v / t
                    };
                    (dst as usize, r)
                }
            };
            if stamp[dst] != epoch {
                stamp[dst] = epoch;
                row[dst] = val;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw() -> Dataset {
        let mut d = Dataset::new(
            vec![
                "mobile.tcp.s2c.retx_pkts".into(),
                "mobile.tcp.s2c.data_bytes".into(),
                "mobile.tcp.total_pkts".into(),
                "mobile.tcp.total_data_bytes".into(),
                "mobile.tcp.s2c.rtt_avg".into(),
                "mobile.nic0.rx_bps_avg".into(),
                "mobile.phy.rssi_avg".into(),
                "mobile.phy.rssi_min".into(),
            ],
            vec!["good".into(), "bad".into()],
        );
        d.push(
            vec![
                10.0,
                1_000_000.0,
                1000.0,
                2_000_000.0,
                0.05,
                4e6,
                -50.0,
                -60.0,
            ],
            0,
        );
        d.push(
            vec![50.0, 500_000.0, 500.0, 1_000_000.0, 0.20, 8e6, -80.0, -90.0],
            1,
        );
        d
    }

    #[test]
    fn normalises_counts_and_bytes() {
        let d = raw();
        let fc = FeatureConstructor::fit(&d);
        let t = fc.transform(&d);
        let retx = t.feature_index("mobile.tcp.s2c.retx_pkts_norm").unwrap();
        assert!((t.x[0][retx] - 0.01).abs() < 1e-12);
        assert!((t.x[1][retx] - 0.1).abs() < 1e-12);
        let bytes = t.feature_index("mobile.tcp.s2c.data_bytes_norm").unwrap();
        assert!((t.x[0][bytes] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn raw_rates_are_dropped() {
        let d = raw();
        let fc = FeatureConstructor::fit(&d);
        let t = fc.transform(&d);
        assert!(t.feature_index("mobile.nic0.rx_bps_avg").is_none());
        // But a capacity-relative utilisation column passes through.
        assert!(t.feature_index("mobile.tcp.s2c.rtt_avg").is_some());
    }

    #[test]
    fn drops_totals_and_rssi_extremes_keeps_avg() {
        let d = raw();
        let t = FeatureConstructor::fit(&d).transform(&d);
        assert!(t.feature_index("mobile.tcp.total_pkts").is_none());
        assert!(t.feature_index("mobile.phy.rssi_min").is_none());
        assert!(t.feature_index("mobile.phy.rssi_avg").is_some());
        assert!(t.feature_index("mobile.tcp.s2c.rtt_avg").is_some());
    }

    #[test]
    fn transform_is_deployment_independent() {
        // The transform carries no dataset-derived state: new data
        // with wildly different scales maps by the same rules.
        let d = raw();
        let fc = FeatureConstructor::fit(&d);
        let mut eval = Dataset::new(d.features.clone(), d.classes.clone());
        eval.push(vec![5.0, 1.0, 100.0, 10.0, 0.01, 16e6, -40.0, -50.0], 0);
        let t = fc.transform(&eval);
        let retx = t.feature_index("mobile.tcp.s2c.retx_pkts_norm").unwrap();
        assert!((t.x[0][retx] - 0.05).abs() < 1e-12);
    }

    /// Scalar reference: transform the instance, then resolve each
    /// schema name to the *first* transformed metric carrying it —
    /// exactly what the pre-plan serving path did.
    fn scalar_row(
        fc: &FeatureConstructor,
        metrics: &[(String, f64)],
        schema: &[String],
    ) -> Vec<f64> {
        let view = fc.transform_instance(metrics);
        schema
            .iter()
            .map(|name| {
                view.iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or(f64::NAN)
            })
            .collect()
    }

    #[test]
    fn instance_plan_matches_scalar_transform() {
        let fc = FeatureConstructor::default();
        let schema: Vec<String> = vec![
            "mobile.tcp.s2c.retx_pkts_norm".into(),
            "mobile.tcp.s2c.data_bytes_norm".into(),
            "mobile.tcp.s2c.rtt_avg".into(),
            "mobile.phy.rssi_avg".into(),
            "router.tcp.s2c.retx_pkts_norm".into(),
            "never.seen.metric".into(),
        ];
        let it = FeatureInterner::from_names(&schema);
        let cases: Vec<Vec<(String, f64)>> = vec![
            // Full telemetry.
            vec![
                ("mobile.tcp.s2c.retx_pkts".into(), 10.0),
                ("mobile.tcp.s2c.data_bytes".into(), 1e6),
                ("mobile.tcp.total_pkts".into(), 1000.0),
                ("mobile.tcp.total_data_bytes".into(), 2e6),
                ("mobile.tcp.s2c.rtt_avg".into(), 0.05),
                ("mobile.phy.rssi_avg".into(), -50.0),
                ("mobile.phy.rssi_min".into(), -60.0),
            ],
            // Missing denominator: pkt count passes through raw (and so
            // misses the `_norm` schema slot).
            vec![
                ("mobile.tcp.s2c.retx_pkts".into(), 10.0),
                ("mobile.tcp.s2c.rtt_avg".into(), 0.05),
            ],
            // NaN numerator, zero denominator, NaN first duplicate.
            vec![
                ("mobile.tcp.s2c.retx_pkts".into(), f64::NAN),
                ("mobile.tcp.s2c.data_bytes".into(), 5.0),
                ("mobile.tcp.total_pkts".into(), 0.0),
                ("mobile.tcp.total_data_bytes".into(), f64::NAN),
                ("mobile.phy.rssi_avg".into(), f64::NAN),
                ("mobile.phy.rssi_avg".into(), -40.0),
            ],
            // Empty session.
            vec![],
        ];
        for metrics in &cases {
            let names: Vec<String> = metrics.iter().map(|(n, _)| n.clone()).collect();
            let plan = InstancePlan::with_construction(&names, &it);
            let mut row = vec![0.0; schema.len()];
            let mut stamp = vec![0u32; schema.len()];
            plan.apply_into(metrics, &mut row, &mut stamp, 1);
            let want = scalar_row(&fc, metrics, &schema);
            assert_eq!(
                row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{names:?}"
            );
        }
    }

    #[test]
    fn stamp_epochs_keep_first_duplicate_across_sessions() {
        let schema = vec!["a".to_string()];
        let it = FeatureInterner::from_names(&schema);
        let names = vec!["a".to_string(), "a".to_string()];
        let plan = InstancePlan::direct(&names, &it);
        let mut row = vec![0.0];
        let mut stamp = vec![0u32];
        // Session 1: first duplicate is NaN and must win.
        plan.apply_into(
            &[("a".into(), f64::NAN), ("a".into(), 7.0)],
            &mut row,
            &mut stamp,
            1,
        );
        assert!(row[0].is_nan());
        // Session 2 (same buffers, bumped epoch): first value wins again.
        plan.apply_into(
            &[("a".into(), 3.0), ("a".into(), 9.0)],
            &mut row,
            &mut stamp,
            2,
        );
        assert_eq!(row[0], 3.0);
    }

    #[test]
    fn missing_values_propagate() {
        let d = raw();
        let fc = FeatureConstructor::fit(&d);
        let mut eval = Dataset::new(d.features.clone(), d.classes.clone());
        eval.push(vec![f64::NAN; 8], 0);
        let t = fc.transform(&eval);
        assert!(t.x[0].iter().all(|v| v.is_nan()));
    }
}
