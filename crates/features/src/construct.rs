//! Feature Construction (Section 3.2 of the paper).
//!
//! Makes the feature space agnostic to video type, delivery mechanism
//! and network technology:
//!
//! * every packet-count metric is normalised by the probe's **total
//!   packets** for the session, and every byte metric by the **total
//!   bytes** — a 2-minute HD session and a 30-second SD clip then map
//!   to the same scale;
//! * raw NIC transfer rates are dropped in favour of the probes'
//!   capacity-relative **utilisations**. (The paper divides by the
//!   maximum rate observed for that NIC across the dataset; that
//!   denominator does not transfer between deployments with different
//!   access links — a 20 Mbit/s office line would saturate a scale
//!   learned on 7.8 Mbit/s DSL — so we use the NIC's own line rate,
//!   which every probe knows locally and which the paper's recipe
//!   approximates in the limit.)
//! * of the RSSI aggregates only the **average** is kept (the paper
//!   found min/max less predictive);
//! * scale-free metrics (RTTs, windows, MSS, CPU, memory fractions,
//!   delays) pass through unchanged.

use vqd_ml::Dataset;

/// Applies feature construction to raw probe datasets.
///
/// The construction rules are purely name-driven (scale-free ratios
/// and drops), so the same transform applies verbatim to evaluation
/// data from any deployment — the train-in-lab / test-in-the-wild
/// pipeline is leakage-free by construction.
#[derive(Debug, Clone, Default)]
pub struct FeatureConstructor {}

/// Column classification for the construction rules.
fn is_pkt_count(name: &str) -> bool {
    name.contains(".tcp.")
        && (name.ends_with(".pkts")
            || name.ends_with("retx_pkts")
            || name.ends_with("ooo_pkts")
            || name.ends_with("data_pkts")
            || name.ends_with("pure_acks")
            || name.ends_with("dup_acks")
            || name.ends_with("zero_wnd"))
        && !name.contains("total_")
}

fn is_byte_count(name: &str) -> bool {
    name.contains(".tcp.")
        && (name.ends_with(".bytes")
            || name.ends_with("data_bytes")
            || name.ends_with("retx_bytes"))
        && !name.contains("total_")
}

fn is_rate(name: &str) -> bool {
    // Raw rates (bit/s) are deployment-scale-dependent; the
    // capacity-relative utilisations carry the same signal portably.
    name.contains("tx_bps") || name.contains("rx_bps") || name.ends_with("throughput_bps")
}

/// Raw aggregates discarded after construction.
fn dropped(name: &str) -> bool {
    // Session totals only served as denominators; absolute totals leak
    // video size. RSSI min/max/std: the paper keeps the average only.
    // Raw NIC rates: superseded by capacity-relative utilisations.
    name.ends_with("tcp.total_pkts")
        || name.ends_with("tcp.total_data_bytes")
        || name.ends_with("phy.rssi_min")
        || name.ends_with("phy.rssi_max")
        || name.ends_with("phy.rssi_std")
        || is_rate(name)
}

impl FeatureConstructor {
    /// Build a constructor (kept as a fit/transform pair for API
    /// symmetry; the rules carry no learned state).
    pub fn fit(_data: &Dataset) -> Self {
        FeatureConstructor {}
    }

    fn vp_of(name: &str) -> &str {
        name.split('.').next().unwrap_or("")
    }

    /// Transform a dataset with the learned denominators.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        // Locate each VP's session totals.
        let total_pkts_col = |vp: &str| data.feature_index(&format!("{vp}.tcp.total_pkts"));
        let total_bytes_col = |vp: &str| data.feature_index(&format!("{vp}.tcp.total_data_bytes"));

        let mut features = Vec::new();
        let mut plan: Vec<Plan> = Vec::new();
        for (j, name) in data.features.iter().enumerate() {
            if dropped(name) {
                continue;
            }
            let vp = Self::vp_of(name);
            if is_pkt_count(name) {
                if let Some(t) = total_pkts_col(vp) {
                    features.push(format!("{name}_norm"));
                    plan.push(Plan::Ratio(j, t));
                    continue;
                }
            }
            if is_byte_count(name) {
                if let Some(t) = total_bytes_col(vp) {
                    features.push(format!("{name}_norm"));
                    plan.push(Plan::Ratio(j, t));
                    continue;
                }
            }
            features.push(name.clone());
            plan.push(Plan::Copy(j));
        }

        let mut out = Dataset::new(features, data.classes.clone());
        for (i, row) in data.x.iter().enumerate() {
            let new_row: Vec<f64> = plan
                .iter()
                .map(|p| match *p {
                    Plan::Copy(j) => row[j],
                    Plan::Ratio(j, t) => {
                        let denom = row[t];
                        if row[j].is_nan() || denom.is_nan() || denom <= 0.0 {
                            if row[j].is_nan() {
                                f64::NAN
                            } else {
                                0.0
                            }
                        } else {
                            row[j] / denom
                        }
                    }
                })
                .collect();
            out.push(new_row, data.y[i]);
        }
        out
    }
}

impl FeatureConstructor {
    /// Transform a single instance given as `(name, value)` pairs —
    /// the online path used when diagnosing one live session.
    pub fn transform_instance(&self, metrics: &[(String, f64)]) -> Vec<(String, f64)> {
        let lookup = |name: &str| -> Option<f64> {
            metrics.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
        };
        let mut out = Vec::with_capacity(metrics.len());
        for (name, v) in metrics {
            if dropped(name) {
                continue;
            }
            let vp = Self::vp_of(name);
            if is_pkt_count(name) {
                if let Some(t) = lookup(&format!("{vp}.tcp.total_pkts")) {
                    let r = if v.is_nan() || t <= 0.0 {
                        if v.is_nan() {
                            f64::NAN
                        } else {
                            0.0
                        }
                    } else {
                        v / t
                    };
                    out.push((format!("{name}_norm"), r));
                    continue;
                }
            }
            if is_byte_count(name) {
                if let Some(t) = lookup(&format!("{vp}.tcp.total_data_bytes")) {
                    let r = if v.is_nan() || t <= 0.0 {
                        if v.is_nan() {
                            f64::NAN
                        } else {
                            0.0
                        }
                    } else {
                        v / t
                    };
                    out.push((format!("{name}_norm"), r));
                    continue;
                }
            }
            out.push((name.clone(), *v));
        }
        out
    }
}

#[derive(Debug, Clone, Copy)]
enum Plan {
    Copy(usize),
    Ratio(usize, usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw() -> Dataset {
        let mut d = Dataset::new(
            vec![
                "mobile.tcp.s2c.retx_pkts".into(),
                "mobile.tcp.s2c.data_bytes".into(),
                "mobile.tcp.total_pkts".into(),
                "mobile.tcp.total_data_bytes".into(),
                "mobile.tcp.s2c.rtt_avg".into(),
                "mobile.nic0.rx_bps_avg".into(),
                "mobile.phy.rssi_avg".into(),
                "mobile.phy.rssi_min".into(),
            ],
            vec!["good".into(), "bad".into()],
        );
        d.push(
            vec![
                10.0,
                1_000_000.0,
                1000.0,
                2_000_000.0,
                0.05,
                4e6,
                -50.0,
                -60.0,
            ],
            0,
        );
        d.push(
            vec![50.0, 500_000.0, 500.0, 1_000_000.0, 0.20, 8e6, -80.0, -90.0],
            1,
        );
        d
    }

    #[test]
    fn normalises_counts_and_bytes() {
        let d = raw();
        let fc = FeatureConstructor::fit(&d);
        let t = fc.transform(&d);
        let retx = t.feature_index("mobile.tcp.s2c.retx_pkts_norm").unwrap();
        assert!((t.x[0][retx] - 0.01).abs() < 1e-12);
        assert!((t.x[1][retx] - 0.1).abs() < 1e-12);
        let bytes = t.feature_index("mobile.tcp.s2c.data_bytes_norm").unwrap();
        assert!((t.x[0][bytes] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn raw_rates_are_dropped() {
        let d = raw();
        let fc = FeatureConstructor::fit(&d);
        let t = fc.transform(&d);
        assert!(t.feature_index("mobile.nic0.rx_bps_avg").is_none());
        // But a capacity-relative utilisation column passes through.
        assert!(t.feature_index("mobile.tcp.s2c.rtt_avg").is_some());
    }

    #[test]
    fn drops_totals_and_rssi_extremes_keeps_avg() {
        let d = raw();
        let t = FeatureConstructor::fit(&d).transform(&d);
        assert!(t.feature_index("mobile.tcp.total_pkts").is_none());
        assert!(t.feature_index("mobile.phy.rssi_min").is_none());
        assert!(t.feature_index("mobile.phy.rssi_avg").is_some());
        assert!(t.feature_index("mobile.tcp.s2c.rtt_avg").is_some());
    }

    #[test]
    fn transform_is_deployment_independent() {
        // The transform carries no dataset-derived state: new data
        // with wildly different scales maps by the same rules.
        let d = raw();
        let fc = FeatureConstructor::fit(&d);
        let mut eval = Dataset::new(d.features.clone(), d.classes.clone());
        eval.push(vec![5.0, 1.0, 100.0, 10.0, 0.01, 16e6, -40.0, -50.0], 0);
        let t = fc.transform(&eval);
        let retx = t.feature_index("mobile.tcp.s2c.retx_pkts_norm").unwrap();
        assert!((t.x[0][retx] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn missing_values_propagate() {
        let d = raw();
        let fc = FeatureConstructor::fit(&d);
        let mut eval = Dataset::new(d.features.clone(), d.classes.clone());
        eval.push(vec![f64::NAN; 8], 0);
        let t = fc.transform(&eval);
        assert!(t.x[0].iter().all(|v| v.is_nan()));
    }
}
