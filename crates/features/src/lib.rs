//! # vqd-features — feature construction and selection
//!
//! The two pre-processing stages of the detection system (Section 3.2
//! of the paper):
//!
//! * [`construct`] — **Feature Construction**: normalise packet/byte
//!   counts by session totals, turn NIC rates into dataset-relative
//!   utilisations, keep only the average RSSI — making the model
//!   agnostic to video type, delivery mechanism and radio technology.
//! * [`select`] — **Feature Selection** with the Fast Correlation-Based
//!   Filter (FCBF), reducing hundreds of raw columns to the ~20 that
//!   carry non-redundant class information (the paper's Table 1).

pub mod construct;
pub mod select;

pub use construct::{ColumnOp, ConstructionPlan, FeatureConstructor, InstancePlan, PlanStep};
pub use select::{fcbf, fcbf_union_streaming, rank_by_su, Selection};
