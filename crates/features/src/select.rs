//! Feature Selection: Fast Correlation-Based Filter (FCBF).
//!
//! The paper reduces 354 raw features to 22 with FCBF (Yu & Liu, ICML
//! 2003): rank features by symmetrical uncertainty (SU) with the class,
//! then walk the ranking removing every feature that is more correlated
//! with an already-selected feature than with the class (a *redundant
//! peer*). Continuous features are first discretised with
//! Fayyad–Irani MDL cuts, as Weka does.

use vqd_ml::dataset::Dataset;
use vqd_ml::discretize::{apply, mdl_cuts};
use vqd_ml::info::symmetrical_uncertainty;

/// Outcome of feature selection.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Selected feature names, strongest first.
    pub names: Vec<String>,
    /// SU with the class for each selected feature.
    pub su: Vec<f64>,
}

/// Run FCBF. `delta` is the minimum SU with the class for a feature to
/// be considered relevant at all (the paper/Weka default is ≈0).
pub fn fcbf(data: &Dataset, delta: f64) -> Selection {
    let n = data.len();
    if n == 0 {
        return Selection {
            names: Vec::new(),
            su: Vec::new(),
        };
    }
    let ny = data.n_classes();

    // Discretise every column once.
    let mut cols: Vec<(usize, Vec<usize>, usize, f64)> = Vec::new(); // (feat, bins, n_bins, su_class)
    for j in 0..data.n_features() {
        let values: Vec<f64> = data.x.iter().map(|r| r[j]).collect();
        let cuts = mdl_cuts(&values, &data.y, ny);
        if cuts.cuts.is_empty() {
            // No class-relevant structure in this feature.
            continue;
        }
        let bins = apply(&cuts, &values);
        let nb = cuts.n_bins();
        let su = symmetrical_uncertainty(&bins, &data.y, nb, ny);
        if su > delta {
            cols.push((j, bins, nb, su));
        }
    }
    // Descending by SU with the class.
    cols.sort_by(|a, b| b.3.total_cmp(&a.3));

    // Redundancy elimination.
    let mut selected: Vec<usize> = Vec::new(); // indices into cols
    let mut removed = vec![false; cols.len()];
    for i in 0..cols.len() {
        if removed[i] {
            continue;
        }
        selected.push(i);
        for k in (i + 1)..cols.len() {
            if removed[k] {
                continue;
            }
            let su_pq = symmetrical_uncertainty(&cols[i].1, &cols[k].1, cols[i].2, cols[k].2);
            if su_pq >= cols[k].3 {
                removed[k] = true;
            }
        }
    }

    // Per-run selection-funnel counters (write-only; no-ops unless
    // observability is enabled).
    let r = vqd_obs::recorder();
    r.counter_add("features.fcbf.runs", 1);
    r.counter_add("features.fcbf.candidates", data.n_features() as u64);
    r.counter_add("features.fcbf.relevant", cols.len() as u64);
    r.counter_add("features.fcbf.selected", selected.len() as u64);

    Selection {
        names: selected
            .iter()
            .map(|&i| data.features[cols[i].0].clone())
            .collect(),
        su: selected.iter().map(|&i| cols[i].3).collect(),
    }
}

/// One relevant feature's cached discretisation in the streaming
/// selector: the column never stays resident, only its MDL bins
/// (`4·n_rows` bytes) and SU with the class.
struct StreamCand {
    col: usize,
    bins: Vec<u32>,
    n_bins: usize,
    su: f64,
}

/// FCBF redundancy elimination over a candidate subset, exactly as
/// [`fcbf`] does it: stable sort by SU descending, then walk the
/// ranking removing redundant peers. Returns indices into `cands` in
/// selection order.
fn eliminate(cands: &[&StreamCand], xa: &mut Vec<usize>, xb: &mut Vec<usize>) -> Vec<usize> {
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by(|&a, &b| cands[b].su.total_cmp(&cands[a].su));
    let mut selected = Vec::new();
    let mut removed = vec![false; order.len()];
    for i in 0..order.len() {
        if removed[i] {
            continue;
        }
        selected.push(order[i]);
        let ci = cands[order[i]];
        xa.clear();
        xa.extend(ci.bins.iter().map(|&b| b as usize));
        for k in (i + 1)..order.len() {
            if removed[k] {
                continue;
            }
            let ck = cands[order[k]];
            xb.clear();
            xb.extend(ck.bins.iter().map(|&b| b as usize));
            let su_pq = symmetrical_uncertainty(xa, xb, ci.n_bins, ck.n_bins);
            if su_pq >= ck.su {
                removed[k] = true;
            }
        }
    }
    selected
}

/// Streaming twin of the diagnoser's global + per-vantage-point FCBF
/// union: columns are fetched one at a time (from a `.vqdc` reader, a
/// constructed-column view, …) instead of from a resident [`Dataset`].
///
/// Selects **exactly** the same feature names, in the same order, as
/// `fcbf(&data, delta)` unioned with `fcbf` over each VP-prefixed
/// column subset — the per-column discretisation and SU are
/// independent of the other columns, and the redundancy walk here
/// replays [`fcbf`]'s stable ranking over each subset. Resident state
/// is one column during `fetch` plus `4·n_rows` bytes per *relevant*
/// candidate (its MDL bins).
pub fn fcbf_union_streaming<E>(
    features: &[String],
    y: &[usize],
    n_classes: usize,
    delta: f64,
    mut fetch: impl FnMut(usize) -> Result<Vec<f64>, E>,
) -> Result<Vec<String>, E> {
    if y.is_empty() {
        return Ok(Vec::new());
    }
    let ny = n_classes;
    let mut cands: Vec<StreamCand> = Vec::new();
    for (j, _) in features.iter().enumerate() {
        let values = fetch(j)?;
        let cuts = mdl_cuts(&values, y, ny);
        if cuts.cuts.is_empty() {
            continue;
        }
        let bins = apply(&cuts, &values);
        let nb = cuts.n_bins();
        let su = symmetrical_uncertainty(&bins, y, nb, ny);
        if su > delta {
            cands.push(StreamCand {
                col: j,
                bins: bins.iter().map(|&b| b as u32).collect(),
                n_bins: nb,
                su,
            });
        }
    }
    let (mut xa, mut xb) = (Vec::new(), Vec::new());
    let r = vqd_obs::recorder();

    // Global pass.
    let all: Vec<&StreamCand> = cands.iter().collect();
    let picked = eliminate(&all, &mut xa, &mut xb);
    let mut names: Vec<String> = picked
        .iter()
        .map(|&i| features[all[i].col].clone())
        .collect();
    r.counter_add("features.fcbf.runs", 1);
    r.counter_add("features.fcbf.candidates", features.len() as u64);
    r.counter_add("features.fcbf.relevant", cands.len() as u64);
    r.counter_add("features.fcbf.selected", picked.len() as u64);

    // Per-VP passes, unioned (same rationale as the in-memory
    // pipeline: keep every entity able to diagnose alone).
    let vps: std::collections::BTreeSet<String> = features
        .iter()
        .filter_map(|n| n.split('.').next().map(str::to_string))
        .collect();
    for vp in vps {
        let sub: Vec<&StreamCand> = cands
            .iter()
            .filter(|c| features[c.col].starts_with(&vp))
            .collect();
        let picked = eliminate(&sub, &mut xa, &mut xb);
        r.counter_add("features.fcbf.runs", 1);
        r.counter_add(
            "features.fcbf.candidates",
            features.iter().filter(|n| n.starts_with(&vp)).count() as u64,
        );
        r.counter_add("features.fcbf.relevant", sub.len() as u64);
        r.counter_add("features.fcbf.selected", picked.len() as u64);
        for &i in &picked {
            let n = &features[sub[i].col];
            if !names.contains(n) {
                names.push(n.clone());
            }
        }
    }
    Ok(names)
}

/// Rank all features by SU with the class (no redundancy elimination) —
/// used for the paper's Table 4 per-fault feature rankings.
pub fn rank_by_su(data: &Dataset) -> Vec<(String, f64)> {
    let ny = data.n_classes();
    let mut out: Vec<(String, f64)> = Vec::new();
    for j in 0..data.n_features() {
        let values: Vec<f64> = data.x.iter().map(|r| r[j]).collect();
        let cuts = mdl_cuts(&values, &data.y, ny);
        if cuts.cuts.is_empty() {
            continue;
        }
        let bins = apply(&cuts, &values);
        let su = symmetrical_uncertainty(&bins, &data.y, cuts.n_bins(), ny);
        out.push((data.features[j].clone(), su));
    }
    out.sort_by(|a, b| b.1.total_cmp(&a.1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqd_simnet::rng::SimRng;

    /// signal: fully predictive; echo: copy of signal (redundant);
    /// weak: noisy version; junk: random.
    fn toy(n: usize, seed: u64) -> Dataset {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut d = Dataset::new(
            vec!["signal".into(), "echo".into(), "weak".into(), "junk".into()],
            vec!["a".into(), "b".into()],
        );
        for _ in 0..n {
            let c = rng.index(2);
            let s = c as f64 * 10.0 + rng.normal(0.0, 0.5);
            let weak = c as f64 * 2.0 + rng.normal(0.0, 2.0);
            d.push(vec![s, s + 0.1, weak, rng.normal(0.0, 3.0)], c);
        }
        d
    }

    #[test]
    fn fcbf_keeps_signal_drops_echo_and_junk() {
        let d = toy(500, 1);
        let sel = fcbf(&d, 0.01);
        assert!(
            sel.names.contains(&"signal".to_string()) || sel.names.contains(&"echo".to_string())
        );
        // The redundant twin must not survive alongside the original.
        assert!(
            !(sel.names.contains(&"signal".to_string()) && sel.names.contains(&"echo".to_string())),
            "{:?}",
            sel.names
        );
        assert!(!sel.names.contains(&"junk".to_string()), "{:?}", sel.names);
    }

    #[test]
    fn weak_but_nonredundant_survives() {
        let d = toy(800, 2);
        let sel = fcbf(&d, 0.01);
        // `weak` carries class information not fully captured once
        // redundancy with signal is accounted — FCBF usually keeps it.
        assert!(
            !sel.names.is_empty() && sel.names.len() <= 3,
            "{:?}",
            sel.names
        );
        // Ordering is by SU descending.
        for w in sel.su.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn rank_by_su_ordering() {
        let d = toy(500, 3);
        let ranks = rank_by_su(&d);
        assert!(!ranks.is_empty());
        assert_eq!(ranks[0].0, "signal");
        for w in ranks.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn empty_dataset_is_safe() {
        let d = Dataset::new(vec!["a".into()], vec!["x".into(), "y".into()]);
        let sel = fcbf(&d, 0.0);
        assert!(sel.names.is_empty());
    }

    /// Multi-VP toy data with correlated cross-VP copies, so the
    /// per-VP union actually adds names beyond the global pass.
    fn multi_vp(n: usize, seed: u64) -> Dataset {
        let mut rng = SimRng::seed_from_u64(seed);
        let names: Vec<String> = vec![
            "mobile.tcp.rtt".into(),
            "mobile.phy.rssi".into(),
            "router.tcp.rtt".into(),
            "router.tcp.retx".into(),
            "server.tcp.rtt".into(),
            "server.junk".into(),
        ];
        let mut d = Dataset::new(names, vec!["a".into(), "b".into(), "c".into()]);
        for _ in 0..n {
            let c = rng.index(3);
            let rtt = c as f64 * 4.0 + rng.normal(0.0, 0.6);
            d.push(
                vec![
                    rtt + rng.normal(0.0, 0.2),
                    c as f64 * -6.0 + rng.normal(0.0, 1.0),
                    rtt + rng.normal(0.0, 0.3),
                    (c == 2) as usize as f64 * 3.0 + rng.normal(0.0, 1.5),
                    rtt + rng.normal(0.0, 0.4),
                    rng.normal(0.0, 2.0),
                ],
                c,
            );
        }
        d
    }

    /// In-memory reference of the diagnoser's global + per-VP union.
    fn union_reference(data: &Dataset, delta: f64) -> Vec<String> {
        let mut names = fcbf(data, delta).names;
        let vps: std::collections::BTreeSet<String> = data
            .features
            .iter()
            .filter_map(|n| n.split('.').next().map(str::to_string))
            .collect();
        for vp in vps {
            let sub = data.select_features_by(|n| n.starts_with(&vp));
            for n in fcbf(&sub, delta).names {
                if !names.contains(&n) {
                    names.push(n);
                }
            }
        }
        names
    }

    #[test]
    fn streaming_union_matches_in_memory_reference() {
        for seed in [7u64, 11, 23] {
            let d = multi_vp(400, seed);
            let want = union_reference(&d, 0.01);
            let got: Vec<String> = fcbf_union_streaming(
                &d.features,
                &d.y,
                d.n_classes(),
                0.01,
                |j| -> Result<Vec<f64>, std::convert::Infallible> {
                    Ok(d.x.iter().map(|r| r[j]).collect())
                },
            )
            .unwrap_or_else(|e| match e {});
            assert_eq!(got, want, "seed {seed}");
            assert!(!got.is_empty());
        }
    }

    #[test]
    fn massive_reduction_on_noise() {
        // 50 junk features + 2 informative → FCBF returns a handful.
        let mut rng = SimRng::seed_from_u64(5);
        let names: Vec<String> = (0..52).map(|i| format!("f{i}")).collect();
        let mut d = Dataset::new(names, vec!["a".into(), "b".into()]);
        for _ in 0..400 {
            let c = rng.index(2);
            let mut row: Vec<f64> = (0..50).map(|_| rng.normal(0.0, 1.0)).collect();
            row.push(c as f64 * 5.0 + rng.normal(0.0, 0.5));
            row.push(c as f64 * -3.0 + rng.normal(0.0, 0.8));
            d.push(row, c);
        }
        let sel = fcbf(&d, 0.01);
        assert!(sel.names.len() <= 6, "kept {:?}", sel.names);
        assert!(sel.names.contains(&"f50".to_string()));
    }
}
