//! Feature Selection: Fast Correlation-Based Filter (FCBF).
//!
//! The paper reduces 354 raw features to 22 with FCBF (Yu & Liu, ICML
//! 2003): rank features by symmetrical uncertainty (SU) with the class,
//! then walk the ranking removing every feature that is more correlated
//! with an already-selected feature than with the class (a *redundant
//! peer*). Continuous features are first discretised with
//! Fayyad–Irani MDL cuts, as Weka does.

use vqd_ml::dataset::Dataset;
use vqd_ml::discretize::{apply, mdl_cuts};
use vqd_ml::info::symmetrical_uncertainty;

/// Outcome of feature selection.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Selected feature names, strongest first.
    pub names: Vec<String>,
    /// SU with the class for each selected feature.
    pub su: Vec<f64>,
}

/// Run FCBF. `delta` is the minimum SU with the class for a feature to
/// be considered relevant at all (the paper/Weka default is ≈0).
pub fn fcbf(data: &Dataset, delta: f64) -> Selection {
    let n = data.len();
    if n == 0 {
        return Selection {
            names: Vec::new(),
            su: Vec::new(),
        };
    }
    let ny = data.n_classes();

    // Discretise every column once.
    let mut cols: Vec<(usize, Vec<usize>, usize, f64)> = Vec::new(); // (feat, bins, n_bins, su_class)
    for j in 0..data.n_features() {
        let values: Vec<f64> = data.x.iter().map(|r| r[j]).collect();
        let cuts = mdl_cuts(&values, &data.y, ny);
        if cuts.cuts.is_empty() {
            // No class-relevant structure in this feature.
            continue;
        }
        let bins = apply(&cuts, &values);
        let nb = cuts.n_bins();
        let su = symmetrical_uncertainty(&bins, &data.y, nb, ny);
        if su > delta {
            cols.push((j, bins, nb, su));
        }
    }
    // Descending by SU with the class.
    cols.sort_by(|a, b| b.3.total_cmp(&a.3));

    // Redundancy elimination.
    let mut selected: Vec<usize> = Vec::new(); // indices into cols
    let mut removed = vec![false; cols.len()];
    for i in 0..cols.len() {
        if removed[i] {
            continue;
        }
        selected.push(i);
        for k in (i + 1)..cols.len() {
            if removed[k] {
                continue;
            }
            let su_pq = symmetrical_uncertainty(&cols[i].1, &cols[k].1, cols[i].2, cols[k].2);
            if su_pq >= cols[k].3 {
                removed[k] = true;
            }
        }
    }

    // Per-run selection-funnel counters (write-only; no-ops unless
    // observability is enabled).
    let r = vqd_obs::recorder();
    r.counter_add("features.fcbf.runs", 1);
    r.counter_add("features.fcbf.candidates", data.n_features() as u64);
    r.counter_add("features.fcbf.relevant", cols.len() as u64);
    r.counter_add("features.fcbf.selected", selected.len() as u64);

    Selection {
        names: selected
            .iter()
            .map(|&i| data.features[cols[i].0].clone())
            .collect(),
        su: selected.iter().map(|&i| cols[i].3).collect(),
    }
}

/// Rank all features by SU with the class (no redundancy elimination) —
/// used for the paper's Table 4 per-fault feature rankings.
pub fn rank_by_su(data: &Dataset) -> Vec<(String, f64)> {
    let ny = data.n_classes();
    let mut out: Vec<(String, f64)> = Vec::new();
    for j in 0..data.n_features() {
        let values: Vec<f64> = data.x.iter().map(|r| r[j]).collect();
        let cuts = mdl_cuts(&values, &data.y, ny);
        if cuts.cuts.is_empty() {
            continue;
        }
        let bins = apply(&cuts, &values);
        let su = symmetrical_uncertainty(&bins, &data.y, cuts.n_bins(), ny);
        out.push((data.features[j].clone(), su));
    }
    out.sort_by(|a, b| b.1.total_cmp(&a.1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqd_simnet::rng::SimRng;

    /// signal: fully predictive; echo: copy of signal (redundant);
    /// weak: noisy version; junk: random.
    fn toy(n: usize, seed: u64) -> Dataset {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut d = Dataset::new(
            vec!["signal".into(), "echo".into(), "weak".into(), "junk".into()],
            vec!["a".into(), "b".into()],
        );
        for _ in 0..n {
            let c = rng.index(2);
            let s = c as f64 * 10.0 + rng.normal(0.0, 0.5);
            let weak = c as f64 * 2.0 + rng.normal(0.0, 2.0);
            d.push(vec![s, s + 0.1, weak, rng.normal(0.0, 3.0)], c);
        }
        d
    }

    #[test]
    fn fcbf_keeps_signal_drops_echo_and_junk() {
        let d = toy(500, 1);
        let sel = fcbf(&d, 0.01);
        assert!(
            sel.names.contains(&"signal".to_string()) || sel.names.contains(&"echo".to_string())
        );
        // The redundant twin must not survive alongside the original.
        assert!(
            !(sel.names.contains(&"signal".to_string()) && sel.names.contains(&"echo".to_string())),
            "{:?}",
            sel.names
        );
        assert!(!sel.names.contains(&"junk".to_string()), "{:?}", sel.names);
    }

    #[test]
    fn weak_but_nonredundant_survives() {
        let d = toy(800, 2);
        let sel = fcbf(&d, 0.01);
        // `weak` carries class information not fully captured once
        // redundancy with signal is accounted — FCBF usually keeps it.
        assert!(
            !sel.names.is_empty() && sel.names.len() <= 3,
            "{:?}",
            sel.names
        );
        // Ordering is by SU descending.
        for w in sel.su.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn rank_by_su_ordering() {
        let d = toy(500, 3);
        let ranks = rank_by_su(&d);
        assert!(!ranks.is_empty());
        assert_eq!(ranks[0].0, "signal");
        for w in ranks.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn empty_dataset_is_safe() {
        let d = Dataset::new(vec!["a".into()], vec!["x".into(), "y".into()]);
        let sel = fcbf(&d, 0.0);
        assert!(sel.names.is_empty());
    }

    #[test]
    fn massive_reduction_on_noise() {
        // 50 junk features + 2 informative → FCBF returns a handful.
        let mut rng = SimRng::seed_from_u64(5);
        let names: Vec<String> = (0..52).map(|i| format!("f{i}")).collect();
        let mut d = Dataset::new(names, vec!["a".into(), "b".into()]);
        for _ in 0..400 {
            let c = rng.index(2);
            let mut row: Vec<f64> = (0..50).map(|_| rng.normal(0.0, 1.0)).collect();
            row.push(c as f64 * 5.0 + rng.normal(0.0, 0.5));
            row.push(c as f64 * -3.0 + rng.normal(0.0, 0.8));
            d.push(row, c);
        }
        let sel = fcbf(&d, 0.01);
        assert!(sel.names.len() <= 6, "kept {:?}", sel.names);
        assert!(sel.names.contains(&"f50".to_string()));
    }
}
