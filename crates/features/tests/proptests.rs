//! Property-based tests of feature construction and selection.

use proptest::prelude::*;

use vqd_features::{fcbf, FeatureConstructor};
use vqd_ml::dataset::Dataset;
use vqd_simnet::rng::SimRng;

fn probe_like_dataset(n: usize, seed: u64, signal_strength: f64) -> Dataset {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut d = Dataset::new(
        vec![
            "mobile.tcp.s2c.retx_pkts".into(),
            "mobile.tcp.s2c.data_bytes".into(),
            "mobile.tcp.total_pkts".into(),
            "mobile.tcp.total_data_bytes".into(),
            "mobile.nic0.rx_bps_avg".into(),
            "mobile.phy.rssi_avg".into(),
            "mobile.hw.cpu_avg".into(),
        ],
        vec!["good".into(), "bad".into()],
    );
    for _ in 0..n {
        let c = rng.index(2);
        let pkts = rng.range_f64(100.0, 10_000.0);
        let retx = pkts
            * if c == 1 {
                0.05 * signal_strength
            } else {
                0.004
            };
        d.push(
            vec![
                retx,
                pkts * 1000.0,
                pkts,
                pkts * 1400.0,
                rng.range_f64(1e5, 8e6),
                rng.normal(-55.0 - c as f64 * 20.0 * signal_strength, 4.0),
                rng.range_f64(0.05, 0.9),
            ],
            c,
        );
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Constructed ratios are scale-free: multiplying a session's
    /// packet counts by any factor leaves normalised columns unchanged.
    #[test]
    fn construction_is_scale_invariant(k in 1.0f64..50.0, seed in any::<u64>()) {
        let d = probe_like_dataset(30, seed, 1.0);
        let fc = FeatureConstructor::fit(&d);
        let t1 = fc.transform(&d);
        // Scale counts and totals together.
        let mut scaled = d.clone();
        for row in &mut scaled.x {
            row[0] *= k; // retx_pkts
            row[1] *= k; // data_bytes
            row[2] *= k; // total_pkts
            row[3] *= k; // total_data_bytes
        }
        let t2 = fc.transform(&scaled);
        let retx = t1.feature_index("mobile.tcp.s2c.retx_pkts_norm").unwrap();
        let bytes = t1.feature_index("mobile.tcp.s2c.data_bytes_norm").unwrap();
        for i in 0..t1.len() {
            prop_assert!((t1.x[i][retx] - t2.x[i][retx]).abs() < 1e-9);
            prop_assert!((t1.x[i][bytes] - t2.x[i][bytes]).abs() < 1e-9);
        }
    }

    /// FCBF output: names are unique, exist in the dataset, and SU
    /// scores are sorted descending in (0, 1].
    #[test]
    fn fcbf_output_invariants(seed in any::<u64>(), strength in 0.5f64..2.0) {
        let d = probe_like_dataset(150, seed, strength);
        let fc = FeatureConstructor::fit(&d);
        let t = fc.transform(&d);
        let sel = fcbf(&t, 0.01);
        let mut seen = std::collections::HashSet::new();
        for name in &sel.names {
            prop_assert!(t.feature_index(name).is_some(), "unknown {name}");
            prop_assert!(seen.insert(name.clone()), "duplicate {name}");
        }
        for w in sel.su.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        for &su in &sel.su {
            prop_assert!(su > 0.0 && su <= 1.0);
        }
    }

    /// Transform and transform_instance agree column-by-column.
    #[test]
    fn batch_and_instance_transforms_agree(seed in any::<u64>()) {
        let d = probe_like_dataset(20, seed, 1.0);
        let fc = FeatureConstructor::fit(&d);
        let t = fc.transform(&d);
        for i in 0..d.len() {
            let metrics: Vec<(String, f64)> = d
                .features
                .iter()
                .cloned()
                .zip(d.x[i].iter().copied())
                .collect();
            let inst = fc.transform_instance(&metrics);
            prop_assert_eq!(inst.len(), t.n_features());
            for (j, (name, v)) in inst.iter().enumerate() {
                prop_assert_eq!(name, &t.features[j]);
                let expect = t.x[i][j];
                prop_assert!(
                    (v - expect).abs() < 1e-9 || (v.is_nan() && expect.is_nan()),
                    "{name}: {v} vs {expect}"
                );
            }
        }
    }
}
