//! Flattened decision trees for the serving hot path.
//!
//! [`DecisionTree`] is a pointer-chasing `Box<Node>` graph — fine for
//! training and dumps, hostile to a loop that scores millions of
//! sessions: every split is a heap hop and every leaf allocates a
//! fresh distribution vector. [`CompiledTree`] flattens the graph once
//! into structure-of-arrays node tables indexed by pre-order id
//! (node 0 = the root, the same id assignment
//! [`DecisionTree::serialize`] uses), so a descent is array walks over
//! a few contiguous vectors and prediction accumulates into
//! caller-owned buffers with **zero allocation**.
//!
//! The compiled descent is bit-identical to
//! [`DecisionTree::predict_dist_traced`]: the explicit stack replays
//! the recursion's exact leaf-visit order (low subtree fully before
//! high), every floating-point expression keeps the same shape and
//! association, and leaf totals are precomputed with the same
//! left-to-right summation the scalar path performs per visit.

use crate::dtree::{DecisionTree, Node};

/// Sentinel feature id marking a leaf row in the node table.
const LEAF: u32 = u32::MAX;

/// One pending high-branch visit during a descent. Callers keep a
/// `Vec<DescentFrame>` alive across calls so the hot loop never
/// allocates.
#[derive(Debug, Clone, Copy)]
pub struct DescentFrame {
    node: u32,
    w: f64,
    via_missing: bool,
    depth: u32,
}

/// Which branch a recorded split decision took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditDir {
    /// Observed value below the threshold.
    Lo,
    /// Observed value at or above the threshold.
    Hi,
    /// Value missing: weight split across both children by `lo_frac`.
    Both,
}

impl AuditDir {
    /// Stable lower-case name (audit record serialization).
    pub fn name(self) -> &'static str {
        match self {
            AuditDir::Lo => "lo",
            AuditDir::Hi => "hi",
            AuditDir::Both => "both",
        }
    }

    /// Inverse of [`AuditDir::name`].
    pub fn parse(s: &str) -> Option<AuditDir> {
        match s {
            "lo" => Some(AuditDir::Lo),
            "hi" => Some(AuditDir::Hi),
            "both" => Some(AuditDir::Both),
            _ => None,
        }
    }
}

/// One split decision recorded during an audited descent: enough to
/// replay the exact traversal (and therefore the exact verdict)
/// without the feature vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditStep {
    /// Pre-order node id of the split (same ids `serialize` uses).
    pub node: u32,
    /// Split feature column.
    pub feat: u32,
    /// Split threshold.
    pub thr: f64,
    /// Observed feature value (NaN when the feature was missing).
    pub value: f64,
    /// Branch taken.
    pub dir: AuditDir,
}

/// A [`DecisionTree`] flattened into cache-friendly SoA node tables.
#[derive(Debug, Clone)]
pub struct CompiledTree {
    /// Split feature id per node; [`LEAF`] for leaves.
    feat: Vec<u32>,
    /// Split threshold per node (unused for leaves).
    thr: Vec<f64>,
    /// Low / high child ids per node (unused for leaves).
    lo: Vec<u32>,
    hi: Vec<u32>,
    /// Fraction of known-valued weight routed low (missing-value
    /// routing), per split node.
    lo_frac: Vec<f64>,
    /// Weighted information gain per split node (importance).
    gain_w: Vec<f64>,
    /// Training class distributions, node-major:
    /// `dist[id * n_classes ..][..n_classes]`.
    dist: Vec<f64>,
    /// Per-node distribution total, precomputed with the same
    /// left-to-right sum the scalar leaf accumulation performs.
    dist_total: Vec<f64>,
    n_classes: usize,
    /// Feature names (id = column index).
    pub feature_names: Vec<String>,
    /// Class names.
    pub class_names: Vec<String>,
}

impl CompiledTree {
    /// Flatten a trained tree. Node ids are assigned in pre-order,
    /// matching `serialize`'s id assignment.
    pub fn from_tree(tree: &DecisionTree) -> CompiledTree {
        let k = tree.class_names.len();
        let mut ct = CompiledTree {
            feat: Vec::new(),
            thr: Vec::new(),
            lo: Vec::new(),
            hi: Vec::new(),
            lo_frac: Vec::new(),
            gain_w: Vec::new(),
            dist: Vec::new(),
            dist_total: Vec::new(),
            n_classes: k,
            feature_names: tree.feature_names.clone(),
            class_names: tree.class_names.clone(),
        };
        ct.flatten(tree.root());
        ct
    }

    /// Append `node` and its subtree to the tables; returns its id.
    fn flatten(&mut self, node: &Node) -> u32 {
        let id = self.feat.len() as u32;
        // Reserve the row, then fill it once the children have ids.
        self.feat.push(LEAF);
        self.thr.push(0.0);
        self.lo.push(0);
        self.hi.push(0);
        self.lo_frac.push(0.0);
        self.gain_w.push(0.0);
        match node {
            Node::Leaf { dist } => {
                self.push_dist(dist);
            }
            Node::Split {
                feat,
                thr,
                lo,
                hi,
                lo_frac,
                dist,
                gain_w,
            } => {
                self.push_dist(dist);
                let lo_id = self.flatten(lo);
                let hi_id = self.flatten(hi);
                let i = id as usize;
                self.feat[i] = *feat as u32;
                self.thr[i] = *thr;
                self.lo[i] = lo_id;
                self.hi[i] = hi_id;
                self.lo_frac[i] = *lo_frac;
                self.gain_w[i] = *gain_w;
            }
        }
        id
    }

    fn push_dist(&mut self, dist: &[f64]) {
        debug_assert_eq!(dist.len(), self.n_classes);
        // Same expression the scalar leaf computes per visit:
        // `dist.iter().sum()`, left to right.
        let total: f64 = dist.iter().sum();
        self.dist.extend_from_slice(dist);
        self.dist_total.push(total);
    }

    /// Reassemble the pointer tree (the inverse of
    /// [`CompiledTree::from_tree`], used for round-trip checks and
    /// interop with the text model format).
    pub fn to_tree(&self) -> DecisionTree {
        let root = self.rebuild(0);
        DecisionTree::from_parts(
            root,
            self.n_classes,
            self.feature_names.clone(),
            self.class_names.clone(),
        )
    }

    fn rebuild(&self, id: u32) -> Node {
        let i = id as usize;
        let dist = self.dist[i * self.n_classes..(i + 1) * self.n_classes].to_vec();
        if self.feat[i] == LEAF {
            Node::Leaf { dist }
        } else {
            Node::Split {
                feat: self.feat[i] as usize,
                thr: self.thr[i],
                lo: Box::new(self.rebuild(self.lo[i])),
                hi: Box::new(self.rebuild(self.hi[i])),
                lo_frac: self.lo_frac[i],
                dist,
                gain_w: self.gain_w[i],
            }
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.feat.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total weighted information gain per feature — identical values
    /// to [`DecisionTree::feature_importance`] (the node table is in
    /// pre-order, so accumulation order matches the recursive walk).
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.feature_names.len()];
        for i in 0..self.feat.len() {
            if self.feat[i] != LEAF {
                imp[self.feat[i] as usize] += self.gain_w[i];
            }
        }
        imp
    }

    /// Indices of features used by at least one split, ascending —
    /// same result as [`DecisionTree::features_used`].
    pub fn features_used(&self) -> Vec<usize> {
        let mut seen = vec![false; self.feature_names.len()];
        for i in 0..self.feat.len() {
            if self.feat[i] != LEAF {
                seen[self.feat[i] as usize] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i))
            .collect()
    }

    /// Traced prediction into caller-owned buffers: accumulates the
    /// class distribution into `out` (len `n_classes`, cleared here)
    /// and returns `(miss_frac, max_depth)` where `miss_frac` is the
    /// fraction of landed weight that descended through at least one
    /// missing-value fallback — bit-identical to
    /// [`DecisionTree::predict_dist_traced`] — and `max_depth` is the
    /// deepest node visited (root = 0; observability only).
    ///
    /// `stack` is scratch for pending high-branch visits; it is
    /// cleared here and only grows on instances with missing values at
    /// split features. Nothing allocates once the buffers have warmed.
    pub fn predict_into(
        &self,
        x: &[f64],
        out: &mut [f64],
        stack: &mut Vec<DescentFrame>,
    ) -> (f64, u32) {
        self.descend(x, out, stack, None)
    }

    /// [`CompiledTree::predict_into`] with the decision path recorded
    /// into `path` (cleared here): one [`AuditStep`] per split visited,
    /// in traversal order. The recording changes no floating-point
    /// expression and no visit order, so the returned distribution is
    /// bitwise identical to the unaudited descent; `path` is
    /// caller-owned scratch, so steady-state batches never allocate.
    pub fn predict_into_audited(
        &self,
        x: &[f64],
        out: &mut [f64],
        stack: &mut Vec<DescentFrame>,
        path: &mut Vec<AuditStep>,
    ) -> (f64, u32) {
        path.clear();
        self.descend(x, out, stack, Some(path))
    }

    fn descend(
        &self,
        x: &[f64],
        out: &mut [f64],
        stack: &mut Vec<DescentFrame>,
        mut audit: Option<&mut Vec<AuditStep>>,
    ) -> (f64, u32) {
        debug_assert_eq!(out.len(), self.n_classes);
        for o in out.iter_mut() {
            *o = 0.0;
        }
        stack.clear();
        let mut miss = 0.0f64;
        let mut max_depth = 0u32;

        let mut node = 0u32;
        let mut w = 1.0f64;
        let mut via_missing = false;
        let mut depth = 0u32;
        loop {
            let i = node as usize;
            max_depth = max_depth.max(depth);
            let f = self.feat[i];
            if f == LEAF {
                let total = self.dist_total[i];
                if total > 0.0 {
                    let base = i * self.n_classes;
                    for (c, o) in out.iter_mut().enumerate() {
                        *o += w * self.dist[base + c] / total;
                    }
                    if via_missing {
                        miss += w;
                    }
                }
                // Deepest pending high branch next — replays the
                // recursion's lo-before-hi leaf order exactly.
                match stack.pop() {
                    Some(fr) => {
                        node = fr.node;
                        w = fr.w;
                        via_missing = fr.via_missing;
                        depth = fr.depth;
                    }
                    None => break,
                }
            } else {
                let v = x[f as usize];
                let dir;
                if v.is_nan() {
                    stack.push(DescentFrame {
                        node: self.hi[i],
                        w: w * (1.0 - self.lo_frac[i]),
                        via_missing: true,
                        depth: depth + 1,
                    });
                    w *= self.lo_frac[i];
                    node = self.lo[i];
                    via_missing = true;
                    dir = AuditDir::Both;
                } else if v < self.thr[i] {
                    node = self.lo[i];
                    dir = AuditDir::Lo;
                } else {
                    node = self.hi[i];
                    dir = AuditDir::Hi;
                }
                if let Some(p) = audit.as_deref_mut() {
                    p.push(AuditStep {
                        node: i as u32,
                        feat: f,
                        thr: self.thr[i],
                        value: v,
                        dir,
                    });
                }
                depth += 1;
            }
        }

        // Same trace normalisation as the scalar path: weight reaching
        // empty leaves contributes to neither sum.
        let landed: f64 = out.iter().sum();
        let miss_frac = if landed > 0.0 {
            (miss / landed).clamp(0.0, 1.0)
        } else {
            1.0
        };
        (miss_frac, max_depth)
    }

    /// Re-run a descent from a recorded decision path alone: the
    /// branch choices come from `steps` (consumed in order) instead of
    /// a feature vector, every floating-point expression matches
    /// [`CompiledTree::predict_into`], and the resulting distribution
    /// is therefore bitwise identical to the original verdict. Returns
    /// the same `(miss_frac, max_depth)` pair, or an error when the
    /// path does not fit this tree (wrong node/feature at a split, too
    /// short, or steps left over).
    pub fn replay_into(
        &self,
        steps: &[AuditStep],
        out: &mut [f64],
        stack: &mut Vec<DescentFrame>,
    ) -> Result<(f64, u32), String> {
        debug_assert_eq!(out.len(), self.n_classes);
        for o in out.iter_mut() {
            *o = 0.0;
        }
        stack.clear();
        let mut next = 0usize;
        let mut miss = 0.0f64;
        let mut max_depth = 0u32;

        let mut node = 0u32;
        let mut w = 1.0f64;
        let mut via_missing = false;
        let mut depth = 0u32;
        loop {
            let i = node as usize;
            max_depth = max_depth.max(depth);
            let f = self.feat[i];
            if f == LEAF {
                let total = self.dist_total[i];
                if total > 0.0 {
                    let base = i * self.n_classes;
                    for (c, o) in out.iter_mut().enumerate() {
                        *o += w * self.dist[base + c] / total;
                    }
                    if via_missing {
                        miss += w;
                    }
                }
                match stack.pop() {
                    Some(fr) => {
                        node = fr.node;
                        w = fr.w;
                        via_missing = fr.via_missing;
                        depth = fr.depth;
                    }
                    None => break,
                }
            } else {
                let Some(step) = steps.get(next) else {
                    return Err(format!("path ended at split node {node} (step {next})"));
                };
                next += 1;
                if step.node != node || step.feat != f {
                    return Err(format!(
                        "step {} is node {} feat {}, tree expects node {node} feat {f}",
                        next - 1,
                        step.node,
                        step.feat
                    ));
                }
                match step.dir {
                    AuditDir::Both => {
                        stack.push(DescentFrame {
                            node: self.hi[i],
                            w: w * (1.0 - self.lo_frac[i]),
                            via_missing: true,
                            depth: depth + 1,
                        });
                        w *= self.lo_frac[i];
                        node = self.lo[i];
                        via_missing = true;
                    }
                    AuditDir::Lo => node = self.lo[i],
                    AuditDir::Hi => node = self.hi[i],
                }
                depth += 1;
            }
        }
        if next != steps.len() {
            return Err(format!(
                "{} recorded steps, traversal consumed {next}",
                steps.len()
            ));
        }

        let landed: f64 = out.iter().sum();
        let miss_frac = if landed > 0.0 {
            (miss / landed).clamp(0.0, 1.0)
        } else {
            1.0
        };
        Ok((miss_frac, max_depth))
    }

    /// Allocating convenience wrapper over [`CompiledTree::predict_into`]
    /// (tests and one-off calls).
    pub fn predict_dist_traced(&self, x: &[f64]) -> (Vec<f64>, f64) {
        let mut out = vec![0.0; self.n_classes];
        let mut stack = Vec::new();
        let (miss_frac, _) = self.predict_into(x, &mut out, &mut stack);
        (out, miss_frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::dtree::{C45Config, C45Trainer};

    fn trained() -> DecisionTree {
        let mut d = Dataset::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec!["x".into(), "y".into(), "z".into()],
        );
        // Deterministic pseudo-random rows with a real signal on a/b
        // plus some missing values so lo_frac routing is exercised.
        let mut s = 0x9e3779b97f4a7c15u64;
        for i in 0..240 {
            let mut next = || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64
            };
            let a = next() * 10.0;
            let b = next() * 10.0;
            let c = if i % 7 == 0 { f64::NAN } else { next() };
            let y = if a < 3.0 {
                0
            } else if b < 5.0 {
                1
            } else {
                2
            };
            d.push(vec![if i % 11 == 0 { f64::NAN } else { a }, b, c], y);
        }
        let trainer = C45Trainer {
            cfg: C45Config::default(),
        };
        trainer.fit(&d, &(0..d.len()).collect::<Vec<_>>())
    }

    #[test]
    fn compiled_matches_scalar_bitwise() {
        let tree = trained();
        let ct = CompiledTree::from_tree(&tree);
        assert_eq!(ct.n_classes(), 3);
        let probes = [
            vec![1.0, 2.0, 0.5],
            vec![5.0, 1.0, 0.1],
            vec![9.0, 9.0, 0.9],
            vec![f64::NAN, 4.0, 0.2],
            vec![4.0, f64::NAN, 0.2],
            vec![f64::NAN, f64::NAN, f64::NAN],
        ];
        for x in &probes {
            let (d_ref, m_ref) = tree.predict_dist_traced(x);
            let (d_c, m_c) = ct.predict_dist_traced(x);
            assert_eq!(
                d_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                d_c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{x:?}"
            );
            assert_eq!(m_ref.to_bits(), m_c.to_bits(), "{x:?}");
        }
    }

    #[test]
    fn importance_and_used_match() {
        let tree = trained();
        let ct = CompiledTree::from_tree(&tree);
        let a = tree.feature_importance();
        let b = ct.feature_importance();
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(tree.features_used(), ct.features_used());
    }

    #[test]
    fn round_trips_through_pointer_tree() {
        let tree = trained();
        let ct = CompiledTree::from_tree(&tree);
        let back = ct.to_tree();
        assert_eq!(tree.serialize(), back.serialize());
    }

    #[test]
    fn audited_descent_is_bitwise_identical_and_replays() {
        let tree = trained();
        let ct = CompiledTree::from_tree(&tree);
        let probes = [
            vec![1.0, 2.0, 0.5],
            vec![5.0, 1.0, 0.1],
            vec![9.0, 9.0, 0.9],
            vec![f64::NAN, 4.0, 0.2],
            vec![4.0, f64::NAN, 0.2],
            vec![f64::NAN, f64::NAN, f64::NAN],
        ];
        let mut plain = vec![0.0; ct.n_classes()];
        let mut audited = vec![0.0; ct.n_classes()];
        let mut replayed = vec![0.0; ct.n_classes()];
        let mut stack = Vec::new();
        let mut path = Vec::new();
        for x in &probes {
            let (m_p, d_p) = ct.predict_into(x, &mut plain, &mut stack);
            let (m_a, d_a) = ct.predict_into_audited(x, &mut audited, &mut stack, &mut path);
            assert_eq!(
                plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                audited.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{x:?}"
            );
            assert_eq!((m_p.to_bits(), d_p), (m_a.to_bits(), d_a), "{x:?}");
            assert!(!path.is_empty(), "trained tree has splits");
            // Steps land in traversal order starting at the root and
            // carry the observed values.
            assert_eq!(path[0].node, 0);
            for s in &path {
                assert_eq!(s.value.to_bits(), x[s.feat as usize].to_bits());
            }
            // The recorded path alone reproduces the verdict bitwise.
            let (m_r, d_r) = ct.replay_into(&path, &mut replayed, &mut stack).unwrap();
            assert_eq!(
                plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                replayed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{x:?}"
            );
            assert_eq!((m_p.to_bits(), d_p), (m_r.to_bits(), d_r), "{x:?}");
        }
    }

    #[test]
    fn replay_rejects_paths_that_do_not_fit() {
        let tree = trained();
        let ct = CompiledTree::from_tree(&tree);
        let mut out = vec![0.0; ct.n_classes()];
        let mut stack = Vec::new();
        let mut path = Vec::new();
        let (_, _) = ct.predict_into_audited(&[5.0, 1.0, 0.1], &mut out, &mut stack, &mut path);

        // Truncated path.
        let err = ct
            .replay_into(&path[..path.len() - 1], &mut out, &mut stack)
            .unwrap_err();
        assert!(err.contains("path ended"), "{err}");

        // Wrong node id at a step.
        let mut bad = path.clone();
        bad[0].node = bad[0].node.wrapping_add(1);
        assert!(ct.replay_into(&bad, &mut out, &mut stack).is_err());

        // Extra trailing step.
        let mut long = path.clone();
        long.push(path[0]);
        let err = ct.replay_into(&long, &mut out, &mut stack).unwrap_err();
        assert!(err.contains("consumed"), "{err}");
    }

    #[test]
    fn audit_dir_names_round_trip() {
        for d in [AuditDir::Lo, AuditDir::Hi, AuditDir::Both] {
            assert_eq!(AuditDir::parse(d.name()), Some(d));
        }
        assert_eq!(AuditDir::parse("sideways"), None);
    }

    #[test]
    fn round_trips_v1_text() {
        let text = "vqd-tree v1\nclasses\ta\tb\nfeatures\tf\nS 0 0.5 0.5 1.0 3.0 3.0\nL 3.0 0.0\nL 0.0 3.0\n";
        let tree = DecisionTree::deserialize(text).unwrap();
        let ct = CompiledTree::from_tree(&tree);
        assert_eq!(ct.n_nodes(), 3);
        // v1 re-serialises as v2; the compiled round-trip must agree.
        assert_eq!(ct.to_tree().serialize(), tree.serialize());
        let (d, m) = ct.predict_dist_traced(&[0.2]);
        assert_eq!(d, vec![1.0, 0.0]);
        assert_eq!(m, 0.0);
    }
}
