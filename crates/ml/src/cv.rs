//! Stratified k-fold cross-validation.
//!
//! The paper evaluates every model with 10-fold cross-validation; this
//! module provides that loop for any classifier via the
//! [`Learner`] abstraction, producing a pooled
//! [`ConfusionMatrix`](crate::metrics::ConfusionMatrix).

use vqd_simnet::rng::SimRng;

use crate::dataset::Dataset;
use crate::dtree::{C45Trainer, DecisionTree};
use crate::metrics::ConfusionMatrix;
use crate::nb::NaiveBayes;
use crate::svm::{LinearSvm, SvmConfig};

/// Anything that can be fit on dataset rows and predict instances.
pub trait Learner {
    /// The trained model type.
    type Model;
    /// Train on the given rows.
    fn fit(&self, data: &Dataset, rows: &[usize]) -> Self::Model;
    /// Predict one instance with a trained model.
    fn predict(model: &Self::Model, x: &[f64]) -> usize;
}

/// C4.5 learner adapter.
impl Learner for C45Trainer {
    type Model = DecisionTree;
    fn fit(&self, data: &Dataset, rows: &[usize]) -> DecisionTree {
        C45Trainer::fit(self, data, rows)
    }
    fn predict(model: &DecisionTree, x: &[f64]) -> usize {
        model.predict(x)
    }
}

/// Gaussian NB learner adapter.
#[derive(Debug, Clone, Copy, Default)]
pub struct NbLearner;
impl Learner for NbLearner {
    type Model = NaiveBayes;
    fn fit(&self, data: &Dataset, rows: &[usize]) -> NaiveBayes {
        NaiveBayes::fit(data, rows)
    }
    fn predict(model: &NaiveBayes, x: &[f64]) -> usize {
        model.predict(x)
    }
}

/// Linear SVM learner adapter.
#[derive(Debug, Clone, Copy, Default)]
pub struct SvmLearner {
    /// SVM configuration.
    pub cfg: SvmConfig,
}

impl Learner for SvmLearner {
    type Model = LinearSvm;
    fn fit(&self, data: &Dataset, rows: &[usize]) -> LinearSvm {
        LinearSvm::fit(data, rows, self.cfg)
    }
    fn predict(model: &LinearSvm, x: &[f64]) -> usize {
        model.predict(x)
    }
}

/// Run stratified k-fold cross-validation; returns the pooled
/// confusion matrix over all held-out folds.
///
/// Folds are evaluated across all available worker threads; see
/// [`cross_validate_threads`] for an explicit thread count. The result
/// is identical for every thread count.
pub fn cross_validate<L: Learner + Sync>(
    learner: &L,
    data: &Dataset,
    k: usize,
    seed: u64,
) -> ConfusionMatrix {
    cross_validate_threads(learner, data, k, seed, 0)
}

/// [`cross_validate`] with an explicit worker-thread count
/// (0 = available parallelism, 1 = serial).
///
/// The fold assignment is drawn serially from `seed` before any worker
/// starts, each fold's held-out predictions are collected
/// independently, and the pooled confusion matrix is merged in fold
/// order — so the result is byte-identical for every `threads` value.
pub fn cross_validate_threads<L: Learner + Sync>(
    learner: &L,
    data: &Dataset,
    k: usize,
    seed: u64,
    threads: usize,
) -> ConfusionMatrix {
    let mut rng = SimRng::seed_from_u64(seed);
    let folds = data.stratified_folds(k, &mut rng);
    let threads = crate::dtree::resolve_threads(threads).min(k.max(1));
    let eval_fold = |held: usize| -> Vec<(usize, usize)> {
        let train: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != held)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        if train.is_empty() || folds[held].is_empty() {
            return Vec::new();
        }
        let model = learner.fit(data, &train);
        folds[held]
            .iter()
            .map(|&r| (data.y[r], L::predict(&model, &data.x[r])))
            .collect()
    };
    let per_fold: Vec<Vec<(usize, usize)>> = if threads <= 1 || k < 2 {
        (0..k).map(eval_fold).collect()
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<Vec<(usize, usize)>>> =
            (0..k).map(|_| std::sync::Mutex::new(Vec::new())).collect();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let held = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if held >= k {
                        break;
                    }
                    *slots[held]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = eval_fold(held);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            })
            .collect()
    };
    let mut cm = ConfusionMatrix::new(data.classes.clone());
    for fold in per_fold {
        for (truth, pred) in fold {
            cm.add(truth, pred);
        }
    }
    cm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(n: usize) -> Dataset {
        let mut rng = SimRng::seed_from_u64(9);
        let mut d = Dataset::new(vec!["a".into(), "b".into()], vec!["x".into(), "y".into()]);
        for _ in 0..n {
            let c = rng.index(2);
            d.push(
                vec![rng.normal(c as f64 * 6.0, 1.0), rng.normal(0.0, 1.0)],
                c,
            );
        }
        d
    }

    #[test]
    fn cv_c45_high_accuracy() {
        let d = separable(400);
        let cm = cross_validate(&C45Trainer::default(), &d, 10, 1);
        assert_eq!(cm.total(), 400);
        assert!(cm.accuracy() > 0.95, "acc {}", cm.accuracy());
    }

    #[test]
    fn cv_nb_and_svm_work() {
        let d = separable(300);
        let nb = cross_validate(&NbLearner, &d, 5, 2);
        assert!(nb.accuracy() > 0.95, "nb {}", nb.accuracy());
        let svm = cross_validate(&SvmLearner::default(), &d, 5, 2);
        assert!(svm.accuracy() > 0.95, "svm {}", svm.accuracy());
    }

    #[test]
    fn every_instance_tested_once() {
        let d = separable(103); // not divisible by k
        let cm = cross_validate(&C45Trainer::default(), &d, 10, 3);
        assert_eq!(cm.total(), 103);
    }
}
