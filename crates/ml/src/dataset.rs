//! Dataset representation.
//!
//! Rows are instances, columns are named numeric features (`NaN`
//! encodes a missing value — e.g. RSSI at the server probe), and each
//! instance carries a class index. This is the Weka-ARFF-shaped input
//! every learner in this crate consumes.

use std::sync::OnceLock;

use vqd_simnet::rng::SimRng;

use crate::intern::FeatureInterner;

/// A labelled numeric dataset with optional missing values.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Column names.
    pub features: Vec<String>,
    /// Row-major values; `x[i][j]` is feature `j` of instance `i`
    /// (`NaN` = missing).
    pub x: Vec<Vec<f64>>,
    /// Class index per instance.
    pub y: Vec<usize>,
    /// Class names (index = class id).
    pub classes: Vec<String>,
    /// Lazily-built name → column interner; never serialised, rebuilt
    /// on demand. `features` is treated as immutable once any lookup
    /// has happened (nothing in the workspace mutates it after
    /// construction).
    interner: OnceLock<FeatureInterner>,
}

impl Dataset {
    /// Empty dataset with the given schema.
    pub fn new(features: Vec<String>, classes: Vec<String>) -> Self {
        Dataset {
            features,
            x: Vec::new(),
            y: Vec::new(),
            classes,
            interner: OnceLock::new(),
        }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.x.len()
    }
    /// True when there are no instances.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }
    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Append an instance. Panics if the row width or class index is
    /// inconsistent with the schema.
    pub fn push(&mut self, row: Vec<f64>, class: usize) {
        assert_eq!(row.len(), self.features.len(), "row width mismatch");
        assert!(class < self.classes.len(), "class out of range");
        self.x.push(row);
        self.y.push(class);
    }

    /// Index of a feature by name — a thin adapter over the interned
    /// name map (duplicate names resolve to the first column, exactly
    /// as the old left-to-right scan did).
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.interner().index(name)
    }

    /// The dataset's name ↔ column interner (built on first use).
    pub fn interner(&self) -> &FeatureInterner {
        self.interner
            .get_or_init(|| FeatureInterner::from_names(&self.features))
    }

    /// Class frequency counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut c = vec![0; self.classes.len()];
        for &y in &self.y {
            c[y] += 1;
        }
        c
    }

    /// A new dataset keeping only the named feature columns (order
    /// preserved from `names`). Unknown names are skipped.
    pub fn select_features(&self, names: &[String]) -> Dataset {
        let it = self.interner();
        let idx: Vec<usize> = names.iter().filter_map(|n| it.index(n)).collect();
        let features = idx.iter().map(|&i| self.features[i].clone()).collect();
        let x = self
            .x
            .iter()
            .map(|row| idx.iter().map(|&i| row[i]).collect())
            .collect();
        Dataset {
            features,
            x,
            y: self.y.clone(),
            classes: self.classes.clone(),
            interner: OnceLock::new(),
        }
    }

    /// A new dataset keeping only feature columns whose name matches
    /// `pred`.
    pub fn select_features_by(&self, pred: impl Fn(&str) -> bool) -> Dataset {
        let names: Vec<String> = self.features.iter().filter(|f| pred(f)).cloned().collect();
        self.select_features(&names)
    }

    /// A new dataset with classes re-labelled through `map`
    /// (old class index → new class index) and the given new class
    /// names.
    pub fn relabel(&self, classes: Vec<String>, map: impl Fn(usize) -> usize) -> Dataset {
        let y: Vec<usize> = self.y.iter().map(|&c| map(c)).collect();
        assert!(y.iter().all(|&c| c < classes.len()));
        Dataset {
            features: self.features.clone(),
            x: self.x.clone(),
            y,
            classes,
            interner: OnceLock::new(),
        }
    }

    /// Stratified k-fold split: returns `k` disjoint row-index sets
    /// with near-equal class balance.
    pub fn stratified_folds(&self, k: usize, rng: &mut SimRng) -> Vec<Vec<usize>> {
        assert!(k >= 2);
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.classes.len()];
        for (i, &c) in self.y.iter().enumerate() {
            by_class[c].push(i);
        }
        // Shuffle within class.
        for rows in &mut by_class {
            for i in (1..rows.len()).rev() {
                let j = rng.index(i + 1);
                rows.swap(i, j);
            }
        }
        let mut folds = vec![Vec::new(); k];
        let mut next = 0usize;
        for rows in &by_class {
            for &r in rows {
                folds[next % k].push(r);
                next += 1;
            }
        }
        folds
    }

    /// Merge another dataset with the *same schema* into this one.
    pub fn extend(&mut self, other: &Dataset) {
        assert_eq!(self.features, other.features);
        assert_eq!(self.classes, other.classes);
        self.x.extend(other.x.iter().cloned());
        self.y.extend(other.y.iter().cloned());
    }
}

/// Build a dataset from named-metric rows with possibly differing
/// feature sets: the schema is the union of all names; absent values
/// become `NaN`.
pub struct DatasetBuilder {
    interner: FeatureInterner,
    rows: Vec<(Vec<(usize, f64)>, usize)>,
    classes: Vec<String>,
}

impl DatasetBuilder {
    /// Builder with the given class names.
    pub fn new(classes: Vec<String>) -> Self {
        DatasetBuilder {
            interner: FeatureInterner::new(),
            rows: Vec::new(),
            classes,
        }
    }

    /// Add one instance given as `(name, value)` pairs.
    pub fn push(&mut self, metrics: &[(String, f64)], class: usize) {
        let mut sparse = Vec::with_capacity(metrics.len());
        for (name, v) in metrics {
            sparse.push((self.interner.intern(name).index(), *v));
        }
        self.rows.push((sparse, class));
    }

    /// Finalize into a dense dataset (absent → NaN).
    pub fn build(self) -> Dataset {
        let n = self.interner.len();
        let mut ds = Dataset::new(self.interner.into_names(), self.classes);
        for (sparse, class) in self.rows {
            let mut row = vec![f64::NAN; n];
            for (i, v) in sparse {
                row[i] = v;
            }
            ds.push(row, class);
        }
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec!["x".into(), "y".into()],
        );
        for i in 0..10 {
            d.push(vec![i as f64, -(i as f64), 0.5], i % 2);
        }
        d
    }

    #[test]
    fn push_and_counts() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.class_counts(), vec![5, 5]);
        assert_eq!(d.feature_index("b"), Some(1));
    }

    #[test]
    fn select_features_reorders() {
        let d = toy();
        let s = d.select_features(&["c".into(), "a".into(), "zzz".into()]);
        assert_eq!(s.features, vec!["c".to_string(), "a".to_string()]);
        assert_eq!(s.x[3], vec![0.5, 3.0]);
        assert_eq!(s.y, d.y);
    }

    #[test]
    fn relabel_collapses_classes() {
        let d = toy();
        let r = d.relabel(vec!["all".into()], |_| 0);
        assert_eq!(r.class_counts(), vec![10]);
    }

    #[test]
    fn stratified_folds_balance() {
        let d = toy();
        let mut rng = SimRng::seed_from_u64(4);
        let folds = d.stratified_folds(5, &mut rng);
        assert_eq!(folds.len(), 5);
        let total: usize = folds.iter().map(|f| f.len()).sum();
        assert_eq!(total, 10);
        for f in &folds {
            assert_eq!(f.len(), 2);
            // One of each class.
            let c0 = f.iter().filter(|&&r| d.y[r] == 0).count();
            assert_eq!(c0, 1);
        }
    }

    #[test]
    fn builder_handles_union_schema() {
        let mut b = DatasetBuilder::new(vec!["g".into(), "b".into()]);
        b.push(&[("m1".into(), 1.0), ("m2".into(), 2.0)], 0);
        b.push(&[("m2".into(), 5.0), ("m3".into(), 7.0)], 1);
        let d = b.build();
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.x[0][0], 1.0);
        assert!(d.x[0][2].is_nan(), "absent metric is NaN");
        assert!(d.x[1][0].is_nan());
        assert_eq!(d.x[1][1], 5.0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_checks_width() {
        let mut d = toy();
        d.push(vec![1.0], 0);
    }
}
