//! Fayyad–Irani MDL discretisation of continuous features.
//!
//! FCBF operates on discrete variables, so continuous columns are cut
//! at class-boundary thresholds chosen by recursive entropy
//! minimisation with the MDLPC stopping criterion (Fayyad & Irani,
//! IJCAI 1993) — the same pre-processing Weka applies before its FCBF
//! implementation. Missing values are left out of cut selection and
//! map to a dedicated extra bin.

/// Cut points for one feature: values are assigned to bin `i` where
/// `cuts[i-1] <= v < cuts[i]`; missing maps to bin `cuts.len() + 1`.
#[derive(Debug, Clone, Default)]
pub struct FeatureCuts {
    /// Sorted thresholds.
    pub cuts: Vec<f64>,
}

impl FeatureCuts {
    /// Number of discrete bins (including the missing bin).
    pub fn n_bins(&self) -> usize {
        self.cuts.len() + 2
    }

    /// Bin index of a value.
    ///
    /// Binary search over the sorted cut vector: the bin is the number
    /// of cuts `<= v`, which for sorted cuts is exactly the index of
    /// the first cut `> v` that the old linear scan returned.
    pub fn bin(&self, v: f64) -> usize {
        if v.is_nan() {
            return self.cuts.len() + 1;
        }
        self.cuts.partition_point(|&c| c <= v)
    }
}

fn class_entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / total as f64;
            h -= p * p.log2();
        }
    }
    h
}

fn distinct_classes(counts: &[usize]) -> usize {
    counts.iter().filter(|&&c| c > 0).count()
}

/// Recursive MDL split of `pairs` (sorted by value) appending accepted
/// cut points to `out`.
fn split_recursive(pairs: &[(f64, usize)], n_classes: usize, out: &mut Vec<f64>, depth: usize) {
    let n = pairs.len();
    if n < 4 || depth > 16 {
        return;
    }
    let mut total = vec![0usize; n_classes];
    for &(_, c) in pairs {
        total[c] += 1;
    }
    let h_all = class_entropy(&total);
    if h_all == 0.0 {
        return;
    }

    // Sweep boundary candidates (value changes only).
    let mut left = vec![0usize; n_classes];
    let mut best: Option<(usize, f64, f64, f64)> = None; // (idx, cut, h_l, h_r)
    let mut best_weighted = f64::INFINITY;
    for i in 0..n - 1 {
        left[pairs[i].1] += 1;
        if pairs[i].0 == pairs[i + 1].0 {
            continue;
        }
        let right: Vec<usize> = total.iter().zip(&left).map(|(&t, &l)| t - l).collect();
        let nl = (i + 1) as f64;
        let nr = (n - i - 1) as f64;
        let h_l = class_entropy(&left);
        let h_r = class_entropy(&right);
        let weighted = (nl * h_l + nr * h_r) / n as f64;
        if weighted < best_weighted {
            best_weighted = weighted;
            let cut = (pairs[i].0 + pairs[i + 1].0) / 2.0;
            best = Some((i, cut, h_l, h_r));
        }
    }
    let Some((idx, cut, h_l, h_r)) = best else {
        return;
    };
    let nl = (idx + 1) as f64;
    let nr = (n - idx - 1) as f64;
    let gain = h_all - (nl * h_l + nr * h_r) / n as f64;

    // MDLPC criterion.
    let k = distinct_classes(&total) as f64;
    let mut left_counts = vec![0usize; n_classes];
    for &(_, c) in &pairs[..=idx] {
        left_counts[c] += 1;
    }
    let right_counts: Vec<usize> = total
        .iter()
        .zip(&left_counts)
        .map(|(&t, &l)| t - l)
        .collect();
    let k_l = distinct_classes(&left_counts) as f64;
    let k_r = distinct_classes(&right_counts) as f64;
    let delta = (3f64.powf(k) - 2.0).log2() - (k * h_all - k_l * h_l - k_r * h_r);
    let threshold = ((n as f64 - 1.0).log2() + delta) / n as f64;
    if gain <= threshold {
        return;
    }
    out.push(cut);
    split_recursive(&pairs[..=idx], n_classes, out, depth + 1);
    split_recursive(&pairs[idx + 1..], n_classes, out, depth + 1);
}

/// Compute MDL cut points for one feature column against the labels.
pub fn mdl_cuts(values: &[f64], labels: &[usize], n_classes: usize) -> FeatureCuts {
    let mut pairs: Vec<(f64, usize)> = values
        .iter()
        .zip(labels)
        .filter(|(v, _)| !v.is_nan())
        .map(|(&v, &c)| (v, c))
        .collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut cuts = Vec::new();
    split_recursive(&pairs, n_classes, &mut cuts, 0);
    cuts.sort_by(|a, b| a.total_cmp(b));
    FeatureCuts { cuts }
}

/// Discretise a whole column.
pub fn apply(cuts: &FeatureCuts, values: &[f64]) -> Vec<usize> {
    values.iter().map(|&v| cuts.bin(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_boundary_found() {
        // Values < 5 are class 0, >= 5 class 1.
        let values: Vec<f64> = (0..40).map(|i| i as f64 / 4.0).collect();
        let labels: Vec<usize> = values.iter().map(|&v| usize::from(v >= 5.0)).collect();
        let cuts = mdl_cuts(&values, &labels, 2);
        assert_eq!(cuts.cuts.len(), 1, "{:?}", cuts.cuts);
        assert!((cuts.cuts[0] - 4.875).abs() < 0.2, "{:?}", cuts.cuts);
        assert_eq!(cuts.bin(1.0), 0);
        assert_eq!(cuts.bin(9.0), 1);
        assert_eq!(cuts.bin(f64::NAN), 2);
    }

    #[test]
    fn no_cut_for_random_labels() {
        // Labels independent of the value: MDL must refuse to cut.
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let labels: Vec<usize> = (0..100).map(|i| (i * 7 + 3) % 2).collect();
        let cuts = mdl_cuts(&values, &labels, 2);
        assert!(cuts.cuts.len() <= 1, "spurious cuts {:?}", cuts.cuts);
    }

    #[test]
    fn multiple_boundaries() {
        // Three bands: class 0 | class 1 | class 0.
        let values: Vec<f64> = (0..90).map(|i| i as f64).collect();
        let labels: Vec<usize> = values
            .iter()
            .map(|&v| usize::from((30.0..60.0).contains(&v)))
            .collect();
        let cuts = mdl_cuts(&values, &labels, 2);
        assert_eq!(cuts.cuts.len(), 2, "{:?}", cuts.cuts);
    }

    #[test]
    fn constant_feature_no_cut() {
        let values = vec![3.0; 50];
        let labels: Vec<usize> = (0..50).map(|i| i % 2).collect();
        let cuts = mdl_cuts(&values, &labels, 2);
        assert!(cuts.cuts.is_empty());
        // Everything in one bin.
        let bins = apply(&cuts, &values);
        assert!(bins.iter().all(|&b| b == 0));
    }

    #[test]
    fn missing_values_ignored_and_binned() {
        let mut values: Vec<f64> = (0..40).map(|i| i as f64).collect();
        values[5] = f64::NAN;
        let labels: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let cuts = mdl_cuts(&values, &labels, 2);
        assert_eq!(cuts.cuts.len(), 1);
        let bins = apply(&cuts, &values);
        assert_eq!(bins[5], cuts.cuts.len() + 1);
    }
}
