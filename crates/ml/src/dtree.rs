//! C4.5 decision tree (the Weka **J48** equivalent).
//!
//! Implements the parts of Quinlan's C4.5 the paper's workload needs:
//!
//! * numeric attributes with threshold splits chosen by **gain ratio**
//!   (with the `log2(m)/|D|` continuous-split penalty),
//! * **missing values** by fractional instance weighting at train time
//!   and probability-weighted descent at prediction time — essential
//!   here, since different vantage-point combinations produce different
//!   missing columns,
//! * **error-based pruning** with the standard confidence-factor 0.25
//!   upper bound (Weka's `addErrs`),
//! * an interpretable dump ([`DecisionTree::to_text`]) and per-feature
//!   importance scores used for the paper's Table 4 feature ranking.
//!
//! # Training engine
//!
//! [`C45Trainer::fit`] uses a columnar, pre-sorted engine (the
//! Weka/SLIQ "sorted index" representation): each feature's row
//! indices are sorted **once per fit**, and every tree node filters
//! its parent's sorted sequences by membership instead of
//! re-collecting and re-sorting feature columns per node. This drops
//! the per-node cost from `O(features · n log n)` to
//! `O(features · n)` and removes all per-candidate allocations from
//! the split sweep. Candidate splits for different features are
//! evaluated in parallel across OS threads ([`C45Config::threads`]);
//! the search is deterministic, so the trained tree is **bit-identical
//! for any thread count** (ties between equally-scored splits resolve
//! to the lowest feature index, matching a serial left-to-right scan).
//! [`C45Trainer::fit_seed_reference`] keeps the original
//! per-node-sort implementation as a semantics oracle for tests and
//! benchmarks.

use crate::dataset::Dataset;
use crate::error::ModelParseError;
use crate::info::entropy_of_counts;

/// Depth cap for deserialised trees: bounds parser recursion and the
/// recursive `Drop`/`predict` walks on adversarial inputs. Far above
/// anything training can produce (`C45Config::max_depth` defaults
/// to 60).
const MAX_DESERIALIZED_DEPTH: usize = 512;

/// Training configuration (defaults match J48's `-C 0.25 -M 2`).
#[derive(Debug, Clone, Copy)]
pub struct C45Config {
    /// Minimum total instance weight per branch.
    pub min_leaf: f64,
    /// Pruning confidence factor (lower prunes more).
    pub cf: f64,
    /// Depth cap (safety net; C4.5 has none).
    pub max_depth: usize,
    /// Disable error-based pruning (unpruned J48 `-U`).
    pub unpruned: bool,
    /// Worker threads for the split search (0 = available
    /// parallelism, 1 = serial). The result is identical for every
    /// value.
    pub threads: usize,
}

impl Default for C45Config {
    fn default() -> Self {
        C45Config {
            min_leaf: 2.0,
            cf: 0.25,
            max_depth: 60,
            unpruned: false,
            threads: 0,
        }
    }
}

/// A tree node.
#[derive(Debug, Clone)]
pub enum Node {
    /// Terminal node carrying the training class distribution.
    Leaf {
        /// Class weights seen at this leaf.
        dist: Vec<f64>,
    },
    /// Binary threshold split on a numeric feature.
    Split {
        /// Feature column index.
        feat: usize,
        /// Values `< thr` go low.
        thr: f64,
        /// Low branch.
        lo: Box<Node>,
        /// High branch.
        hi: Box<Node>,
        /// Fraction of known-valued training weight that went low
        /// (routes missing values).
        lo_frac: f64,
        /// Training class distribution at this node (for pruning and
        /// fallback).
        dist: Vec<f64>,
        /// Weighted information gain achieved (feature importance).
        gain_w: f64,
    },
}

/// A trained C4.5 model.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    n_classes: usize,
    /// Feature names (for dumps and importances).
    pub feature_names: Vec<String>,
    /// Class names.
    pub class_names: Vec<String>,
}

fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for i in 1..v.len() {
        if v[i] > v[best] {
            best = i;
        }
    }
    best
}

impl DecisionTree {
    /// The root node (read-only; the compiled-tree flattener walks it).
    pub(crate) fn root(&self) -> &Node {
        &self.root
    }

    /// Reassemble a tree from parts — the compiled-tree → pointer-tree
    /// direction of the round-trip.
    pub(crate) fn from_parts(
        root: Node,
        n_classes: usize,
        feature_names: Vec<String>,
        class_names: Vec<String>,
    ) -> DecisionTree {
        DecisionTree {
            root,
            n_classes,
            feature_names,
            class_names,
        }
    }

    /// Class distribution predicted for an instance (missing values
    /// descend both branches, weighted).
    pub fn predict_dist(&self, x: &[f64]) -> Vec<f64> {
        fn go(node: &Node, x: &[f64], w: f64, out: &mut [f64]) {
            match node {
                Node::Leaf { dist } => {
                    let total: f64 = dist.iter().sum();
                    if total > 0.0 {
                        for (o, d) in out.iter_mut().zip(dist) {
                            *o += w * d / total;
                        }
                    }
                }
                Node::Split {
                    feat,
                    thr,
                    lo,
                    hi,
                    lo_frac,
                    ..
                } => {
                    let v = x[*feat];
                    if v.is_nan() {
                        go(lo, x, w * lo_frac, out);
                        go(hi, x, w * (1.0 - lo_frac), out);
                    } else if v < *thr {
                        go(lo, x, w, out);
                    } else {
                        go(hi, x, w, out);
                    }
                }
            }
        }
        let mut out = vec![0.0; self.n_classes];
        go(&self.root, x, 1.0, &mut out);
        out
    }

    /// Predicted class.
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.predict_dist(x))
    }

    /// Node count.
    pub fn size(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { lo, hi, .. } => 1 + count(lo) + count(hi),
            }
        }
        count(&self.root)
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { lo, hi, .. } => 1 + d(lo).max(d(hi)),
            }
        }
        d(&self.root)
    }

    /// Total weighted information gain contributed by each feature —
    /// the ranking used to reproduce the paper's Table 4.
    pub fn feature_importance(&self) -> Vec<f64> {
        fn acc(n: &Node, imp: &mut [f64]) {
            if let Node::Split {
                feat,
                gain_w,
                lo,
                hi,
                ..
            } = n
            {
                imp[*feat] += gain_w;
                acc(lo, imp);
                acc(hi, imp);
            }
        }
        let mut imp = vec![0.0; self.feature_names.len()];
        acc(&self.root, &mut imp);
        imp
    }

    /// Indices of the features used by at least one split, ascending —
    /// the tree-relevant schema subset that degraded-telemetry
    /// coverage is scored against (a selected feature the pruned tree
    /// never routes on cannot hurt a diagnosis by going missing).
    pub fn features_used(&self) -> Vec<usize> {
        fn walk(n: &Node, seen: &mut Vec<bool>) {
            if let Node::Split { feat, lo, hi, .. } = n {
                seen[*feat] = true;
                walk(lo, seen);
                walk(hi, seen);
            }
        }
        let mut seen = vec![false; self.feature_names.len()];
        walk(&self.root, &mut seen);
        seen.iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i))
            .collect()
    }

    /// [`DecisionTree::predict_dist`] plus a trace of how much of the
    /// prediction weight descended through at least one missing-value
    /// fallback (`lo_frac`-weighted both-branch descent). 0.0 means
    /// the instance answered every split it reached; 1.0 means every
    /// path routed around missing data — the prediction is the
    /// training prior of the regions the instance could not
    /// disambiguate.
    pub fn predict_dist_traced(&self, x: &[f64]) -> (Vec<f64>, f64) {
        fn go(node: &Node, x: &[f64], w: f64, via_missing: bool, out: &mut [f64], miss: &mut f64) {
            match node {
                Node::Leaf { dist } => {
                    let total: f64 = dist.iter().sum();
                    if total > 0.0 {
                        for (o, d) in out.iter_mut().zip(dist) {
                            *o += w * d / total;
                        }
                        if via_missing {
                            *miss += w;
                        }
                    }
                }
                Node::Split {
                    feat,
                    thr,
                    lo,
                    hi,
                    lo_frac,
                    ..
                } => {
                    let v = x[*feat];
                    if v.is_nan() {
                        go(lo, x, w * lo_frac, true, out, miss);
                        go(hi, x, w * (1.0 - lo_frac), true, out, miss);
                    } else if v < *thr {
                        go(lo, x, w, via_missing, out, miss);
                    } else {
                        go(hi, x, w, via_missing, out, miss);
                    }
                }
            }
        }
        let mut out = vec![0.0; self.n_classes];
        let mut miss = 0.0;
        go(&self.root, x, 1.0, false, &mut out, &mut miss);
        // Weight reaching empty leaves contributes to neither sum;
        // normalise the trace against the weight that did land.
        let landed: f64 = out.iter().sum();
        let miss_frac = if landed > 0.0 {
            (miss / landed).clamp(0.0, 1.0)
        } else {
            1.0
        };
        (out, miss_frac)
    }

    /// Serialise to a line-oriented text format (dependency-free model
    /// persistence; see [`DecisionTree::deserialize`]).
    ///
    /// Writes the **v2 indexed format**: after the header, class and
    /// feature lines, a `nodes\t<n>` line announces an explicit node
    /// table; each node line is `<id>\t<body>` with split bodies
    /// referencing their children by id. Node 0 is the root and ids
    /// are assigned in pre-order. The explicit table lets the parser
    /// validate every child reference (range, cycles, sharing) before
    /// building anything.
    pub fn serialize(&self) -> String {
        fn node(n: &Node, next_id: &mut usize, out: &mut Vec<String>) -> usize {
            let id = *next_id;
            *next_id += 1;
            out.push(String::new()); // reserve the slot; filled below
            let body = match n {
                Node::Leaf { dist } => {
                    let mut s = String::from("L");
                    for d in dist {
                        s.push(' ');
                        s.push_str(&format!("{d:?}"));
                    }
                    s
                }
                Node::Split {
                    feat,
                    thr,
                    lo,
                    hi,
                    lo_frac,
                    dist,
                    gain_w,
                } => {
                    let lo_id = node(lo, next_id, out);
                    let hi_id = node(hi, next_id, out);
                    let mut s = format!("S {feat} {thr:?} {lo_frac:?} {gain_w:?} {lo_id} {hi_id}");
                    for d in dist {
                        s.push(' ');
                        s.push_str(&format!("{d:?}"));
                    }
                    s
                }
            };
            out[id] = format!("{id}\t{body}");
            id
        }
        let mut table = Vec::new();
        let mut next = 0usize;
        node(&self.root, &mut next, &mut table);
        let mut s = String::from("vqd-tree v2\n");
        s.push_str(&format!("classes\t{}\n", self.class_names.join("\t")));
        s.push_str(&format!("features\t{}\n", self.feature_names.join("\t")));
        s.push_str(&format!("nodes\t{}\n", table.len()));
        for line in table {
            s.push_str(&line);
            s.push('\n');
        }
        s
    }

    /// Parse a model serialised by [`DecisionTree::serialize`].
    ///
    /// Accepts both the current v2 indexed format and the legacy v1
    /// pre-order format. Malformed input of any shape — truncated
    /// files, bad tokens, out-of-range feature or node indices, cyclic
    /// or shared child references, class-count mismatches, non-finite
    /// splits — returns a [`ModelParseError`] naming the offending
    /// line and field; the parser never panics and its work is bounded
    /// by the input size.
    pub fn deserialize(text: &str) -> Result<DecisionTree, ModelParseError> {
        let lines: Vec<&str> = text.lines().collect();
        let version = match lines.first() {
            Some(&"vqd-tree v1") => 1,
            Some(&"vqd-tree v2") => 2,
            Some(other) => {
                return Err(ModelParseError::at(
                    1,
                    "header",
                    format!("expected \"vqd-tree v1\" or \"vqd-tree v2\", got {other:?}"),
                ))
            }
            None => return Err(ModelParseError::at(0, "file", "empty input")),
        };
        let classes: Vec<String> = lines
            .get(1)
            .and_then(|l| l.strip_prefix("classes\t"))
            .ok_or_else(|| ModelParseError::at(2, "classes", "missing classes line"))?
            .split('\t')
            .map(str::to_string)
            .collect();
        let features: Vec<String> = lines
            .get(2)
            .and_then(|l| l.strip_prefix("features\t"))
            .ok_or_else(|| ModelParseError::at(3, "features", "missing features line"))?
            .split('\t')
            .map(str::to_string)
            .collect();
        if classes.is_empty() || classes.iter().any(|c| c.is_empty()) {
            return Err(ModelParseError::at(2, "classes", "empty class name"));
        }
        let root = match version {
            1 => parse_v1(&lines, features.len(), classes.len())?,
            _ => parse_v2(&lines, features.len(), classes.len())?,
        };
        Ok(DecisionTree {
            root,
            n_classes: classes.len(),
            feature_names: features,
            class_names: classes,
        })
    }

    /// Human-readable dump (the "not a black box" property the paper
    /// highlights).
    pub fn to_text(&self) -> String {
        fn fmt(n: &Node, names: &[String], classes: &[String], ind: usize, s: &mut String) {
            let pad = "  ".repeat(ind);
            match n {
                Node::Leaf { dist } => {
                    let total: f64 = dist.iter().sum();
                    let c = argmax(dist);
                    s.push_str(&format!(
                        "{pad}=> {} ({total:.1})\n",
                        classes.get(c).map(String::as_str).unwrap_or("?")
                    ));
                }
                Node::Split {
                    feat, thr, lo, hi, ..
                } => {
                    s.push_str(&format!("{pad}{} < {thr:.4}:\n", names[*feat]));
                    fmt(lo, names, classes, ind + 1, s);
                    s.push_str(&format!("{pad}{} >= {thr:.4}:\n", names[*feat]));
                    fmt(hi, names, classes, ind + 1, s);
                }
            }
        }
        let mut s = String::new();
        fmt(
            &self.root,
            &self.feature_names,
            &self.class_names,
            0,
            &mut s,
        );
        s
    }
}

/// Parse one `f64` token, requiring it to be finite.
fn parse_finite(tok: Option<&str>, line: usize, field: &str) -> Result<f64, ModelParseError> {
    let t = tok.ok_or_else(|| ModelParseError::at(line, field, "missing value"))?;
    let v: f64 = t
        .parse()
        .map_err(|_| ModelParseError::at(line, field, format!("bad float {t:?}")))?;
    if !v.is_finite() {
        return Err(ModelParseError::at(
            line,
            field,
            format!("non-finite value {v}"),
        ));
    }
    Ok(v)
}

/// Parse the trailing class distribution of a node body: exactly
/// `n_classes` finite, non-negative weights.
fn parse_dist<'a>(
    tok: impl Iterator<Item = &'a str>,
    n_classes: usize,
    line: usize,
) -> Result<Vec<f64>, ModelParseError> {
    let mut dist = Vec::with_capacity(n_classes);
    for t in tok {
        let v = parse_finite(Some(t), line, "dist")?;
        if v < 0.0 {
            return Err(ModelParseError::at(
                line,
                "dist",
                format!("negative class weight {v}"),
            ));
        }
        dist.push(v);
    }
    if dist.len() != n_classes {
        return Err(ModelParseError::at(
            line,
            "dist",
            format!(
                "class-count mismatch: {} weights for {} classes",
                dist.len(),
                n_classes
            ),
        ));
    }
    Ok(dist)
}

/// Parse the `feat thr lo_frac gain_w` head of a split body.
fn parse_split_head<'a>(
    tok: &mut impl Iterator<Item = &'a str>,
    nf: usize,
    line: usize,
) -> Result<(usize, f64, f64, f64), ModelParseError> {
    let feat_tok = tok
        .next()
        .ok_or_else(|| ModelParseError::at(line, "feat", "missing value"))?;
    let feat: usize = feat_tok
        .parse()
        .map_err(|_| ModelParseError::at(line, "feat", format!("bad index {feat_tok:?}")))?;
    if feat >= nf {
        return Err(ModelParseError::at(
            line,
            "feat",
            format!("feature index {feat} out of range ({nf} features)"),
        ));
    }
    let thr = parse_finite(tok.next(), line, "thr")?;
    let lo_frac = parse_finite(tok.next(), line, "lo_frac")?;
    if !(0.0..=1.0).contains(&lo_frac) {
        return Err(ModelParseError::at(
            line,
            "lo_frac",
            format!("missing-value fraction {lo_frac} outside [0, 1]"),
        ));
    }
    let gain_w = parse_finite(tok.next(), line, "gain_w")?;
    Ok((feat, thr, lo_frac, gain_w))
}

/// Legacy v1 pre-order parser: node lines follow the features line,
/// splits listing their two children immediately after themselves.
/// Recursion is capped at [`MAX_DESERIALIZED_DEPTH`], so adversarially
/// deep chains of `S` lines error out instead of overflowing the
/// stack.
fn parse_v1(lines: &[&str], nf: usize, n_classes: usize) -> Result<Node, ModelParseError> {
    fn parse(
        lines: &[&str],
        pos: &mut usize,
        nf: usize,
        n_classes: usize,
        depth: usize,
    ) -> Result<Node, ModelParseError> {
        if depth > MAX_DESERIALIZED_DEPTH {
            return Err(ModelParseError::at(
                *pos + 1,
                "tree",
                format!("tree deeper than {MAX_DESERIALIZED_DEPTH} (corrupt or adversarial)"),
            ));
        }
        let line_no = *pos + 1; // 1-based for messages
        let line = lines
            .get(*pos)
            .ok_or_else(|| ModelParseError::at(line_no, "tree", "unexpected end of tree"))?;
        *pos += 1;
        let mut tok = line.split(' ');
        match tok.next() {
            Some("L") => Ok(Node::Leaf {
                dist: parse_dist(tok, n_classes, line_no)?,
            }),
            Some("S") => {
                let (feat, thr, lo_frac, gain_w) = parse_split_head(&mut tok, nf, line_no)?;
                let dist = parse_dist(tok, n_classes, line_no)?;
                let lo = Box::new(parse(lines, pos, nf, n_classes, depth + 1)?);
                let hi = Box::new(parse(lines, pos, nf, n_classes, depth + 1)?);
                Ok(Node::Split {
                    feat,
                    thr,
                    lo,
                    hi,
                    lo_frac,
                    dist,
                    gain_w,
                })
            }
            other => Err(ModelParseError::at(
                line_no,
                "node",
                format!("bad node tag {other:?}"),
            )),
        }
    }
    let mut pos = 3;
    let root = parse(lines, &mut pos, nf, n_classes, 0)?;
    if pos < lines.len() && lines[pos..].iter().any(|l| !l.is_empty()) {
        return Err(ModelParseError::at(
            pos + 1,
            "tree",
            "trailing data after the tree",
        ));
    }
    Ok(root)
}

/// Untyped node-table entry of the v2 format, before linking.
enum RawNode {
    Leaf(Vec<f64>),
    Split {
        feat: usize,
        thr: f64,
        lo_frac: f64,
        gain_w: f64,
        lo: usize,
        hi: usize,
        dist: Vec<f64>,
    },
}

/// v2 indexed parser: a `nodes\t<n>` line announces the table, node
/// lines are `<id>\t<body>` with children referenced by id, node 0 is
/// the root. Every reference is validated — range, sharing, cycles,
/// unreachable entries — before the tree is linked.
fn parse_v2(lines: &[&str], nf: usize, n_classes: usize) -> Result<Node, ModelParseError> {
    let count_line = lines
        .get(3)
        .and_then(|l| l.strip_prefix("nodes\t"))
        .ok_or_else(|| ModelParseError::at(4, "nodes", "missing nodes line"))?;
    let n: usize = count_line
        .parse()
        .map_err(|_| ModelParseError::at(4, "nodes", format!("bad node count {count_line:?}")))?;
    if n == 0 {
        return Err(ModelParseError::at(4, "nodes", "empty node table"));
    }
    if lines.len() < 4 + n {
        return Err(ModelParseError::at(
            lines.len(),
            "nodes",
            format!(
                "node table truncated: {} of {n} node lines present",
                lines.len() - 4
            ),
        ));
    }
    if lines[4 + n..].iter().any(|l| !l.is_empty()) {
        return Err(ModelParseError::at(
            4 + n + 1,
            "nodes",
            "trailing data after the node table",
        ));
    }
    let mut table: Vec<RawNode> = Vec::with_capacity(n);
    for (i, line) in lines[4..4 + n].iter().enumerate() {
        let line_no = 5 + i; // 1-based
        let (id_tok, body) = line.split_once('\t').ok_or_else(|| {
            ModelParseError::at(line_no, "node", "missing <id>\\t<body> separator")
        })?;
        let id: usize = id_tok
            .parse()
            .map_err(|_| ModelParseError::at(line_no, "node", format!("bad id {id_tok:?}")))?;
        if id != i {
            return Err(ModelParseError::at(
                line_no,
                "node",
                format!("node id {id} out of order (expected {i})"),
            ));
        }
        let mut tok = body.split(' ');
        let raw = match tok.next() {
            Some("L") => RawNode::Leaf(parse_dist(tok, n_classes, line_no)?),
            Some("S") => {
                let (feat, thr, lo_frac, gain_w) = parse_split_head(&mut tok, nf, line_no)?;
                let mut child = |field: &str| -> Result<usize, ModelParseError> {
                    let t = tok
                        .next()
                        .ok_or_else(|| ModelParseError::at(line_no, field, "missing child id"))?;
                    let c: usize = t.parse().map_err(|_| {
                        ModelParseError::at(line_no, field, format!("bad child id {t:?}"))
                    })?;
                    if c >= n {
                        return Err(ModelParseError::at(
                            line_no,
                            field,
                            format!("child id {c} out of range ({n} nodes)"),
                        ));
                    }
                    Ok(c)
                };
                let lo = child("lo_id")?;
                let hi = child("hi_id")?;
                RawNode::Split {
                    feat,
                    thr,
                    lo_frac,
                    gain_w,
                    lo,
                    hi,
                    dist: parse_dist(tok, n_classes, line_no)?,
                }
            }
            other => {
                return Err(ModelParseError::at(
                    line_no,
                    "node",
                    format!("bad node tag {other:?}"),
                ))
            }
        };
        table.push(raw);
    }
    // Link from the root. Each node may be consumed exactly once: a
    // repeat visit is a cycle or a shared child, both rejected — so the
    // walk terminates after at most `n` steps by construction.
    fn link(
        table: &[RawNode],
        used: &mut [bool],
        id: usize,
        depth: usize,
    ) -> Result<Node, ModelParseError> {
        let line_no = 5 + id;
        if used[id] {
            return Err(ModelParseError::at(
                line_no,
                "node",
                format!("node {id} referenced more than once (cycle or shared child)"),
            ));
        }
        used[id] = true;
        if depth > MAX_DESERIALIZED_DEPTH {
            return Err(ModelParseError::at(
                line_no,
                "tree",
                format!("tree deeper than {MAX_DESERIALIZED_DEPTH} (corrupt or adversarial)"),
            ));
        }
        match &table[id] {
            RawNode::Leaf(dist) => Ok(Node::Leaf { dist: dist.clone() }),
            RawNode::Split {
                feat,
                thr,
                lo_frac,
                gain_w,
                lo,
                hi,
                dist,
            } => Ok(Node::Split {
                feat: *feat,
                thr: *thr,
                lo_frac: *lo_frac,
                gain_w: *gain_w,
                dist: dist.clone(),
                lo: Box::new(link(table, used, *lo, depth + 1)?),
                hi: Box::new(link(table, used, *hi, depth + 1)?),
            }),
        }
    }
    let mut used = vec![false; n];
    let root = link(&table, &mut used, 0, 0)?;
    if let Some(orphan) = used.iter().position(|&u| !u) {
        return Err(ModelParseError::at(
            5 + orphan,
            "node",
            format!("node {orphan} unreachable from the root"),
        ));
    }
    Ok(root)
}

/// Inverse standard-normal CDF (Beasley–Springer–Moro approximation).
fn norm_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    let a = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    let b = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    let c = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    let d = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let plow = 0.02425;
    if p < plow {
        let q = (-2.0 * p.ln()).sqrt();
        (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    } else if p <= 1.0 - plow {
        let q = p - 0.5;
        let r = q * q;
        (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    } else {
        -norm_quantile(1.0 - p)
    }
}

/// Weka's `Stats.addErrs`: extra errors charged to a leaf by the
/// binomial upper confidence bound.
fn add_errs(n: f64, e: f64, cf: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    if e < 1.0 {
        let base = n * (1.0 - cf.powf(1.0 / n));
        if e <= 0.0 {
            return base;
        }
        return base + e * (add_errs(n, 1.0, cf) - base);
    }
    if e + 0.5 >= n {
        return (n - e).max(0.0);
    }
    let z = norm_quantile(1.0 - cf);
    let f = (e + 0.5) / n;
    let r = (f + z * z / (2.0 * n) + z * (f / n - f * f / n + z * z / (4.0 * n * n)).sqrt())
        / (1.0 + z * z / n);
    (r * n - e).max(0.0)
}

/// C4.5 trainer.
#[derive(Debug, Clone, Copy, Default)]
pub struct C45Trainer {
    /// Configuration.
    pub cfg: C45Config,
}

/// Resolve a thread-count knob (0 = available parallelism).
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Winning candidate of one feature's split sweep.
#[derive(Debug, Clone, Copy)]
struct FeatSplit {
    ratio: f64,
    thr: f64,
    gain: f64,
    lo_w: f64,
    known_w: f64,
}

/// One node's working set in the pre-sorted representation: the member
/// rows (compact ids + fractional weights, in parent order) and, per
/// feature, the member rows with a known value for that feature in
/// ascending value order. Children filter these sequences — order is
/// preserved, so no node ever sorts.
struct NodeCtx {
    rows: Vec<(u32, f64)>,
    order: Vec<Vec<u32>>,
}

/// Reusable per-worker buffers for the split sweep: one contiguous
/// gather of a feature's (value, class, weight) triples plus the three
/// class-count vectors. Reuse keeps the sweep allocation-free.
struct Scratch {
    gathered: Vec<(f64, u32, f64)>,
    known_dist: Vec<f64>,
    left: Vec<f64>,
    right: Vec<f64>,
    /// Integer twins of `known_dist`/`left`, used by the unit-weight
    /// sweep specialisation (see [`Engine::eval_feature`]).
    known_dist_i: Vec<u32>,
    left_i: Vec<u32>,
}

impl Scratch {
    fn new(n_classes: usize) -> Scratch {
        Scratch {
            gathered: Vec::new(),
            known_dist: vec![0.0; n_classes],
            left: vec![0.0; n_classes],
            right: vec![0.0; n_classes],
            known_dist_i: vec![0; n_classes],
            left_i: vec![0; n_classes],
        }
    }
}

/// Columnar training state shared by every node of one `fit` call.
///
/// `cols` is a column-major copy of the training rows (compact row ids
/// `0..rows.len()` in the order the caller passed them), `y` the class
/// per compact id. `-0.0` is normalised to `+0.0` in the copy so that
/// the total order used for pre-sorting agrees exactly with the `<`
/// comparisons of the split sweep.
struct Engine {
    cfg: C45Config,
    cols: Vec<Vec<f64>>,
    y: Vec<u32>,
    n_classes: usize,
    threads: usize,
    /// Observability snapshot taken once at fit start; when false the
    /// split-search timing below is skipped entirely (no clock reads).
    obs_on: bool,
    /// Cumulative wall time spent in [`Engine::best_split`], ns.
    split_ns: std::sync::atomic::AtomicU64,
    /// Number of split searches performed.
    split_calls: std::sync::atomic::AtomicU64,
}

impl Engine {
    /// Per-feature sorted compact-id sequences for the root node.
    /// Sorted by (value, compact id): stable with respect to the
    /// caller's row order, exactly like a stable per-node sort.
    fn presort(&self) -> Vec<Vec<u32>> {
        let nf = self.cols.len();
        let sort_one = |j: usize| -> Vec<u32> {
            let col = &self.cols[j];
            let mut idx: Vec<u32> = (0..col.len() as u32)
                .filter(|&c| !col[c as usize].is_nan())
                .collect();
            idx.sort_unstable_by(|&a, &b| {
                col[a as usize].total_cmp(&col[b as usize]).then(a.cmp(&b))
            });
            idx
        };
        if self.threads <= 1 || nf < 2 {
            return (0..nf).map(sort_one).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let out: Vec<std::sync::Mutex<Vec<u32>>> =
            (0..nf).map(|_| std::sync::Mutex::new(Vec::new())).collect();
        std::thread::scope(|s| {
            for _ in 0..self.threads.min(nf) {
                s.spawn(|| loop {
                    let j = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if j >= nf {
                        break;
                    }
                    *out[j]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = sort_one(j);
                });
            }
        });
        out.into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            })
            .collect()
    }

    fn dist_of(&self, rows: &[(u32, f64)]) -> Vec<f64> {
        let mut d = vec![0.0; self.n_classes];
        for &(c, w) in rows {
            d[self.y[c as usize] as usize] += w;
        }
        d
    }

    fn build(
        &self,
        ctx: NodeCtx,
        depth: usize,
        weights: &mut [f64],
        side: &mut [u8],
        scratch: &mut Scratch,
    ) -> Node {
        let dist = self.dist_of(&ctx.rows);
        let total: f64 = dist.iter().sum();
        let pure = dist.iter().filter(|&&w| w > 0.0).count() <= 1;
        if pure || total < 2.0 * self.cfg.min_leaf || depth >= self.cfg.max_depth {
            return Node::Leaf { dist };
        }
        for &(c, w) in &ctx.rows {
            weights[c as usize] = w;
        }
        let best = if self.obs_on {
            let t0 = std::time::Instant::now();
            let b = self.best_split(&ctx, weights, total, scratch);
            self.split_ns.fetch_add(
                t0.elapsed().as_nanos() as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
            self.split_calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            b
        } else {
            self.best_split(&ctx, weights, total, scratch)
        };
        for &(c, _) in &ctx.rows {
            weights[c as usize] = 0.0;
        }
        let Some((feat, thr, gain_w, lo_frac)) = best else {
            return Node::Leaf { dist };
        };
        // Partition the member rows (parent order preserved), recording
        // each member's side in a compact per-row byte so the
        // per-feature filtering below reads one byte instead of
        // re-deriving the comparison from the split column.
        const LO: u8 = 0;
        const HI: u8 = 1;
        const BOTH: u8 = 2;
        let split_col = &self.cols[feat];
        let mut lo_rows = Vec::with_capacity(ctx.rows.len());
        let mut hi_rows = Vec::with_capacity(ctx.rows.len());
        for &(c, w) in &ctx.rows {
            let v = split_col[c as usize];
            if v.is_nan() {
                side[c as usize] = BOTH;
                if lo_frac > 0.0 {
                    lo_rows.push((c, w * lo_frac));
                }
                if lo_frac < 1.0 {
                    hi_rows.push((c, w * (1.0 - lo_frac)));
                }
            } else if v < thr {
                side[c as usize] = LO;
                lo_rows.push((c, w));
            } else {
                side[c as usize] = HI;
                hi_rows.push((c, w));
            }
        }
        if lo_rows.is_empty() || hi_rows.is_empty() {
            return Node::Leaf { dist };
        }
        // Filter each feature's sorted sequence into the children;
        // order is preserved, so children never sort either.
        let nf = ctx.order.len();
        let mut lo_order: Vec<Vec<u32>> = Vec::with_capacity(nf);
        let mut hi_order: Vec<Vec<u32>> = Vec::with_capacity(nf);
        for list in &ctx.order {
            let mut lo_list = Vec::with_capacity(list.len().min(lo_rows.len()));
            let mut hi_list = Vec::with_capacity(list.len().min(hi_rows.len()));
            for &c in list {
                match side[c as usize] {
                    LO => lo_list.push(c),
                    HI => hi_list.push(c),
                    _ => {
                        if lo_frac > 0.0 {
                            lo_list.push(c);
                        }
                        if lo_frac < 1.0 {
                            hi_list.push(c);
                        }
                    }
                }
            }
            lo_order.push(lo_list);
            hi_order.push(hi_list);
        }
        drop(ctx);
        let lo = Box::new(self.build(
            NodeCtx {
                rows: lo_rows,
                order: lo_order,
            },
            depth + 1,
            weights,
            side,
            scratch,
        ));
        let hi = Box::new(self.build(
            NodeCtx {
                rows: hi_rows,
                order: hi_order,
            },
            depth + 1,
            weights,
            side,
            scratch,
        ));
        Node::Split {
            feat,
            thr,
            lo,
            hi,
            lo_frac,
            dist,
            gain_w,
        }
    }

    /// Best (feature, threshold, weighted gain, lo fraction) by gain
    /// ratio over the pre-sorted sequences. Feature sweeps are
    /// independent; large nodes fan them out across threads. The merge
    /// scans candidates in feature order with a strict `>`, so ties
    /// resolve to the lowest feature index no matter how many threads
    /// ran — the result is identical to a serial scan.
    fn best_split(
        &self,
        ctx: &NodeCtx,
        weights: &[f64],
        total: f64,
        scratch: &mut Scratch,
    ) -> Option<(usize, f64, f64, f64)> {
        let nf = ctx.order.len();
        let work: usize = ctx.order.iter().map(Vec::len).sum();
        let evals: Vec<Option<FeatSplit>> =
            if self.threads > 1 && nf >= 2 && work * self.n_classes > 64 * 1024 {
                let next = std::sync::atomic::AtomicUsize::new(0);
                let slots: Vec<std::sync::Mutex<Option<FeatSplit>>> =
                    (0..nf).map(|_| std::sync::Mutex::new(None)).collect();
                std::thread::scope(|s| {
                    for _ in 0..self.threads.min(nf) {
                        s.spawn(|| {
                            let mut local = Scratch::new(self.n_classes);
                            loop {
                                let j = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if j >= nf {
                                    break;
                                }
                                *slots[j]
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner) =
                                    self.eval_feature(j, &ctx.order[j], weights, total, &mut local);
                            }
                        });
                    }
                });
                slots
                    .into_iter()
                    .map(|m| {
                        m.into_inner()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                    })
                    .collect()
            } else {
                (0..nf)
                    .map(|j| self.eval_feature(j, &ctx.order[j], weights, total, scratch))
                    .collect()
            };
        let mut best: Option<(usize, f64, f64, f64)> = None;
        let mut best_ratio = 0.0f64;
        for (feat, eval) in evals.into_iter().enumerate() {
            let Some(e) = eval else { continue };
            if e.ratio > best_ratio {
                best_ratio = e.ratio;
                best = Some((feat, e.thr, e.gain * total, e.lo_w / e.known_w));
            }
        }
        best
    }

    /// Sweep one feature's sorted member sequence for its best
    /// threshold. Arithmetically step-for-step identical to the seed
    /// implementation's per-node sweep (same accumulation order), minus
    /// the per-node sort and the per-candidate allocations: a pre-pass
    /// over the sorted ids computes the known-weight totals, then the
    /// sweep runs over the same ids (the fast unit-weight variant reads
    /// the columns in place; the weighted variant copies the triples
    /// into contiguous scratch first).
    fn eval_feature(
        &self,
        feat: usize,
        list: &[u32],
        weights: &[f64],
        total: f64,
        scratch: &mut Scratch,
    ) -> Option<FeatSplit> {
        if list.len() < 4 {
            return None;
        }
        // Pre-pass. `known_w` and `known_dist` are independent
        // accumulators, each summed in list order — the same order the
        // seed implementation uses in its two separate passes, so the
        // sums are bit-identical.
        for d in scratch.known_dist.iter_mut() {
            *d = 0.0;
        }
        let mut known_w = 0.0;
        let mut unit_weights = true;
        let col = &self.cols[feat];
        for &c in list {
            let ci = c as usize;
            let (y, w) = (self.y[ci], weights[ci]);
            known_w += w;
            unit_weights &= w == 1.0;
            scratch.known_dist[y as usize] += w;
        }
        if known_w < 2.0 * self.cfg.min_leaf {
            return None;
        }
        // Clamped: float cancellation in `total - known_w` must not
        // feed a negative count into `entropy_of_counts` (NaN gain).
        let miss_w = (total - known_w).max(0.0);
        let frac_known = known_w / total;
        let h = entropy_of_counts(&scratch.known_dist);
        if h == 0.0 {
            return None;
        }
        // Sweep over the contiguous gather. `left`/`right` are reused
        // across candidates — the seed implementation allocated
        // `right` per candidate.
        let mut candidates = 0u32;
        let mut feat_best: Option<(f64, f64, f64)> = None; // (thr, gain, lo_w)
        let min_leaf = self.cfg.min_leaf;
        if unit_weights && known_w < crate::info::LOG_TABLE_LEN as f64 {
            // Unit-weight specialisation: every weight in this node is
            // exactly 1.0 (no fractional missing-value split above us),
            // so the left/right class counts are exact small integers
            // and `entropy_of_counts` would take its table branch on
            // every candidate. Inline that branch — identical table
            // lookups, identical add/divide order — and keep the
            // counts in `u32`s. Bit-identical gains, no per-candidate
            // function calls and no gather copy.
            let (klogk, logk) = crate::info::log_tables();
            for (li, &d) in scratch.known_dist_i.iter_mut().zip(&scratch.known_dist) {
                *li = d as u32;
            }
            for l in scratch.left_i.iter_mut() {
                *l = 0;
            }
            let known_n = list.len() as u32;
            let mut lo_n = 0u32;
            for i in 0..list.len() - 1 {
                let ci = list[i] as usize;
                let (v, y) = (col[ci], self.y[ci]);
                scratch.left_i[y as usize] += 1;
                lo_n += 1;
                let v_next = col[list[i + 1] as usize];
                if v == v_next {
                    continue;
                }
                candidates += 1;
                let left_w = lo_n as f64;
                let right_w = known_w - left_w;
                if left_w < min_leaf || right_w < min_leaf {
                    continue;
                }
                let (mut s_l, mut s_r) = (0.0, 0.0);
                let (mut nz_l, mut nz_r) = (0u32, 0u32);
                for (&lc_u, &kd_u) in scratch.left_i.iter().zip(&scratch.known_dist_i) {
                    let lc = lc_u as usize;
                    let rc = (kd_u - lc_u) as usize;
                    s_l += klogk[lc];
                    s_r += klogk[rc];
                    nz_l += (lc > 0) as u32;
                    nz_r += (rc > 0) as u32;
                }
                let h_l = if nz_l <= 1 {
                    0.0
                } else {
                    logk[lo_n as usize] - s_l / left_w
                };
                let h_r = if nz_r <= 1 {
                    0.0
                } else {
                    logk[(known_n - lo_n) as usize] - s_r / right_w
                };
                let h_split = (left_w * h_l + right_w * h_r) / known_w;
                let gain = frac_known * (h - h_split);
                if feat_best
                    .map(|(_, best_g, _)| gain > best_g)
                    .unwrap_or(true)
                {
                    feat_best = Some(((v + v_next) / 2.0, gain, left_w));
                }
            }
        } else {
            // Weighted sweep: gather the triples into contiguous
            // scratch first (the weights make the entropy counts
            // fractional, so the generic entropy path applies).
            scratch.gathered.clear();
            scratch.gathered.reserve(list.len());
            for &c in list {
                let ci = c as usize;
                scratch.gathered.push((col[ci], self.y[ci], weights[ci]));
            }
            for l in scratch.left.iter_mut() {
                *l = 0.0;
            }
            let mut left_w = 0.0;
            let g = &scratch.gathered;
            for i in 0..g.len() - 1 {
                let (v, y, w) = g[i];
                scratch.left[y as usize] += w;
                left_w += w;
                let v_next = g[i + 1].0;
                if v == v_next {
                    continue;
                }
                candidates += 1;
                let right_w = known_w - left_w;
                if left_w < self.cfg.min_leaf || right_w < self.cfg.min_leaf {
                    continue;
                }
                for (r, (&t, &l)) in scratch
                    .right
                    .iter_mut()
                    .zip(scratch.known_dist.iter().zip(&scratch.left))
                {
                    *r = t - l;
                }
                let h_split = (left_w * entropy_of_counts(&scratch.left)
                    + right_w * entropy_of_counts(&scratch.right))
                    / known_w;
                let gain = frac_known * (h - h_split);
                if feat_best
                    .map(|(_, best_g, _)| gain > best_g)
                    .unwrap_or(true)
                {
                    feat_best = Some(((v + v_next) / 2.0, gain, left_w));
                }
            }
        }
        let (thr, mut gain, lo_w) = feat_best?;
        if candidates == 0 {
            return None;
        }
        // C4.5 continuous-attribute penalty.
        gain -= (candidates as f64).log2() / list.len() as f64;
        if gain <= 1e-9 {
            return None;
        }
        // Split info over {lo, hi, missing} shares of total weight.
        let hi_w = known_w - lo_w;
        let si = entropy_of_counts(&[lo_w, hi_w, miss_w]);
        if si <= 1e-9 {
            return None;
        }
        Some(FeatSplit {
            ratio: gain / si,
            thr,
            gain,
            lo_w,
            known_w,
        })
    }
}

impl C45Trainer {
    /// Train on the rows `rows` of `data` (pass `0..len` for all;
    /// row indices must be distinct).
    ///
    /// Uses the columnar pre-sorted engine (see the module docs): each
    /// feature is sorted once, nodes filter the sorted sequences, and
    /// the per-node split search runs across [`C45Config::threads`]
    /// worker threads. The trained tree is bit-identical for every
    /// thread count, and matches [`C45Trainer::fit_seed_reference`].
    pub fn fit(&self, data: &Dataset, rows: &[usize]) -> DecisionTree {
        debug_assert!(
            {
                let mut seen = std::collections::HashSet::new();
                rows.iter().all(|r| seen.insert(*r))
            },
            "fit requires distinct row indices"
        );
        assert!(
            rows.len() < u32::MAX as usize,
            "row count exceeds u32 range"
        );
        let nf = data.n_features();
        // Column-major copy of the training rows, compact ids in
        // caller order; -0.0 normalised so value ties are exact.
        let cols: Vec<Vec<f64>> = (0..nf)
            .map(|j| {
                rows.iter()
                    .map(|&r| {
                        let v = data.x[r][j];
                        if v == 0.0 {
                            0.0
                        } else {
                            v
                        }
                    })
                    .collect()
            })
            .collect();
        let y: Vec<u32> = rows.iter().map(|&r| data.y[r] as u32).collect();
        let obs_on = vqd_obs::enabled();
        let fit_t0 = obs_on.then(std::time::Instant::now);
        let engine = Engine {
            cfg: self.cfg,
            cols,
            y,
            n_classes: data.n_classes(),
            threads: resolve_threads(self.cfg.threads),
            obs_on,
            split_ns: std::sync::atomic::AtomicU64::new(0),
            split_calls: std::sync::atomic::AtomicU64::new(0),
        };
        let order = engine.presort();
        let root_rows: Vec<(u32, f64)> = (0..rows.len() as u32).map(|c| (c, 1.0)).collect();
        let mut weights = vec![0.0; rows.len()];
        let mut side = vec![0u8; rows.len()];
        let mut scratch = Scratch::new(data.n_classes());
        let mut root = engine.build(
            NodeCtx {
                rows: root_rows,
                order,
            },
            0,
            &mut weights,
            &mut side,
            &mut scratch,
        );
        if !self.cfg.unpruned {
            prune(&mut root, self.cfg.cf);
        }
        let tree = DecisionTree {
            root,
            n_classes: data.n_classes(),
            feature_names: data.features.clone(),
            class_names: data.classes.clone(),
        };
        if let Some(t0) = fit_t0 {
            let r = vqd_obs::recorder();
            r.counter_add("ml.fit.count", 1);
            r.counter_add(
                "ml.fit.split_searches",
                engine
                    .split_calls
                    .load(std::sync::atomic::Ordering::Relaxed),
            );
            r.hist_record("ml.fit.rows", rows.len() as f64);
            r.hist_record("ml.fit.nodes", tree.size() as f64);
            r.hist_record("ml.fit.depth", tree.depth() as f64);
            r.hist_record("ml.fit.wall_ms", t0.elapsed().as_secs_f64() * 1e3);
            r.hist_record(
                "ml.fit.split_search_ms",
                engine.split_ns.load(std::sync::atomic::Ordering::Relaxed) as f64 / 1e6,
            );
        }
        tree
    }

    /// The seed's original training path: per-node column collection
    /// and sorting, serial split search. Kept as the semantics oracle —
    /// [`C45Trainer::fit`] must produce byte-identical trees — and as
    /// the baseline for the `micro` benchmark's before/after
    /// comparison.
    pub fn fit_seed_reference(&self, data: &Dataset, rows: &[usize]) -> DecisionTree {
        let weighted: Vec<(usize, f64)> = rows.iter().map(|&r| (r, 1.0)).collect();
        let mut root = self.build_rowwise(data, &weighted, 0);
        if !self.cfg.unpruned {
            prune(&mut root, self.cfg.cf);
        }
        DecisionTree {
            root,
            n_classes: data.n_classes(),
            feature_names: data.features.clone(),
            class_names: data.classes.clone(),
        }
    }

    fn dist(&self, data: &Dataset, rows: &[(usize, f64)]) -> Vec<f64> {
        let mut d = vec![0.0; data.n_classes()];
        for &(r, w) in rows {
            d[data.y[r]] += w;
        }
        d
    }

    fn build_rowwise(&self, data: &Dataset, rows: &[(usize, f64)], depth: usize) -> Node {
        let dist = self.dist(data, rows);
        let total: f64 = dist.iter().sum();
        let pure = dist.iter().filter(|&&w| w > 0.0).count() <= 1;
        if pure || total < 2.0 * self.cfg.min_leaf || depth >= self.cfg.max_depth {
            return Node::Leaf { dist };
        }
        let Some(best) = self.best_split_rowwise(data, rows, total) else {
            return Node::Leaf { dist };
        };
        let (feat, thr, gain_w, lo_frac) = best;
        // Partition.
        let mut lo_rows = Vec::new();
        let mut hi_rows = Vec::new();
        for &(r, w) in rows {
            let v = data.x[r][feat];
            if v.is_nan() {
                if lo_frac > 0.0 {
                    lo_rows.push((r, w * lo_frac));
                }
                if lo_frac < 1.0 {
                    hi_rows.push((r, w * (1.0 - lo_frac)));
                }
            } else if v < thr {
                lo_rows.push((r, w));
            } else {
                hi_rows.push((r, w));
            }
        }
        if lo_rows.is_empty() || hi_rows.is_empty() {
            return Node::Leaf { dist };
        }
        let lo = Box::new(self.build_rowwise(data, &lo_rows, depth + 1));
        let hi = Box::new(self.build_rowwise(data, &hi_rows, depth + 1));
        Node::Split {
            feat,
            thr,
            lo,
            hi,
            lo_frac,
            dist,
            gain_w,
        }
    }

    /// Best (feature, threshold, weighted gain, lo fraction) by gain
    /// ratio — the seed's per-node collect-and-sort search.
    fn best_split_rowwise(
        &self,
        data: &Dataset,
        rows: &[(usize, f64)],
        total: f64,
    ) -> Option<(usize, f64, f64, f64)> {
        let n_classes = data.n_classes();
        let mut best: Option<(usize, f64, f64, f64)> = None;
        let mut best_ratio = 0.0f64;
        for feat in 0..data.n_features() {
            let mut known: Vec<(f64, usize, f64)> = rows
                .iter()
                .filter_map(|&(r, w)| {
                    let v = data.x[r][feat];
                    (!v.is_nan()).then_some((v, data.y[r], w))
                })
                .collect();
            if known.len() < 4 {
                continue;
            }
            known.sort_by(|a, b| a.0.total_cmp(&b.0));
            let known_w: f64 = known.iter().map(|k| k.2).sum();
            if known_w < 2.0 * self.cfg.min_leaf {
                continue;
            }
            let miss_w = (total - known_w).max(0.0);
            let frac_known = known_w / total;
            let mut known_dist = vec![0.0; n_classes];
            for &(_, c, w) in &known {
                known_dist[c] += w;
            }
            let h = entropy_of_counts(&known_dist);
            if h == 0.0 {
                continue;
            }
            // Sweep.
            let mut left = vec![0.0; n_classes];
            let mut left_w = 0.0;
            let mut candidates = 0u32;
            let mut feat_best: Option<(f64, f64, f64)> = None; // (thr, gain, lo_w)
            for i in 0..known.len() - 1 {
                left[known[i].1] += known[i].2;
                left_w += known[i].2;
                if known[i].0 == known[i + 1].0 {
                    continue;
                }
                candidates += 1;
                let right_w = known_w - left_w;
                if left_w < self.cfg.min_leaf || right_w < self.cfg.min_leaf {
                    continue;
                }
                let right: Vec<f64> = known_dist.iter().zip(&left).map(|(&t, &l)| t - l).collect();
                let h_split = (left_w * entropy_of_counts(&left)
                    + right_w * entropy_of_counts(&right))
                    / known_w;
                let gain = frac_known * (h - h_split);
                if feat_best.map(|(_, g, _)| gain > g).unwrap_or(true) {
                    let thr = (known[i].0 + known[i + 1].0) / 2.0;
                    feat_best = Some((thr, gain, left_w));
                }
            }
            let Some((thr, mut gain, lo_w)) = feat_best else {
                continue;
            };
            if candidates == 0 {
                continue;
            }
            // C4.5 continuous-attribute penalty.
            gain -= (candidates as f64).log2() / known.len() as f64;
            if gain <= 1e-9 {
                continue;
            }
            // Split info over {lo, hi, missing} shares of total weight.
            let hi_w = known_w - lo_w;
            let si = entropy_of_counts(&[lo_w, hi_w, miss_w]);
            if si <= 1e-9 {
                continue;
            }
            let ratio = gain / si;
            if ratio > best_ratio {
                best_ratio = ratio;
                best = Some((feat, thr, gain * total, lo_w / known_w));
            }
        }
        best
    }
}

/// Bottom-up error-based pruning. Returns the node's predicted errors.
pub(crate) fn prune(node: &mut Node, cf: f64) -> f64 {
    let (leaf_pred, dist) = match node {
        Node::Leaf { dist } => {
            let total: f64 = dist.iter().sum();
            let err = total - dist[argmax(dist)];
            return err + add_errs(total, err, cf);
        }
        Node::Split { dist, .. } => {
            let total: f64 = dist.iter().sum();
            let err = total - dist[argmax(dist)];
            (err + add_errs(total, err, cf), dist.clone())
        }
    };
    let subtree_pred = match node {
        Node::Split { lo, hi, .. } => prune(lo, cf) + prune(hi, cf),
        Node::Leaf { .. } => unreachable!(),
    };
    if leaf_pred <= subtree_pred + 0.1 {
        *node = Node::Leaf { dist };
        leaf_pred
    } else {
        subtree_pred
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqd_simnet::rng::SimRng;

    fn dataset(features: &[&str], classes: &[&str]) -> Dataset {
        Dataset::new(
            features.iter().map(|s| s.to_string()).collect(),
            classes.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn learns_simple_threshold() {
        let mut d = dataset(&["x"], &["lo", "hi"]);
        for i in 0..100 {
            let v = i as f64 / 10.0;
            d.push(vec![v], usize::from(v >= 5.0));
        }
        let tree = C45Trainer::default().fit(&d, &(0..100).collect::<Vec<_>>());
        assert_eq!(tree.predict(&[2.0]), 0);
        assert_eq!(tree.predict(&[8.0]), 1);
        assert!(tree.size() <= 5, "size {}", tree.size());
    }

    #[test]
    fn picks_informative_feature() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut d = dataset(&["noise", "signal"], &["a", "b"]);
        for _ in 0..300 {
            let c = rng.index(2);
            let signal = c as f64 * 10.0 + rng.normal(0.0, 1.0);
            let noise = rng.normal(0.0, 5.0);
            d.push(vec![noise, signal], c);
        }
        let rows: Vec<usize> = (0..d.len()).collect();
        let tree = C45Trainer::default().fit(&d, &rows);
        let imp = tree.feature_importance();
        assert!(imp[1] > imp[0] * 5.0, "importances {imp:?}");
        // Accuracy on training data is near perfect.
        let correct = rows
            .iter()
            .filter(|&&r| tree.predict(&d.x[r]) == d.y[r])
            .count();
        assert!(correct as f64 / rows.len() as f64 > 0.95);
    }

    #[test]
    fn handles_missing_values() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut d = dataset(&["a", "b"], &["x", "y"]);
        for i in 0..400 {
            let c = i % 2;
            let a = if rng.chance(0.3) {
                f64::NAN
            } else {
                c as f64 * 4.0 + rng.normal(0.0, 0.5)
            };
            let b = c as f64 * 4.0 + rng.normal(0.0, 0.5);
            d.push(vec![a, b], c);
        }
        let rows: Vec<usize> = (0..d.len()).collect();
        let tree = C45Trainer::default().fit(&d, &rows);
        // Predict with the first feature missing entirely.
        assert_eq!(tree.predict(&[f64::NAN, 0.1]), 0);
        assert_eq!(tree.predict(&[f64::NAN, 4.1]), 1);
    }

    #[test]
    fn pruning_shrinks_noisy_tree() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut d = dataset(&["x", "n1", "n2"], &["a", "b"]);
        for _ in 0..500 {
            let c = rng.index(2);
            // x is weakly predictive; n1/n2 are pure noise.
            let x = c as f64 + rng.normal(0.0, 0.8);
            d.push(vec![x, rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)], c);
        }
        let rows: Vec<usize> = (0..d.len()).collect();
        let unpruned = C45Trainer {
            cfg: C45Config {
                unpruned: true,
                ..Default::default()
            },
        }
        .fit(&d, &rows);
        let pruned = C45Trainer::default().fit(&d, &rows);
        assert!(
            pruned.size() < unpruned.size(),
            "pruned {} unpruned {}",
            pruned.size(),
            unpruned.size()
        );
    }

    #[test]
    fn multiclass_bands() {
        let mut d = dataset(&["v"], &["low", "mid", "high"]);
        for i in 0..300 {
            let v = i as f64 / 10.0;
            let c = if v < 10.0 {
                0
            } else if v < 20.0 {
                1
            } else {
                2
            };
            d.push(vec![v], c);
        }
        let rows: Vec<usize> = (0..d.len()).collect();
        let tree = C45Trainer::default().fit(&d, &rows);
        assert_eq!(tree.predict(&[5.0]), 0);
        assert_eq!(tree.predict(&[15.0]), 1);
        assert_eq!(tree.predict(&[25.0]), 2);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn dump_mentions_feature_names() {
        let mut d = dataset(&["rssi"], &["good", "bad"]);
        for i in 0..50 {
            d.push(vec![-(i as f64)], usize::from(i >= 25));
        }
        let tree = C45Trainer::default().fit(&d, &(0..50).collect::<Vec<_>>());
        let txt = tree.to_text();
        assert!(txt.contains("rssi"), "{txt}");
        assert!(txt.contains("good") && txt.contains("bad"), "{txt}");
    }

    #[test]
    fn serialization_round_trips() {
        let mut rng = SimRng::seed_from_u64(12);
        let mut d = dataset(&["a", "b", "c"], &["x", "y", "z"]);
        for _ in 0..300 {
            let c = rng.index(3);
            d.push(
                vec![
                    c as f64 * 3.0 + rng.normal(0.0, 0.8),
                    rng.normal(0.0, 1.0),
                    if rng.chance(0.2) {
                        f64::NAN
                    } else {
                        c as f64 - 1.0
                    },
                ],
                c,
            );
        }
        let rows: Vec<usize> = (0..d.len()).collect();
        let tree = C45Trainer::default().fit(&d, &rows);
        let text = tree.serialize();
        let back = DecisionTree::deserialize(&text).unwrap();
        assert_eq!(back.size(), tree.size());
        assert_eq!(back.feature_names, tree.feature_names);
        assert_eq!(back.class_names, tree.class_names);
        // Identical predictions, including missing-value paths.
        for probe in [
            vec![0.0, 0.0, f64::NAN],
            vec![3.0, -1.0, 0.0],
            vec![f64::NAN, f64::NAN, f64::NAN],
            vec![6.0, 2.0, 1.0],
        ] {
            assert_eq!(back.predict(&probe), tree.predict(&probe));
            let da = tree.predict_dist(&probe);
            let db = back.predict_dist(&probe);
            for (x, y) in da.iter().zip(&db) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(DecisionTree::deserialize("nope").is_err());
        assert!(DecisionTree::deserialize("").is_err());
        assert!(DecisionTree::deserialize("vqd-tree v1\nclasses\ta\n").is_err());
        assert!(
            DecisionTree::deserialize(
                "vqd-tree v1\nclasses\ta\tb\nfeatures\tf\nS 9 0.5 0.5 1.0 1 2\nL 1 2\nL 2 1\n"
            )
            .is_err(),
            "out-of-range feature index must fail"
        );
    }

    #[test]
    fn deserialize_reads_legacy_v1() {
        let v1 = "vqd-tree v1\nclasses\ta\tb\nfeatures\tf\n\
                  S 0 0.5 0.5 1.0 3.0 3.0\nL 3.0 0.0\nL 0.0 3.0\n";
        let tree = DecisionTree::deserialize(v1).unwrap();
        assert_eq!(tree.size(), 3);
        assert_eq!(tree.predict(&[0.0]), 0);
        assert_eq!(tree.predict(&[1.0]), 1);
        // Re-serialising writes v2; semantics survive the upgrade.
        let back = DecisionTree::deserialize(&tree.serialize()).unwrap();
        assert!(tree.serialize().starts_with("vqd-tree v2\n"));
        assert_eq!(back.predict(&[0.0]), 0);
        assert_eq!(back.predict(&[1.0]), 1);
    }

    fn v2(nodes: &str) -> String {
        let n = nodes.lines().count();
        format!("vqd-tree v2\nclasses\ta\tb\nfeatures\tf\nnodes\t{n}\n{nodes}")
    }

    #[test]
    fn deserialize_errors_name_line_and_field() {
        // Cycle: node 1 is its own child.
        let err = DecisionTree::deserialize(&v2(
            "0\tS 0 0.5 0.5 1.0 1 2 3.0 3.0\n1\tS 0 0.7 0.5 1.0 1 2 1.0 1.0\n2\tL 0.0 3.0",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("more than once"), "{err}");
        // Out-of-range child id, error names the line.
        let err = DecisionTree::deserialize(&v2("0\tS 0 0.5 0.5 1.0 1 7 3.0 3.0\n1\tL 3.0 0.0"))
            .unwrap_err();
        assert_eq!(err.line, 5);
        assert_eq!(err.field, "hi_id");
        // Truncated table.
        let err = DecisionTree::deserialize(
            "vqd-tree v2\nclasses\ta\tb\nfeatures\tf\nnodes\t3\n0\tL 1.0 1.0\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // Class-count mismatch in a leaf dist.
        let err = DecisionTree::deserialize(&v2("0\tL 1.0 1.0 1.0")).unwrap_err();
        assert!(err.to_string().contains("class-count mismatch"), "{err}");
        // Unreachable node.
        let err = DecisionTree::deserialize(&v2("0\tL 1.0 1.0\n1\tL 2.0 0.0")).unwrap_err();
        assert!(err.to_string().contains("unreachable"), "{err}");
        // Non-finite threshold.
        let err = DecisionTree::deserialize(&v2(
            "0\tS 0 NaN 0.5 1.0 1 2 3.0 3.0\n1\tL 3.0 0.0\n2\tL 0.0 3.0",
        ))
        .unwrap_err();
        assert_eq!(err.field, "thr");
    }

    #[test]
    fn deserialize_depth_capped_no_overflow() {
        // 100k-deep v1 chain of splits: must error, not blow the stack.
        let mut s = String::from("vqd-tree v1\nclasses\ta\tb\nfeatures\tf\n");
        for _ in 0..100_000 {
            s.push_str("S 0 0.5 0.5 1.0 2.0 2.0\nL 1.0 0.0\n");
        }
        s.push_str("L 0.0 1.0\n");
        let err = DecisionTree::deserialize(&s).unwrap_err();
        assert!(err.to_string().contains("deeper"), "{err}");
    }

    #[test]
    fn features_used_reports_split_features_only() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut d = dataset(&["noise", "signal"], &["a", "b"]);
        for _ in 0..200 {
            let c = rng.index(2);
            d.push(vec![rng.normal(0.0, 1.0), c as f64 * 8.0], c);
        }
        let tree = C45Trainer::default().fit(&d, &(0..200).collect::<Vec<_>>());
        assert_eq!(tree.features_used(), vec![1]);
    }

    #[test]
    fn traced_prediction_reports_missing_descent() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut d = dataset(&["x"], &["a", "b"]);
        for _ in 0..200 {
            let c = rng.index(2);
            d.push(vec![c as f64 * 4.0 + rng.normal(0.0, 0.5)], c);
        }
        let tree = C45Trainer::default().fit(&d, &(0..200).collect::<Vec<_>>());
        let (dist, miss) = tree.predict_dist_traced(&[0.1]);
        assert_eq!(miss, 0.0, "known value must not trace as missing");
        assert!(dist[0] > dist[1]);
        let (dist_m, miss_m) = tree.predict_dist_traced(&[f64::NAN]);
        assert!(miss_m > 0.99, "all-missing descent must trace as missing");
        // The all-missing distribution is (close to) the training prior.
        assert!((dist_m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn add_errs_monotone() {
        // More observed errors → more predicted extra errors... the
        // bound narrows with n.
        let a = add_errs(100.0, 0.0, 0.25);
        let b = add_errs(100.0, 10.0, 0.25);
        assert!(b > 0.0 && a > 0.0);
        let big_n = add_errs(10000.0, 0.0, 0.25);
        assert!(big_n / 10000.0 < a / 100.0);
    }

    #[test]
    fn norm_quantile_sane() {
        assert!((norm_quantile(0.75) - 0.6744898).abs() < 1e-4);
        assert!((norm_quantile(0.5)).abs() < 1e-9);
        assert!((norm_quantile(0.975) - 1.959964).abs() < 1e-4);
    }
}
