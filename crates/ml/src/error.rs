//! Typed model-persistence errors.
//!
//! Every failure mode of [`DecisionTree::deserialize`]
//! (crate::dtree::DecisionTree::deserialize) — truncated files, bad
//! tokens, out-of-range node or feature indices, cyclic child
//! references, class/feature-count mismatches — maps to a
//! [`ModelParseError`] that names the offending line and field instead
//! of panicking or looping. `vqd-core` wraps this into its `VqdError`.

use std::fmt;

/// A model file failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelParseError {
    /// 1-based line number of the offending line (0 = the file as a
    /// whole, e.g. an empty input).
    pub line: usize,
    /// The field or token that failed ("header", "feat", "dist", …).
    pub field: String,
    /// What went wrong.
    pub msg: String,
}

impl ModelParseError {
    /// Build an error pinned to `line` (1-based).
    pub fn at(line: usize, field: &str, msg: impl Into<String>) -> Self {
        ModelParseError {
            line,
            field: field.to_string(),
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ModelParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "model parse error in {}: {}", self.field, self.msg)
        } else {
            write!(
                f,
                "model parse error at line {} ({}): {}",
                self.line, self.field, self.msg
            )
        }
    }
}

impl std::error::Error for ModelParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_line_and_field() {
        let e = ModelParseError::at(7, "feat", "index 9 out of range (3 features)");
        let s = e.to_string();
        assert!(s.contains("line 7"), "{s}");
        assert!(s.contains("feat"), "{s}");
        let whole = ModelParseError::at(0, "file", "empty input");
        assert!(!whole.to_string().contains("line"), "{whole}");
    }
}
