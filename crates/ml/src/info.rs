//! Information-theoretic primitives: entropy, information gain,
//! symmetrical uncertainty.
//!
//! These back both the C4.5 split criterion and the FCBF feature
//! selector. All functions operate on discrete value indices (continuous
//! features are discretised first — see [`crate::discretize`]).

/// `k·log2(k)` and `log2(k)` for integer `k`, precomputed once: the
/// C4.5 split sweep calls [`entropy_of_counts`] on every candidate
/// threshold of every feature of every node, and whenever no
/// fractional (missing-value) weights are involved the counts are
/// exact small integers — a table lookup replaces the `log2` calls.
pub(crate) const LOG_TABLE_LEN: usize = 4096;

pub(crate) fn log_tables() -> &'static (Vec<f64>, Vec<f64>) {
    static TABLES: std::sync::OnceLock<(Vec<f64>, Vec<f64>)> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut klogk = vec![0.0; LOG_TABLE_LEN];
        let mut logk = vec![0.0; LOG_TABLE_LEN];
        for k in 1..LOG_TABLE_LEN {
            let l = (k as f64).log2();
            klogk[k] = k as f64 * l;
            logk[k] = l;
        }
        (klogk, logk)
    })
}

/// Shannon entropy (bits) of a count vector.
///
/// When every count is a small non-negative integer (the common case
/// in tree training: instance counts without fractional missing-value
/// weights), the entropy is computed as
/// `log2(T) − (Σ c·log2 c)/T` from precomputed log tables; otherwise
/// it falls back to the direct `−Σ p·log2 p` sum. Both branches are
/// pure functions of the input values, so results are reproducible
/// across runs and thread counts.
pub fn entropy_of_counts(counts: &[f64]) -> f64 {
    let mut total = 0.0;
    let mut integral = true;
    let mut nonzero = 0u32;
    for &c in counts {
        total += c;
        // `c as usize as f64 == c` ⟺ c is an exact non-negative
        // integer in range (NaN and negatives fail the round-trip).
        integral &= (c as usize) < LOG_TABLE_LEN && c as usize as f64 == c;
        nonzero += (c > 0.0) as u32;
    }
    if total.is_nan() || total <= 0.0 || nonzero <= 1 {
        // Empty, degenerate, single-class or NaN: entropy is exactly 0.
        return 0.0;
    }
    if integral && (total as usize) < LOG_TABLE_LEN && total as usize as f64 == total {
        let (klogk, logk) = log_tables();
        let mut s = 0.0;
        for &c in counts {
            s += klogk[c as usize];
        }
        logk[total as usize] - s / total
    } else {
        direct_entropy(counts, total)
    }
}

fn direct_entropy(counts: &[f64], total: f64) -> f64 {
    let mut h = 0.0;
    for &c in counts {
        if c > 0.0 {
            let p = c / total;
            h -= p * p.log2();
        }
    }
    h
}

/// Entropy of a discrete label sequence with `n` distinct values.
pub fn entropy(labels: &[usize], n: usize) -> f64 {
    let mut counts = vec![0.0; n];
    for &l in labels {
        counts[l] += 1.0;
    }
    entropy_of_counts(&counts)
}

/// H(Y), H(Y|X) and mutual information I(X;Y) for two aligned discrete
/// sequences (`nx`/`ny` distinct values).
pub fn mutual_information(xs: &[usize], ys: &[usize], nx: usize, ny: usize) -> f64 {
    assert_eq!(xs.len(), ys.len());
    if xs.is_empty() {
        return 0.0;
    }
    let mut joint = vec![0.0f64; nx * ny];
    let mut cx = vec![0.0f64; nx];
    let mut cy = vec![0.0f64; ny];
    for (&x, &y) in xs.iter().zip(ys) {
        joint[x * ny + y] += 1.0;
        cx[x] += 1.0;
        cy[y] += 1.0;
    }
    let hx = entropy_of_counts(&cx);
    let hy = entropy_of_counts(&cy);
    let hxy = entropy_of_counts(&joint);
    (hx + hy - hxy).max(0.0)
}

/// Symmetrical uncertainty: `2·I(X;Y) / (H(X)+H(Y))` ∈ [0, 1].
/// The relevance/redundancy measure of FCBF (Yu & Liu, ICML 2003).
pub fn symmetrical_uncertainty(xs: &[usize], ys: &[usize], nx: usize, ny: usize) -> f64 {
    let mut cx = vec![0.0f64; nx];
    let mut cy = vec![0.0f64; ny];
    for &x in xs {
        cx[x] += 1.0;
    }
    for &y in ys {
        cy[y] += 1.0;
    }
    let hx = entropy_of_counts(&cx);
    let hy = entropy_of_counts(&cy);
    if hx + hy <= 0.0 {
        return 0.0;
    }
    let mi = mutual_information(xs, ys, nx, ny);
    (2.0 * mi / (hx + hy)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy_of_counts(&[10.0, 0.0]), 0.0);
        assert!((entropy_of_counts(&[5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((entropy_of_counts(&[1.0, 1.0, 1.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(entropy_of_counts(&[]), 0.0);
    }

    #[test]
    fn mi_of_identical_variables_is_entropy() {
        let xs = vec![0, 1, 0, 1, 0, 1, 1, 0];
        let mi = mutual_information(&xs, &xs, 2, 2);
        assert!((mi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mi_of_independent_is_zero() {
        // x alternates fast, y alternates slow: independent by design.
        let xs: Vec<usize> = (0..64).map(|i| i % 2).collect();
        let ys: Vec<usize> = (0..64).map(|i| (i / 32) % 2).collect();
        let mi = mutual_information(&xs, &ys, 2, 2);
        assert!(mi.abs() < 1e-9, "mi {mi}");
    }

    #[test]
    fn su_bounds_and_symmetry() {
        let xs = vec![0, 0, 1, 1, 2, 2, 0, 1];
        let ys = vec![0, 0, 1, 1, 1, 1, 0, 1];
        let a = symmetrical_uncertainty(&xs, &ys, 3, 2);
        let b = symmetrical_uncertainty(&ys, &xs, 2, 3);
        assert!((a - b).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&a));
        // Perfectly dependent, same alphabets → SU = 1.
        let c = symmetrical_uncertainty(&ys, &ys, 2, 2);
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn su_constant_feature_is_zero() {
        let xs = vec![0; 10];
        let ys: Vec<usize> = (0..10).map(|i| i % 2).collect();
        assert_eq!(symmetrical_uncertainty(&xs, &ys, 1, 2), 0.0);
    }
}
