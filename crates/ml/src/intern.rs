//! Interned feature identifiers.
//!
//! Every layer of the serving path keys features by name — raw probe
//! metrics, constructed `*_norm` columns, the post-selection tree
//! schema. Resolving those names by linear string scan is O(schema)
//! per lookup and shows up hard on the diagnosis hot path, so the
//! names are interned once into dense `u32` ids and every lookup after
//! that is a single hash probe. The `String`-keyed APIs stay in place
//! as thin adapters over an interner.

use std::collections::HashMap;

/// A dense feature identifier: the feature's column index in the
/// interner (and therefore in any row laid out against its schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FeatureId(pub u32);

impl FeatureId {
    /// The id as a usize column index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional name ↔ dense-id map over feature names.
///
/// Ids are assigned in first-occurrence order, so an interner built
/// from a schema vector maps every name to its column index —
/// duplicate names keep their *first* index, matching what a
/// left-to-right linear scan (`Iterator::position`) would have found.
#[derive(Debug, Clone, Default)]
pub struct FeatureInterner {
    names: Vec<String>,
    map: HashMap<String, u32>,
}

impl FeatureInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a schema: ids are column indices, duplicates resolve to
    /// the first occurrence.
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> Self {
        let mut it = FeatureInterner {
            names: Vec::with_capacity(names.len()),
            map: HashMap::with_capacity(names.len()),
        };
        for n in names {
            it.push_name(n.as_ref());
        }
        it
    }

    /// Append `name`, keeping the first id when it is already known.
    /// Returns the name's id either way.
    fn push_name(&mut self, name: &str) -> FeatureId {
        if let Some(&id) = self.map.get(name) {
            // Keep the column count in sync with the source schema even
            // for duplicate names: lookups still resolve to the first.
            self.names.push(name.to_string());
            return FeatureId(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), id);
        FeatureId(id)
    }

    /// Intern one name, assigning a fresh id on first sight.
    pub fn intern(&mut self, name: &str) -> FeatureId {
        if let Some(&id) = self.map.get(name) {
            return FeatureId(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), id);
        FeatureId(id)
    }

    /// Id of a known name.
    pub fn id(&self, name: &str) -> Option<FeatureId> {
        self.map.get(name).copied().map(FeatureId)
    }

    /// Column index of a known name (the `usize` adapter).
    pub fn index(&self, name: &str) -> Option<usize> {
        self.map.get(name).map(|&i| i as usize)
    }

    /// Name of an id.
    pub fn name(&self, id: FeatureId) -> &str {
        &self.names[id.index()]
    }

    /// All names, in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of interned columns (duplicates included).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Consume the interner, returning the name table.
    pub fn into_names(self) -> Vec<String> {
        self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_first_occurrence_column_indices() {
        let it = FeatureInterner::from_names(&["a", "b", "a", "c"]);
        assert_eq!(it.len(), 4);
        assert_eq!(it.index("a"), Some(0), "duplicate resolves to first");
        assert_eq!(it.index("b"), Some(1));
        assert_eq!(it.index("c"), Some(3));
        assert_eq!(it.index("zzz"), None);
        assert_eq!(it.name(FeatureId(1)), "b");
    }

    #[test]
    fn intern_grows_and_is_idempotent() {
        let mut it = FeatureInterner::new();
        let a = it.intern("x");
        let b = it.intern("y");
        assert_eq!(it.intern("x"), a);
        assert_ne!(a, b);
        assert_eq!(it.into_names(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn matches_linear_position_for_any_schema() {
        let names = ["m.a", "m.b", "m.a", "r.c", "", "r.c", "m.b"];
        let it = FeatureInterner::from_names(&names);
        for probe in ["m.a", "m.b", "r.c", "", "nope"] {
            assert_eq!(
                it.index(probe),
                names.iter().position(|n| *n == probe),
                "{probe}"
            );
        }
    }
}
