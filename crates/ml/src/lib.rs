//! # vqd-ml — the machine-learning substrate
//!
//! A from-scratch reimplementation of the Weka 3.6 pieces the paper
//! uses (the "thin ML ecosystem" gap called out in the reproduction
//! notes):
//!
//! * [`dtree`] — **C4.5** (J48): gain-ratio threshold splits, missing
//!   values by fractional weighting, error-based pruning (CF 0.25).
//! * [`nb`] / [`svm`] — the Gaussian Naive Bayes and linear SVM
//!   baselines C4.5 is compared against.
//! * [`discretize`] — Fayyad–Irani MDL discretisation, the
//!   pre-processing FCBF needs.
//! * [`info`] — entropy / mutual information / symmetrical uncertainty.
//! * [`cv`] — stratified 10-fold cross-validation.
//! * [`metrics`] — accuracy, per-class precision/recall, confusion
//!   matrices, exactly as defined in Section 5 of the paper.
//! * [`dataset`] — the ARFF-shaped numeric dataset with missing values.
//! * [`stream_fit`] — out-of-core C4.5: chunked column materialisation
//!   plus an external-sort gather, bit-identical to the in-memory fit.
//! * [`error`] — typed model-persistence errors (line- and
//!   field-addressed parse failures instead of panics).

pub mod compiled;
pub mod cv;
pub mod dataset;
pub mod discretize;
pub mod dtree;
pub mod error;
pub mod info;
pub mod intern;
pub mod metrics;
pub mod nb;
pub mod stream_fit;
pub mod svm;

pub use compiled::{AuditDir, AuditStep, CompiledTree, DescentFrame};
pub use cv::{cross_validate, Learner, NbLearner, SvmLearner};
pub use dataset::{Dataset, DatasetBuilder};
pub use discretize::{mdl_cuts, FeatureCuts};
pub use dtree::{C45Config, C45Trainer, DecisionTree};
pub use error::ModelParseError;
pub use info::{entropy, mutual_information, symmetrical_uncertainty};
pub use intern::{FeatureId, FeatureInterner};
pub use metrics::ConfusionMatrix;
pub use nb::NaiveBayes;
pub use stream_fit::{ColumnSource, MemColumnSource, StreamFitConfig, StreamFitStats};
pub use svm::{LinearSvm, SvmConfig};
