//! Evaluation metrics: confusion matrix, accuracy, precision, recall.
//!
//! Matches the paper's definitions (Section 5): overall accuracy is
//! correctly predicted instances over all instances; per-class
//! precision is TP/(TP+FP); per-class recall is TP/(TP+total in
//! class).

/// Confusion matrix over `n` classes; `m[actual][predicted]`.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    /// Class names.
    pub classes: Vec<String>,
    m: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// Empty matrix over the given classes.
    pub fn new(classes: Vec<String>) -> Self {
        let n = classes.len();
        ConfusionMatrix {
            classes,
            m: vec![vec![0; n]; n],
        }
    }

    /// Record one prediction.
    pub fn add(&mut self, actual: usize, predicted: usize) {
        self.m[actual][predicted] += 1;
    }

    /// Merge another matrix (same shape).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        for (a, row) in other.m.iter().enumerate() {
            for (p, &v) in row.iter().enumerate() {
                self.m[a][p] += v;
            }
        }
    }

    /// Raw cell count.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.m[actual][predicted]
    }

    /// Total instances recorded.
    pub fn total(&self) -> u64 {
        self.m.iter().flatten().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.m.len()).map(|i| self.m[i][i]).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Precision for one class: TP / (TP + FP). 0 when never predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.m[class][class];
        let predicted: u64 = self.m.iter().map(|row| row[class]).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall for one class: TP / class total. 0 for an empty class.
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.m[class][class];
        let actual: u64 = self.m[class].iter().sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 for one class.
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean precision over classes that occur.
    pub fn macro_precision(&self) -> f64 {
        let occupied: Vec<usize> = (0..self.m.len())
            .filter(|&c| self.m[c].iter().sum::<u64>() > 0)
            .collect();
        if occupied.is_empty() {
            return 0.0;
        }
        occupied.iter().map(|&c| self.precision(c)).sum::<f64>() / occupied.len() as f64
    }

    /// Unweighted mean recall over classes that occur.
    pub fn macro_recall(&self) -> f64 {
        let occupied: Vec<usize> = (0..self.m.len())
            .filter(|&c| self.m[c].iter().sum::<u64>() > 0)
            .collect();
        if occupied.is_empty() {
            return 0.0;
        }
        occupied.iter().map(|&c| self.recall(c)).sum::<f64>() / occupied.len() as f64
    }

    /// Pretty table for reports.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        s.push_str("actual\\pred");
        for c in &self.classes {
            s.push_str(&format!("\t{c}"));
        }
        s.push('\n');
        for (a, row) in self.m.iter().enumerate() {
            s.push_str(&self.classes[a]);
            for v in row {
                s.push_str(&format!("\t{v}"));
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new(vec!["a".into(), "b".into(), "c".into()]);
        // class a: 8 right, 2 as b
        for _ in 0..8 {
            cm.add(0, 0);
        }
        cm.add(0, 1);
        cm.add(0, 1);
        // class b: 5 right, 5 as c
        for _ in 0..5 {
            cm.add(1, 1);
        }
        for _ in 0..5 {
            cm.add(1, 2);
        }
        // class c: all 10 right
        for _ in 0..10 {
            cm.add(2, 2);
        }
        cm
    }

    #[test]
    fn accuracy_and_total() {
        let cm = sample();
        assert_eq!(cm.total(), 30);
        assert!((cm.accuracy() - 23.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall() {
        let cm = sample();
        // a predicted 8 times, all correct.
        assert!((cm.precision(0) - 1.0).abs() < 1e-12);
        assert!((cm.recall(0) - 0.8).abs() < 1e-12);
        // b predicted 7 times (5 tp + 2 fp).
        assert!((cm.precision(1) - 5.0 / 7.0).abs() < 1e-12);
        assert!((cm.recall(1) - 0.5).abs() < 1e-12);
        // c predicted 15 times (10 tp + 5 fp).
        assert!((cm.precision(2) - 10.0 / 15.0).abs() < 1e-12);
        assert!((cm.recall(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f1_and_macro() {
        let cm = sample();
        let f1a = cm.f1(0);
        assert!((f1a - 2.0 * 1.0 * 0.8 / 1.8).abs() < 1e-12);
        assert!(cm.macro_precision() > 0.0 && cm.macro_precision() <= 1.0);
        assert!((cm.macro_recall() - (0.8 + 0.5 + 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total(), 60);
        assert!((a.accuracy() - 23.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let cm = ConfusionMatrix::new(vec!["a".into()]);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.precision(0), 0.0);
        assert_eq!(cm.recall(0), 0.0);
    }
}
