//! Gaussian Naive Bayes — one of the baselines the paper compared
//! against C4.5 (and found inferior on this workload).

use crate::dataset::Dataset;

/// Trained Gaussian NB model.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    /// log prior per class.
    log_prior: Vec<f64>,
    /// Per class, per feature: (mean, variance) or `None` if the class
    /// never observed the feature.
    params: Vec<Vec<Option<(f64, f64)>>>,
}

impl NaiveBayes {
    /// Fit on the given rows.
    pub fn fit(data: &Dataset, rows: &[usize]) -> Self {
        let nc = data.n_classes();
        let nf = data.n_features();
        let mut count = vec![0usize; nc];
        for &r in rows {
            count[data.y[r]] += 1;
        }
        let total: usize = count.iter().sum();
        let log_prior = count
            .iter()
            .map(|&c| (((c + 1) as f64) / ((total + nc) as f64)).ln())
            .collect();
        let mut params = vec![vec![None; nf]; nc];
        for (c, pc) in params.iter_mut().enumerate() {
            for (f, pf) in pc.iter_mut().enumerate() {
                let vals: Vec<f64> = rows
                    .iter()
                    .filter(|&&r| data.y[r] == c)
                    .map(|&r| data.x[r][f])
                    .filter(|v| !v.is_nan())
                    .collect();
                if vals.len() >= 2 {
                    let n = vals.len() as f64;
                    let mean = vals.iter().sum::<f64>() / n;
                    let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
                    *pf = Some((mean, var.max(1e-9)));
                }
            }
        }
        NaiveBayes { log_prior, params }
    }

    /// Predicted class for an instance (missing features are skipped).
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut best = 0;
        let mut best_ll = f64::NEG_INFINITY;
        for (c, prior) in self.log_prior.iter().enumerate() {
            let mut ll = *prior;
            for (f, &v) in x.iter().enumerate() {
                if v.is_nan() {
                    continue;
                }
                if let Some((mean, var)) = self.params[c][f] {
                    ll += -0.5
                        * ((v - mean).powi(2) / var + var.ln() + (2.0 * std::f64::consts::PI).ln());
                }
            }
            if ll > best_ll {
                best_ll = ll;
                best = c;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqd_simnet::rng::SimRng;

    #[test]
    fn separable_gaussians() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut d = Dataset::new(vec!["a".into(), "b".into()], vec!["x".into(), "y".into()]);
        for _ in 0..400 {
            let c = rng.index(2);
            d.push(
                vec![
                    rng.normal(c as f64 * 5.0, 1.0),
                    rng.normal(-(c as f64) * 3.0, 1.0),
                ],
                c,
            );
        }
        let rows: Vec<usize> = (0..d.len()).collect();
        let nb = NaiveBayes::fit(&d, &rows);
        let acc = rows
            .iter()
            .filter(|&&r| nb.predict(&d.x[r]) == d.y[r])
            .count() as f64
            / rows.len() as f64;
        assert!(acc > 0.97, "acc {acc}");
    }

    #[test]
    fn missing_features_skipped() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], vec!["x".into(), "y".into()]);
        for i in 0..50 {
            let c = i % 2;
            d.push(vec![c as f64 * 10.0, f64::NAN], c);
        }
        let rows: Vec<usize> = (0..d.len()).collect();
        let nb = NaiveBayes::fit(&d, &rows);
        assert_eq!(nb.predict(&[0.0, f64::NAN]), 0);
        assert_eq!(nb.predict(&[10.0, f64::NAN]), 1);
        // Only the missing feature present → falls back to priors, no
        // panic.
        let _ = nb.predict(&[f64::NAN, f64::NAN]);
    }

    #[test]
    fn prior_drives_empty_instance() {
        let mut d = Dataset::new(vec!["a".into()], vec!["rare".into(), "common".into()]);
        for _ in 0..5 {
            d.push(vec![0.0], 0);
        }
        for _ in 0..95 {
            d.push(vec![0.0], 1);
        }
        let rows: Vec<usize> = (0..d.len()).collect();
        let nb = NaiveBayes::fit(&d, &rows);
        assert_eq!(nb.predict(&[f64::NAN]), 1);
    }
}
