//! Out-of-core C4.5 training: fit a tree from a column source that is
//! **not** resident in memory.
//!
//! The in-memory engine ([`C45Trainer::fit`]) pre-sorts every feature
//! once and filters the sorted id sequences down the tree. That needs
//! the full column-major matrix plus one sorted id list per feature —
//! all resident. This module trades the pre-sort for a per-node
//! *gather*: for each (node, feature) pair the member rows' values are
//! streamed from a [`ColumnSource`] in fixed-size chunks, NaNs dropped,
//! and the `(value, id)` pairs sorted — in memory when they fit the
//! spill budget, via an external run-sort + k-way merge when they
//! don't. Because the sort key `(value.total_cmp, id)` is unique (ids
//! are distinct), the sorted sequence is *identical* to the in-memory
//! engine's filtered pre-sort no matter how the chunks or spill runs
//! fell, and the split sweep below replicates the in-memory
//! accumulation order step for step — so the trained tree is
//! bit-identical to [`C45Trainer::fit`] at any thread count, chunk
//! size, and spill budget. The equality is pinned by tests here and by
//! the `corpus-smoke` CI job diffing serialized models.
//!
//! Working memory is O(`n_rows`) for the label/weight vectors plus the
//! spill budget per concurrent gather — never O(`n_rows × n_features`).

use crate::dataset::Dataset;
use crate::dtree::{resolve_threads, C45Config, C45Trainer, DecisionTree, Node};
use crate::info::entropy_of_counts;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A feature-major view of a training set whose columns can be read
/// range-by-range. Implementations: [`MemColumnSource`] (tests,
/// benches) and the `.vqdc` readers in `vqd-core`.
///
/// `fill_column` returns the **raw** stored values; the engine itself
/// normalises `-0.0` to `+0.0` (exactly like the in-memory engine's
/// column copy), so sources must not.
pub trait ColumnSource {
    /// Number of rows.
    fn n_rows(&self) -> usize;
    /// Feature names, defining column indices.
    fn feature_names(&self) -> &[String];
    /// Class names, defining label indices.
    fn class_names(&self) -> &[String];
    /// Per-row class label (`< class_names().len()`).
    fn labels(&self) -> &[u32];
    /// Copy rows `start..start + out.len()` of column `feat` into `out`.
    fn fill_column(&self, feat: usize, start: usize, out: &mut [f64]) -> io::Result<()>;
    /// Borrow the raw f64 bits of column `feat` from row `start` up to
    /// some source-chosen boundary (a storage block, the column end),
    /// if the source can serve them zero-copy. `Ok(None)` — the
    /// default — means "use [`ColumnSource::fill_column`]"; a returned
    /// slice must be non-empty, start exactly at row `start`, and hold
    /// the identical bits `fill_column` would produce (the engine
    /// reads them via `f64::from_bits`, so trees stay bit-identical
    /// whichever path serves a window).
    fn borrow_cells(&self, _feat: usize, _start: usize) -> io::Result<Option<&[u64]>> {
        Ok(None)
    }
}

/// Forward read cursor over one column of a [`ColumnSource`]: serves
/// each row's value from a borrowed zero-copy window when the source
/// offers one, falling back to a `fill_column` chunk buffer when it
/// doesn't. Row ids arrive in ascending order (the engine guarantees
/// it), so every window miss is a forward refill.
struct ColCursor<'a, S: ColumnSource + ?Sized> {
    src: &'a S,
    feat: usize,
    n_rows: usize,
    buf: Vec<f64>,
    borrowed: Option<&'a [u64]>,
    lo: usize,
    hi: usize,
}

impl<'a, S: ColumnSource + ?Sized> ColCursor<'a, S> {
    fn new(src: &'a S, feat: usize, chunk_rows: usize) -> ColCursor<'a, S> {
        ColCursor {
            src,
            feat,
            n_rows: src.n_rows(),
            buf: vec![0.0f64; chunk_rows.max(1)],
            borrowed: None,
            lo: 0,
            hi: 0,
        }
    }

    /// The raw stored value of row `ci` (no normalisation — the engine
    /// does that, identically for both serving paths).
    fn value(&mut self, ci: usize) -> io::Result<f64> {
        if ci < self.lo || ci >= self.hi {
            self.refill(ci)?;
        }
        Ok(match self.borrowed {
            Some(cells) => f64::from_bits(cells[ci - self.lo]),
            None => self.buf[ci - self.lo],
        })
    }

    fn refill(&mut self, ci: usize) -> io::Result<()> {
        self.borrowed = None;
        if let Some(cells) = self.src.borrow_cells(self.feat, ci)? {
            if !cells.is_empty() {
                self.lo = ci;
                self.hi = ci + cells.len();
                self.borrowed = Some(cells);
                return Ok(());
            }
        }
        let len = self.buf.len().min(self.n_rows - ci);
        self.src.fill_column(self.feat, ci, &mut self.buf[..len])?;
        self.lo = ci;
        self.hi = ci + len;
        Ok(())
    }
}

/// In-memory [`ColumnSource`] over a [`Dataset`] — the oracle the
/// streaming path is tested against, and a convenience for callers
/// that want the streaming API on resident data.
pub struct MemColumnSource {
    features: Vec<String>,
    classes: Vec<String>,
    y: Vec<u32>,
    cols: Vec<Vec<f64>>,
}

impl MemColumnSource {
    /// Column-major copy of `data` (raw values, no normalisation).
    pub fn new(data: &Dataset) -> MemColumnSource {
        let nf = data.n_features();
        MemColumnSource {
            features: data.features.clone(),
            classes: data.classes.clone(),
            y: data.y.iter().map(|&c| c as u32).collect(),
            cols: (0..nf)
                .map(|j| data.x.iter().map(|row| row[j]).collect())
                .collect(),
        }
    }
}

impl ColumnSource for MemColumnSource {
    fn n_rows(&self) -> usize {
        self.y.len()
    }
    fn feature_names(&self) -> &[String] {
        &self.features
    }
    fn class_names(&self) -> &[String] {
        &self.classes
    }
    fn labels(&self) -> &[u32] {
        &self.y
    }
    fn fill_column(&self, feat: usize, start: usize, out: &mut [f64]) -> io::Result<()> {
        out.copy_from_slice(&self.cols[feat][start..start + out.len()]);
        Ok(())
    }
}

/// Knobs of the streaming fit. Neither affects the trained tree — only
/// wall time and peak memory.
#[derive(Debug, Clone)]
pub struct StreamFitConfig {
    /// Rows per column read (the I/O window of a gather).
    pub chunk_rows: usize,
    /// Maximum `(value, id)` pairs held in memory per gather before
    /// the external sort spills a run (12 bytes per pair on disk).
    /// Floored at `n_rows / 64` so the k-way merge never holds more
    /// than 64 run file descriptors open per gather.
    pub spill_pairs: usize,
    /// Directory for spill runs (default: the OS temp dir).
    pub tmp_dir: Option<PathBuf>,
}

impl Default for StreamFitConfig {
    fn default() -> StreamFitConfig {
        StreamFitConfig {
            chunk_rows: 64 * 1024,
            spill_pairs: 4 * 1024 * 1024,
            tmp_dir: None,
        }
    }
}

/// What the streaming fit did, for benches and capacity planning.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamFitStats {
    /// Sorted runs spilled to disk across all gathers.
    pub spill_runs: u64,
    /// Bytes written to spill files.
    pub spilled_bytes: u64,
    /// Largest number of pairs simultaneously resident in one gather.
    pub peak_gather_pairs: u64,
}

/// Winning candidate of one feature's streamed sweep (mirror of the
/// in-memory engine's `FeatSplit`).
#[derive(Debug, Clone, Copy)]
struct SFeatSplit {
    ratio: f64,
    thr: f64,
    gain: f64,
    lo_w: f64,
    known_w: f64,
}

/// Per-worker sweep buffers (mirror of the in-memory `Scratch`, minus
/// the gather vec — the streamed sweep reads from the pair cursor).
struct SScratch {
    known_dist: Vec<f64>,
    left: Vec<f64>,
    right: Vec<f64>,
    known_dist_i: Vec<u32>,
    left_i: Vec<u32>,
}

impl SScratch {
    fn new(n_classes: usize) -> SScratch {
        SScratch {
            known_dist: vec![0.0; n_classes],
            left: vec![0.0; n_classes],
            right: vec![0.0; n_classes],
            known_dist_i: vec![0; n_classes],
            left_i: vec![0; n_classes],
        }
    }
}

const PAIR_BYTES: usize = 12; // 8B value bits LE + 4B row id LE

/// Process-global spill-file sequence. Spill names must be unique
/// across every concurrent `fit_streaming` in the process — separate
/// fits default to the same OS temp dir, so a per-engine counter
/// would have two fits create/truncate/delete each other's run files.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Ceiling on spilled runs per gather, and therefore on file
/// descriptors the k-way merge holds open at once. `fit_streaming`
/// floors the spill budget at `n_rows / MAX_SPILL_FANIN` so a
/// pathologically small `--spill-pairs` on a huge corpus cannot
/// produce hundreds of thousands of runs and die on EMFILE.
const MAX_SPILL_FANIN: usize = 64;

/// A gather's sorted `(value, id)` pairs: fully in memory, or as
/// sorted runs in a spill file merged on demand. Either way,
/// [`SortedPairs::cursor`] yields the pairs in `(value.total_cmp, id)`
/// order — the same unique total order, so byte-identical sweeps.
enum SortedPairs {
    Mem(Vec<(f64, u32)>),
    Spilled {
        path: PathBuf,
        runs: Vec<(u64, usize)>, // (byte offset, pair count)
        len: usize,
    },
}

impl SortedPairs {
    fn len(&self) -> usize {
        match self {
            SortedPairs::Mem(v) => v.len(),
            SortedPairs::Spilled { len, .. } => *len,
        }
    }

    fn cursor(&self) -> io::Result<PairCursor<'_>> {
        match self {
            SortedPairs::Mem(v) => Ok(PairCursor::Mem(v.iter())),
            SortedPairs::Spilled { path, runs, .. } => {
                let mut readers = Vec::with_capacity(runs.len());
                let mut heap = std::collections::BinaryHeap::with_capacity(runs.len());
                for (ri, &(off, count)) in runs.iter().enumerate() {
                    let mut f = File::open(path)?;
                    f.seek(SeekFrom::Start(off))?;
                    let mut r = RunReader {
                        f: BufReader::with_capacity(64 * 1024, f),
                        remaining: count,
                    };
                    if let Some((key, id)) = r.next()? {
                        heap.push(std::cmp::Reverse((key, id, ri)));
                    }
                    readers.push(r);
                }
                Ok(PairCursor::Merge { readers, heap })
            }
        }
    }
}

impl Drop for SortedPairs {
    fn drop(&mut self) {
        if let SortedPairs::Spilled { path, .. } = self {
            let _ = std::fs::remove_file(&*path);
        }
    }
}

/// Order-preserving encode of an f64 into a u64: `enc(a) < enc(b)`
/// iff `a.total_cmp(&b) == Less`. Used as the heap key so the k-way
/// merge compares plain integers.
fn ord_key(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b ^ (1 << 63)
    }
}

fn ord_key_value(key: u64) -> f64 {
    let bits = if key >> 63 == 1 {
        key ^ (1 << 63)
    } else {
        !key
    };
    f64::from_bits(bits)
}

struct RunReader {
    f: BufReader<File>,
    remaining: usize,
}

impl RunReader {
    /// Next pair of this run as `(order key, id)`, or `None` at end.
    fn next(&mut self) -> io::Result<Option<(u64, u32)>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let mut rec = [0u8; PAIR_BYTES];
        self.f.read_exact(&mut rec)?;
        let bits = u64::from_le_bytes([
            rec[0], rec[1], rec[2], rec[3], rec[4], rec[5], rec[6], rec[7],
        ]);
        let id = u32::from_le_bytes([rec[8], rec[9], rec[10], rec[11]]);
        Ok(Some((ord_key(f64::from_bits(bits)), id)))
    }
}

/// Streaming iterator over a [`SortedPairs`] in sorted order.
enum PairCursor<'a> {
    Mem(std::slice::Iter<'a, (f64, u32)>),
    Merge {
        readers: Vec<RunReader>,
        heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32, usize)>>,
    },
}

impl PairCursor<'_> {
    fn next(&mut self) -> io::Result<Option<(f64, u32)>> {
        match self {
            PairCursor::Mem(it) => Ok(it.next().copied()),
            PairCursor::Merge { readers, heap } => {
                let Some(std::cmp::Reverse((key, id, ri))) = heap.pop() else {
                    return Ok(None);
                };
                if let Some((k2, id2)) = readers[ri].next()? {
                    heap.push(std::cmp::Reverse((k2, id2, ri)));
                }
                Ok(Some((ord_key_value(key), id)))
            }
        }
    }
}

/// An open spill file: path, writer, `(offset, pair_count)` per
/// flushed run, and total bytes written so far.
type SpillFile = (PathBuf, BufWriter<File>, Vec<(u64, usize)>, u64);

/// Accumulates a gather's pairs, spilling sorted runs past the budget.
struct PairSink<'a> {
    budget: usize,
    buf: Vec<(f64, u32)>,
    spill: Option<SpillFile>,
    tmp_dir: &'a std::path::Path,
    stats_runs: &'a AtomicU64,
    stats_bytes: &'a AtomicU64,
    stats_peak: &'a AtomicU64,
}

impl<'a> PairSink<'a> {
    fn new(
        budget: usize,
        tmp_dir: &'a std::path::Path,
        stats_runs: &'a AtomicU64,
        stats_bytes: &'a AtomicU64,
        stats_peak: &'a AtomicU64,
    ) -> PairSink<'a> {
        PairSink {
            budget: budget.max(16),
            buf: Vec::new(),
            spill: None,
            tmp_dir,
            stats_runs,
            stats_bytes,
            stats_peak,
        }
    }

    fn push(&mut self, v: f64, id: u32) -> io::Result<()> {
        self.buf.push((v, id));
        if self.buf.len() >= self.budget {
            self.flush_run()?;
        }
        Ok(())
    }

    fn flush_run(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.stats_peak
            .fetch_max(self.buf.len() as u64, Ordering::Relaxed);
        self.buf
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        if self.spill.is_none() {
            let n = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
            let path = self
                .tmp_dir
                .join(format!("vqd-spill-{}-{}.run", std::process::id(), n));
            let f = File::create(&path)?;
            self.spill = Some((path, BufWriter::with_capacity(256 * 1024, f), Vec::new(), 0));
        }
        let (_, w, runs, written) = self.spill.as_mut().unwrap_or_else(|| unreachable!());
        runs.push((*written, self.buf.len()));
        for &(v, id) in &self.buf {
            let mut rec = [0u8; PAIR_BYTES];
            rec[..8].copy_from_slice(&v.to_bits().to_le_bytes());
            rec[8..].copy_from_slice(&id.to_le_bytes());
            w.write_all(&rec)?;
        }
        *written += (self.buf.len() * PAIR_BYTES) as u64;
        self.stats_runs.fetch_add(1, Ordering::Relaxed);
        self.stats_bytes
            .fetch_add((self.buf.len() * PAIR_BYTES) as u64, Ordering::Relaxed);
        self.buf.clear();
        Ok(())
    }

    fn finish(mut self) -> io::Result<SortedPairs> {
        if self.spill.is_none() {
            self.stats_peak
                .fetch_max(self.buf.len() as u64, Ordering::Relaxed);
            self.buf
                .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            return Ok(SortedPairs::Mem(std::mem::take(&mut self.buf)));
        }
        self.flush_run()?;
        let (path, w, runs, _) = self.spill.take().unwrap_or_else(|| unreachable!());
        w.into_inner().map_err(|e| e.into_error())?.sync_data().ok();
        let len = runs.iter().map(|&(_, c)| c).sum();
        Ok(SortedPairs::Spilled { path, runs, len })
    }
}

impl Drop for PairSink<'_> {
    fn drop(&mut self) {
        if let Some((path, _, _, _)) = self.spill.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Streaming training state shared by every node of one
/// `fit_streaming` call. Labels are resident (`4·n_rows` bytes), as
/// are the per-row weight scratch and the member-row lists down one
/// root-to-leaf path — column values never are.
struct StreamEngine<'a, S: ColumnSource + Sync> {
    cfg: C45Config,
    src: &'a S,
    y: &'a [u32],
    n_classes: usize,
    threads: usize,
    chunk_rows: usize,
    spill_pairs: usize,
    tmp_dir: PathBuf,
    stat_runs: AtomicU64,
    stat_bytes: AtomicU64,
    stat_peak: AtomicU64,
}

impl<S: ColumnSource + Sync> StreamEngine<'_, S> {
    fn dist_of(&self, rows: &[(u32, f64)]) -> Vec<f64> {
        let mut d = vec![0.0; self.n_classes];
        for &(c, w) in rows {
            d[self.y[c as usize] as usize] += w;
        }
        d
    }

    /// Stream column `feat` over the member rows (ascending id ⇒
    /// forward reads), drop NaNs, normalise `-0.0`, and sort. Windows
    /// come zero-copy from the source when it can lend them
    /// ([`ColumnSource::borrow_cells`]), via chunk copies otherwise.
    fn gather(&self, feat: usize, rows: &[(u32, f64)]) -> io::Result<SortedPairs> {
        let mut sink = PairSink::new(
            self.spill_pairs,
            &self.tmp_dir,
            &self.stat_runs,
            &self.stat_bytes,
            &self.stat_peak,
        );
        let mut cur = ColCursor::new(self.src, feat, self.chunk_rows);
        for &(c, _) in rows {
            let v = cur.value(c as usize)?;
            if v.is_nan() {
                continue;
            }
            sink.push(if v == 0.0 { 0.0 } else { v }, c)?;
        }
        sink.finish()
    }

    /// Mirror of the in-memory engine's `eval_feature`, consuming the
    /// sorted pairs from a cursor instead of a resident id list. The
    /// pre-pass and both sweep variants accumulate in the identical
    /// order over the identical sequence, so every float is the same.
    fn eval_pairs(
        &self,
        pairs: &SortedPairs,
        weights: &[f64],
        total: f64,
        scratch: &mut SScratch,
    ) -> io::Result<Option<SFeatSplit>> {
        let len = pairs.len();
        if len < 4 {
            return Ok(None);
        }
        for d in scratch.known_dist.iter_mut() {
            *d = 0.0;
        }
        let mut known_w = 0.0;
        let mut unit_weights = true;
        let mut cur = pairs.cursor()?;
        while let Some((_, c)) = cur.next()? {
            let ci = c as usize;
            let (y, w) = (self.y[ci], weights[ci]);
            known_w += w;
            unit_weights &= w == 1.0;
            scratch.known_dist[y as usize] += w;
        }
        if known_w < 2.0 * self.cfg.min_leaf {
            return Ok(None);
        }
        let miss_w = (total - known_w).max(0.0);
        let frac_known = known_w / total;
        let h = entropy_of_counts(&scratch.known_dist);
        if h == 0.0 {
            return Ok(None);
        }
        let mut candidates = 0u32;
        let mut feat_best: Option<(f64, f64, f64)> = None; // (thr, gain, lo_w)
        let min_leaf = self.cfg.min_leaf;
        let mut sweep = pairs.cursor()?;
        let mut cur_pair = sweep.next()?;
        if unit_weights && known_w < crate::info::LOG_TABLE_LEN as f64 {
            let (klogk, logk) = crate::info::log_tables();
            for (li, &d) in scratch.known_dist_i.iter_mut().zip(&scratch.known_dist) {
                *li = d as u32;
            }
            for l in scratch.left_i.iter_mut() {
                *l = 0;
            }
            let known_n = len as u32;
            let mut lo_n = 0u32;
            while let Some((v, c)) = cur_pair {
                let Some((v_next, c_next)) = sweep.next()? else {
                    break;
                };
                cur_pair = Some((v_next, c_next));
                let y = self.y[c as usize];
                scratch.left_i[y as usize] += 1;
                lo_n += 1;
                if v == v_next {
                    continue;
                }
                candidates += 1;
                let left_w = lo_n as f64;
                let right_w = known_w - left_w;
                if left_w < min_leaf || right_w < min_leaf {
                    continue;
                }
                let (mut s_l, mut s_r) = (0.0, 0.0);
                let (mut nz_l, mut nz_r) = (0u32, 0u32);
                for (&lc_u, &kd_u) in scratch.left_i.iter().zip(&scratch.known_dist_i) {
                    let lc = lc_u as usize;
                    let rc = (kd_u - lc_u) as usize;
                    s_l += klogk[lc];
                    s_r += klogk[rc];
                    nz_l += (lc > 0) as u32;
                    nz_r += (rc > 0) as u32;
                }
                let h_l = if nz_l <= 1 {
                    0.0
                } else {
                    logk[lo_n as usize] - s_l / left_w
                };
                let h_r = if nz_r <= 1 {
                    0.0
                } else {
                    logk[(known_n - lo_n) as usize] - s_r / right_w
                };
                let h_split = (left_w * h_l + right_w * h_r) / known_w;
                let gain = frac_known * (h - h_split);
                if feat_best
                    .map(|(_, best_g, _)| gain > best_g)
                    .unwrap_or(true)
                {
                    feat_best = Some(((v + v_next) / 2.0, gain, left_w));
                }
            }
        } else {
            for l in scratch.left.iter_mut() {
                *l = 0.0;
            }
            let mut left_w = 0.0;
            while let Some((v, c)) = cur_pair {
                let Some((v_next, c_next)) = sweep.next()? else {
                    break;
                };
                cur_pair = Some((v_next, c_next));
                let ci = c as usize;
                let (y, w) = (self.y[ci], weights[ci]);
                scratch.left[y as usize] += w;
                left_w += w;
                if v == v_next {
                    continue;
                }
                candidates += 1;
                let right_w = known_w - left_w;
                if left_w < self.cfg.min_leaf || right_w < self.cfg.min_leaf {
                    continue;
                }
                for (r, (&t, &l)) in scratch
                    .right
                    .iter_mut()
                    .zip(scratch.known_dist.iter().zip(&scratch.left))
                {
                    *r = t - l;
                }
                let h_split = (left_w * entropy_of_counts(&scratch.left)
                    + right_w * entropy_of_counts(&scratch.right))
                    / known_w;
                let gain = frac_known * (h - h_split);
                if feat_best
                    .map(|(_, best_g, _)| gain > best_g)
                    .unwrap_or(true)
                {
                    feat_best = Some(((v + v_next) / 2.0, gain, left_w));
                }
            }
        }
        let Some((thr, mut gain, lo_w)) = feat_best else {
            return Ok(None);
        };
        if candidates == 0 {
            return Ok(None);
        }
        gain -= (candidates as f64).log2() / len as f64;
        if gain <= 1e-9 {
            return Ok(None);
        }
        let hi_w = known_w - lo_w;
        let si = entropy_of_counts(&[lo_w, hi_w, miss_w]);
        if si <= 1e-9 {
            return Ok(None);
        }
        Ok(Some(SFeatSplit {
            ratio: gain / si,
            thr,
            gain,
            lo_w,
            known_w,
        }))
    }

    /// Best split across all features; fan-out mirrors the in-memory
    /// engine (index-ordered merge, strict `>`, ties to the lowest
    /// feature), so the winner is thread-count independent.
    #[allow(clippy::type_complexity)]
    fn best_split(
        &self,
        rows: &[(u32, f64)],
        weights: &[f64],
        total: f64,
        scratch: &mut SScratch,
    ) -> io::Result<Option<(usize, f64, f64, f64)>> {
        let nf = self.src.feature_names().len();
        let evals: Vec<Option<SFeatSplit>> =
            if self.threads > 1 && nf >= 2 && rows.len() * nf * self.n_classes > 64 * 1024 {
                let next = AtomicUsize::new(0);
                let slots: Vec<std::sync::Mutex<io::Result<Option<SFeatSplit>>>> =
                    (0..nf).map(|_| std::sync::Mutex::new(Ok(None))).collect();
                std::thread::scope(|s| {
                    for _ in 0..self.threads.min(nf) {
                        s.spawn(|| {
                            let mut local = SScratch::new(self.n_classes);
                            loop {
                                let j = next.fetch_add(1, Ordering::Relaxed);
                                if j >= nf {
                                    break;
                                }
                                let r = self.gather(j, rows).and_then(|pairs| {
                                    self.eval_pairs(&pairs, weights, total, &mut local)
                                });
                                *slots[j]
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner) = r;
                            }
                        });
                    }
                });
                let mut out = Vec::with_capacity(nf);
                for m in slots {
                    out.push(
                        m.into_inner()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)?,
                    );
                }
                out
            } else {
                let mut out = Vec::with_capacity(nf);
                for j in 0..nf {
                    let pairs = self.gather(j, rows)?;
                    out.push(self.eval_pairs(&pairs, weights, total, scratch)?);
                }
                out
            };
        let mut best: Option<(usize, f64, f64, f64)> = None;
        let mut best_ratio = 0.0f64;
        for (feat, eval) in evals.into_iter().enumerate() {
            let Some(e) = eval else { continue };
            if e.ratio > best_ratio {
                best_ratio = e.ratio;
                best = Some((feat, e.thr, e.gain * total, e.lo_w / e.known_w));
            }
        }
        Ok(best)
    }

    fn build(
        &self,
        rows: Vec<(u32, f64)>,
        depth: usize,
        weights: &mut [f64],
        scratch: &mut SScratch,
    ) -> io::Result<Node> {
        let dist = self.dist_of(&rows);
        let total: f64 = dist.iter().sum();
        let pure = dist.iter().filter(|&&w| w > 0.0).count() <= 1;
        if pure || total < 2.0 * self.cfg.min_leaf || depth >= self.cfg.max_depth {
            return Ok(Node::Leaf { dist });
        }
        for &(c, w) in &rows {
            weights[c as usize] = w;
        }
        let best = self.best_split(&rows, weights, total, scratch);
        for &(c, _) in &rows {
            weights[c as usize] = 0.0;
        }
        let Some((feat, thr, gain_w, lo_frac)) = best? else {
            return Ok(Node::Leaf { dist });
        };
        // Partition in member order (ascending id is preserved, so the
        // children's gathers stay forward reads).
        let mut lo_rows = Vec::with_capacity(rows.len());
        let mut hi_rows = Vec::with_capacity(rows.len());
        let mut cur = ColCursor::new(self.src, feat, self.chunk_rows);
        for &(c, w) in &rows {
            let raw = cur.value(c as usize)?;
            let v = if raw == 0.0 { 0.0 } else { raw };
            if v.is_nan() {
                if lo_frac > 0.0 {
                    lo_rows.push((c, w * lo_frac));
                }
                if lo_frac < 1.0 {
                    hi_rows.push((c, w * (1.0 - lo_frac)));
                }
            } else if v < thr {
                lo_rows.push((c, w));
            } else {
                hi_rows.push((c, w));
            }
        }
        drop(cur);
        drop(rows);
        if lo_rows.is_empty() || hi_rows.is_empty() {
            return Ok(Node::Leaf { dist });
        }
        let lo = Box::new(self.build(lo_rows, depth + 1, weights, scratch)?);
        let hi = Box::new(self.build(hi_rows, depth + 1, weights, scratch)?);
        Ok(Node::Split {
            feat,
            thr,
            lo,
            hi,
            lo_frac,
            dist,
            gain_w,
        })
    }
}

impl C45Trainer {
    /// Train on every row of `src`, streaming columns instead of
    /// materialising the dataset. Bit-identical to [`C45Trainer::fit`]
    /// over the same rows at any thread count, `chunk_rows`, and
    /// `spill_pairs` (test-enforced).
    pub fn fit_streaming<S: ColumnSource + Sync>(
        &self,
        src: &S,
        opts: &StreamFitConfig,
    ) -> io::Result<DecisionTree> {
        self.fit_streaming_with_stats(src, opts).map(|(t, _)| t)
    }

    /// [`C45Trainer::fit_streaming`] plus spill/memory statistics.
    pub fn fit_streaming_with_stats<S: ColumnSource + Sync>(
        &self,
        src: &S,
        opts: &StreamFitConfig,
    ) -> io::Result<(DecisionTree, StreamFitStats)> {
        let n = src.n_rows();
        assert!(n < u32::MAX as usize, "row count exceeds u32 range");
        let y = src.labels();
        assert_eq!(y.len(), n, "label count must match row count");
        let n_classes = src.class_names().len();
        let engine = StreamEngine {
            cfg: self.cfg,
            src,
            y,
            n_classes,
            threads: resolve_threads(self.cfg.threads),
            chunk_rows: opts.chunk_rows.max(1),
            // Floor the budget so no gather (at most n pairs) spills
            // more than MAX_SPILL_FANIN runs — the merge opens one fd
            // per run. The floor never changes the tree, only memory.
            spill_pairs: opts.spill_pairs.max(n.div_ceil(MAX_SPILL_FANIN)),
            tmp_dir: opts.tmp_dir.clone().unwrap_or_else(std::env::temp_dir),
            stat_runs: AtomicU64::new(0),
            stat_bytes: AtomicU64::new(0),
            stat_peak: AtomicU64::new(0),
        };
        let root_rows: Vec<(u32, f64)> = (0..n as u32).map(|c| (c, 1.0)).collect();
        let mut weights = vec![0.0; n];
        let mut scratch = SScratch::new(n_classes);
        let mut root = engine.build(root_rows, 0, &mut weights, &mut scratch)?;
        if !self.cfg.unpruned {
            crate::dtree::prune(&mut root, self.cfg.cf);
        }
        let stats = StreamFitStats {
            spill_runs: engine.stat_runs.load(Ordering::Relaxed),
            spilled_bytes: engine.stat_bytes.load(Ordering::Relaxed),
            peak_gather_pairs: engine.stat_peak.load(Ordering::Relaxed),
        };
        Ok((
            DecisionTree::from_parts(
                root,
                n_classes,
                src.feature_names().to_vec(),
                src.class_names().to_vec(),
            ),
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    /// Deterministic synthetic corpus with NaNs (missing values force
    /// the weighted sweep below the root), `-0.0`, and repeated values.
    fn synth(n: usize) -> Dataset {
        let classes = vec!["a".into(), "b".into(), "c".into()];
        let mut b = DatasetBuilder::new(classes);
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..n {
            let r1 = rng();
            let r2 = rng();
            let f0 = (r1 % 17) as f64 / 4.0 - 2.0;
            let f0 = if f0 == 0.0 && r1 % 2 == 0 { -0.0 } else { f0 };
            let f1 = if r2 % 5 == 0 {
                f64::NAN
            } else {
                (r2 % 101) as f64 / 10.0
            };
            let f2 = ((r1 >> 8) % 3) as f64;
            let cls = if f0 > 0.5 && !f1.is_nan() && f1 < 5.0 {
                0
            } else if f2 > 1.0 {
                1
            } else {
                (i % 3).min(2)
            };
            b.push(
                &[
                    ("wifi.phy.rssi".to_string(), f0),
                    ("wifi.tcp.retx".to_string(), f1),
                    ("dev.cpu.load".to_string(), f2),
                ],
                cls,
            );
        }
        b.build()
    }

    #[test]
    fn streaming_fit_bit_identical_to_in_memory() {
        let data = synth(240);
        let rows: Vec<usize> = (0..data.len()).collect();
        let src = MemColumnSource::new(&data);
        for threads in [1usize, 2, 3] {
            let trainer = C45Trainer {
                cfg: C45Config {
                    threads,
                    ..C45Config::default()
                },
            };
            let want = trainer.fit(&data, &rows).serialize();
            for chunk_rows in [1usize, 7, 64 * 1024] {
                for spill_pairs in [16usize, 1 << 20] {
                    let opts = StreamFitConfig {
                        chunk_rows,
                        spill_pairs,
                        tmp_dir: None,
                    };
                    let got = trainer
                        .fit_streaming(&src, &opts)
                        .unwrap_or_else(|e| panic!("fit_streaming failed: {e}"))
                        .serialize();
                    assert_eq!(
                        got, want,
                        "tree mismatch at threads={threads} chunk={chunk_rows} spill={spill_pairs}"
                    );
                }
            }
        }
    }

    /// A source that lends zero-copy bit windows for some columns and
    /// some offsets only — odd window lengths, borrow refusals on one
    /// feature — so both serving paths interleave within one fit.
    struct PartialBorrowSource {
        inner: MemColumnSource,
        bits: Vec<Vec<u64>>,
        window: usize,
    }

    impl PartialBorrowSource {
        fn new(data: &Dataset, window: usize) -> PartialBorrowSource {
            let inner = MemColumnSource::new(data);
            let nf = data.n_features();
            let bits = (0..nf)
                .map(|j| data.x.iter().map(|row| row[j].to_bits()).collect())
                .collect();
            PartialBorrowSource {
                inner,
                bits,
                window,
            }
        }
    }

    impl ColumnSource for PartialBorrowSource {
        fn n_rows(&self) -> usize {
            self.inner.n_rows()
        }
        fn feature_names(&self) -> &[String] {
            self.inner.feature_names()
        }
        fn class_names(&self) -> &[String] {
            self.inner.class_names()
        }
        fn labels(&self) -> &[u32] {
            self.inner.labels()
        }
        fn fill_column(&self, feat: usize, start: usize, out: &mut [f64]) -> io::Result<()> {
            self.inner.fill_column(feat, start, out)
        }
        fn borrow_cells(&self, feat: usize, start: usize) -> io::Result<Option<&[u64]>> {
            // Feature 1 never lends; others lend windows of `window`
            // cells except when start lands on a multiple of 3, which
            // forces the cursor back to fill_column mid-column.
            if feat == 1 || start.is_multiple_of(3) {
                return Ok(None);
            }
            let col = &self.bits[feat];
            let end = (start + self.window).min(col.len());
            Ok(Some(&col[start..end]))
        }
    }

    #[test]
    fn borrowed_windows_train_the_identical_tree() {
        let data = synth(240);
        let rows: Vec<usize> = (0..data.len()).collect();
        let trainer = C45Trainer::default();
        let want = trainer.fit(&data, &rows).serialize();
        for window in [1usize, 5, 64] {
            let src = PartialBorrowSource::new(&data, window);
            for chunk_rows in [1usize, 7, 64 * 1024] {
                let opts = StreamFitConfig {
                    chunk_rows,
                    spill_pairs: 64,
                    tmp_dir: None,
                };
                let got = trainer
                    .fit_streaming(&src, &opts)
                    .unwrap_or_else(|e| panic!("fit_streaming failed: {e}"))
                    .serialize();
                assert_eq!(
                    got, want,
                    "tree mismatch at window={window} chunk={chunk_rows}"
                );
            }
        }
    }

    #[test]
    fn tiny_spill_budget_actually_spills() {
        let data = synth(200);
        let src = MemColumnSource::new(&data);
        let trainer = C45Trainer::default();
        let (_, stats) = trainer
            .fit_streaming_with_stats(
                &src,
                &StreamFitConfig {
                    chunk_rows: 8,
                    spill_pairs: 16,
                    tmp_dir: None,
                },
            )
            .unwrap_or_else(|e| panic!("fit_streaming failed: {e}"));
        assert!(stats.spill_runs > 0, "expected external-sort runs");
        assert!(stats.spilled_bytes > 0);
        assert!(stats.peak_gather_pairs <= 16);
    }

    /// Regression: spill file names must be unique process-wide, not
    /// per engine. Two concurrent spilling fits sharing one tmp dir
    /// used to collide on `vqd-spill-<pid>-0.run` and read each
    /// other's runs — wrong trees, panics, or I/O errors.
    #[test]
    fn concurrent_spilling_fits_do_not_collide() {
        let data = synth(220);
        let rows: Vec<usize> = (0..data.len()).collect();
        let src = MemColumnSource::new(&data);
        let trainer = C45Trainer::default();
        let want = trainer.fit(&data, &rows).serialize();
        let opts = StreamFitConfig {
            chunk_rows: 8,
            spill_pairs: 1, // every gather spills (floored to 16 pairs/run)
            tmp_dir: None,  // shared OS temp dir — the collision surface
        };
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        trainer
                            .fit_streaming_with_stats(&src, &opts)
                            .unwrap_or_else(|e| panic!("concurrent fit failed: {e}"))
                    })
                })
                .collect();
            for h in handles {
                let (tree, stats) = h.join().unwrap_or_else(|_| panic!("fit thread panicked"));
                assert!(stats.spill_runs > 0, "test must exercise the spill path");
                assert_eq!(tree.serialize(), want);
            }
        });
    }

    #[test]
    fn unpruned_and_deep_configs_agree() {
        let data = synth(150);
        let rows: Vec<usize> = (0..data.len()).collect();
        let src = MemColumnSource::new(&data);
        let trainer = C45Trainer {
            cfg: C45Config {
                unpruned: true,
                min_leaf: 1.0,
                ..C45Config::default()
            },
        };
        let want = trainer.fit(&data, &rows).serialize();
        let got = trainer
            .fit_streaming(&src, &StreamFitConfig::default())
            .unwrap_or_else(|e| panic!("fit_streaming failed: {e}"))
            .serialize();
        assert_eq!(got, want);
    }
}
