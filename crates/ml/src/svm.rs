//! Linear SVM (Pegasos SGD, one-vs-rest) — the second baseline the
//! paper evaluated against C4.5.
//!
//! Features are standardised per column at fit time; missing values
//! map to the column mean (zero after standardisation).

use vqd_simnet::rng::SimRng;

use crate::dataset::Dataset;

/// Training configuration.
#[derive(Debug, Clone, Copy)]
pub struct SvmConfig {
    /// Regularisation parameter λ of Pegasos.
    pub lambda: f64,
    /// SGD epochs over the training set.
    pub epochs: usize,
    /// RNG seed for sampling order.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            lambda: 1e-4,
            epochs: 20,
            seed: 7,
        }
    }
}

/// Trained one-vs-rest linear SVM.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Per-class weight vector (plus bias as the final element).
    w: Vec<Vec<f64>>,
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl LinearSvm {
    /// Fit on the given rows.
    pub fn fit(data: &Dataset, rows: &[usize], cfg: SvmConfig) -> Self {
        let nf = data.n_features();
        let nc = data.n_classes();
        // Column standardisation over known values.
        let mut mean = vec![0.0; nf];
        let mut std = vec![1.0; nf];
        for f in 0..nf {
            let vals: Vec<f64> = rows
                .iter()
                .map(|&r| data.x[r][f])
                .filter(|v| !v.is_nan())
                .collect();
            if vals.len() >= 2 {
                let m = vals.iter().sum::<f64>() / vals.len() as f64;
                let v = vals.iter().map(|x| (x - m).powi(2)).sum::<f64>() / vals.len() as f64;
                mean[f] = m;
                std[f] = v.sqrt().max(1e-9);
            }
        }
        let feat = |r: usize, f: usize| -> f64 {
            let v = data.x[r][f];
            if v.is_nan() {
                0.0
            } else {
                (v - mean[f]) / std[f]
            }
        };
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let mut w = vec![vec![0.0; nf + 1]; nc];
        let mut t = 1u64;
        for _ in 0..cfg.epochs {
            for _ in 0..rows.len() {
                let r = rows[rng.index(rows.len())];
                let eta = 1.0 / (cfg.lambda * t as f64);
                for (c, wc) in w.iter_mut().enumerate() {
                    let y = if data.y[r] == c { 1.0 } else { -1.0 };
                    let mut score = wc[nf];
                    for (f, &wv) in wc[..nf].iter().enumerate() {
                        score += wv * feat(r, f);
                    }
                    // λ-shrink then hinge step.
                    for v in wc.iter_mut() {
                        *v *= 1.0 - eta * cfg.lambda;
                    }
                    if y * score < 1.0 {
                        for (f, wv) in wc[..nf].iter_mut().enumerate() {
                            *wv += eta * y * feat(r, f);
                        }
                        wc[nf] += eta * y;
                    }
                }
                t += 1;
            }
        }
        LinearSvm { w, mean, std }
    }

    /// Predicted class (highest decision value).
    pub fn predict(&self, x: &[f64]) -> usize {
        let nf = self.mean.len();
        let mut best = 0;
        let mut best_s = f64::NEG_INFINITY;
        for (c, wc) in self.w.iter().enumerate() {
            let mut s = wc[nf];
            for f in 0..nf {
                let v = x[f];
                let z = if v.is_nan() {
                    0.0
                } else {
                    (v - self.mean[f]) / self.std[f]
                };
                s += wc[f] * z;
            }
            if s > best_s {
                best_s = s;
                best = c;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearly_separable() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut d = Dataset::new(vec!["a".into(), "b".into()], vec!["n".into(), "p".into()]);
        for _ in 0..500 {
            let c = rng.index(2);
            let a = rng.normal(if c == 1 { 3.0 } else { -3.0 }, 1.0);
            let b = rng.normal(0.0, 1.0);
            d.push(vec![a, b], c);
        }
        let rows: Vec<usize> = (0..d.len()).collect();
        let svm = LinearSvm::fit(&d, &rows, SvmConfig::default());
        let acc = rows
            .iter()
            .filter(|&&r| svm.predict(&d.x[r]) == d.y[r])
            .count() as f64
            / rows.len() as f64;
        assert!(acc > 0.97, "acc {acc}");
    }

    #[test]
    fn three_class_ovr() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut d = Dataset::new(
            vec!["x".into(), "y".into()],
            vec!["a".into(), "b".into(), "c".into()],
        );
        let centers = [(-5.0, 0.0), (5.0, 0.0), (0.0, 6.0)];
        for _ in 0..600 {
            let c = rng.index(3);
            d.push(
                vec![rng.normal(centers[c].0, 1.0), rng.normal(centers[c].1, 1.0)],
                c,
            );
        }
        let rows: Vec<usize> = (0..d.len()).collect();
        let svm = LinearSvm::fit(&d, &rows, SvmConfig::default());
        let acc = rows
            .iter()
            .filter(|&&r| svm.predict(&d.x[r]) == d.y[r])
            .count() as f64
            / rows.len() as f64;
        assert!(acc > 0.95, "acc {acc}");
    }

    #[test]
    fn missing_treated_as_mean() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut d = Dataset::new(vec!["a".into()], vec!["n".into(), "p".into()]);
        for _ in 0..200 {
            let c = rng.index(2);
            d.push(vec![rng.normal(c as f64 * 4.0, 0.5)], c);
        }
        let rows: Vec<usize> = (0..d.len()).collect();
        let svm = LinearSvm::fit(&d, &rows, SvmConfig::default());
        // A missing value sits at the boundary; must not panic and must
        // return a valid class.
        let p = svm.predict(&[f64::NAN]);
        assert!(p < 2);
    }
}
