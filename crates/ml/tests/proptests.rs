//! Property-based tests of the ML substrate.

use proptest::prelude::*;

use vqd_ml::dataset::Dataset;
use vqd_ml::discretize::mdl_cuts;
use vqd_ml::dtree::C45Trainer;
use vqd_ml::info::{entropy_of_counts, mutual_information, symmetrical_uncertainty};
use vqd_ml::metrics::ConfusionMatrix;

proptest! {
    /// Entropy is within [0, log2(k)] for any non-negative counts.
    #[test]
    fn entropy_bounds(counts in proptest::collection::vec(0.0f64..1e4, 1..16)) {
        let h = entropy_of_counts(&counts);
        let k = counts.iter().filter(|&&c| c > 0.0).count().max(1);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (k as f64).log2() + 1e-9, "h={h} k={k}");
    }

    /// MI is symmetric, non-negative and bounded by min(H(X), H(Y)).
    #[test]
    fn mutual_information_properties(
        pairs in proptest::collection::vec((0usize..4, 0usize..3), 4..200)
    ) {
        let xs: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let mi = mutual_information(&xs, &ys, 4, 3);
        let mi_rev = mutual_information(&ys, &xs, 3, 4);
        prop_assert!((mi - mi_rev).abs() < 1e-9);
        prop_assert!(mi >= 0.0);
        let mut cx = [0.0; 4];
        let mut cy = [0.0; 3];
        for &(x, y) in &pairs {
            cx[x] += 1.0;
            cy[y] += 1.0;
        }
        let bound = entropy_of_counts(&cx).min(entropy_of_counts(&cy));
        prop_assert!(mi <= bound + 1e-9, "mi={mi} bound={bound}");
    }

    /// SU is in [0,1] and symmetric.
    #[test]
    fn su_properties(pairs in proptest::collection::vec((0usize..3, 0usize..3), 4..150)) {
        let xs: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let su = symmetrical_uncertainty(&xs, &ys, 3, 3);
        prop_assert!((0.0..=1.0).contains(&su));
        prop_assert!((su - symmetrical_uncertainty(&ys, &xs, 3, 3)).abs() < 1e-9);
    }

    /// MDL cuts are sorted and all interior to the data range.
    #[test]
    fn mdl_cuts_sorted_and_bounded(
        values in proptest::collection::vec(-100.0f64..100.0, 8..200),
        threshold in -50.0f64..50.0,
    ) {
        let labels: Vec<usize> = values.iter().map(|&v| usize::from(v >= threshold)).collect();
        let cuts = mdl_cuts(&values, &labels, 2);
        for w in cuts.cuts.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        if !cuts.cuts.is_empty() {
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(cuts.cuts[0] >= lo && *cuts.cuts.last().unwrap() <= hi);
        }
        // Binning is total: every value (and NaN) maps to a valid bin.
        for &v in &values {
            prop_assert!(cuts.bin(v) < cuts.n_bins());
        }
        prop_assert_eq!(cuts.bin(f64::NAN), cuts.n_bins() - 1);
    }

    /// The confusion matrix accounting identities hold for arbitrary
    /// prediction streams.
    #[test]
    fn confusion_matrix_identities(
        preds in proptest::collection::vec((0usize..4, 0usize..4), 1..300)
    ) {
        let mut cm = ConfusionMatrix::new(
            (0..4).map(|i| format!("c{i}")).collect()
        );
        for &(a, p) in &preds {
            cm.add(a, p);
        }
        prop_assert_eq!(cm.total(), preds.len() as u64);
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        for c in 0..4 {
            prop_assert!((0.0..=1.0).contains(&cm.precision(c)));
            prop_assert!((0.0..=1.0).contains(&cm.recall(c)));
            prop_assert!((0.0..=1.0).contains(&cm.f1(c)));
        }
        // Accuracy equals the weighted recall over occupied classes.
        let weighted: f64 = (0..4)
            .map(|c| {
                let support: u64 = (0..4).map(|p| cm.count(c, p)).sum();
                cm.recall(c) * support as f64
            })
            .sum::<f64>() / preds.len() as f64;
        prop_assert!((cm.accuracy() - weighted).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A trained C4.5 returns a valid class for any input, including
    /// all-NaN rows, and perfectly fits cleanly separable data.
    #[test]
    fn c45_total_function(seed in any::<u64>(), gap in 1.0f64..10.0) {
        use vqd_simnet::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(seed);
        let mut d = Dataset::new(
            vec!["x".into(), "y".into()],
            vec!["a".into(), "b".into()],
        );
        for _ in 0..200 {
            let c = rng.index(2);
            d.push(
                vec![c as f64 * gap * 4.0 + rng.normal(0.0, gap * 0.3), rng.normal(0.0, 1.0)],
                c,
            );
        }
        let rows: Vec<usize> = (0..d.len()).collect();
        let tree = C45Trainer::default().fit(&d, &rows);
        // Valid predictions everywhere.
        for probe in [
            vec![f64::NAN, f64::NAN],
            vec![0.0, 0.0],
            vec![1e12, -1e12],
            vec![f64::NAN, 3.0],
        ] {
            prop_assert!(tree.predict(&probe) < 2);
        }
        // Training accuracy is high on well-separated classes.
        let correct = rows.iter().filter(|&&r| tree.predict(&d.x[r]) == d.y[r]).count();
        prop_assert!(correct as f64 / rows.len() as f64 > 0.9);
        // The distribution output is a valid (sub-)probability vector.
        let dist = tree.predict_dist(&[f64::NAN, f64::NAN]);
        let total: f64 = dist.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "dist sums to {total}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The SoA-compiled tree is equivalent to the pointer tree it came
    /// from: `to_tree` round-trips the serialized text format exactly,
    /// and descent — including missing-value both-branch routing — is
    /// bit-identical on arbitrary probes.
    #[test]
    fn compiled_tree_roundtrips_and_matches_descent(seed in any::<u64>(), nan_mask in 0u8..8) {
        use vqd_ml::compiled::CompiledTree;
        use vqd_ml::dtree::DecisionTree;
        use vqd_simnet::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(seed);
        // Noisy three-class data over three features so trees get some
        // depth and real lo_frac values at the splits.
        let mut d = Dataset::new(
            vec!["x".into(), "y".into(), "z".into()],
            vec!["a".into(), "b".into(), "c".into()],
        );
        for _ in 0..240 {
            let c = rng.index(3);
            d.push(
                vec![
                    c as f64 * 3.0 + rng.normal(0.0, 1.2),
                    rng.normal(0.0, 1.0),
                    (c % 2) as f64 * 2.0 + rng.normal(0.0, 0.8),
                ],
                c,
            );
        }
        let rows: Vec<usize> = (0..d.len()).collect();
        let tree = C45Trainer::default().fit(&d, &rows);
        let compiled = CompiledTree::from_tree(&tree);

        // Compile -> decompile is the identity on the text format, and
        // so is a pass through the parser.
        let text = tree.serialize();
        prop_assert_eq!(compiled.to_tree().serialize(), text.clone());
        let reparsed = DecisionTree::deserialize(&text)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}")))?;
        prop_assert_eq!(CompiledTree::from_tree(&reparsed).to_tree().serialize(), text);

        // Bitwise descent equivalence on random probes, cycling NaNs
        // through the features named by `nan_mask`.
        for step in 0..32usize {
            let mut x = vec![
                rng.normal(1.5, 3.0),
                rng.normal(0.0, 2.0),
                rng.normal(1.0, 2.0),
            ];
            for (f, v) in x.iter_mut().enumerate() {
                if nan_mask & (1 << f) != 0 && step % 3 == f {
                    *v = f64::NAN;
                }
            }
            let (want_dist, want_miss) = tree.predict_dist_traced(&x);
            let (got_dist, got_miss) = compiled.predict_dist_traced(&x);
            prop_assert_eq!(want_miss.to_bits(), got_miss.to_bits());
            for (w, g) in want_dist.iter().zip(&got_dist) {
                prop_assert_eq!(w.to_bits(), g.to_bits());
            }
        }
    }
}
